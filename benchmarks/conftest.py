"""Shared fixtures for the experiment benches.

Each bench regenerates one table or figure of the paper and prints the
rows/series it reports.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bfv import BfvParameters, BfvScheme
from repro.core.baselines import cheetah_configuration
from repro.nn.models import build_model


@pytest.fixture(scope="session")
def resnet_tuned():
    return cheetah_configuration(build_model("ResNet50")).tuned_layers


@pytest.fixture(scope="session")
def live_scheme():
    params = BfvParameters.create(
        n=2048,
        plain_bits=17,
        coeff_bits=100,
        w_dcmp_bits=6,
        a_dcmp_bits=20,
        require_security=False,
    )
    return BfvScheme(params, seed=2024)


@pytest.fixture(scope="session")
def live_keys(live_scheme):
    return live_scheme.keygen()


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(7)
