"""Figure 8: GPU NTT speedup over CPU as a function of batch size.

Paper (cuHE on a 1080-Ti): speedup saturates around 120x at batch sizes
512/1024 for n = 16K/32K/64K; nvprof shows 70% warp occupancy and 85%
warp execution efficiency at batch 512.
"""

import pytest

from repro.profiling import (
    PAPER_BATCHES,
    PAPER_NS,
    PEAK_SPEEDUP,
    sweep,
    warp_execution_efficiency,
    warp_occupancy,
)


@pytest.mark.benchmark(group="fig8")
def test_fig8_gpu_ntt_speedup_curve(benchmark):
    points = benchmark.pedantic(
        sweep, args=(PAPER_BATCHES, PAPER_NS), rounds=1, iterations=1
    )
    print("\nFigure 8 -- modelled GPU NTT speedup over CPU")
    header = "batch".ljust(8) + "".join(f"n={n//1024}K".rjust(10) for n in PAPER_NS)
    print(header)
    for batch in PAPER_BATCHES:
        row = [p.speedup for p in points if p.batch == batch]
        print(f"{batch:<8}" + "".join(f"{s:>9.1f}x" for s in row))

    by_n = {n: [p for p in points if p.n == n] for n in PAPER_NS}
    for n, series in by_n.items():
        speedups = [p.speedup for p in sorted(series, key=lambda p: p.batch)]
        assert speedups == sorted(speedups), "speedup must rise with batch"
        # Saturation: the last doubling of batch buys < 10% more speedup.
        assert speedups[-1] / speedups[-2] < 1.10
        assert 100.0 <= speedups[-1] <= PEAK_SPEEDUP


@pytest.mark.benchmark(group="fig8")
def test_fig8_nvprof_counters_at_batch_512(benchmark):
    occupancy = benchmark.pedantic(
        warp_occupancy, args=(512,), rounds=1, iterations=1
    )
    efficiency = warp_execution_efficiency(512)
    print(
        f"\nbatch 512: warp occupancy {occupancy*100:.0f}% (paper 70%), "
        f"execution efficiency {efficiency*100:.0f}% (paper 85%)"
    )
    assert abs(occupancy - 0.70) < 0.08
    assert efficiency == pytest.approx(0.85)
