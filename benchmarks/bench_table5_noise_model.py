"""Table V: layer output-noise models, validated against live execution.

The paper validates HE-PTune's noise model against SEAL's measured
remaining budget and accepts worst-case errors within ~1 bit in the
low-budget region; we print model-vs-measured for live conv and FC layers
on our substrate.
"""

import math

import numpy as np
import pytest

from repro.bfv.noise import noise_magnitude
from repro.core.noise_model import NoiseMode, Schedule, layer_output_noise
from repro.core.ptune import ModelParams
from repro.nn.layers import ConvLayer, FCLayer
from repro.scheduling import fc_he_naive, fc_rotation_steps, pack_fc_input
from repro.scheduling.conv2d import _infer_width, conv2d_he_naive, conv_rotation_steps, encrypt_channels


def _proxy(params):
    # Live schedulers multiply slot-encoded weight plaintexts whose
    # coefficient norm is bounded by t, i.e. l_pt = 1 with Wdcmp = t.
    t_bits = params.plain_modulus.bit_length()
    return ModelParams(
        n=params.n,
        plain_bits=t_bits,
        coeff_bits=params.coeff_bits,
        w_dcmp_bits=t_bits,
        a_dcmp_bits=params.a_dcmp_bits,
    )


def _measured_bits(scheme, ct, secret):
    t = scheme.params.plain_modulus
    return math.log2(max(2, noise_magnitude(scheme, ct, secret))) - math.log2(t)


@pytest.mark.benchmark(group="table5")
def test_table5_conv_noise_model(benchmark, live_scheme, live_keys, bench_rng):
    secret, public = live_keys
    fw, ci = 3, 2
    grid_w = _infer_width(live_scheme.params.row_size)
    galois = live_scheme.generate_galois_keys(secret, conv_rotation_steps(grid_w, fw))
    channels = bench_rng.integers(0, 8, (ci, grid_w, grid_w))
    weights = bench_rng.integers(-4, 5, (1, ci, fw, fw))
    cts = encrypt_channels(live_scheme, channels, public)

    def run():
        out = conv2d_he_naive(live_scheme, cts, weights, galois, Schedule.PARTIAL_ALIGNED)[0]
        return _measured_bits(live_scheme, out, secret)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    layer = ConvLayer("conv", w=grid_w, fw=fw, ci=ci, co=1, padding=fw // 2)
    proxy = _proxy(live_scheme.params)
    predicted = math.log2(
        layer_output_noise(layer, proxy, Schedule.PARTIAL_ALIGNED, NoiseMode.PRACTICAL,
                           l_pt=1)
    )
    worst = math.log2(
        layer_output_noise(layer, proxy, Schedule.PARTIAL_ALIGNED, NoiseMode.WORST,
                           l_pt=1)
    )
    print(
        f"\nTable V CNN: measured {measured:.1f} bits, practical model "
        f"{predicted:.1f} bits, worst-case {worst:.1f} bits"
    )
    assert measured <= worst + 1.0
    # The practical model should sit within a handful of bits of reality
    # (the paper accepts ~1 bit in the low-budget region; random weight
    # polynomials at toy scale sit further from the tail bound).
    assert abs(measured - predicted) < 16.0


@pytest.mark.benchmark(group="table5")
def test_table5_fc_noise_model(benchmark, live_scheme, live_keys, bench_rng):
    secret, public = live_keys
    ni, no = 16, 8
    galois = live_scheme.generate_galois_keys(secret, fc_rotation_steps(ni))
    weights = bench_rng.integers(-4, 5, (no, ni))
    packed = pack_fc_input(bench_rng.integers(0, 8, ni), live_scheme.params.row_size)
    ct = live_scheme.encrypt(live_scheme.encoder.encode_row(packed), public)

    def run():
        out = fc_he_naive(live_scheme, ct, weights, galois, Schedule.PARTIAL_ALIGNED)
        return _measured_bits(live_scheme, out, secret)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    layer = FCLayer("fc", ni=ni, no=no)
    proxy = _proxy(live_scheme.params)
    worst = math.log2(
        layer_output_noise(layer, proxy, Schedule.PARTIAL_ALIGNED, NoiseMode.WORST, l_pt=1)
    )
    print(f"\nTable V FC: measured {measured:.1f} bits, worst-case bound {worst:.1f} bits")
    assert measured <= worst + 1.0
