"""Sharded-serving throughput: requests/sec and latency vs worker count.

Measures the multi-process execution backend end to end at n=2048 on the
demo deployment: one coordinator engine over the loopback transport
(full wire encoding), ``CLIENTS`` persistent concurrent sessions, and a
:class:`ShardPool` of 1 / 2 / 4 worker processes all memmapping the same
``.rpa`` artifact.  The in-process backend (no pool) is recorded as the
baseline.

Three channel fabrics are compared at 2 workers:

* ``queue`` -- whole frames pickled through mp queues (the per-task
  serialized-byte baseline);
* ``shm`` -- ciphertext slabs through shared-memory rings, only control
  frames pickled.  The structural gate -- >= ``GATE_SHM_REDUCTION``x
  fewer bytes pickled per task -- is enforced on every host (it is a
  property of the encoding, not of core count);
* remote TCP workers (:class:`ShardWorkerServer` fleets of 1 and 2),
  recording req/s vs remote worker count.

Every mode's logits are checked bit-identical to the plaintext runner
(the conformance suite pins the stronger cross-path guarantee).  The
acceptance gate -- >= ``GATE_SPEEDUP``x requests/sec at 4 workers over 1
worker -- is enforced when the host actually has >= 4 cores; on smaller
runners (e.g. a 1-core dev container, where extra processes only add
IPC overhead) the numbers are recorded with ``gate_enforced: false``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharding.py -s
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np

from repro.bfv import BfvParameters
from repro.bfv.ntt_batch import get_engine
from repro.core.noise_model import Schedule
from repro.nn.plaintext import PlaintextRunner
from repro.serving import (
    DEMO_RESCALE_BITS,
    ClientSession,
    LoopbackTransport,
    ModelRegistry,
    ServingEngine,
    ShardError,
    ShardExecutor,
    ShardPool,
    ShardWorkerServer,
    demo_image,
    demo_network,
    demo_weights,
)

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_sharding.json"

#: Acceptance gate: 4 shard workers vs 1 shard worker, multi-core hosts.
GATE_SPEEDUP = 1.8
GATE_MIN_CORES = 4

#: Structural gate, enforced on every host: the shm channel must pickle
#: >= this factor fewer bytes per task than the queue channel.
GATE_SHM_REDUCTION = 10.0
REMOTE_COUNTS = (1, 2)

SCHEDULE = Schedule.INPUT_ALIGNED
CLIENTS = 4
REQUESTS_PER_CLIENT = 3
WORKER_COUNTS = (1, 2, 4)
ENGINE_SEED = 20260728


def _params() -> BfvParameters:
    return BfvParameters.create(
        n=2048, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


def _stage_artifact(tmp_dir, params):
    from repro.artifacts import load_zoo, save_artifact, update_manifest

    entry = ModelRegistry().register(
        "demo", demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )
    save_artifact(entry, Path(tmp_dir) / "demo.rpa")
    update_manifest(tmp_dir, entry, "demo.rpa")
    return load_zoo(tmp_dir)


def _start_pool(artifact_dir, workers: int, **kwargs) -> ShardPool:
    """Start a pool, absorbing one transient startup failure.

    A loaded CI host can OOM-kill or starve a forking worker once; a
    single retry keeps the benchmark about throughput, not about the
    host's worst moment.  A second failure is a real problem and raises.
    """
    try:
        return ShardPool(artifact_dir, workers=workers, **kwargs).start()
    except ShardError as exc:
        print(f"pool startup failed once ({exc}); retrying")
        return ShardPool(artifact_dir, workers=workers, **kwargs).start()


def _drive_clients(registry, params, images, executor):
    """Persistent concurrent sessions through one engine; returns timings."""
    engine = ServingEngine(
        registry, max_batch=CLIENTS, batch_window_s=0.05,
        seed=ENGINE_SEED, executor=executor,
    )
    transport = LoopbackTransport(engine)
    sessions = []
    for index in range(CLIENTS):
        session = ClientSession(
            demo_network(), params, transport, seed=700 + index
        )
        session.connect("demo")
        sessions.append(session)
    per_client = [images[index::CLIENTS] for index in range(CLIENTS)]
    latencies = [[] for _ in range(CLIENTS)]
    logits = [[] for _ in range(CLIENTS)]

    def drive(index):
        for image in per_client[index]:
            t0 = time.perf_counter()
            logits[index].append(sessions[index].infer(image).logits)
            latencies[index].append(time.perf_counter() - t0)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=drive, args=(index,)) for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    for session in sessions:
        session.close()
    ordered = [None] * len(images)
    for index in range(CLIENTS):
        for j, value in enumerate(logits[index]):
            ordered[index + j * CLIENTS] = value
    return elapsed, [l for client in latencies for l in client], ordered


def _stats(elapsed, latencies, count):
    lat = np.sort(np.asarray(latencies))
    return {
        "requests": count,
        "seconds": elapsed,
        "requests_per_sec": count / elapsed,
        "latency_p50_ms": float(np.percentile(lat, 50) * 1e3),
        "latency_p95_ms": float(np.percentile(lat, 95) * 1e3),
    }


def test_sharding_throughput(tmp_path):
    params = _params()
    registry = _stage_artifact(tmp_path, params)
    images = [demo_image(seed) for seed in range(REQUESTS_PER_CLIENT * CLIENTS)]
    runner = PlaintextRunner(
        demo_network(), demo_weights(), rescale_bits=DEMO_RESCALE_BITS
    )
    expected = [runner.run(image) for image in images]

    def check(logits, mode):
        assert all(
            np.array_equal(a, b) for a, b in zip(logits, expected)
        ), f"{mode} logits diverged"

    # Warm caches (plan/scheme/engine) so no mode pays first-touch costs.
    _w, _l, warm = _drive_clients(registry, params, images[:CLIENTS], None)
    check(warm, "warmup")

    elapsed, lat, logits = _drive_clients(registry, params, images, None)
    check(logits, "in_process")
    in_process = _stats(elapsed, lat, len(images))

    by_workers = {}
    ipc = {}
    for workers in WORKER_COUNTS:
        pool = _start_pool(tmp_path, workers)
        try:
            elapsed, lat, logits = _drive_clients(
                registry, params, images, ShardExecutor(pool)
            )
            if workers == 2:
                ipc["queue"] = pool.ipc_stats()
        finally:
            pool.stop()
        check(logits, f"{workers} workers")
        by_workers[workers] = _stats(elapsed, lat, len(images))

    # Channel comparison at 2 workers: the shm fabric moves ciphertext
    # slabs through shared-memory rings, so only small control frames
    # cross the pickling queues.
    pool = _start_pool(tmp_path, 2, channels="shm")
    try:
        elapsed, lat, logits = _drive_clients(
            registry, params, images, ShardExecutor(pool)
        )
        ipc["shm"] = pool.ipc_stats()
    finally:
        pool.stop()
    check(logits, "shm channels")
    shm_mode = _stats(elapsed, lat, len(images))

    def _pickled_per_task(stats):
        return stats["pickled_bytes"] / max(1, stats["tasks"])

    shm_reduction = _pickled_per_task(ipc["queue"]) / _pickled_per_task(
        ipc["shm"]
    )

    # Remote TCP workers: a localhost fleet of ShardWorkerServer
    # processes-worth of endpoints (in-process servers here; the frames
    # and supervision are identical to cross-host deployment).
    by_remote = {}
    for count in REMOTE_COUNTS:
        servers = [
            ShardWorkerServer(tmp_path, port=0).start() for _ in range(count)
        ]
        try:
            pool = ShardPool(
                None, workers=0,
                remote_endpoints=[server.endpoint for server in servers],
            ).start()
            try:
                elapsed, lat, logits = _drive_clients(
                    registry, params, images, ShardExecutor(pool)
                )
                if count == max(REMOTE_COUNTS):
                    ipc["remote"] = pool.ipc_stats()
            finally:
                pool.stop()
        finally:
            for server in servers:
                server.stop()
        check(logits, f"{count} remote workers")
        by_remote[count] = _stats(elapsed, lat, len(images))

    speedup = (
        by_workers[4]["requests_per_sec"] / by_workers[1]["requests_per_sec"]
    )
    cores = os.cpu_count() or 1
    gate_enforced = cores >= GATE_MIN_CORES

    print(f"\nSharded serving, n={params.n}, {len(images)} requests, "
          f"{CLIENTS} clients, {cores} core(s)")
    print(f"{'mode':<16}{'req/s':>8}{'p50 ms':>9}{'p95 ms':>9}")
    rows = (
        [("in_process", in_process)]
        + [(f"{w} workers", stats) for w, stats in by_workers.items()]
        + [("2 workers shm", shm_mode)]
        + [(f"{c} remote", stats) for c, stats in by_remote.items()]
    )
    for name, stats in rows:
        print(
            f"{name:<16}{stats['requests_per_sec']:>8.2f}"
            f"{stats['latency_p50_ms']:>9.0f}{stats['latency_p95_ms']:>9.0f}"
        )
    print(
        f"4 workers vs 1 worker: {speedup:.2f}x "
        f"(gate {GATE_SPEEDUP}x, enforced: {gate_enforced})"
    )
    print(
        f"per-task pickled bytes: queue "
        f"{_pickled_per_task(ipc['queue']):,.0f} vs shm "
        f"{_pickled_per_task(ipc['shm']):,.0f} "
        f"({shm_reduction:.1f}x reduction, gate {GATE_SHM_REDUCTION}x)"
    )

    payload = {
        "benchmark": "sharding",
        "unit": "requests_per_sec",
        "n": params.n,
        "schedule": SCHEDULE.value,
        "clients": CLIENTS,
        "requests": len(images),
        "cpu_count": cores,
        "ntt_path": "native" if get_engine(
            params.n, params.coeff_basis.primes
        ).uses_native_kernel else "numpy",
        "platform": platform.platform(),
        "gate_speedup": GATE_SPEEDUP,
        "gate_min_cores": GATE_MIN_CORES,
        "gate_enforced": gate_enforced,
        "modes": {
            "in_process": in_process,
            **{f"workers_{w}": stats for w, stats in by_workers.items()},
            "workers_2_shm": shm_mode,
            **{f"remote_{c}": stats for c, stats in by_remote.items()},
        },
        "ipc": {
            "queue": ipc["queue"],
            "shm": ipc["shm"],
            "remote": ipc.get("remote", {}),
            "queue_pickled_bytes_per_task": _pickled_per_task(ipc["queue"]),
            "shm_pickled_bytes_per_task": _pickled_per_task(ipc["shm"]),
            "payload_reduction_x": shm_reduction,
            "gate_shm_reduction": GATE_SHM_REDUCTION,
        },
        "speedup_4w_vs_1w": speedup,
        "logits_bit_identical_to_plaintext": True,
        "note": (
            "Workers fork + load_zoo the same memmapped .rpa artifact; the "
            "gate applies on hosts with >= 4 cores (a single-core container "
            "only measures the IPC overhead of the sharded path)."
        ),
    }
    RECORD_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RECORD_PATH}")

    # Structural gate, independent of core count: the shm channel must
    # keep ciphertext slabs out of the pickled control frames.
    assert shm_reduction >= GATE_SHM_REDUCTION, (
        f"shm channel pickled only {shm_reduction:.1f}x fewer bytes per "
        f"task than the queue channel (gate {GATE_SHM_REDUCTION}x) -- "
        f"slabs are leaking back into the control frames"
    )

    if gate_enforced:
        assert speedup >= GATE_SPEEDUP, (
            f"sharded serving {speedup:.2f}x at 4 workers below the "
            f"{GATE_SPEEDUP}x gate over 1 worker on a {cores}-core host"
        )
