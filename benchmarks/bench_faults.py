"""Fault-tolerance costs: recovery latency and degraded-mode throughput.

Quantifies what the supervision layer (PR 6) actually charges for a
failure, on the demo deployment at n=2048 with a 2-worker pool:

* **baseline** -- fault-free sharded requests/sec (the yardstick);
* **kill_recovery** -- SIGKILL one worker, then (a) the latency of the
  request served *during* the outage (requeued onto the survivor) and
  (b) how long until the supervisor has the pool back at full strength
  (respawn + warm-start ``load_zoo`` + readiness);
* **degraded** -- requests/sec with the pool below the executor's
  quorum, i.e. every layer call falling back to the engine's in-process
  executor (the service-worse-not-failed mode).

Every mode's logits are checked bit-identical to the plaintext runner;
the chaos suite (``tests/test_faults.py``) pins the stronger op-counter
exactness.  Results land in ``BENCH_faults.json``.  No speedup gate:
recovery latency is dominated by the respawned worker's ``load_zoo``,
which scales with the artifact, not with this code.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -s
"""

from __future__ import annotations

import json
import os
import platform
import signal
import time
from pathlib import Path

import numpy as np

from repro.bfv import BfvParameters
from repro.bfv.ntt_batch import get_engine
from repro.core.noise_model import Schedule
from repro.nn.plaintext import PlaintextRunner
from repro.serving import (
    DEMO_RESCALE_BITS,
    ClientSession,
    LoopbackTransport,
    ModelRegistry,
    ServingEngine,
    ShardExecutor,
    ShardPool,
    demo_image,
    demo_network,
    demo_weights,
)

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_faults.json"

SCHEDULE = Schedule.INPUT_ALIGNED
WORKERS = 2
BASELINE_REQUESTS = 4
DEGRADED_REQUESTS = 4
ENGINE_SEED = 20260807


def _params() -> BfvParameters:
    return BfvParameters.create(
        n=2048, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


def _stage_artifact(tmp_dir, params):
    from repro.artifacts import load_zoo, save_artifact, update_manifest

    entry = ModelRegistry().register(
        "demo", demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )
    save_artifact(entry, Path(tmp_dir) / "demo.rpa")
    update_manifest(tmp_dir, entry, "demo.rpa")
    return load_zoo(tmp_dir)


def _session(registry, params, executor, **engine_kwargs):
    engine = ServingEngine(
        registry, max_batch=1, seed=ENGINE_SEED, executor=executor,
        **engine_kwargs,
    )
    session = ClientSession(
        demo_network(), params, LoopbackTransport(engine), seed=7
    )
    session.connect("demo")
    return engine, session


def _serve(session, images, expected):
    """Serial requests; returns (elapsed_s, per-request latencies)."""
    latencies = []
    for image, want in zip(images, expected):
        t0 = time.perf_counter()
        logits = session.infer(image).logits
        latencies.append(time.perf_counter() - t0)
        assert np.array_equal(logits, want), "logits diverged"
    return sum(latencies), latencies


def test_fault_tolerance_costs(tmp_path):
    params = _params()
    registry = _stage_artifact(tmp_path, params)
    images = [demo_image(seed) for seed in range(BASELINE_REQUESTS)]
    runner = PlaintextRunner(
        demo_network(), demo_weights(), rescale_bits=DEMO_RESCALE_BITS
    )
    expected = [runner.run(image) for image in images]

    pool = ShardPool(tmp_path, workers=WORKERS, respawn_backoff_s=0.05).start()
    try:
        engine, session = _session(registry, params, ShardExecutor(pool))
        # Warm-up (plan/scheme caches), then the fault-free yardstick.
        _serve(session, images[:1], expected[:1])
        base_s, _ = _serve(session, images, expected)
        baseline = {
            "requests": len(images),
            "requests_per_sec": len(images) / base_s,
        }

        # SIGKILL one worker, serve *through* the outage, and time the
        # supervisor restoring full strength.
        kill_t0 = time.perf_counter()
        os.kill(pool._slots[0].process.pid, signal.SIGKILL)
        outage_s, _ = _serve(session, images[:1], expected[:1])
        while pool.alive_workers() < WORKERS:
            if time.perf_counter() - kill_t0 > 120.0:
                raise AssertionError("pool never recovered from SIGKILL")
            time.sleep(0.02)
        restored_s = time.perf_counter() - kill_t0
        # The respawned worker must actually serve again.
        post_s, _ = _serve(session, images, expected)
        kill_recovery = {
            "request_latency_during_outage_s": outage_s,
            "pool_restored_after_s": restored_s,
            "requests_per_sec_after_recovery": len(images) / post_s,
            "respawns": pool.respawns_total,
            "task_retries": pool.retries_total,
        }
        assert engine.degraded_calls == 0  # the pool absorbed the kill
        session.close()

        # Degraded mode: quorum above the worker count forces every
        # layer call onto the engine's in-process fallback.
        engine, session = _session(
            registry, params, ShardExecutor(pool, quorum=WORKERS + 1)
        )
        degraded_s, _ = _serve(
            session, images[:DEGRADED_REQUESTS], expected[:DEGRADED_REQUESTS]
        )
        degraded = {
            "requests": DEGRADED_REQUESTS,
            "requests_per_sec": DEGRADED_REQUESTS / degraded_s,
            "degraded_layer_calls": engine.degraded_calls,
        }
        assert engine.degraded_calls > 0
        session.close()
    finally:
        pool.stop()

    print(f"\nFault-tolerance costs, n={params.n}, {WORKERS} workers")
    print(f"baseline:        {baseline['requests_per_sec']:.2f} req/s")
    print(
        f"during outage:   {kill_recovery['request_latency_during_outage_s']:.2f} s "
        f"request latency; pool restored in "
        f"{kill_recovery['pool_restored_after_s']:.2f} s"
    )
    print(f"degraded (local fallback): {degraded['requests_per_sec']:.2f} req/s")

    payload = {
        "benchmark": "faults",
        "unit": "seconds / requests_per_sec",
        "n": params.n,
        "schedule": SCHEDULE.value,
        "workers": WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "ntt_path": "native" if get_engine(
            params.n, params.coeff_basis.primes
        ).uses_native_kernel else "numpy",
        "platform": platform.platform(),
        "baseline": baseline,
        "kill_recovery": kill_recovery,
        "degraded": degraded,
        "logits_bit_identical_to_plaintext": True,
        "note": (
            "Recovery latency is dominated by the respawned worker's "
            "load_zoo warm start; the outage-window request is served by "
            "requeue onto the surviving worker, not by local fallback."
        ),
    }
    RECORD_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RECORD_PATH}")
