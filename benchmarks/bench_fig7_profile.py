"""Figure 7: ResNet50 HE inference profiling.

(a) The kernel time breakdown -- paper: NTT 55.2%, Rotate 31.8%,
Mult 10.3%, Add 2.2%, Other 0.5% over a 970 s run.
(b) The successive-speedup limit study to reach 100 ms plaintext latency
-- paper: NTT 16384x, Rotate 8192x, Mult 4096x, Add 4096x.
"""

import pytest

from repro.profiling import limit_study, network_profile

PAPER_FRACTIONS = {"ntt": 0.552, "rotate": 0.318, "mult": 0.103, "add": 0.022}
PAPER_TOTAL_SECONDS = 970.0
PLAINTEXT_TARGET_SECONDS = 0.1


@pytest.mark.benchmark(group="fig7")
def test_fig7a_kernel_breakdown(benchmark, resnet_tuned):
    profile = benchmark.pedantic(
        network_profile, args=(resnet_tuned,), rounds=1, iterations=1
    )
    fractions = profile.fractions()
    print("\nFigure 7a -- ResNet50 kernel time breakdown")
    print(f"{'kernel':<9}{'measured':>10}{'paper':>8}")
    for kernel, paper in PAPER_FRACTIONS.items():
        print(f"{kernel:<9}{fractions[kernel]*100:>9.1f}%{paper*100:>7.1f}%")
    assert profile.dominant() == "ntt"
    assert fractions["ntt"] > 0.40
    assert fractions["rotate"] > fractions["add"]
    assert fractions["add"] < 0.05


@pytest.mark.benchmark(group="fig7")
def test_fig7b_speedup_needed(benchmark, resnet_tuned):
    profile = network_profile(resnet_tuned)

    def study():
        return limit_study(profile, PAPER_TOTAL_SECONDS, PLAINTEXT_TARGET_SECONDS)

    result = benchmark.pedantic(study, rounds=1, iterations=1)
    print("\nFigure 7b -- speedup needed per kernel (paper: ntt 16384, rotate 8192,")
    print("mult 4096, add 4096)")
    for kernel, factor in sorted(result.speedups.items(), key=lambda kv: -kv[1]):
        print(f"  {kernel:<8}{factor:>8}x")
    print(f"  final latency {result.final_seconds*1000:.1f} ms")
    assert result.final_seconds <= PLAINTEXT_TARGET_SECONDS
    assert result.speedups["ntt"] == max(result.speedups.values())
    # Three to four orders of magnitude, as the paper reports.
    assert 1024 <= result.speedups["ntt"] <= 65536
