"""Table IV: HE-PTune performance models (HE_Mult / HE_Rotate counts).

Prints the operator census for representative CNN and FC layers in every
packing regime, and validates the model against a live scheduler trace.
"""

import numpy as np
import pytest

from repro.core.noise_model import Schedule
from repro.core.perf_model import layer_op_counts
from repro.core.ptune import ModelParams
from repro.nn.layers import ConvLayer, FCLayer
from repro.scheduling import TraceRecorder, conv_rotation_steps
from repro.scheduling.conv2d import _infer_width, conv2d_he_naive, encrypt_channels

CASES = [
    ("CNN n>=w^2", ConvLayer("conv", w=16, fw=3, ci=4, co=8, padding=1), 2048),
    ("CNN n<w^2", ConvLayer("conv", w=64, fw=3, ci=2, co=4), 1024),
    ("FC both fit", FCLayer("fc", ni=512, no=64), 2048),
    ("FC big out", FCLayer("fc", ni=512, no=4096), 2048),
    ("FC big in", FCLayer("fc", ni=4096, no=64), 2048),
    ("FC both big", FCLayer("fc", ni=4096, no=4096), 2048),
]


def _census():
    rows = []
    for label, layer, n in CASES:
        params = ModelParams(
            n=n, plain_bits=20, coeff_bits=54, w_dcmp_bits=10, a_dcmp_bits=9
        )
        counts = layer_op_counts(layer, params, l_pt=1)
        rows.append((label, counts.he_mult, counts.he_rotate))
    return rows


@pytest.mark.benchmark(group="table4")
def test_table4_operator_census(benchmark):
    rows = benchmark.pedantic(_census, rounds=1, iterations=1)
    print("\nTable IV -- HE operator counts per layer (l_pt = 1)")
    print(f"{'case':<14}{'HE_Mult':>10}{'HE_Rotate':>11}")
    for label, mults, rotates in rows:
        print(f"{label:<14}{mults:>10}{rotates:>11}")
        assert mults > 0 and rotates >= 0


@pytest.mark.benchmark(group="table4")
def test_table4_model_matches_live_trace(
    benchmark, live_scheme, live_keys, bench_rng
):
    """The analytical census must match an actual scheduled execution."""
    secret, public = live_keys
    fw, ci, co = 3, 2, 2
    grid_w = _infer_width(live_scheme.params.row_size)
    galois = live_scheme.generate_galois_keys(secret, conv_rotation_steps(grid_w, fw))
    channels = bench_rng.integers(0, 8, (ci, grid_w, grid_w))
    weights = bench_rng.integers(-4, 5, (co, ci, fw, fw))
    cts = encrypt_channels(live_scheme, channels, public)

    def run():
        with TraceRecorder() as rec:
            conv2d_he_naive(live_scheme, cts, weights, galois, Schedule.PARTIAL_ALIGNED)
        return rec.trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    expected_mults = ci * co * fw * fw
    expected_rotates = ci * co * (fw * fw - 1)
    print(
        f"\nlive conv trace: HE_Mult {trace.he_mult} (model {expected_mults}), "
        f"HE_Rotate {trace.he_rotate} (model {expected_rotates})"
    )
    assert trace.he_mult == expected_mults
    assert trace.he_rotate == expected_rotates
