"""Ablation: hoisted rotations (extension beyond the paper's tables).

Gazelle-style hoisting shares one INTT + digit decomposition + digit
NTTs across every rotation of the same ciphertext.  Since HE-PTune's
census charges (l_ct + 1) NTTs per HE_Rotate and NTT is 55% of run time
(Figure 7a), hoisting attacks the dominant kernel directly; this bench
measures the saving on live ciphertexts.
"""

import numpy as np
import pytest

from repro.bfv import BfvParameters, BfvScheme
from repro.bfv.counters import GLOBAL_COUNTERS


@pytest.mark.benchmark(group="ablation-hoisting")
def test_hoisting_ntt_savings(benchmark):
    params = BfvParameters.create(
        n=2048, plain_bits=18, coeff_bits=54, a_dcmp_bits=9, require_security=False
    )
    scheme = BfvScheme(params, seed=21)
    secret, public = scheme.keygen()
    steps = list(range(1, 9))
    galois = scheme.generate_galois_keys(secret, steps)
    values = np.arange(params.row_size)
    ct = scheme.encrypt(scheme.encoder.encode_row(values), public)

    def run():
        before = GLOBAL_COUNTERS.snapshot()
        for step in steps:
            scheme.rotate_rows(ct, step, galois)
        plain_ntts = GLOBAL_COUNTERS.diff(before).ntt

        before = GLOBAL_COUNTERS.snapshot()
        hoisted = scheme.hoist(ct)
        outs = [scheme.rotate_rows_hoisted(hoisted, step, galois) for step in steps]
        hoisted_ntts = GLOBAL_COUNTERS.diff(before).ntt
        return plain_ntts, hoisted_ntts, outs

    plain_ntts, hoisted_ntts, outs = benchmark.pedantic(run, rounds=1, iterations=1)
    # Correctness of every hoisted rotation.
    for step, out in zip(steps, outs):
        decoded = scheme.encoder.decode_row(scheme.decrypt(out, secret), signed=False)
        assert np.array_equal(decoded, np.roll(values, -step))
    saving = plain_ntts / hoisted_ntts
    print(
        f"\nHoisting ablation: {len(steps)} rotations of one ciphertext\n"
        f"  NTTs without hoisting: {plain_ntts}\n"
        f"  NTTs with hoisting:    {hoisted_ntts}\n"
        f"  saving:                {saving:.1f}x on the dominant kernel"
    )
    assert hoisted_ntts < plain_ntts
    assert saving >= len(steps) * 0.8  # approaches k-fold for k rotations
