"""NTT kernel microbenchmark: per-limb NttContext loops vs RnsNttEngine.

Times forward+inverse roundtrips over a (k, n) residue stack three ways --
the seed implementation (a Python loop of per-limb ``NttContext`` calls),
the batched numpy engine, and the engine's compiled fast path when a C
compiler is present -- reporting transforms/sec for n in {1024, 2048,
4096} and k in {1, 4}.  Results are cross-checked bit-exactly and written
to ``BENCH_ntt.json`` in the repository root as a perf record for the
trajectory.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_ntt_kernels.py -s
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.bfv.modmath import generate_ntt_primes
from repro.bfv.native import native_available
from repro.bfv.ntt import NttContext
from repro.bfv.ntt_batch import RnsNttEngine

CONFIGS = [(n, k) for n in (1024, 2048, 4096) for k in (1, 4)]

#: The acceptance gate of the batched-engine issue: >= 3x at n=2048, k=4.
GATE_CONFIG = (2048, 4)
GATE_SPEEDUP = 3.0

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_ntt.json"


def _best_seconds(fn, reps: int, rounds: int = 5) -> float:
    """Best-of-rounds mean seconds per call (robust to scheduler noise)."""
    fn()  # warm caches, plans, and compiled kernels
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return best


def _bench_config(n: int, k: int, rng: np.random.Generator) -> dict:
    moduli = generate_ntt_primes(30, n, k)
    contexts = [NttContext(n, m) for m in moduli]
    numpy_engine = RnsNttEngine(n, moduli, use_native=False)
    auto_engine = RnsNttEngine(n, moduli)
    stack = np.stack([rng.integers(0, m, n, dtype=np.int64) for m in moduli])

    # Bit-exact cross-check before timing anything.
    reference = np.stack(
        [contexts[i].forward(stack[i], count_ops=False) for i in range(k)]
    )
    for engine in (numpy_engine, auto_engine):
        assert np.array_equal(engine.forward(stack, count_ops=False), reference)
        assert np.array_equal(
            engine.inverse(reference, count_ops=False), stack
        )

    def scalar_roundtrip():
        for i in range(k):
            evals = contexts[i].forward(stack[i], count_ops=False)
            contexts[i].inverse(evals, count_ops=False)

    def engine_roundtrip(engine):
        engine.inverse(engine.forward(stack, count_ops=False), count_ops=False)

    reps = max(3, 2_000_000 // (n * k))
    scalar_s = _best_seconds(scalar_roundtrip, reps)
    numpy_s = _best_seconds(lambda: engine_roundtrip(numpy_engine), reps)
    auto_s = _best_seconds(lambda: engine_roundtrip(auto_engine), reps)

    transforms = 2 * k  # one forward + one inverse per limb
    return {
        "n": n,
        "k": k,
        "scalar_transforms_per_s": transforms / scalar_s,
        "numpy_engine_transforms_per_s": transforms / numpy_s,
        "engine_transforms_per_s": transforms / auto_s,
        "numpy_speedup": scalar_s / numpy_s,
        "engine_speedup": scalar_s / auto_s,
        "engine_path": "native" if auto_engine.uses_native_kernel else "numpy",
    }


def test_ntt_kernel_throughput():
    rng = np.random.default_rng(7)
    records = [_bench_config(n, k, rng) for n, k in CONFIGS]

    print("\nNTT kernel throughput (forward+inverse roundtrips, transforms/sec)")
    print(
        f"{'n':>6}{'k':>4}{'scalar':>12}{'numpy-batch':>14}"
        f"{'engine':>12}{'speedup':>10}"
    )
    for r in records:
        print(
            f"{r['n']:>6}{r['k']:>4}"
            f"{r['scalar_transforms_per_s']:>12.0f}"
            f"{r['numpy_engine_transforms_per_s']:>14.0f}"
            f"{r['engine_transforms_per_s']:>12.0f}"
            f"{r['engine_speedup']:>9.1f}x"
        )

    payload = {
        "benchmark": "ntt_kernels",
        "unit": "transforms_per_second",
        "native_kernel": native_available(),
        "platform": platform.platform(),
        "records": records,
    }
    RECORD_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RECORD_PATH}")

    gate = next(r for r in records if (r["n"], r["k"]) == GATE_CONFIG)
    # The batched engine must clearly beat the seed's per-limb loop; the
    # full 3x acceptance gate applies whenever the compiled path is alive
    # (every environment with a C compiler), and the pure-numpy engine
    # must still be a solid win on its own.
    assert gate["numpy_speedup"] >= 1.5
    if native_available():
        assert gate["engine_speedup"] >= GATE_SPEEDUP
    else:
        assert gate["engine_speedup"] >= 1.5
