"""Ablation: the decryption-failure target (Section IV-B).

Cheetah replaces worst-case noise bounds with a statistical estimate
scaled so the failure probability stays below 1e-10.  This bench sweeps
the failure target and reports the performance left on the table by more
conservative settings, plus the worst-case-model cost the paper's
baseline pays.
"""

import math

import pytest

from repro.core.failure import tail_factor
from repro.core.noise_model import NoiseMode, Schedule
from repro.core.ptune import HePTune
from repro.nn.models import lenet5


@pytest.mark.benchmark(group="ablation-failure")
def test_failure_target_ablation(benchmark):
    network = lenet5()

    def run():
        costs = {}
        for mode in (NoiseMode.PRACTICAL, NoiseMode.WORST):
            tuner = HePTune(schedule=Schedule.PARTIAL_ALIGNED, mode=mode)
            costs[mode.value] = sum(t.int_mults for t in tuner.tune_network(network))
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = costs["worst"] / costs["practical"]
    print("\nFailure-probability ablation (LeNet5, Sched-PA)")
    print(f"  practical (Pr<=1e-10) cost: {costs['practical']:.3e} int mults")
    print(f"  worst-case cost:            {costs['worst']:.3e} int mults")
    print(f"  statistical model speedup:  {ratio:.2f}x")
    assert ratio > 1.0, "the practical model must buy performance"


@pytest.mark.benchmark(group="ablation-failure")
def test_tail_factor_scaling(benchmark):
    """The noise headroom grows only logarithmically with stricter targets."""
    targets = [1e-6, 1e-10, 1e-14]
    factors = benchmark.pedantic(
        lambda: [tail_factor(t) for t in targets], rounds=1, iterations=1
    )
    print("\ntail factors:", [f"{t:g}: {z:.2f} sigma" for t, z in zip(targets, factors)])
    extra_bits = math.log2(factors[-1] / factors[0])
    print(f"extra noise margin from 1e-6 -> 1e-14: {extra_bits:.2f} bits")
    assert factors == sorted(factors)
    assert extra_bits < 1.0  # cheap to be paranoid, the paper's point
