"""Compiled linear-layer plans vs the naive Figure 5 loop nests.

Times a LeNet-style layer sweep at n=2048 under both dot-product
schedules, executing each layer through the naive per-tap loop
(:func:`conv2d_he_naive` / :func:`fc_he_naive`) and through a compiled
:class:`~repro.scheduling.plan.ConvPlan` / ``FcPlan``, cross-checking
bit-identical decrypted outputs and recording wall-clock plus HE-op
counters (``GLOBAL_COUNTERS``) for both paths.  Results land in
``BENCH_linear.json`` in the repository root as the perf record for the
trajectory; the acceptance gate is a >= 3x aggregate end-to-end speedup
with rotation counts matching the analytic ``fw^2`` (Sched-PA) /
``ci * fw^2`` (Sched-IA) reduction.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_linear_plans.py -s
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.bfv import BfvParameters, BfvScheme
from repro.bfv.counters import GLOBAL_COUNTERS
from repro.core.noise_model import Schedule
from repro.scheduling import (
    ConvPlan,
    FcPlan,
    conv2d_he_naive,
    conv_rotation_steps,
    encrypt_channels,
    fc_he_naive,
    fc_rotation_steps,
    pack_fc_input,
)
from repro.scheduling.conv2d import _infer_width

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_linear.json"

#: Aggregate end-to-end gate over the sweep, per schedule.
GATE_SPEEDUP = 3.0

CONV_LAYERS = [
    # (name, ci, co, fw, image w) -- LeNet-style mid-network shapes.
    ("conv-c4f3", 4, 8, 3, 8),
    ("conv-c4f5", 4, 4, 5, 12),
]
FC_LAYERS = [
    # (name, ni, no)
    ("fc-128x32", 128, 32),
    ("fc-100x32", 100, 32),
]


def _time_best(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _ops(fn):
    before = GLOBAL_COUNTERS.snapshot()
    result = fn()
    delta = GLOBAL_COUNTERS.diff(before)
    return result, {
        "he_mult": delta.he_mult,
        "he_add": delta.he_add,
        "he_rotate": delta.he_rotate,
        "ntt": delta.ntt,
    }


def _decode_all(scheme, secret, cts):
    if not isinstance(cts, list):
        cts = [cts]
    return np.stack(
        [scheme.encoder.decode_row(scheme.decrypt(ct, secret)) for ct in cts]
    )


def _bench_conv(scheme, secret, public, name, ci, co, fw, w, schedule, rng):
    grid_w = _infer_width(scheme.params.row_size)
    galois = scheme.generate_galois_keys(secret, conv_rotation_steps(grid_w, fw))
    acts = rng.integers(0, 8, (ci, w, w))
    weights = rng.integers(-8, 9, (co, ci, fw, fw))
    grids = np.zeros((ci, grid_w, grid_w), dtype=np.int64)
    grids[:, :w, :w] = acts
    cts = encrypt_channels(scheme, grids, public)

    compile_start = time.perf_counter()
    plan = ConvPlan.compile(scheme, weights, schedule)
    compile_s = time.perf_counter() - compile_start

    plan_out, plan_ops = _ops(lambda: plan.execute(cts, galois))
    naive_out, naive_ops = _ops(
        lambda: conv2d_he_naive(scheme, cts, weights, galois, schedule)
    )
    assert np.array_equal(
        _decode_all(scheme, secret, plan_out), _decode_all(scheme, secret, naive_out)
    ), f"{name}/{schedule.value}: plan output diverged from naive reference"
    # Analytic rotation census of the compiled schedule.
    expected_rotations = (
        co * (fw * fw - 1)
        if schedule is Schedule.PARTIAL_ALIGNED
        else ci * (fw * fw - 1)
    )
    assert plan_ops["he_rotate"] == expected_rotations, (name, schedule, plan_ops)
    assert naive_ops["he_rotate"] == co * ci * (fw * fw - 1)

    naive_s = _time_best(
        lambda: conv2d_he_naive(scheme, cts, weights, galois, schedule), rounds=2
    )
    plan_s = _time_best(lambda: plan.execute(cts, galois), rounds=3)
    return {
        "layer": name,
        "kind": "conv",
        "shape": {"ci": ci, "co": co, "fw": fw, "w": w},
        "schedule": schedule.value,
        "naive_seconds": naive_s,
        "plan_seconds": plan_s,
        "plan_compile_seconds": compile_s,
        "speedup": naive_s / plan_s,
        "naive_ops": naive_ops,
        "plan_ops": plan_ops,
    }


def _bench_fc(scheme, secret, public, name, ni, no, schedule, rng):
    galois = scheme.generate_galois_keys(secret, fc_rotation_steps(ni))
    x = rng.integers(0, 16, ni)
    weights = rng.integers(-8, 9, (no, ni))
    packed = pack_fc_input(x, scheme.params.row_size)
    ct = scheme.encrypt(scheme.encoder.encode_row(packed), public)

    compile_start = time.perf_counter()
    plan = FcPlan.compile(scheme, weights, schedule)
    compile_s = time.perf_counter() - compile_start

    plan_out, plan_ops = _ops(lambda: plan.execute(ct, galois))
    naive_out, naive_ops = _ops(
        lambda: fc_he_naive(scheme, ct, weights, galois, schedule)
    )
    plan_slots = _decode_all(scheme, secret, plan_out)[0, :no]
    naive_slots = _decode_all(scheme, secret, naive_out)[0, :no]
    assert np.array_equal(plan_slots, naive_slots)
    assert np.array_equal(plan_slots, weights @ x)
    assert plan_ops["he_rotate"] == plan.no_eff - 1 + len(plan.fold_steps)
    assert naive_ops["he_rotate"] == ni - 1

    naive_s = _time_best(
        lambda: fc_he_naive(scheme, ct, weights, galois, schedule), rounds=2
    )
    plan_s = _time_best(lambda: plan.execute(ct, galois), rounds=3)
    return {
        "layer": name,
        "kind": "fc",
        "shape": {"ni": ni, "no": no, "no_eff": plan.no_eff},
        "schedule": schedule.value,
        "naive_seconds": naive_s,
        "plan_seconds": plan_s,
        "plan_compile_seconds": compile_s,
        "speedup": naive_s / plan_s,
        "naive_ops": naive_ops,
        "plan_ops": plan_ops,
    }


def test_linear_plan_speedup():
    params = BfvParameters.create(
        n=2048,
        plain_bits=17,
        coeff_bits=100,
        w_dcmp_bits=6,
        a_dcmp_bits=16,
        require_security=False,
    )
    scheme = BfvScheme(params, seed=2026)
    secret, public = scheme.keygen()
    rng = np.random.default_rng(9)

    records = []
    for schedule in Schedule:
        for name, ci, co, fw, w in CONV_LAYERS:
            records.append(
                _bench_conv(scheme, secret, public, name, ci, co, fw, w, schedule, rng)
            )
        for name, ni, no in FC_LAYERS:
            records.append(
                _bench_fc(scheme, secret, public, name, ni, no, schedule, rng)
            )

    print("\nLinear-layer plans vs naive loops (n=2048, seconds per layer)")
    print(
        f"{'layer':>12}{'sched':>10}{'naive':>9}{'plan':>9}{'speedup':>9}"
        f"{'rot naive':>10}{'rot plan':>9}"
    )
    aggregates = {}
    for r in records:
        print(
            f"{r['layer']:>12}{r['schedule']:>10}{r['naive_seconds']:>9.3f}"
            f"{r['plan_seconds']:>9.3f}{r['speedup']:>8.1f}x"
            f"{r['naive_ops']['he_rotate']:>10}{r['plan_ops']['he_rotate']:>9}"
        )
        agg = aggregates.setdefault(r["schedule"], [0.0, 0.0])
        agg[0] += r["naive_seconds"]
        agg[1] += r["plan_seconds"]

    summary = {
        sched: {"naive_seconds": n, "plan_seconds": p, "speedup": n / p}
        for sched, (n, p) in aggregates.items()
    }
    for sched, agg in summary.items():
        print(f"aggregate {sched}: {agg['speedup']:.1f}x")

    payload = {
        "benchmark": "linear_plans",
        "unit": "seconds_per_layer",
        "n": params.n,
        "platform": platform.platform(),
        "gate_speedup": GATE_SPEEDUP,
        "aggregate": summary,
        "records": records,
    }
    RECORD_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RECORD_PATH}")

    for sched, agg in summary.items():
        assert agg["speedup"] >= GATE_SPEEDUP, (
            f"{sched}: aggregate plan speedup {agg['speedup']:.2f}x "
            f"below the {GATE_SPEEDUP}x gate"
        )
