"""Serving-runtime throughput: batched multi-client vs one-session-at-a-time.

Measures the serving subsystem end to end over the loopback transport
(full wire encoding, live BFV) at n=2048 on the demo CNN deployment:

``one_session_at_a_time``
    The baseline deployment without the serving runtime's session cache:
    every request opens a fresh session (parameter handshake, client
    Galois keygen, key upload), runs one private inference, and closes.
    Sessions execute strictly serially.
``persistent_serial``
    Persistent sessions (keys cached server-side), requests still served
    one at a time with cross-client batching disabled -- isolates the
    request-path cost from session amortisation.
``batched``
    The serving runtime proper: persistent concurrent sessions, requests
    pending for the same layer merged into stacked (k, B, n) engine
    calls.  Also swept over client counts for the latency profile.

A second section compares the two TCP front ends -- the asyncio
:class:`AsyncGateway` vs the thread-per-connection :class:`SocketServer`
-- at 16 and 32 concurrent clients over real sockets (req/s, p50/p95,
batch-fill rate from the metrics surface).  On multi-core hosts the
async gateway must match or beat the threaded server at 16+ clients;
on a single shared core the numbers are recorded honestly but the gate
is informational (``frontend_comparison.gate_enforced`` says which).

A third section measures request-tracing overhead on the serial
loopback path: no tracer wired in vs a disabled :class:`Tracer` (the
production default) vs tracing fully on.  The disabled tracer must cost
at most ``TRACING_GATE_PCT`` (2%) throughput -- observability that is
not off-by-default cheap does not ship.

Every mode's logits are checked bit-identical to direct in-process
:class:`GazelleProtocol` runs.  The acceptance gate is ``batched``
requests/sec >= 2x ``one_session_at_a_time`` requests/sec at 8
concurrent clients; results land in ``BENCH_serving.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -s
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np

from repro.bfv import BfvParameters
from repro.bfv.ntt_batch import get_engine
from repro.core.noise_model import Schedule
from repro.nn.plaintext import PlaintextRunner
from repro.protocol import GazelleProtocol
from repro.serving import (
    DEMO_RESCALE_BITS,
    AsyncGateway,
    ClientSession,
    LoopbackTransport,
    MetricsRegistry,
    ModelRegistry,
    ServingEngine,
    SocketServer,
    SocketTransport,
    Tracer,
    demo_image,
    demo_network,
    demo_weights,
)

RECORD_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"

#: Acceptance gate: batched serving vs serial one-session-at-a-time.
GATE_SPEEDUP = 2.0

CLIENTS = 8
SCHEDULE = Schedule.INPUT_ALIGNED
#: Inferences per client in the persistent modes.
REQUESTS_PER_CLIENT = 3
#: Timing repetitions per mode (best run recorded, as in the other benches;
#: the single shared core makes individual threaded runs scheduler-noisy).
REPS = 3

#: TCP front-end comparison points (async gateway vs threaded server).
FRONTEND_CLIENTS = (16, 32)
#: Repetitions per front-end point (best run kept, like the modes above).
FRONTEND_REPS = 2
#: The async-vs-threaded gate only binds where the two front ends can
#: actually diverge: on a single shared core every request serialises on
#: the GIL + the one CPU, so the numbers are recorded but informational.
GATE_ENFORCED = (os.cpu_count() or 1) >= 4

#: Tracing-overhead gate: a disabled tracer (the production default) may
#: cost at most this much throughput vs no tracer wired in at all.
TRACING_GATE_PCT = 2.0
#: Inferences per tracing-overhead repetition (serial loopback).
TRACING_REQUESTS = 6
#: Repetitions per tracer configuration (best run kept; interleaved
#: round-robin so drift hits all three configurations alike).
TRACING_REPS = 4

#: Every RNG in the bench is seeded from here (engine blinding masks,
#: client keygen, images), so BENCH_serving.json is reproducible
#: run-to-run up to timing jitter.  Production engines must keep the
#: OS-entropy default -- predictable masks would let a client unmask the
#: withheld slots.
ENGINE_SEED = 20240717


def _params() -> BfvParameters:
    return BfvParameters.create(
        n=2048, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


def _expected_logits(params, images):
    protocol = GazelleProtocol(
        demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS, seed=999,
    )
    return [protocol.run(image).logits for image in images]


def _run_one_session_at_a_time(registry, params, images):
    """Fresh session per request, strictly serial (no runtime caching)."""
    engine = ServingEngine(registry, max_batch=1, seed=ENGINE_SEED)
    transport = LoopbackTransport(engine)
    latencies, logits = [], []
    start = time.perf_counter()
    for index, image in enumerate(images):
        t0 = time.perf_counter()
        session = ClientSession(demo_network(), params, transport, seed=300 + index)
        session.connect("demo")
        logits.append(session.infer(image).logits)
        session.close()
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return elapsed, latencies, logits


def _run_persistent(registry, params, images, clients, max_batch, window_s=0.05):
    """Persistent sessions; concurrent + batched when max_batch > 1."""
    engine = ServingEngine(
        registry, max_batch=max_batch, batch_window_s=window_s, seed=ENGINE_SEED
    )
    transport = LoopbackTransport(engine)
    sessions = []
    setup_start = time.perf_counter()
    for index in range(clients):
        session = ClientSession(demo_network(), params, transport, seed=500 + index)
        session.connect("demo")
        sessions.append(session)
    setup_s = time.perf_counter() - setup_start

    per_client = [images[index::clients] for index in range(clients)]
    latencies = [[] for _ in range(clients)]
    logits = [[] for _ in range(clients)]

    def drive(index):
        for image in per_client[index]:
            t0 = time.perf_counter()
            logits[index].append(sessions[index].infer(image).logits)
            latencies[index].append(time.perf_counter() - t0)

    start = time.perf_counter()
    if max_batch > 1:
        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        for index in range(clients):
            drive(index)
    elapsed = time.perf_counter() - start
    # Re-interleave logits back to request order.
    ordered = [None] * len(images)
    for index in range(clients):
        for j, value in enumerate(logits[index]):
            ordered[index + j * clients] = value
    return elapsed, [l for client in latencies for l in client], ordered, setup_s


def _run_tcp_frontend(registry, params, images, clients, frontend):
    """One inference per client over real TCP through the given front end.

    All clients connect and upload keys first, then release from a
    barrier together, so the timed window measures the request path (and
    how well each front end feeds the cross-client batcher), not session
    setup.  Returns the metrics batch-fill section alongside the timings.
    """
    metrics = MetricsRegistry()
    engine = ServingEngine(
        registry, max_batch=clients, batch_window_s=0.05,
        seed=ENGINE_SEED, metrics=metrics,
    )
    if frontend == "async":
        server = AsyncGateway(
            engine, port=0,
            executor_threads=min(clients, 16),
            queue_limit=2 * clients,
        )
    else:
        server = SocketServer(engine, port=0, workers=clients)
    latencies = [None] * clients
    logits = [None] * clients
    errors = []
    barrier = threading.Barrier(clients + 1)

    def drive(index):
        try:
            transport = SocketTransport(server.host, server.port)
            try:
                session = ClientSession(
                    demo_network(), params, transport, seed=700 + index
                )
                session.connect("demo")
                barrier.wait()
                t0 = time.perf_counter()
                logits[index] = session.infer(images[index]).logits
                latencies[index] = time.perf_counter() - t0
                session.close()
            finally:
                transport.close()
        except Exception as exc:  # surfaced below; don't hang the barrier
            errors.append((index, exc))
            barrier.abort()

    with server:
        threads = [
            threading.Thread(target=drive, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        fill = metrics.snapshot()["batch_fill"]
    if errors:
        raise AssertionError(f"{frontend} front end client failures: {errors!r}")
    return elapsed, latencies, logits, fill


def _run_traced(registry, params, images, expected, tracer):
    """Serial persistent-session loopback pass under one tracer config.

    Serial max_batch=1 requests make the per-request span cost the
    largest possible fraction of the measurement -- the most pessimistic
    view of tracing overhead the serving stack can produce.
    """
    engine = ServingEngine(registry, max_batch=1, seed=ENGINE_SEED, tracer=tracer)
    transport = LoopbackTransport(engine)
    session = ClientSession(
        demo_network(), params, transport, seed=900,
        trace_requests=tracer is not None,
    )
    session.connect("demo")
    start = time.perf_counter()
    for index, image in enumerate(images):
        logits = session.infer(image).logits
        assert np.array_equal(logits, expected[index]), (
            f"logits diverged under tracer={tracer!r} (request {index})"
        )
    elapsed = time.perf_counter() - start
    session.close()
    return elapsed


def _measure_tracing_overhead(registry, params, images, expected):
    """Best-of req/s for no tracer vs disabled tracer vs enabled tracer."""
    configs = {
        "baseline": lambda: None,
        "disabled": lambda: Tracer(enabled=False),
        "enabled": lambda: Tracer(enabled=True),
    }
    best = {name: float("inf") for name in configs}
    for _ in range(TRACING_REPS):
        for name, make in configs.items():
            elapsed = _run_traced(registry, params, images, expected, make())
            best[name] = min(best[name], elapsed)
    rps = {name: len(images) / elapsed for name, elapsed in best.items()}
    return {
        "requests": len(images),
        "reps": TRACING_REPS,
        "baseline_requests_per_sec": rps["baseline"],
        "disabled_requests_per_sec": rps["disabled"],
        "enabled_requests_per_sec": rps["enabled"],
        "disabled_overhead_pct": (rps["baseline"] / rps["disabled"] - 1.0) * 100,
        "enabled_overhead_pct": (rps["baseline"] / rps["enabled"] - 1.0) * 100,
        "gate_pct": TRACING_GATE_PCT,
    }


def _stats(elapsed, latencies, count):
    lat = np.sort(np.asarray(latencies))
    return {
        "requests": count,
        "seconds": elapsed,
        "requests_per_sec": count / elapsed,
        "latency_p50_ms": float(np.percentile(lat, 50) * 1e3),
        "latency_p95_ms": float(np.percentile(lat, 95) * 1e3),
    }


def _best_of(runs):
    """Pick the fastest repetition (same convention as the other benches)."""
    return min(runs, key=lambda run: run[0])


def test_serving_throughput():
    params = _params()
    registry = ModelRegistry()
    registry.register(
        "demo", demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )
    images = [demo_image(seed) for seed in range(REQUESTS_PER_CLIENT * CLIENTS)]
    expected = _expected_logits(params, images)

    # Warm the engine/plan caches so no mode pays first-touch costs.
    _w, _l, warm_logits, _s = _run_persistent(
        registry, params, images[:2], clients=2, max_batch=2
    )
    assert all(
        np.array_equal(a, b) for a, b in zip(warm_logits, expected[:2])
    )

    serial_runs = []
    for _ in range(REPS):
        serial_s, serial_lat, serial_logits = _run_one_session_at_a_time(
            registry, params, images[:CLIENTS]
        )
        assert all(
            np.array_equal(a, b) for a, b in zip(serial_logits, expected)
        )
        serial_runs.append((serial_s, serial_lat, len(serial_logits)))
    serial_s, serial_lat, serial_count = _best_of(serial_runs)

    persist_runs = []
    for _ in range(REPS):
        persist_s, persist_lat, persist_logits, _ = _run_persistent(
            registry, params, images, clients=CLIENTS, max_batch=1
        )
        assert all(
            np.array_equal(a, b) for a, b in zip(persist_logits, expected)
        )
        persist_runs.append((persist_s, persist_lat, len(persist_logits)))
    persist_s, persist_lat, persist_count = _best_of(persist_runs)

    sweep = []
    batched_stats = None
    for clients in (1, 2, 4, CLIENTS):
        reps = REPS if clients == CLIENTS else 1
        runs = []
        for _ in range(reps):
            elapsed, lat, logits, setup_s = _run_persistent(
                registry, params, images, clients=clients, max_batch=clients
            )
            assert all(
                np.array_equal(a, b) for a, b in zip(logits, expected)
            ), f"batched logits diverged at {clients} clients"
            runs.append((elapsed, lat, setup_s))
        elapsed, lat, setup_s = _best_of(runs)
        stats = _stats(elapsed, lat, len(images))
        stats["clients"] = clients
        stats["session_setup_seconds"] = setup_s
        sweep.append(stats)
        if clients == CLIENTS:
            batched_stats = stats

    # -- TCP front-end comparison: async gateway vs threaded server --------
    frontend_images = [demo_image(100 + index) for index in range(max(FRONTEND_CLIENTS))]
    plaintext = PlaintextRunner(
        demo_network(), demo_weights(), rescale_bits=DEMO_RESCALE_BITS
    )
    frontend_expected = [plaintext.run(image) for image in frontend_images]
    frontend_points = []
    for clients in FRONTEND_CLIENTS:
        point = {"clients": clients, "requests_per_client": 1}
        for frontend in ("threaded", "async"):
            runs = []
            for _ in range(FRONTEND_REPS):
                elapsed, lat, logits, fill = _run_tcp_frontend(
                    registry, params, frontend_images[:clients], clients, frontend
                )
                for index, value in enumerate(logits):
                    assert np.array_equal(value, frontend_expected[index]), (
                        f"{frontend} front end logits diverged "
                        f"(client {index}, {clients} clients)"
                    )
                runs.append((elapsed, lat, fill))
            elapsed, lat, fill = _best_of(runs)
            stats = _stats(elapsed, lat, clients)
            # How full the cross-client batcher's stacks ran: 1.0 means
            # every (k, B, n) engine call carried all `clients` requests.
            stats["batch_fill_mean"] = fill["mean_fill"]
            stats["batch_fill_rate"] = (
                fill["mean_fill"] / clients if fill["mean_fill"] else 0.0
            )
            point[frontend] = stats
        point["async_vs_threaded"] = (
            point["async"]["requests_per_sec"]
            / point["threaded"]["requests_per_sec"]
        )
        frontend_points.append(point)

    # -- Tracing overhead: off-by-default must be (nearly) free -------------
    tracing = _measure_tracing_overhead(
        registry, params, images[:TRACING_REQUESTS], expected[:TRACING_REQUESTS]
    )

    serial_stats = _stats(serial_s, serial_lat, serial_count)
    persist_stats = _stats(persist_s, persist_lat, persist_count)
    speedup = (
        batched_stats["requests_per_sec"] / serial_stats["requests_per_sec"]
    )

    print(f"\nServing throughput, n={params.n}, {len(images)} requests")
    print(f"{'mode':<28}{'req/s':>8}{'p50 ms':>9}{'p95 ms':>9}")
    rows = [
        ("one_session_at_a_time", serial_stats),
        ("persistent_serial", persist_stats),
        (f"batched ({CLIENTS} clients)", batched_stats),
    ]
    for name, stats in rows:
        print(
            f"{name:<28}{stats['requests_per_sec']:>8.2f}"
            f"{stats['latency_p50_ms']:>9.0f}{stats['latency_p95_ms']:>9.0f}"
        )
    print("\nbatched latency profile vs client count:")
    for stats in sweep:
        print(
            f"  {stats['clients']} clients: {stats['requests_per_sec']:.2f} req/s, "
            f"p50 {stats['latency_p50_ms']:.0f}ms, p95 {stats['latency_p95_ms']:.0f}ms"
        )
    print(
        f"\nbatched vs one-session-at-a-time: {speedup:.2f}x "
        f"(gate {GATE_SPEEDUP}x); "
        f"vs persistent serial: "
        f"{batched_stats['requests_per_sec'] / persist_stats['requests_per_sec']:.2f}x"
    )

    print(
        f"\nTCP front-end comparison (1 request/client, "
        f"{os.cpu_count()} cpu(s), gate "
        f"{'enforced' if GATE_ENFORCED else 'informational'}):"
    )
    print(f"{'point':<22}{'req/s':>8}{'p50 ms':>9}{'p95 ms':>9}{'fill':>7}")
    for point in frontend_points:
        for frontend in ("threaded", "async"):
            stats = point[frontend]
            print(
                f"{frontend} ({point['clients']} clients)".ljust(22)
                + f"{stats['requests_per_sec']:>8.2f}"
                f"{stats['latency_p50_ms']:>9.0f}{stats['latency_p95_ms']:>9.0f}"
                f"{stats['batch_fill_rate']:>7.2f}"
            )
        print(f"  async vs threaded: {point['async_vs_threaded']:.2f}x")

    print(
        f"\ntracing overhead (serial loopback, {tracing['requests']} requests, "
        f"best of {tracing['reps']}):"
    )
    print(
        f"  no tracer {tracing['baseline_requests_per_sec']:.2f} req/s | "
        f"disabled {tracing['disabled_requests_per_sec']:.2f} req/s "
        f"({tracing['disabled_overhead_pct']:+.2f}%) | "
        f"enabled {tracing['enabled_requests_per_sec']:.2f} req/s "
        f"({tracing['enabled_overhead_pct']:+.2f}%); "
        f"gate: disabled <= {TRACING_GATE_PCT}%"
    )

    payload = {
        "benchmark": "serving",
        "unit": "requests_per_sec",
        "n": params.n,
        "schedule": SCHEDULE.value,
        "clients": CLIENTS,
        "ntt_path": "native" if get_engine(
            params.n, params.coeff_basis.primes
        ).uses_native_kernel else "numpy",
        "platform": platform.platform(),
        "gate_speedup": GATE_SPEEDUP,
        "modes": {
            # The acceptance baseline: no session reuse, no concurrency --
            # every request pays handshake + client keygen + Galois upload.
            "one_session_at_a_time": serial_stats,
            # Persistent sessions, still serial: isolates what session/key
            # caching alone buys vs what batching adds on this host.
            "persistent_serial": persist_stats,
            "batched": batched_stats,
        },
        "batched_vs_one_session_at_a_time": speedup,
        "batched_vs_persistent_serial": (
            batched_stats["requests_per_sec"] / persist_stats["requests_per_sec"]
        ),
        "latency_vs_clients": sweep,
        "frontend_comparison": {
            # Real sockets, one inference per client, all clients released
            # from a barrier together after key upload.  `batch_fill_rate`
            # is mean batch size / client count from the metrics surface.
            "transport": "tcp",
            "gate": "async requests_per_sec >= threaded at 16+ clients",
            "gate_enforced": GATE_ENFORCED,
            "cpu_count": os.cpu_count(),
            "reps": FRONTEND_REPS,
            "points": frontend_points,
        },
        # Serial loopback req/s with no tracer wired in, with a disabled
        # tracer (the production default), and with tracing fully on.
        "tracing": tracing,
        "logits_bit_identical_to_gazelle_protocol": True,
    }
    RECORD_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RECORD_PATH}")

    assert speedup >= GATE_SPEEDUP, (
        f"batched serving {speedup:.2f}x below the {GATE_SPEEDUP}x gate over "
        f"one-session-at-a-time execution"
    )
    if GATE_ENFORCED:
        for point in frontend_points:
            assert point["async_vs_threaded"] >= 1.0, (
                f"async gateway {point['async_vs_threaded']:.2f}x slower than "
                f"the threaded server at {point['clients']} clients"
            )
    assert tracing["disabled_overhead_pct"] <= TRACING_GATE_PCT, (
        f"disabled tracer costs {tracing['disabled_overhead_pct']:.2f}% "
        f"throughput, above the {TRACING_GATE_PCT}% gate -- tracing must be "
        f"off-by-default cheap"
    )
