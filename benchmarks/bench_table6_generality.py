"""Table VI: generality -- VGG16 and AlexNet on the PT-ResNet50 accelerator.

Paper: ResNet50 100 ms (+0%), VGG16 215 ms (+59%), AlexNet 77 ms (+28%);
foreign models pay for mismatched PE/lane granularity.
"""

import pytest

from repro.accel import generality_study
from repro.nn.models import alexnet, resnet50, vgg16


@pytest.mark.benchmark(group="table6")
def test_table6_generality(benchmark):
    rows = benchmark.pedantic(
        generality_study,
        args=([resnet50(), vgg16(), alexnet()], resnet50()),
        kwargs={"target_latency_s": 0.1},
        rounds=1,
        iterations=1,
    )
    print("\nTable VI -- models on the ResNet50-optimal accelerator")
    print(
        f"{'model':<10}{'lat ms':>8}{'increase':>10}{'ideal PEs-lanes':>17}"
        f"{'outCT (K)':>11}{'prt':>7}"
    )
    for row in rows:
        print(
            f"{row.model:<10}{row.latency_ms:>8.0f}{row.increase_pct:>9.0f}%"
            f"{f'{row.pes}-{row.lanes}':>17}{row.mean_out_cts_thousands:>11.2f}"
            f"{row.mean_partials:>7.0f}"
        )
    by_model = {row.model: row for row in rows}
    # The host model runs close to its own optimum.
    assert by_model["ResNet50"].increase_pct < 15.0
    # Foreign models pay a generality penalty.
    assert max(by_model["VGG16"].increase_pct, by_model["AlexNet"].increase_pct) > 5.0
    # VGG16 is the slowest model in absolute terms, as in the paper.
    assert by_model["VGG16"].latency_ms > by_model["ResNet50"].latency_ms
    assert by_model["VGG16"].latency_ms > by_model["AlexNet"].latency_ms
