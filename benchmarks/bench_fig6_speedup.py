"""Figure 6: per-model speedup of HE-PTune and HE-PTune+Sched-PA over
Gazelle, for the five-model zoo.

Paper reference points: HE-PTune harmonic mean 2.98x (5.25x without
MNIST); Sched-PA adds 5.20x (6.11x); combined mean 13.5x, max 79.6x.
"""

import pytest

from repro.core.baselines import FleetSummary, speedup_report
from repro.nn.models import MODEL_BUILDERS, build_model

MODELS = list(MODEL_BUILDERS)


@pytest.fixture(scope="module")
def reports():
    return [speedup_report(build_model(name)) for name in MODELS]


@pytest.mark.benchmark(group="fig6")
def test_fig6_per_model_speedups(benchmark, reports):
    def summarise():
        return FleetSummary(reports)

    summary = benchmark.pedantic(summarise, rounds=1, iterations=1)
    print("\nFigure 6 -- speedup over Gazelle")
    print(f"{'model':<14}{'HE-PTune':>10}{'+Sched-PA':>11}{'combined':>10}")
    for report in reports:
        print(
            f"{report.network.name:<14}{report.ptune_speedup:>9.2f}x"
            f"{report.sched_pa_speedup:>10.2f}x{report.cheetah_speedup:>9.2f}x"
        )
    print(
        f"harmonic means: ptune {summary.ptune_harmonic_mean():.2f}x "
        f"(paper 2.98), sched-pa {summary.sched_pa_harmonic_mean():.2f}x "
        f"(paper 5.20), combined {summary.combined_harmonic_mean():.2f}x "
        f"(paper 13.5), max {summary.max_combined_speedup():.1f}x (paper 79.6)"
    )
    # Shape assertions: every optimization helps on every model, and the
    # combined harmonic mean lands in the paper's regime.
    for report in reports:
        assert report.ptune_speedup > 1.0
        assert report.sched_pa_speedup > 1.0
    assert 5.0 < summary.combined_harmonic_mean() < 40.0


@pytest.mark.benchmark(group="fig6")
def test_fig6_imagenet_models_gain_more(benchmark, reports):
    """The paper's means rise when MNIST models are excluded."""

    def means():
        summary = FleetSummary(reports)
        return (
            summary.combined_harmonic_mean(include_mnist=True),
            summary.combined_harmonic_mean(include_mnist=False),
        )

    with_mnist, without_mnist = benchmark.pedantic(means, rounds=1, iterations=1)
    print(f"\ncombined HM with MNIST {with_mnist:.2f}x, without {without_mnist:.2f}x")
    assert without_mnist > 0.8 * with_mnist
