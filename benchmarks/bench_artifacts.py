"""Artifact warm-start: compile once ahead of time, memmap forever after.

Measures the ahead-of-time artifact subsystem (:mod:`repro.artifacts`)
on the demo CNN deployment at n=2048:

``compile``
    A fresh :meth:`ModelRegistry.register` -- offline weight encoding
    through the NTT engine for every linear layer (what every process
    start used to pay).
``warm_start``
    :meth:`ModelRegistry.register_artifact` from a ``.rpa`` file --
    header parse + CRC-32 section verification + plan reconstruction
    from metadata, with the weight stacks memmapped read-only (asserted:
    **zero NTT transforms**).  Also measured with audit-grade SHA-256
    verification (``verify="full"``) and with verification skipped.
``shared_residency``
    N concurrent processes each load the same artifact and touch every
    weight page, then report RSS and PSS (proportional set size) from
    ``/proc``.  Because the mapping is shared and read-only, each
    process's *proportional* share of the weight pages is ~1/N of the
    artifact -- the page-cache sharing a per-process recompile can never
    have.

The acceptance gate is warm start >= 5x faster than a fresh compile;
results land in ``BENCH_artifacts.json``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_artifacts.py -s
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.artifacts import save_artifact
from repro.bfv import BfvParameters
from repro.bfv.counters import counting
from repro.bfv.ntt_batch import get_engine
from repro.core.noise_model import Schedule
from repro.serving import (
    DEMO_RESCALE_BITS,
    ModelRegistry,
    demo_network,
    demo_weights,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
RECORD_PATH = REPO_ROOT / "BENCH_artifacts.json"

#: Acceptance gate: warm start vs fresh compile.
GATE_SPEEDUP = 5.0

SCHEDULE = Schedule.INPUT_ALIGNED
REPS = 5
#: Processes concurrently mapping one artifact for the residency probe.
PROCESSES = 4

_CHILD_SCRIPT = r"""
import json, sys
from repro.serving import ModelRegistry

registry = ModelRegistry()
entry = registry.register_artifact(sys.argv[1])
touched = 0
for plan in entry.plans.values():
    touched += int(plan.weight_stacks.sum())  # fault every weight page in

def probe(path, fields):
    values = {}
    try:
        for line in open(path):
            key = line.split(":")[0]
            if key in fields:
                values[key] = int(line.split()[1])  # kB
    except OSError:
        pass
    return values

status = probe("/proc/self/status", {"VmRSS"})
rollup = probe("/proc/self/smaps_rollup", {"Rss", "Pss"})
print(json.dumps({"rss_kb": status.get("VmRSS"), "pss_kb": rollup.get("Pss")}),
      flush=True)
sys.stdin.read()  # hold the mapping until the parent releases us
"""


def _params() -> BfvParameters:
    return BfvParameters.create(
        n=2048, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


def _compile(params):
    registry = ModelRegistry()
    entry = registry.register(
        "demo", demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )
    return entry


def _time_best(fn, reps=REPS):
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _shared_residency(artifact_path, count):
    """Launch ``count`` processes mapping one artifact; gather RSS/PSS."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    children = [
        subprocess.Popen(
            [sys.executable, "-c", _CHILD_SCRIPT, str(artifact_path)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        for _ in range(count)
    ]
    stats = []
    try:
        for child in children:
            line = child.stdout.readline()
            stats.append(json.loads(line))
    finally:
        for child in children:
            child.stdin.close()
            child.wait(timeout=30)
    return stats


def test_artifact_warm_start():
    params = _params()

    # Warm the engine/twiddle caches so neither mode pays first-touch costs.
    _compile(params)

    compile_s, entry = _time_best(lambda: _compile(params))

    workdir = Path(tempfile.mkdtemp(prefix="repro-artifacts-"))
    artifact_path = workdir / "demo.rpa"
    save_start = time.perf_counter()
    save_artifact(entry, artifact_path)
    save_s = time.perf_counter() - save_start
    artifact_bytes = artifact_path.stat().st_size

    with counting() as delta:
        warm_s, warm_entry = _time_best(
            lambda: ModelRegistry().register_artifact(artifact_path)
        )
    assert delta().ntt == 0, "warm start must run zero NTT transforms"
    assert warm_entry.rotation_steps == entry.rotation_steps

    warm_full_s, _ = _time_best(
        lambda: ModelRegistry().register_artifact(artifact_path, verify="full")
    )
    warm_noverify_s, _ = _time_best(
        lambda: ModelRegistry().register_artifact(artifact_path, verify=False)
    )
    speedup = compile_s / warm_s

    residency = _shared_residency(artifact_path, PROCESSES)
    pss_known = all(s.get("pss_kb") for s in residency)

    print(f"\nArtifact warm start, n={params.n}, demo deployment")
    print(f"fresh compile:        {compile_s * 1e3:8.1f} ms")
    print(f"artifact save:        {save_s * 1e3:8.1f} ms "
          f"({artifact_bytes / 1e6:.2f} MB)")
    print(f"warm start (crc32):   {warm_s * 1e3:8.1f} ms  -> {speedup:.1f}x")
    print(f"warm start (sha256):  {warm_full_s * 1e3:8.1f} ms")
    print(f"warm start (trusted): {warm_noverify_s * 1e3:8.1f} ms")
    print(f"\n{PROCESSES} processes mapping one artifact:")
    for index, stat in enumerate(residency):
        pss = f"{stat['pss_kb']} kB" if stat.get("pss_kb") else "n/a"
        print(f"  process {index}: RSS {stat['rss_kb']} kB, PSS {pss}")
    if pss_known:
        saved = sum(s["rss_kb"] - s["pss_kb"] for s in residency)
        print(f"  pages shared instead of duplicated: ~{saved} kB total")

    payload = {
        "benchmark": "artifacts",
        "unit": "seconds",
        "n": params.n,
        "schedule": SCHEDULE.value,
        "ntt_path": "native" if get_engine(
            params.n, params.coeff_basis.primes
        ).uses_native_kernel else "numpy",
        "platform": platform.platform(),
        "gate_speedup": GATE_SPEEDUP,
        "artifact_bytes": artifact_bytes,
        "compile_seconds": compile_s,
        "save_seconds": save_s,
        "warm_start_seconds": warm_s,
        "warm_start_full_verify_seconds": warm_full_s,
        "warm_start_noverify_seconds": warm_noverify_s,
        "warm_start_speedup": speedup,
        "load_ntt_transforms": 0,
        "shared_residency_processes": PROCESSES,
        "shared_residency": residency,
    }
    RECORD_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {RECORD_PATH}")

    assert speedup >= GATE_SPEEDUP, (
        f"warm start {speedup:.2f}x below the {GATE_SPEEDUP}x gate over a "
        f"fresh compile"
    )
