"""Figure 11: ResNet50 accelerator design-space exploration.

(a) power-latency Pareto over PEs 2-1024 x lanes 4-8192; paper's chosen
point: ~100 ms at ~30 W / ~545 mm^2 in 5 nm.
(b) run-time breakdown: NTT/rotate reduction dominates; IO ~12%.
(c) area breakdown: NTT units and the small SRAMs dominate at aggressive
points.
"""

import pytest

from repro.accel import accelerator_dse

TARGET_SECONDS = 0.1


@pytest.fixture(scope="module")
def dse(resnet_tuned):
    return accelerator_dse(resnet_tuned)


@pytest.mark.benchmark(group="fig11")
def test_fig11a_power_latency_pareto(benchmark, resnet_tuned):
    result = benchmark.pedantic(
        accelerator_dse, args=(resnet_tuned,), rounds=1, iterations=1
    )
    print(f"\nFigure 11a -- ResNet50 Pareto ({len(result.reports)} designs swept)")
    print(f"{'PEs':>5}{'lanes':>7}{'latency ms':>12}{'power W(5nm)':>14}{'area mm2(5nm)':>15}")
    for report in result.pareto[:12]:
        print(
            f"{report.config.num_pes:>5}{report.config.lanes_per_pe:>7}"
            f"{report.latency_ms:>12.1f}{report.power_w_5nm:>14.1f}"
            f"{report.area_mm2_5nm:>15.0f}"
        )
    selected = result.select_for_latency(TARGET_SECONDS)
    print(
        f"selected: {selected.config.num_pes} PEs x {selected.config.lanes_per_pe} "
        f"lanes -> {selected.latency_ms:.0f} ms, {selected.power_w_5nm:.1f} W, "
        f"{selected.area_mm2_5nm:.0f} mm^2  [paper: 100 ms, 30 W, 545 mm^2]"
    )
    assert selected.latency_s <= TARGET_SECONDS
    assert 5.0 < selected.power_w_5nm < 120.0
    assert 100.0 < selected.area_mm2_5nm < 2500.0


@pytest.mark.benchmark(group="fig11")
def test_fig11b_runtime_breakdown(benchmark, dse):
    selected = benchmark.pedantic(
        dse.select_for_latency, args=(TARGET_SECONDS,), rounds=1, iterations=1
    )
    breakdown = selected.time_breakdown
    total = sum(breakdown.values())
    print("\nFigure 11b -- run-time breakdown at the selected design")
    for stage, seconds in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        print(f"  {stage:<12}{seconds/total*100:>6.1f}%")
    print(f"  IO utilization {selected.io_utilization*100:.0f}% (paper: 12%)")
    ntt_share = (breakdown["ntt"] + breakdown["intt"]) / total
    assert ntt_share > 0.35  # NTT dominates computation
    assert selected.io_utilization < 0.5  # compute bound, not IO bound


@pytest.mark.benchmark(group="fig11")
def test_fig11c_area_breakdown(benchmark, dse):
    selected = dse.select_for_latency(TARGET_SECONDS)
    breakdown = benchmark.pedantic(
        selected.area_breakdown_5nm, rounds=1, iterations=1
    )
    total = sum(breakdown.values())
    print("\nFigure 11c -- area breakdown at the selected design (5 nm)")
    for part, area in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        print(f"  {part:<10}{area:>8.1f} mm^2 ({area/total*100:.0f}%)")
    # NTT units plus SRAM dominate the floorplan, as in the paper.
    dominated = breakdown["ntt"] + breakdown["lane_sram"] + breakdown["pe_sram"]
    assert dominated / total > 0.5

    # Extreme low-latency points shift even further into SRAM (the
    # bit-density penalty of tiny arrays).
    fastest = dse.pareto[0]
    fast_area = fastest.area_breakdown_5nm()
    sram_share_fast = (fast_area["lane_sram"] + fast_area["pe_sram"]) / sum(
        fast_area.values()
    )
    print(f"  fastest design SRAM share: {sram_share_fast*100:.0f}%")
    assert sram_share_fast > 0.15
