"""Figure 10: design-space exploration of the NTT kernel.

Sweeps unroll / initiation-interval configurations, prints the Pareto
frontier (latency vs power), and checks the paper's findings: hundreds of
evaluated points, modest per-kernel speedups (up to ~40x, average ~10x
across kernels) at the energy-optimal points.
"""

import pytest

from repro.accel import (
    KERNEL_NAMES,
    kernel_dse,
    pareto_front,
    speedup_over_cpu,
)
from repro.profiling import measure_unit_costs

N = 4096


@pytest.mark.benchmark(group="fig10")
def test_fig10_ntt_pareto(benchmark):
    points = benchmark.pedantic(
        kernel_dse, args=("ntt", N), kwargs={"max_unroll": 1024}, rounds=1, iterations=1
    )
    front = pareto_front(points, objectives=lambda c: (c.latency_s, c.power_w))
    front = sorted(front, key=lambda c: c.latency_s)
    print(f"\nFigure 10 -- NTT kernel DSE: {len(points)} points, {len(front)} on Pareto")
    print(f"{'unroll':>7}{'ii':>4}{'latency us':>12}{'power W':>9}{'area mm2':>10}")
    for cost in front:
        print(
            f"{cost.design.unroll:>7}{cost.design.ii:>4}"
            f"{cost.latency_s*1e6:>12.2f}{cost.power_w:>9.3f}{cost.area_mm2:>10.3f}"
        )
    assert len(points) >= 30
    assert 1 < len(front) < len(points)
    # The frontier trades latency for power monotonically.
    powers = [c.power_w for c in front]
    assert powers == sorted(powers, reverse=True)


@pytest.mark.benchmark(group="fig10")
def test_fig10_kernel_speedups_over_cpu(benchmark):
    """Intra-kernel parallelism buys roughly one order of magnitude."""
    unit_costs = measure_unit_costs(n=N, repeats=3)

    def best_speedups():
        per_op = {
            "ntt": unit_costs.per_butterfly,
            "intt": unit_costs.per_butterfly,
            "simd_mult": unit_costs.per_modmul,
            "simd_add": unit_costs.per_modadd,
        }
        results = {}
        for kernel in ("ntt", "intt", "simd_mult", "simd_add"):
            points = kernel_dse(kernel, N, max_unroll=64)
            front = pareto_front(points, objectives=lambda c: (c.latency_s, c.power_w))
            energy_optimal = min(front, key=lambda c: c.energy_j * c.latency_s)
            results[kernel] = speedup_over_cpu(
                energy_optimal, N, per_op[kernel]
            )
        return results

    speedups = benchmark.pedantic(best_speedups, rounds=1, iterations=1)
    print("\nenergy-optimal kernel speedups over the software substrate:")
    for kernel, speedup in speedups.items():
        print(f"  {kernel:<10}{speedup:>8.1f}x")
    assert all(s > 1.0 for s in speedups.values())
