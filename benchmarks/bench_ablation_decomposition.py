"""Ablation: ciphertext decomposition base (Section V-C).

"In ResNet50, Cheetah's optimizations result in a ciphertext
decomposition base of 8 to 16 more bits.  A higher ciphertext
decomposition base results in fewer decomposed polynomials for HE_Rotate
and substantial performance improvements."

This bench pins Adcmp to Gazelle's base vs Cheetah's tuned bases and
reports the cost ratio, isolating the decomposition contribution.
"""

import pytest

from repro.core.baselines import GAZELLE_A_DCMP_BITS, cheetah_configuration
from repro.core.noise_model import Schedule
from repro.core.ptune import HePTune, SearchSpace
from repro.nn.models import resnet50


@pytest.mark.benchmark(group="ablation-decomposition")
def test_decomposition_base_ablation(benchmark):
    network = resnet50()

    def run():
        free = cheetah_configuration(network)
        pinned_tuner = HePTune(
            space=SearchSpace(a_dcmp_bits_options=(GAZELLE_A_DCMP_BITS,)),
            schedule=Schedule.PARTIAL_ALIGNED,
        )
        pinned = pinned_tuner.tune_network(network)
        return free, pinned

    free, pinned = benchmark.pedantic(run, rounds=1, iterations=1)
    free_mults = free.total_int_mults
    pinned_mults = sum(t.int_mults for t in pinned)
    free_bases = sorted({t.params.a_dcmp_bits for t in free.tuned_layers})
    extra_bits_min = min(free_bases) - GAZELLE_A_DCMP_BITS
    extra_bits_max = max(free_bases) - GAZELLE_A_DCMP_BITS
    print("\nDecomposition-base ablation (ResNet50, Sched-PA)")
    print(f"  tuned Adcmp bases: {free_bases} (Gazelle fixed: {GAZELLE_A_DCMP_BITS})")
    print(f"  extra bits: {extra_bits_min} to {extra_bits_max} (paper: 8 to 16)")
    print(f"  speedup from base freedom: {pinned_mults / free_mults:.2f}x")
    # Rotation-heavy layers pick much larger bases; some rotation-light
    # layers (1x1 convolutions need no alignment) stay small.
    assert extra_bits_max >= 4, "tuned bases should exceed Gazelle's"
    assert pinned_mults > free_mults, "larger bases must reduce work"


@pytest.mark.benchmark(group="ablation-decomposition")
def test_no_plaintext_decomposition_under_pa(benchmark):
    """Sched-PA carries l_pt = 1 on every tuned layer (Section V-C)."""
    network = resnet50()
    config = benchmark.pedantic(
        cheetah_configuration, args=(network,), rounds=1, iterations=1
    )
    from repro.core.perf_model import layer_op_counts

    for tuned in config.tuned_layers:
        unwindowed = layer_op_counts(tuned.layer, tuned.params, l_pt=1)
        assert tuned.op_counts.he_mult == unwindowed.he_mult
        assert tuned.op_counts.he_rotate == unwindowed.he_rotate
    print(f"\nall {len(config.tuned_layers)} layers carry l_pt = 1 op counts")
