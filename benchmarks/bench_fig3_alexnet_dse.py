"""Figure 3: HE parameter design-space exploration for AlexNet.

Regenerates (a/b) the per-layer DSE clouds -- total integer mults vs
remaining noise budget, with Gazelle's configuration and HE-PTune's
optimum marked -- and (c) the per-layer HE-PTune speedup bars.  Also
reports the fraction of infeasible points (Section IV-C).
"""

import pytest

from repro.core.baselines import gazelle_configuration, ptune_configuration
from repro.core.noise_model import NoiseMode, Schedule
from repro.core.ptune import HePTune
from repro.nn.models import alexnet


@pytest.fixture(scope="module")
def network():
    return alexnet()


@pytest.mark.benchmark(group="fig3")
def test_fig3_dse_scatter(benchmark, network):
    """The blue-dot cloud for the first and last tunable layers."""
    tuner = HePTune(schedule=Schedule.INPUT_ALIGNED, mode=NoiseMode.PRACTICAL)

    def sweep():
        clouds = {}
        for layer in (network.linear_layers[0], network.linear_layers[5]):
            points = list(tuner.candidates(layer))
            clouds[layer.name] = points
        return clouds

    clouds = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFigure 3a/b -- DSE cloud summary (int mults vs remaining budget)")
    for name, points in clouds.items():
        feasible = [p for p in points if p.feasible]
        infeasible_frac = 1 - len(feasible) / len(points)
        best = min(feasible, key=lambda p: p.int_mults)
        print(
            f"  {name}: {len(points)} points, {infeasible_frac*100:.0f}% infeasible, "
            f"optimum {best.int_mults:.2e} mults at {best.noise.budget_bits:.1f} bits left"
        )
        assert len(points) > 100
        assert 0.0 < infeasible_frac < 1.0
        # The optimum leaves little slack (the paper found ~1 bit).
        assert best.noise.budget_bits < 15.0


@pytest.mark.benchmark(group="fig3")
def test_fig3_per_layer_speedup_bars(benchmark, network):
    """Figure 3c: HE-PTune vs Gazelle per AlexNet layer."""

    def compare():
        gazelle = gazelle_configuration(network)
        ptune = ptune_configuration(network)
        return [
            (g.layer.name, g.int_mults / p.int_mults)
            for g, p in zip(gazelle.tuned_layers, ptune.tuned_layers)
        ]

    bars = benchmark.pedantic(compare, rounds=1, iterations=1)
    print("\nFigure 3c -- HE-PTune speedup per AlexNet layer")
    for name, speedup in bars:
        print(f"  {name:<8}{speedup:6.2f}x")
    speedups = [s for _, s in bars]
    assert all(s >= 1.0 for s in speedups)
    # Layer-to-layer variation is the figure's point: tailoring helps
    # some layers much more than others.
    assert max(speedups) / min(speedups) > 1.15
