"""Ablation: Sched-PA vs Sched-IA noise on live ciphertexts (Figure 5).

Beyond the analytical model, this runs identical FC layers under both
schedules on real ciphertexts across several rotation decomposition
bases, showing the PA advantage grow with Adcmp -- the mechanism that
lets Cheetah run "8 to 16 more bits" of ciphertext decomposition base.
"""

import numpy as np
import pytest

from repro.bfv import BfvParameters, BfvScheme, invariant_noise_budget
from repro.core.noise_model import Schedule
from repro.scheduling import fc_he_naive, fc_rotation_steps, pack_fc_input


def _budget_gap(a_dcmp_bits: int) -> tuple[float, float]:
    params = BfvParameters.create(
        n=2048,
        plain_bits=17,
        coeff_bits=100,
        w_dcmp_bits=6,
        a_dcmp_bits=a_dcmp_bits,
        require_security=False,
    )
    scheme = BfvScheme(params, seed=11)
    secret, public = scheme.keygen()
    ni, no = 12, 6
    galois = scheme.generate_galois_keys(secret, fc_rotation_steps(ni))
    rng = np.random.default_rng(0)
    weights = rng.integers(-4, 5, (no, ni))
    packed = pack_fc_input(rng.integers(0, 8, ni), params.row_size)
    ct = scheme.encrypt(scheme.encoder.encode_row(packed), public)
    budgets = {}
    for schedule in Schedule:
        out = fc_he_naive(scheme, ct, weights, galois, schedule)
        budgets[schedule] = invariant_noise_budget(scheme, out, secret)
    return budgets[Schedule.PARTIAL_ALIGNED], budgets[Schedule.INPUT_ALIGNED]


@pytest.mark.benchmark(group="ablation-schedule")
def test_schedule_ablation_live_noise(benchmark):
    bases = (8, 16, 25)

    def run():
        return {bits: _budget_gap(bits) for bits in bases}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nSchedule ablation -- remaining noise budget (bits), live FC layer")
    print(f"{'Adcmp bits':>11}{'Sched-PA':>10}{'Sched-IA':>10}{'PA gain':>9}")
    gaps = []
    for bits, (pa, ia) in results.items():
        print(f"{bits:>11}{pa:>10.1f}{ia:>10.1f}{pa - ia:>9.1f}")
        # At tiny bases the schedules differ by less than the noise
        # measurement variation; PA must never lose materially.
        assert pa >= ia - 2.0
        gaps.append(pa - ia)
    # The PA advantage grows with the rotation base.
    assert gaps[-1] > gaps[0]
    assert gaps[-1] > 3.0
