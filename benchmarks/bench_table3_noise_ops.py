"""Table III: noise impact of the basic BFV operations.

Measures live per-operator noise against the paper's worst-case bounds
(fresh 2nB^2; Add additive; Mult multiplicative; Rotate additive) and
prints the comparison table.
"""

import math

import numpy as np
import pytest

from repro.bfv import invariant_noise_budget
from repro.bfv.noise import noise_magnitude
from repro.core.noise_model import NoiseMode, eta_mult, eta_rotate, fresh_noise
from repro.core.ptune import ModelParams


def _proxy(params):
    return ModelParams(
        n=params.n,
        plain_bits=params.plain_modulus.bit_length(),
        coeff_bits=params.coeff_bits,
        w_dcmp_bits=params.w_dcmp_bits,
        a_dcmp_bits=params.a_dcmp_bits,
    )


def _measure(live_scheme, live_keys, bench_rng):
    scheme = live_scheme
    secret, public = live_keys
    params = scheme.params
    t = params.plain_modulus
    galois = scheme.generate_galois_keys(secret, [1])

    ct = scheme.encrypt_values(bench_rng.integers(0, 50, 64), public)
    rows = {}
    fresh_bits = math.log2(max(2, noise_magnitude(scheme, ct, secret))) - math.log2(t)
    rows["fresh"] = (fresh_bits, math.log2(fresh_noise(_proxy(params), NoiseMode.WORST)))

    added = scheme.add(ct, ct)
    add_bits = math.log2(max(2, noise_magnitude(scheme, added, secret))) - math.log2(t)
    rows["add"] = (add_bits, rows["fresh"][1] + 1)  # v0 + v1

    # Table III's HE_Mult row models the windowed (decomposed) product:
    # noise factor n * l_pt * Wdcmp / 2.
    weights = scheme.encoder.encode(bench_rng.integers(0, t, params.n, dtype=np.int64))
    windows = scheme.encrypt_windowed(bench_rng.integers(0, 50, 64), public, params.l_pt)
    mult = scheme.mul_plain_windowed(windows, weights)
    mult_bits = math.log2(max(2, noise_magnitude(scheme, mult, secret))) - math.log2(t)
    rows["mult"] = (
        mult_bits,
        rows["fresh"][1] + math.log2(eta_mult(_proxy(params), NoiseMode.WORST)),
    )

    rotated = scheme.rotate_rows(ct, 1, galois)
    rot_bits = math.log2(max(2, noise_magnitude(scheme, rotated, secret))) - math.log2(t)
    rot_bound = math.log2(
        fresh_noise(_proxy(params), NoiseMode.WORST)
        + eta_rotate(_proxy(params), NoiseMode.WORST)
    )
    rows["rotate"] = (rot_bits, rot_bound)
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_noise_of_basic_operations(
    benchmark, live_scheme, live_keys, bench_rng
):
    rows = benchmark.pedantic(
        _measure, args=(live_scheme, live_keys, bench_rng), rounds=1, iterations=1
    )
    print("\nTable III -- noise (bits) after each operation, measured vs bound")
    print(f"{'op':<8}{'measured':>10}{'worst-case bound':>18}")
    for op, (measured, bound) in rows.items():
        print(f"{op:<8}{measured:>10.1f}{bound:>18.1f}")
        assert measured <= bound + 1.0, f"{op} noise exceeds Table III bound"
    # Multiplicative growth dwarfs additive growth.
    assert rows["mult"][0] > rows["rotate"][0] > rows["fresh"][0] - 1
