"""Shape hiding: the paper's Section II-B future work, implemented.

The Gazelle protocol leaks layer count and shapes to the client.  This
example pads channel/feature dimensions to buckets and inserts null
(identity) layers, verifies the hidden network computes the identical
function, and prices the privacy with HE-PTune's cost model.

Run:  python examples/hide_model_shape.py
"""

import numpy as np

from repro.nn.layers import ActivationLayer, ConvLayer, FCLayer
from repro.nn.models import Network
from repro.nn.plaintext import PlaintextRunner
from repro.nn.quantize import synthetic_conv_weights, synthetic_fc_weights
from repro.protocol import (
    hiding_overhead,
    insert_null_layers,
    null_layer_weights,
    pad_network,
)


def main() -> None:
    rescale = 3
    network = Network(
        "SecretCNN",
        [
            ConvLayer("c1", w=10, fw=3, ci=1, co=5),
            ActivationLayer("r1", "relu", 5 * 8 * 8),
            ConvLayer("c2", w=8, fw=3, ci=5, co=7),
            ActivationLayer("r2", "relu", 7 * 6 * 6),
            FCLayer("f1", 7 * 6 * 6, 10),
        ],
    )
    weights = {
        "c1": synthetic_conv_weights(3, 1, 5, bits=4, seed=0),
        "c2": synthetic_conv_weights(3, 5, 7, bits=4, seed=1),
        "f1": synthetic_fc_weights(7 * 6 * 6, 10, bits=4, seed=2),
    }
    print("original architecture (leaked to the client):")
    for layer in network.linear_layers:
        print(f"  {layer}")

    hidden = insert_null_layers(network, count=2)
    hidden_weights = dict(weights)
    hidden_weights.update(null_layer_weights(hidden, rescale))
    print(f"\nwith null layers: {len(hidden.conv_layers)} convolutions "
          f"(was {len(network.conv_layers)}) -- depth hidden")

    rng = np.random.default_rng(5)
    image = rng.integers(0, 16, (1, 10, 10))
    original = PlaintextRunner(network, weights, rescale_bits=rescale).run(image)
    disguised = PlaintextRunner(hidden, hidden_weights, rescale_bits=rescale).run(image)
    print("function preserved:", np.array_equal(original, disguised))
    assert np.array_equal(original, disguised)

    padded = pad_network(network, channel_bucket=16, feature_bucket=128)
    print("\npadded architecture (what the client now sees):")
    for layer in padded.linear_layers:
        print(f"  {layer}")
    overhead = hiding_overhead(network, padded)
    print(f"\nprivacy price (HE-PTune cost model): {overhead.slowdown:.2f}x compute")


if __name__ == "__main__":
    main()
