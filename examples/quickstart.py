"""Quickstart: the BFV substrate and a homomorphic convolution.

Demonstrates the complete public API path a new user takes: build
parameters, encrypt, run the three HE operators while watching the noise
budget, then run a real homomorphic convolution under Cheetah's Sched-PA
schedule and check it against plaintext numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bfv import BfvParameters, BfvScheme, invariant_noise_budget
from repro.core.noise_model import Schedule
from repro.nn.plaintext import conv2d
from repro.scheduling import conv2d_he_small, conv_rotation_steps


def main() -> None:
    # 1. Parameters: n = 4096 slots, 17-bit plaintexts, ~100-bit q
    #    (128-bit secure), 16-bit rotation decomposition base.
    params = BfvParameters.create(
        n=4096, plain_bits=17, coeff_bits=100, a_dcmp_bits=16
    )
    print("parameters:", params.describe())

    scheme = BfvScheme(params, seed=0)
    secret, public = scheme.keygen()

    # 2. Encrypt a vector and watch the noise budget as operators apply.
    values = np.arange(8)
    ct = scheme.encrypt_values(values, public)
    print(f"fresh ciphertext budget: {invariant_noise_budget(scheme, ct, secret):.1f} bits")

    doubled = scheme.add(ct, ct)
    print(
        f"after HE_Add:            {invariant_noise_budget(scheme, doubled, secret):.1f} bits ->",
        scheme.decrypt_values(doubled, secret)[:8],
    )

    plain = scheme.encode_for_mul(scheme.encoder.encode(np.full(params.n, 3)))
    tripled = scheme.mul_plain(ct, plain)
    print(
        f"after HE_Mult (x3):      {invariant_noise_budget(scheme, tripled, secret):.1f} bits ->",
        scheme.decrypt_values(tripled, secret)[:8],
    )

    galois = scheme.generate_galois_keys(secret, [1])
    rotated = scheme.rotate_rows(ct, 1, galois)
    print(
        f"after HE_Rotate (<<1):   {invariant_noise_budget(scheme, rotated, secret):.1f} bits ->",
        scheme.decrypt_values(rotated, secret)[:8],
    )

    # 3. A homomorphic convolution with the partial-aligned schedule.
    rng = np.random.default_rng(1)
    activations = rng.integers(0, 16, (2, 8, 8))
    filters = rng.integers(-8, 9, (2, 2, 3, 3))
    grid_w = int(np.sqrt(params.row_size))
    conv_keys = scheme.generate_galois_keys(secret, conv_rotation_steps(grid_w, 3))
    encrypted_result = conv2d_he_small(
        scheme, activations, filters, public, secret, conv_keys,
        Schedule.PARTIAL_ALIGNED,
    )
    reference = conv2d(activations, filters)
    match = np.array_equal(encrypted_result, reference)
    print(f"\nhomomorphic conv2d (2ch 8x8, 3x3, Sched-PA) matches plaintext: {match}")
    assert match


if __name__ == "__main__":
    main()
