"""Design a Cheetah accelerator for a model (Figures 10 and 11).

Runs the whole hardware flow: tune the model with HE-PTune + Sched-PA,
profile the hot kernels, compute the speedups hardware must deliver
(Figure 7b), sweep the PE/lane design space, and print the power-latency
Pareto frontier with the design selected for plaintext-equivalent latency
-- the paper's ~100 ms / ~30 W / ~545 mm^2 (5 nm) ResNet50 result.

Run:  python examples/design_accelerator.py [model]
"""

import sys

from repro import CheetahFramework
from repro.nn.models import build_model


def main(model_name: str = "ResNet50") -> None:
    network = build_model(model_name)
    framework = CheetahFramework(target_latency_s=0.1, reference_cpu_seconds=970.0)
    print(f"running the full Cheetah flow for {network.name} ...")
    result = framework.run(network)

    print("\nkernel profile (Figure 7a):")
    for kernel, fraction in result.profile.fractions().items():
        print(f"  {kernel:<8}{fraction * 100:>6.1f}%")

    print("\nspeedup needed per kernel for plaintext latency (Figure 7b):")
    for kernel, factor in sorted(result.limit.speedups.items(), key=lambda kv: -kv[1]):
        print(f"  {kernel:<8}{factor:>8}x")

    print("\npower-latency Pareto frontier (Figure 11a, 5 nm):")
    print(f"{'PEs':>5}{'lanes':>7}{'latency ms':>12}{'power W':>9}{'area mm2':>10}")
    for report in result.dse.pareto[:10]:
        print(
            f"{report.config.num_pes:>5}{report.config.lanes_per_pe:>7}"
            f"{report.latency_ms:>12.1f}{report.power_w_5nm:>9.1f}"
            f"{report.area_mm2_5nm:>10.0f}"
        )

    selected = result.selected_design
    print(
        f"\nselected design: {selected.config.num_pes} PEs x "
        f"{selected.config.lanes_per_pe} lanes"
    )
    print(f"  latency: {selected.latency_ms:.1f} ms (target 100 ms)")
    print(f"  power:   {selected.power_w_5nm:.1f} W in 5 nm (paper: ~30 W)")
    print(f"  area:    {selected.area_mm2_5nm:.0f} mm^2 in 5 nm (paper: ~545 mm^2)")
    print(f"  IO util: {selected.io_utilization * 100:.0f}% (paper: ~12%)")
    print("\n" + result.summary())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ResNet50")
