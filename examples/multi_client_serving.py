"""Multi-client private-inference serving over the wire format.

The production shape of the Gazelle workload: one cloud-side
:class:`~repro.serving.ServingEngine` holds the model (weights compiled
once into eval-domain plans), while many clients -- each with its own
secret key, its own Galois keys, and its own data -- drive concurrent
sessions against it.  Requests that arrive together for the same layer
are merged into single stacked ``(k, B, n)`` engine calls (cross-client
batching), and every client still gets logits bit-identical to running
the whole protocol in process.

Run:  python examples/multi_client_serving.py
"""

import threading
import time

import numpy as np

from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.nn.plaintext import PlaintextRunner
from repro.serving import (
    DEMO_RESCALE_BITS,
    ClientSession,
    LoopbackTransport,
    ModelRegistry,
    ServingEngine,
    demo_image,
    demo_network,
    demo_weights,
)

CLIENTS = 4


def main() -> None:
    params = BfvParameters.create(
        n=4096, plain_bits=20, coeff_bits=100, a_dcmp_bits=16
    )
    network, weights = demo_network(), demo_weights()
    runner = PlaintextRunner(network, weights, rescale_bits=DEMO_RESCALE_BITS)

    # Cloud side: register the model once (offline plan compile), start
    # the engine with cross-client batching enabled.
    registry = ModelRegistry()
    start = time.perf_counter()
    entry = registry.register(
        "demo", network, weights, params,
        schedule=Schedule.INPUT_ALIGNED, rescale_bits=DEMO_RESCALE_BITS,
    )
    print(f"model registered, plans compiled offline: {time.perf_counter() - start:.2f}s")
    engine = ServingEngine(registry, max_batch=CLIENTS, batch_window_s=0.05)
    transport = LoopbackTransport(engine)

    # Client side: each session generates its own keys and uploads exactly
    # the Galois keys the server's compiled plans need.
    sessions = []
    start = time.perf_counter()
    for i in range(CLIENTS):
        session = ClientSession(network, params, transport, seed=10 + i)
        session.connect("demo")
        sessions.append(session)
    print(
        f"{CLIENTS} sessions connected (keygen + Galois upload): "
        f"{time.perf_counter() - start:.2f}s "
        f"({len(entry.rotation_steps)} rotation steps each)"
    )

    images = [demo_image(seed) for seed in range(CLIENTS)]
    results = [None] * CLIENTS

    def drive(index: int) -> None:
        results[index] = sessions[index].infer(images[index])

    start = time.perf_counter()
    threads = [
        threading.Thread(target=drive, args=(index,)) for index in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    print(f"\n{CLIENTS} concurrent private inferences in {elapsed:.2f}s")
    for index, result in enumerate(results):
        expected = runner.run(images[index])
        match = np.array_equal(result.logits, expected)
        print(f"client {index}: logits {result.logits.tolist()}  match={match}")
        assert match
    traffic = engine.session_traffic(sessions[0].session_id)
    print(
        f"\nper-session traffic: {traffic.client_to_cloud_bytes / 1024:.0f} KiB up "
        f"(incl. one-time Galois keys), "
        f"{traffic.cloud_to_client_bytes / 1024:.0f} KiB down, "
        f"{traffic.rounds} rounds"
    )


if __name__ == "__main__":
    main()
