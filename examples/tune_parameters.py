"""HE-PTune in action: per-layer parameter tuning for ResNet50.

Reproduces the algorithmic half of the paper on one model: tune every
layer with the practical noise model and Sched-PA, compare against the
Gazelle baseline and HE-PTune-only configurations (Figure 6), and show
the per-layer parameter diversity that a single global configuration
cannot capture (Figure 3's message).

Run:  python examples/tune_parameters.py [model]
"""

import sys

from repro.core.baselines import speedup_report
from repro.nn.models import build_model


def main(model_name: str = "ResNet50") -> None:
    network = build_model(model_name)
    print(f"tuning {network.name}: {len(network.linear_layers)} linear layers ...")
    report = speedup_report(network)

    gazelle = report.gazelle.tuned_layers[0].params
    print(f"\nGazelle global configuration: {gazelle.describe()}")

    print("\nper-layer Cheetah configurations (first 10 layers):")
    print(f"{'layer':<14}{'n':>7}{'log q':>7}{'Adcmp':>7}{'budget left':>13}{'int mults':>12}")
    for tuned in report.cheetah.tuned_layers[:10]:
        print(
            f"{tuned.layer.name:<14}{tuned.params.n:>7}{tuned.params.coeff_bits:>7}"
            f"{f'2^{tuned.params.a_dcmp_bits}':>7}"
            f"{tuned.noise.budget_bits:>12.1f}b{tuned.int_mults:>12.2e}"
        )

    distinct = len({t.params for t in report.cheetah.tuned_layers})
    print(f"\ndistinct parameter sets across layers: {distinct}")
    print(f"HE-PTune speedup over Gazelle:      {report.ptune_speedup:.2f}x")
    print(f"Sched-PA additional speedup:        {report.sched_pa_speedup:.2f}x")
    print(f"combined Cheetah speedup:           {report.cheetah_speedup:.2f}x")
    print("(paper, ResNet50: 5.5x tuning, ~10x schedule, 55.6x combined)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ResNet50")
