"""Private inference with the Gazelle protocol over live BFV.

The motivating workload of the paper's introduction: a client sends an
encrypted image; the cloud computes convolution and FC layers
homomorphically without ever seeing the data; ReLU and pooling run
client-side under (simulated) garbled circuits with additive masking.

The network includes a stride-2, padding-1 convolution (the AlexNet /
ResNet50 downsampling pattern), and every linear layer runs through a
compiled plan (:mod:`repro.scheduling.plan`): weights are encoded into
the evaluation domain once at protocol construction, so a second
inference reuses them and pays only the online HE work.  The example
verifies both private results against plaintext inference and reports
protocol costs.

Run:  python examples/private_inference.py
"""

import time

import numpy as np

from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.nn.layers import ActivationLayer, ConvLayer, FCLayer
from repro.nn.models import Network
from repro.nn.plaintext import PlaintextRunner
from repro.nn.quantize import synthetic_conv_weights, synthetic_fc_weights
from repro.protocol import GazelleProtocol


def build_tiny_cnn() -> tuple[Network, dict]:
    """A LeNet-style CNN with a strided, padded downsampling stage."""
    network = Network(
        "TinyLeNet",
        [
            ConvLayer("conv1", w=12, fw=3, ci=1, co=4),
            ActivationLayer("relu1", "relu", 4 * 10 * 10),
            ActivationLayer("pool1", "maxpool", 4 * 5 * 5, pool_size=2),
            # (5 + 2*1 - 3) // 2 + 1 = 3 output pixels per side.
            ConvLayer("conv2", w=5, fw=3, ci=4, co=4, stride=2, padding=1),
            ActivationLayer("relu2", "relu", 4 * 3 * 3),
            FCLayer("fc1", 36, 16),
            ActivationLayer("relu3", "relu", 16),
            FCLayer("fc2", 16, 10),
        ],
    )
    weights = {
        "conv1": synthetic_conv_weights(3, 1, 4, bits=5, seed=10),
        "conv2": synthetic_conv_weights(3, 4, 4, bits=5, seed=14),
        "fc1": synthetic_fc_weights(36, 16, bits=5, seed=11),
        "fc2": synthetic_fc_weights(16, 10, bits=5, seed=12),
    }
    return network, weights


def main() -> None:
    network, weights = build_tiny_cnn()

    # Two synthetic "digits": a bright diagonal stroke and its mirror.
    images = [np.zeros((1, 12, 12), dtype=np.int64) for _ in range(2)]
    for i in range(12):
        images[0][0, i, max(0, i - 1) : min(12, i + 2)] = 12
        images[1][0, i, max(0, 10 - i) : min(12, 13 - i)] = 12

    runner = PlaintextRunner(network, weights, rescale_bits=4)
    params = BfvParameters.create(n=4096, plain_bits=20, coeff_bits=100, a_dcmp_bits=16)

    start = time.perf_counter()
    protocol = GazelleProtocol(
        network, weights, params, schedule=Schedule.PARTIAL_ALIGNED,
        rescale_bits=4, seed=13,
    )
    setup_s = time.perf_counter() - start
    print(f"running private inference over {params.describe()} ...")
    print(f"setup (keygen + weight plans compiled offline): {setup_s:.2f}s")

    result = None
    for index, image in enumerate(images):
        expected = runner.run(image)
        start = time.perf_counter()
        result = protocol.run(image)
        online_s = time.perf_counter() - start
        match = np.array_equal(result.logits, expected)
        print(f"\ninference {index}: {online_s:.2f}s online (plans reused)")
        print("plaintext logits:", expected)
        print("private logits:  ", result.logits)
        print("match:", match)
        assert match

    print(f"\nprotocol rounds:        {result.traffic.rounds}")
    print(f"client -> cloud:        {result.traffic.client_to_cloud_bytes / 1024:.0f} KiB")
    print(f"cloud -> client:        {result.traffic.cloud_to_client_bytes / 1024:.0f} KiB")
    print(f"GC AND gates:           {result.gc_cost.and_gates:,}")
    print(f"GC traffic:             {result.gc_cost.communication_bytes / 1024:.0f} KiB")
    print(f"min HE budget en route: {result.min_noise_budget:.1f} bits")


if __name__ == "__main__":
    main()
