"""Private inference with the Gazelle protocol over live BFV.

The motivating workload of the paper's introduction: a client sends an
encrypted image; the cloud computes convolution and FC layers
homomorphically without ever seeing the data; ReLU and pooling run
client-side under (simulated) garbled circuits with additive masking.
The example verifies the private result equals plaintext inference and
reports protocol costs.

Run:  python examples/private_inference.py
"""

import numpy as np

from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.nn.layers import ActivationLayer, ConvLayer, FCLayer
from repro.nn.models import Network
from repro.nn.plaintext import PlaintextRunner
from repro.nn.quantize import synthetic_conv_weights, synthetic_fc_weights
from repro.protocol import GazelleProtocol


def build_tiny_cnn() -> tuple[Network, dict]:
    """A LeNet-style CNN sized for live HE execution."""
    network = Network(
        "TinyLeNet",
        [
            ConvLayer("conv1", w=12, fw=3, ci=1, co=4),
            ActivationLayer("relu1", "relu", 4 * 10 * 10),
            ActivationLayer("pool1", "maxpool", 4 * 5 * 5, pool_size=2),
            FCLayer("fc1", 100, 32),
            ActivationLayer("relu2", "relu", 32),
            FCLayer("fc2", 32, 10),
        ],
    )
    weights = {
        "conv1": synthetic_conv_weights(3, 1, 4, bits=5, seed=10),
        "fc1": synthetic_fc_weights(100, 32, bits=5, seed=11),
        "fc2": synthetic_fc_weights(32, 10, bits=5, seed=12),
    }
    return network, weights


def main() -> None:
    network, weights = build_tiny_cnn()

    # A synthetic "digit": a bright diagonal stroke on a 12x12 canvas.
    image = np.zeros((1, 12, 12), dtype=np.int64)
    for i in range(12):
        image[0, i, max(0, i - 1) : min(12, i + 2)] = 12

    expected = PlaintextRunner(network, weights, rescale_bits=4).run(image)

    params = BfvParameters.create(n=4096, plain_bits=20, coeff_bits=100, a_dcmp_bits=16)
    protocol = GazelleProtocol(
        network, weights, params, schedule=Schedule.PARTIAL_ALIGNED,
        rescale_bits=4, seed=13,
    )
    print(f"running private inference over {params.describe()} ...")
    result = protocol.run(image)

    print("\nplaintext logits:", expected)
    print("private logits:  ", result.logits)
    print("match:", np.array_equal(result.logits, expected))
    print(f"\nprotocol rounds:        {result.traffic.rounds}")
    print(f"client -> cloud:        {result.traffic.client_to_cloud_bytes / 1024:.0f} KiB")
    print(f"cloud -> client:        {result.traffic.cloud_to_client_bytes / 1024:.0f} KiB")
    print(f"GC AND gates:           {result.gc_cost.and_gates:,}")
    print(f"GC traffic:             {result.gc_cost.communication_bytes / 1024:.0f} KiB")
    print(f"min HE budget en route: {result.min_noise_budget:.1f} bits")
    assert np.array_equal(result.logits, expected)


if __name__ == "__main__":
    main()
