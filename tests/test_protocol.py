"""Tests for the Gazelle private-inference protocol and the garbled
circuit simulation."""

import numpy as np
import pytest

from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.nn.layers import ActivationLayer, ConvLayer, FCLayer
from repro.nn.models import Network
from repro.nn.plaintext import PlaintextRunner
from repro.nn.quantize import synthetic_conv_weights, synthetic_fc_weights
from repro.protocol import (
    GarbledEvaluator,
    GazelleProtocol,
    ciphertext_bytes,
    maxpool_circuit_cost,
    relu_circuit_cost,
)


@pytest.fixture(scope="module")
def tiny_net():
    return Network(
        "TinyCNN",
        [
            ConvLayer("conv1", w=8, fw=3, ci=1, co=2),
            ActivationLayer("relu1", "relu", 2 * 6 * 6),
            ActivationLayer("pool1", "maxpool", 2 * 3 * 3, pool_size=2),
            FCLayer("fc1", 18, 5),
            ActivationLayer("relu2", "relu", 5),
            FCLayer("fc2", 5, 3),
        ],
    )


@pytest.fixture(scope="module")
def tiny_weights():
    return {
        "conv1": synthetic_conv_weights(3, 1, 2, bits=5, seed=0),
        "fc1": synthetic_fc_weights(18, 5, bits=5, seed=1),
        "fc2": synthetic_fc_weights(5, 3, bits=5, seed=2),
    }


@pytest.fixture(scope="module")
def proto_params():
    return BfvParameters.create(
        n=4096, plain_bits=20, coeff_bits=100, a_dcmp_bits=16
    )


class TestGarbledEvaluator:
    def test_masked_relu_correct(self):
        t = 1032193
        evaluator = GarbledEvaluator(t, bit_width=20)
        values = np.array([5, -3, 0, 100], dtype=object)
        rng = np.random.default_rng(0)
        unmask = rng.integers(0, t, 4).astype(object)
        remask = rng.integers(0, t, 4).astype(object)
        masked = (values + unmask) % t
        result = evaluator.masked_relu(masked, unmask, remask)
        recovered = (result - remask) % t
        assert list(recovered) == [5, 0, 0, 100]

    def test_masked_maxpool_correct(self):
        t = 1032193
        evaluator = GarbledEvaluator(t, bit_width=20)
        values = np.array([[[1, 2], [3, 4]]], dtype=object)
        rng = np.random.default_rng(1)
        unmask = rng.integers(0, t, (1, 2, 2)).astype(object)
        masked = (values + unmask) % t
        result = evaluator.masked_maxpool(masked, unmask, np.zeros((1, 1, 1), dtype=object), 2)
        assert int(result[0, 0, 0]) == 4

    def test_gc_costs_accumulate(self):
        evaluator = GarbledEvaluator(1032193, bit_width=20)
        values = np.zeros(10, dtype=object)
        evaluator.masked_relu(values, values, values)
        assert evaluator.total_cost.and_gates == 10 * 4 * 20

    def test_relu_cost_scales_linearly(self):
        assert relu_circuit_cost(20, 16).and_gates == 2 * relu_circuit_cost(10, 16).and_gates

    def test_maxpool_cost_grows_with_window(self):
        small = maxpool_circuit_cost(10, 2, 16)
        large = maxpool_circuit_cost(10, 3, 16)
        assert large.and_gates > small.and_gates

    def test_communication_bytes(self):
        cost = relu_circuit_cost(1, 16)
        assert cost.communication_bytes == (cost.communication_bits + 7) // 8


class TestProtocol:
    @pytest.fixture(scope="class")
    def result_and_reference(self, tiny_net, tiny_weights, proto_params):
        rng = np.random.default_rng(4)
        image = rng.integers(0, 16, (1, 8, 8))
        expected = PlaintextRunner(tiny_net, tiny_weights, rescale_bits=4).run(image)
        proto = GazelleProtocol(
            tiny_net, tiny_weights, proto_params, rescale_bits=4, seed=5
        )
        return proto.run(image), expected

    def test_matches_plaintext(self, result_and_reference):
        result, expected = result_and_reference
        assert np.array_equal(result.logits, expected)

    def test_noise_budget_never_exhausted(self, result_and_reference):
        result, _ = result_and_reference
        assert result.min_noise_budget > 0

    def test_traffic_accounted(self, result_and_reference, proto_params):
        result, _ = result_and_reference
        # At least one ciphertext each way per linear layer.
        assert result.traffic.rounds == 3
        assert result.traffic.client_to_cloud_bytes >= 3 * ciphertext_bytes(proto_params)
        assert result.traffic.cloud_to_client_bytes >= 3 * ciphertext_bytes(proto_params)

    def test_gc_gates_positive(self, result_and_reference):
        result, _ = result_and_reference
        assert result.gc_cost.and_gates > 0

    def test_ia_schedule_also_correct(self, tiny_net, tiny_weights, proto_params):
        rng = np.random.default_rng(4)
        image = rng.integers(0, 16, (1, 8, 8))
        expected = PlaintextRunner(tiny_net, tiny_weights, rescale_bits=4).run(image)
        proto = GazelleProtocol(
            tiny_net,
            tiny_weights,
            proto_params,
            schedule=Schedule.INPUT_ALIGNED,
            rescale_bits=4,
            seed=6,
        )
        assert np.array_equal(proto.run(image).logits, expected)

    def test_fc_only_network(self, proto_params):
        net = Network(
            "MLP",
            [
                FCLayer("fc1", 16, 8),
                ActivationLayer("relu1", "relu", 8),
                FCLayer("fc2", 8, 4),
            ],
        )
        weights = {
            "fc1": synthetic_fc_weights(16, 8, bits=5, seed=3),
            "fc2": synthetic_fc_weights(8, 4, bits=5, seed=4),
        }
        rng = np.random.default_rng(8)
        image = rng.integers(0, 16, 16)
        expected = PlaintextRunner(net, weights, rescale_bits=4).run(image)
        proto = GazelleProtocol(net, weights, proto_params, rescale_bits=4, seed=9)
        result = proto.run(image.reshape(1, 4, 4))
        assert np.array_equal(result.logits, expected.reshape(-1))


class TestProtocolVariants:
    def test_avgpool_network(self, proto_params):
        net = Network(
            "AvgNet",
            [
                ConvLayer("conv1", w=8, fw=3, ci=1, co=2),
                ActivationLayer("relu1", "relu", 2 * 6 * 6),
                ActivationLayer("pool1", "avgpool", 2 * 3 * 3, pool_size=2),
                FCLayer("fc1", 18, 4),
            ],
        )
        weights = {
            "conv1": synthetic_conv_weights(3, 1, 2, bits=5, seed=20),
            "fc1": synthetic_fc_weights(18, 4, bits=5, seed=21),
        }
        rng = np.random.default_rng(22)
        image = rng.integers(0, 16, (1, 8, 8))
        expected = PlaintextRunner(net, weights, rescale_bits=4).run(image)
        proto = GazelleProtocol(net, weights, proto_params, rescale_bits=4, seed=23)
        assert np.array_equal(proto.run(image).logits, expected)

    def test_back_to_back_linear_layers(self, proto_params):
        """Two FC layers with no activation between them."""
        net = Network(
            "Linear2",
            [FCLayer("fc1", 12, 8), FCLayer("fc2", 8, 3)],
        )
        weights = {
            "fc1": synthetic_fc_weights(12, 8, bits=4, seed=30),
            "fc2": synthetic_fc_weights(8, 3, bits=4, seed=31),
        }
        rng = np.random.default_rng(32)
        image = rng.integers(0, 8, 12)
        expected = PlaintextRunner(net, weights, rescale_bits=3).run(image)
        proto = GazelleProtocol(net, weights, proto_params, rescale_bits=3, seed=33)
        result = proto.run(image.reshape(1, 1, 12).reshape(1, 2, 6))
        assert np.array_equal(result.logits, expected)

    def test_different_seeds_same_logits(self, tiny_net, tiny_weights, proto_params):
        """Masking randomness must never change the computed function."""
        rng = np.random.default_rng(40)
        image = rng.integers(0, 16, (1, 8, 8))
        a = GazelleProtocol(tiny_net, tiny_weights, proto_params, rescale_bits=4, seed=41)
        b = GazelleProtocol(tiny_net, tiny_weights, proto_params, rescale_bits=4, seed=42)
        assert np.array_equal(a.run(image).logits, b.run(image).logits)
