"""Compiled linear-layer plans vs the naive Figure 5 loop nests.

The equivalence contract of :mod:`repro.scheduling.plan`: for both
schedules and both layer types, a compiled plan decrypts bit-identically
to the naive reference, spends strictly fewer NTTs and rotations, and
stays within the Table III worst-case noise bound of the naive schedule.
"""

import math

import numpy as np
import pytest

from repro.bfv import invariant_noise_budget
from repro.bfv.counters import GLOBAL_COUNTERS
from repro.core.noise_model import (
    NoiseMode,
    Schedule,
    eta_mult,
    eta_rotate,
    fresh_noise,
)
from repro.core.ptune import ModelParams
from repro.nn.plaintext import conv2d
from repro.scheduling import (
    ConvPlan,
    FcPlan,
    conv2d_he_naive,
    conv_rotation_steps,
    encrypt_channels,
    fc_he_naive,
    fc_rotation_steps,
    pack_fc_input,
)
from repro.scheduling.conv2d import _infer_width
from repro.scheduling.layouts import unpack_image

CI, CO, FW, IMG_W = 2, 2, 3, 6
NI, NO = 24, 7


@pytest.fixture(scope="module")
def grid_w(conv_scheme):
    return _infer_width(conv_scheme.params.row_size)


@pytest.fixture(scope="module")
def conv_galois(conv_scheme, conv_keys, grid_w):
    secret, _ = conv_keys
    return conv_scheme.generate_galois_keys(
        secret, conv_rotation_steps(grid_w, FW)
    )


@pytest.fixture(scope="module")
def fc_galois(conv_scheme, conv_keys):
    secret, _ = conv_keys
    return conv_scheme.generate_galois_keys(secret, fc_rotation_steps(NI))


@pytest.fixture(scope="module")
def conv_inputs(conv_scheme, conv_keys, grid_w, rng):
    _, public = conv_keys
    acts = rng.integers(0, 8, (CI, IMG_W, IMG_W))
    weights = rng.integers(-4, 5, (CO, CI, FW, FW))
    grids = np.zeros((CI, grid_w, grid_w), dtype=np.int64)
    grids[:, :IMG_W, :IMG_W] = acts
    cts = encrypt_channels(conv_scheme, grids, public)
    return acts, weights, cts


@pytest.fixture(scope="module")
def fc_inputs(conv_scheme, conv_keys, rng):
    _, public = conv_keys
    x = rng.integers(-8, 8, NI)
    weights = rng.integers(-4, 5, (NO, NI))
    packed = pack_fc_input(
        x % conv_scheme.params.plain_modulus, conv_scheme.params.row_size
    )
    ct = conv_scheme.encrypt(conv_scheme.encoder.encode_row(packed), public)
    return x, weights, ct


def _table3_budget_bound(params, schedule, mult_terms, rot_terms):
    """Worst-case Table III remaining-budget bound for the naive schedule.

    Same proxy convention as ``bench_table5_noise_model``: live schedulers
    multiply slot-encoded weight plaintexts whose coefficient norm is
    bounded by t, i.e. one window of base Wdcmp = t.
    """
    t_bits = params.plain_modulus.bit_length()
    proxy = ModelParams(
        n=params.n,
        plain_bits=t_bits,
        coeff_bits=params.coeff_bits,
        w_dcmp_bits=t_bits,
        a_dcmp_bits=params.a_dcmp_bits,
    )
    v0 = fresh_noise(proxy, NoiseMode.WORST)
    eta_m = eta_mult(proxy, NoiseMode.WORST, l_pt=1)
    eta_a = eta_rotate(proxy, NoiseMode.WORST)
    if schedule is Schedule.PARTIAL_ALIGNED:
        noise = mult_terms * eta_m * v0 + rot_terms * eta_a
    else:
        noise = mult_terms * eta_m * (v0 + eta_a) + rot_terms * eta_a
    return params.noise_capacity_bits - math.log2(noise)


class TestConvPlanEquivalence:
    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_plan_matches_naive_and_saves_ops(
        self, conv_scheme, conv_keys, conv_galois, conv_inputs, grid_w, schedule
    ):
        secret, _ = conv_keys
        acts, weights, cts = conv_inputs
        plan = ConvPlan.compile(conv_scheme, weights, schedule)

        before = GLOBAL_COUNTERS.snapshot()
        plan_cts = plan.execute(cts, conv_galois)
        plan_ops = GLOBAL_COUNTERS.diff(before)
        before = GLOBAL_COUNTERS.snapshot()
        naive_cts = conv2d_he_naive(conv_scheme, cts, weights, conv_galois, schedule)
        naive_ops = GLOBAL_COUNTERS.diff(before)

        expected = conv2d(acts, weights)
        out_w = IMG_W - FW + 1
        for oc in range(CO):
            plan_slots = conv_scheme.encoder.decode_row(
                conv_scheme.decrypt(plan_cts[oc], secret)
            )
            naive_slots = conv_scheme.encoder.decode_row(
                conv_scheme.decrypt(naive_cts[oc], secret)
            )
            # Bit-identical decrypted outputs, full slot row.
            assert np.array_equal(plan_slots, naive_slots)
            assert np.array_equal(
                unpack_image(plan_slots, grid_w)[:out_w, :out_w], expected[oc]
            )

        # Strictly fewer NTTs and rotations; analytic rotation census:
        # Sched-PA sums offset groups first (fw^2 - 1 per oc), Sched-IA
        # shares hoisted rotated inputs across ocs (fw^2 - 1 per ic).
        assert plan_ops.ntt < naive_ops.ntt
        assert plan_ops.he_rotate < naive_ops.he_rotate
        assert naive_ops.he_rotate == CO * CI * (FW * FW - 1)
        if schedule is Schedule.PARTIAL_ALIGNED:
            assert plan_ops.he_rotate == CO * (FW * FW - 1)
        else:
            assert plan_ops.he_rotate == CI * (FW * FW - 1)
        assert plan_ops.he_mult == naive_ops.he_mult == CO * CI * FW * FW

    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_noise_within_table3_bound(
        self, conv_scheme, conv_keys, conv_galois, conv_inputs, schedule
    ):
        secret, _ = conv_keys
        _, weights, cts = conv_inputs
        plan = ConvPlan.compile(conv_scheme, weights, schedule)
        out = plan.execute(cts, conv_galois)[0]
        budget = invariant_noise_budget(conv_scheme, out, secret)
        bound = _table3_budget_bound(
            conv_scheme.params,
            schedule,
            mult_terms=CI * FW * FW,
            rot_terms=CI * (FW * FW - 1),
        )
        assert budget > 0
        assert budget >= bound - 1.0


class TestFcPlanEquivalence:
    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_plan_matches_naive_and_saves_ops(
        self, conv_scheme, conv_keys, fc_galois, fc_inputs, schedule
    ):
        secret, _ = conv_keys
        x, weights, ct = fc_inputs
        plan = FcPlan.compile(conv_scheme, weights, schedule)

        before = GLOBAL_COUNTERS.snapshot()
        plan_ct = plan.execute(ct, fc_galois)
        plan_ops = GLOBAL_COUNTERS.diff(before)
        before = GLOBAL_COUNTERS.snapshot()
        naive_ct = fc_he_naive(conv_scheme, ct, weights, fc_galois, schedule)
        naive_ops = GLOBAL_COUNTERS.diff(before)

        plan_out = conv_scheme.encoder.decode_row(
            conv_scheme.decrypt(plan_ct, secret)
        )[:NO]
        naive_out = conv_scheme.encoder.decode_row(
            conv_scheme.decrypt(naive_ct, secret)
        )[:NO]
        assert np.array_equal(plan_out, naive_out)
        assert np.array_equal(plan_out, weights @ x)

        # The extended-diagonal fold: no_eff - 1 diagonal rotations plus
        # one rotate-and-add per fold, strictly below the naive ni - 1.
        assert naive_ops.he_rotate == NI - 1
        assert plan_ops.he_rotate == plan.no_eff - 1 + len(plan.fold_steps)
        assert plan_ops.he_rotate < naive_ops.he_rotate
        assert plan_ops.ntt < naive_ops.ntt
        assert plan_ops.he_mult == plan.no_eff < naive_ops.he_mult == NI

    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_noise_within_table3_bound(
        self, conv_scheme, conv_keys, fc_galois, fc_inputs, schedule
    ):
        secret, _ = conv_keys
        _, weights, ct = fc_inputs
        plan = FcPlan.compile(conv_scheme, weights, schedule)
        out = plan.execute(ct, fc_galois)
        budget = invariant_noise_budget(conv_scheme, out, secret)
        bound = _table3_budget_bound(
            conv_scheme.params,
            schedule,
            mult_terms=NI,
            rot_terms=NI - 1,
        )
        assert budget > 0
        assert budget >= bound - 1.0


class TestPlanStructure:
    def test_conv_rotation_steps_subset_of_schedule(self, conv_scheme, grid_w, rng):
        weights = rng.integers(-4, 5, (CO, CI, FW, FW))
        plan = ConvPlan.compile(conv_scheme, weights)
        assert plan.rotation_steps == conv_rotation_steps(grid_w, FW)

    def test_fc_fold_structure(self, conv_scheme, rng):
        # ni = 24, no = 7: deepest usable fold is 2^1 (24 / 4 = 6 < 7).
        plan = FcPlan.compile(conv_scheme, rng.integers(-4, 5, (7, 24)))
        assert plan.no_eff == 12
        assert plan.fold_steps == [12]
        assert max(plan.rotation_steps) < 24

    def test_fc_square_has_no_fold(self, conv_scheme, rng):
        plan = FcPlan.compile(conv_scheme, rng.integers(-4, 5, (12, 12)))
        assert plan.no_eff == 12
        assert plan.fold_steps == []

    def test_plan_reuse_across_inputs(
        self, conv_scheme, conv_keys, fc_galois, rng
    ):
        """One compilation, many inferences: the amortisation contract."""
        secret, public = conv_keys
        weights = rng.integers(-4, 5, (NO, NI))
        plan = FcPlan.compile(conv_scheme, weights)
        for seed in (0, 1):
            x = np.random.default_rng(seed).integers(0, 8, NI)
            packed = pack_fc_input(x, conv_scheme.params.row_size)
            ct = conv_scheme.encrypt(conv_scheme.encoder.encode_row(packed), public)
            out = conv_scheme.encoder.decode_row(
                conv_scheme.decrypt(plan.execute(ct, fc_galois), secret)
            )[:NO]
            assert np.array_equal(out, weights @ x)

    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_1x1_conv_needs_no_rotations_or_hoists(
        self, conv_scheme, conv_keys, conv_galois, grid_w, schedule, rng
    ):
        """fw=1 (the ResNet bottleneck shape): no offsets, so the plan must
        spend zero rotations and zero NTTs (no speculative hoisting)."""
        secret, public = conv_keys
        acts = rng.integers(0, 8, (2, 4, 4))
        weights = rng.integers(-4, 5, (2, 2, 1, 1))
        grids = np.zeros((2, grid_w, grid_w), dtype=np.int64)
        grids[:, :4, :4] = acts
        cts = encrypt_channels(conv_scheme, grids, public)
        plan = ConvPlan.compile(conv_scheme, weights, schedule)
        assert plan.rotation_steps == []
        before = GLOBAL_COUNTERS.snapshot()
        outs = plan.execute(cts, conv_galois)
        delta = GLOBAL_COUNTERS.diff(before)
        assert delta.he_rotate == 0
        assert delta.ntt == 0
        expected = conv2d(acts, weights)
        for oc in range(2):
            slots = conv_scheme.encoder.decode_row(
                conv_scheme.decrypt(outs[oc], secret)
            )
            assert np.array_equal(
                unpack_image(slots, grid_w)[:4, :4], expected[oc]
            )

    def test_conv_channel_count_validated(self, conv_scheme, conv_galois, rng):
        weights = rng.integers(-4, 5, (1, 2, 3, 3))
        plan = ConvPlan.compile(conv_scheme, weights)
        with pytest.raises(ValueError):
            plan.execute([], conv_galois)

    def test_fc_shape_validated(self, conv_scheme, rng):
        with pytest.raises(ValueError):
            FcPlan.compile(conv_scheme, rng.integers(-4, 5, (8, 4)))
        too_wide = conv_scheme.params.row_size
        with pytest.raises(ValueError):
            FcPlan.compile(conv_scheme, rng.integers(-4, 5, (1, too_wide)))
