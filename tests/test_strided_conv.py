"""Strided and padded homomorphic convolutions (AlexNet/ResNet50 lowering)."""

import numpy as np
import pytest

from repro.core.noise_model import Schedule
from repro.nn.plaintext import conv2d
from repro.scheduling import conv2d_he_small, conv_rotation_steps


@pytest.fixture(scope="module")
def wide_galois(conv_scheme, conv_keys):
    secret, _ = conv_keys
    grid_w = int(np.sqrt(conv_scheme.params.row_size))
    return conv_scheme.generate_galois_keys(secret, conv_rotation_steps(grid_w, 3))


class TestPaddedConv:
    def test_padding_matches_plaintext(self, conv_scheme, conv_keys, wide_galois, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 8, (1, 6, 6))
        weights = rng.integers(-4, 5, (1, 1, 3, 3))
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, wide_galois, padding=1
        )
        assert np.array_equal(out, conv2d(acts, weights, padding=1))

    def test_same_padding_preserves_size(self, conv_scheme, conv_keys, wide_galois, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 8, (1, 7, 7))
        weights = rng.integers(-4, 5, (1, 1, 3, 3))
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, wide_galois, padding=1
        )
        assert out.shape == (1, 7, 7)


class TestStridedConv:
    def test_stride2_matches_plaintext(self, conv_scheme, conv_keys, wide_galois, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 8, (1, 8, 8))
        weights = rng.integers(-4, 5, (1, 1, 3, 3))
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, wide_galois, stride=2
        )
        assert np.array_equal(out, conv2d(acts, weights, stride=2))

    def test_stride_and_padding_together(self, conv_scheme, conv_keys, wide_galois, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 8, (2, 7, 7))
        weights = rng.integers(-4, 5, (2, 2, 3, 3))
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, wide_galois,
            stride=2, padding=1,
        )
        assert np.array_equal(out, conv2d(acts, weights, stride=2, padding=1))

    def test_stride3(self, conv_scheme, conv_keys, wide_galois, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 8, (1, 10, 10))
        weights = rng.integers(-4, 5, (1, 1, 2, 2))
        galois = conv_scheme.generate_galois_keys(
            conv_keys[0],
            conv_rotation_steps(int(np.sqrt(conv_scheme.params.row_size)), 2),
        )
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, galois, stride=3
        )
        assert np.array_equal(out, conv2d(acts, weights, stride=3))

    def test_invalid_stride_rejected(self, conv_scheme, conv_keys, wide_galois):
        secret, public = conv_keys
        acts = np.zeros((1, 6, 6), dtype=np.int64)
        weights = np.zeros((1, 1, 3, 3), dtype=np.int64)
        with pytest.raises(ValueError):
            conv2d_he_small(
                conv_scheme, acts, weights, public, secret, wide_galois, stride=0
            )
