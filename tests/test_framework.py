"""End-to-end framework tests (Figure 1's full pipeline)."""

import pytest

from repro import CheetahFramework


@pytest.fixture(scope="module")
def result():
    return CheetahFramework().run("LeNet5")


class TestFramework:
    def test_accepts_model_name(self, result):
        assert result.network.name == "LeNet5"

    def test_speedups_present(self, result):
        assert result.speedups.cheetah_speedup > 1.0

    def test_profile_normalised(self, result):
        assert sum(result.profile.fractions().values()) == pytest.approx(1.0)

    def test_limit_study_hits_target(self, result):
        assert result.limit.final_seconds <= 0.1

    def test_design_selected(self, result):
        assert result.selected_design.latency_s <= 0.1

    def test_tuned_layers_match_network(self, result):
        assert len(result.tuned_layers) == len(result.network.linear_layers)

    def test_summary_readable(self, result):
        text = result.summary()
        assert "LeNet5" in text
        assert "over Gazelle" in text
        assert "PEs" in text
