"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_tune_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "GPT4"])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "demo", "-o", "x.rpa"])
        assert args.model == "demo"
        assert args.out == "x.rpa"
        assert args.n == 4096 and not args.manifest and not args.tune

    def test_serve_artifacts_flag(self):
        args = build_parser().parse_args(["serve", "--artifacts", "zoo/"])
        assert args.artifacts == "zoo/"

    def test_serve_shard_flags(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "2", "--threads", "8"]
        )
        assert args.workers == 2 and args.threads == 8
        # In-process execution stays the default; connection threads
        # are a separate knob from shard worker processes.
        defaults = build_parser().parse_args(["serve"])
        assert defaults.workers == 0 and defaults.threads == 16

    def test_infer_model_flag(self):
        args = build_parser().parse_args(["infer", "--model", "alpha"])
        assert args.model == "alpha"


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "ResNet50" in out
        assert "LeNet5" in out

    def test_params(self, capsys):
        assert main(["params", "4096", "20", "100"]) == 0
        out = capsys.readouterr().out
        assert "n=4096" in out
        assert "noise capacity" in out

    def test_params_flags_insecure(self, capsys):
        assert main(["params", "1024", "20", "100"]) == 0
        assert "WARNING" in capsys.readouterr().out

    def test_tune(self, capsys):
        assert main(["tune", "LeNet300100"]) == 0
        out = capsys.readouterr().out
        assert "fc1" in out and "Adcmp" in out

    def test_speedups_single_model(self, capsys):
        assert main(["speedups", "LeNet300100"]) == 0
        out = capsys.readouterr().out
        assert "LeNet300100" in out and "x" in out

    def test_accelerate(self, capsys):
        assert main(["accelerate", "LeNet300100"]) == 0
        out = capsys.readouterr().out
        assert "over Gazelle" in out
        assert "speedup needed" in out

    def test_compile_writes_artifact_and_manifest(self, capsys, tmp_path):
        out_path = tmp_path / "demo.rpa"
        assert (
            main(
                [
                    "compile", "demo", "--n", "2048",
                    "-o", str(out_path), "--manifest", "--tune",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "wrote" in printed and "compiled plans" in printed
        assert out_path.exists()
        from repro.artifacts import load_artifact, read_manifest

        artifact = load_artifact(out_path)
        assert artifact.name == "demo"
        assert artifact.tuned and "conv1" in artifact.tuned
        manifest = read_manifest(tmp_path)
        assert manifest["models"][0]["file"] == "demo.rpa"
        assert manifest["models"][0]["tuned"] == artifact.tuned


class TestBatchMode:
    def test_batched_throughput_beats_single(self):
        from repro.accel import AcceleratorConfig, simulate
        from repro.core.baselines import cheetah_configuration
        from repro.nn.models import lenet_300_100

        tuned = cheetah_configuration(lenet_300_100()).tuned_layers
        config = AcceleratorConfig(num_pes=4, lanes_per_pe=32)
        single = simulate(tuned, config)
        batched = simulate(tuned, config, batch=8)
        assert batched.throughput_per_s > single.throughput_per_s
        assert batched.latency_s > single.latency_s  # latency traded away

    def test_invalid_batch(self):
        from repro.accel import AcceleratorConfig, simulate
        from repro.core.baselines import cheetah_configuration
        from repro.nn.models import lenet_300_100

        tuned = cheetah_configuration(lenet_300_100()).tuned_layers
        with pytest.raises(ValueError):
            simulate(tuned, AcceleratorConfig(num_pes=2, lanes_per_pe=8), batch=0)
