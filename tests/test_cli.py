"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_tune_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "GPT4"])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "demo", "-o", "x.rpa"])
        assert args.model == "demo"
        assert args.out == "x.rpa"
        assert args.n == 4096 and not args.manifest and not args.tune

    def test_serve_artifacts_flag(self):
        args = build_parser().parse_args(["serve", "--artifacts", "zoo/"])
        assert args.artifacts == "zoo/"

    def test_serve_shard_flags(self):
        args = build_parser().parse_args(
            ["serve", "--workers", "2", "--threads", "8"]
        )
        assert args.workers == 2 and args.threads == 8
        # In-process execution stays the default; connection threads
        # are a separate knob from shard worker processes.
        defaults = build_parser().parse_args(["serve"])
        assert defaults.workers == 0 and defaults.threads == 16

    def test_infer_model_flag(self):
        args = build_parser().parse_args(["infer", "--model", "alpha"])
        assert args.model == "alpha"

    def test_serve_admin_token_flag(self):
        args = build_parser().parse_args(["serve", "--admin-token", "hunter2"])
        assert args.admin_token == "hunter2"
        assert build_parser().parse_args(["serve"]).admin_token == ""

    def test_admin_parser(self):
        args = build_parser().parse_args(
            ["admin", "reload-zoo", "--token", "t", "--directory", "zoo/"]
        )
        assert args.action == "reload-zoo"
        assert args.directory == "zoo/" and not args.no_rolling
        with pytest.raises(SystemExit):
            build_parser().parse_args(["admin", "self-destruct"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "ResNet50" in out
        assert "LeNet5" in out

    def test_params(self, capsys):
        assert main(["params", "4096", "20", "100"]) == 0
        out = capsys.readouterr().out
        assert "n=4096" in out
        assert "noise capacity" in out

    def test_params_flags_insecure(self, capsys):
        assert main(["params", "1024", "20", "100"]) == 0
        assert "WARNING" in capsys.readouterr().out

    def test_tune(self, capsys):
        assert main(["tune", "LeNet300100"]) == 0
        out = capsys.readouterr().out
        assert "fc1" in out and "Adcmp" in out

    def test_speedups_single_model(self, capsys):
        assert main(["speedups", "LeNet300100"]) == 0
        out = capsys.readouterr().out
        assert "LeNet300100" in out and "x" in out

    def test_accelerate(self, capsys):
        assert main(["accelerate", "LeNet300100"]) == 0
        out = capsys.readouterr().out
        assert "over Gazelle" in out
        assert "speedup needed" in out

    def test_compile_writes_artifact_and_manifest(self, capsys, tmp_path):
        out_path = tmp_path / "demo.rpa"
        assert (
            main(
                [
                    "compile", "demo", "--n", "2048",
                    "-o", str(out_path), "--manifest", "--tune",
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "wrote" in printed and "compiled plans" in printed
        assert out_path.exists()
        from repro.artifacts import load_artifact, read_manifest

        artifact = load_artifact(out_path)
        assert artifact.name == "demo"
        assert artifact.tuned and "conv1" in artifact.tuned
        manifest = read_manifest(tmp_path)
        assert manifest["models"][0]["file"] == "demo.rpa"
        assert manifest["models"][0]["tuned"] == artifact.tuned


def _trace_event(name, ts, trace_id, span_id, parent_id=None, **args):
    return {
        "name": name, "ph": "X", "ts": ts, "dur": 100,
        "pid": 1, "tid": 1,
        "args": {
            "trace_id": trace_id, "span_id": span_id,
            "parent_id": parent_id, **args,
        },
    }


def _write_trace(directory, stem, events):
    import json

    path = directory / f"trace-{stem}.json"
    path.write_text(json.dumps({"traceEvents": events}))
    return path


class TestTraceMerge:
    """``repro trace --merge``: the Perfetto-concatenation path."""

    def test_empty_directory_merges_nothing(self, tmp_path, capsys):
        out = tmp_path / "merged.json"
        assert main(["trace", str(tmp_path), "--merge", str(out)]) == 0
        assert "no trace-*.json files" in capsys.readouterr().err
        assert not out.exists()

    def test_single_file_merge_round_trips(self, tmp_path, capsys):
        import json

        events = [
            _trace_event("request", 0, "t1", "s1"),
            _trace_event("execute", 10, "t1", "s2", parent_id="s1"),
        ]
        _write_trace(tmp_path, "aaa", events)
        out = tmp_path / "merged.json"
        assert main(["trace", str(tmp_path), "--merge", str(out)]) == 0
        assert "merged 2 event(s) from 1 file(s)" in capsys.readouterr().out
        merged = json.loads(out.read_text())
        assert merged["traceEvents"] == events

    def test_overlapping_trace_ids_merge_completely(self, tmp_path, capsys):
        """Two files carrying the *same* trace id both survive the merge.

        A trace that spans front-end and worker files (or was exported
        twice under retention churn) must concatenate -- events are
        never deduplicated or dropped by id.
        """
        import json

        shared = [
            _trace_event("request", 0, "t-shared", "s1"),
            _trace_event("execute", 20, "t-shared", "s2", parent_id="s1"),
        ]
        also_shared = [
            _trace_event("worker.compute", 30, "t-shared", "s3", parent_id="s2"),
        ]
        other = [_trace_event("request", 50, "t-other", "s9")]
        _write_trace(tmp_path, "aaa", shared)
        _write_trace(tmp_path, "bbb", also_shared + other)
        out = tmp_path / "merged.json"
        assert main(["trace", str(tmp_path), "--merge", str(out)]) == 0
        merged = json.loads(out.read_text())
        assert len(merged["traceEvents"]) == 4
        by_trace: dict = {}
        for event in merged["traceEvents"]:
            by_trace.setdefault(event["args"]["trace_id"], []).append(event)
        assert len(by_trace["t-shared"]) == 3
        assert len(by_trace["t-other"]) == 1
        # Sorted glob order keeps per-file timelines contiguous.
        assert [e["name"] for e in merged["traceEvents"]] == [
            "request", "execute", "worker.compute", "request",
        ]

    def test_invalid_file_is_excluded_from_merge(self, tmp_path, capsys):
        import json

        _write_trace(tmp_path, "good", [_trace_event("request", 0, "t1", "s1")])
        (tmp_path / "trace-bad.json").write_text("{not json")
        out = tmp_path / "merged.json"
        assert main(["trace", str(tmp_path), "--merge", str(out)]) == 0
        assert len(json.loads(out.read_text())["traceEvents"]) == 1


class TestStatsLoop:
    def test_stats_interval_dumps_parsable_snapshot(self, caplog):
        """The ``serve --stats-interval`` thread logs real JSON snapshots."""
        import json
        import logging
        import threading
        import time

        from repro.cli import _stats_loop
        from repro.serving import MetricsRegistry

        metrics = MetricsRegistry()
        metrics.record_request("linear", 0.01, "linear_ok")
        metrics.add_gauge("zoo_generation", lambda: 3)
        stop = threading.Event()
        logger = logging.getLogger("test.repro.stats")
        with caplog.at_level(logging.INFO, logger=logger.name):
            thread = threading.Thread(
                target=_stats_loop, args=(metrics, 0.01, stop, logger)
            )
            thread.start()
            deadline = time.monotonic() + 10.0
            while (
                not any(
                    record.getMessage().startswith("stats: ")
                    for record in caplog.records
                )
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            stop.set()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        lines = [
            record.getMessage()
            for record in caplog.records
            if record.getMessage().startswith("stats: ")
        ]
        assert lines, "no stats dump was logged"
        snapshot = json.loads(lines[0][len("stats: "):])
        assert snapshot["gauges"]["zoo_generation"] == 3
        assert snapshot["requests"]["by_kind"]["linear"] == 1


class TestBatchMode:
    def test_batched_throughput_beats_single(self):
        from repro.accel import AcceleratorConfig, simulate
        from repro.core.baselines import cheetah_configuration
        from repro.nn.models import lenet_300_100

        tuned = cheetah_configuration(lenet_300_100()).tuned_layers
        config = AcceleratorConfig(num_pes=4, lanes_per_pe=32)
        single = simulate(tuned, config)
        batched = simulate(tuned, config, batch=8)
        assert batched.throughput_per_s > single.throughput_per_s
        assert batched.latency_s > single.latency_s  # latency traded away

    def test_invalid_batch(self):
        from repro.accel import AcceleratorConfig, simulate
        from repro.core.baselines import cheetah_configuration
        from repro.nn.models import lenet_300_100

        tuned = cheetah_configuration(lenet_300_100()).tuned_layers
        with pytest.raises(ValueError):
            simulate(tuned, AcceleratorConfig(num_pes=2, lanes_per_pe=8), batch=0)
