"""Tests for the Gazelle / HE-PTune / Cheetah comparison (Figure 6)."""

import pytest

from repro.core.baselines import (
    FleetSummary,
    GAZELLE_A_DCMP_BITS,
    cheetah_configuration,
    gazelle_configuration,
    harmonic_mean,
    ptune_configuration,
    speedup_report,
)
from repro.nn.models import lenet5, lenet_300_100


@pytest.fixture(scope="module")
def lenet5_report():
    return speedup_report(lenet5())


class TestConfigurations:
    def test_gazelle_uses_fixed_bases(self):
        config = gazelle_configuration(lenet_300_100())
        for tuned in config.tuned_layers:
            assert tuned.params.a_dcmp_bits == GAZELLE_A_DCMP_BITS

    def test_gazelle_single_global_config(self):
        config = gazelle_configuration(lenet5())
        assert len({t.params for t in config.tuned_layers}) == 1

    def test_ptune_keeps_gazelle_rotation_base(self):
        config = ptune_configuration(lenet5())
        for tuned in config.tuned_layers:
            assert tuned.params.a_dcmp_bits == GAZELLE_A_DCMP_BITS

    def test_cheetah_tunes_rotation_base_up(self):
        config = cheetah_configuration(lenet5())
        assert any(
            t.params.a_dcmp_bits > GAZELLE_A_DCMP_BITS for t in config.tuned_layers
        )


class TestSpeedups:
    def test_ordering(self, lenet5_report):
        """Gazelle slowest, Cheetah fastest; each optimization helps."""
        r = lenet5_report
        assert r.ptune_speedup > 1.0
        assert r.sched_pa_speedup > 1.0
        assert r.cheetah_speedup > r.ptune_speedup

    def test_combined_is_product(self, lenet5_report):
        r = lenet5_report
        assert r.cheetah_speedup == pytest.approx(
            r.ptune_speedup * r.sched_pa_speedup
        )

    def test_per_layer_speedups_positive(self, lenet5_report):
        assert all(s > 1.0 for s in lenet5_report.per_layer_speedups())

    def test_combined_magnitude_paper_range(self, lenet5_report):
        """Combined speedup should land in the paper's order of magnitude
        (Figure 6: roughly 4x to 80x per model)."""
        assert 3.0 < lenet5_report.cheetah_speedup < 100.0


class TestFleetSummary:
    def test_harmonic_mean(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_harmonic_mean_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_summary_excludes_mnist(self, lenet5_report):
        summary = FleetSummary([lenet5_report])
        assert summary.ptune_harmonic_mean(include_mnist=True) > 0
        with pytest.raises(ValueError):
            # Only MNIST models present -> excluding them leaves nothing.
            summary.ptune_harmonic_mean(include_mnist=False)

    def test_max_speedups(self, lenet5_report):
        summary = FleetSummary([lenet5_report])
        assert summary.max_combined_speedup() == lenet5_report.cheetah_speedup
        assert summary.max_sched_pa_speedup() == lenet5_report.sched_pa_speedup
