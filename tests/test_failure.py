"""Tests for the decryption-failure probability analysis."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.failure import failure_probability, max_noise_std, tail_factor


class TestFailureProbability:
    def test_paper_bound_form(self):
        """Pr <= 2 exp(-q^2 / (4 t^2 sigma^2))."""
        q, t, sigma = 1 << 54, 1 << 20, 1000.0
        ratio = q / (2 * t * sigma)
        expected = 2 * math.exp(-(ratio**2))
        assert failure_probability(q, t, sigma) == pytest.approx(expected)

    def test_monotone_in_sigma(self):
        q, t = 1 << 54, 1 << 20
        probs = [failure_probability(q, t, s) for s in (1e3, 1e6, 1e8)]
        assert probs == sorted(probs)

    def test_underflow_handled(self):
        assert failure_probability(1 << 100, 1 << 20, 1.0) == 0.0

    def test_zero_sigma(self):
        assert failure_probability(1 << 54, 1 << 20, 0.0) == 0.0

    def test_capped_at_one(self):
        assert failure_probability(4, 2, 1e9) <= 1.0


class TestTailFactor:
    def test_target_1e10(self):
        z = tail_factor(1e-10)
        assert 2 * math.exp(-(z**2)) == pytest.approx(1e-10, rel=1e-6)

    def test_stricter_target_larger_factor(self):
        assert tail_factor(1e-12) > tail_factor(1e-6)

    def test_invalid_targets(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                tail_factor(bad)

    @given(st.floats(min_value=1e-15, max_value=0.1))
    @settings(max_examples=30)
    def test_inverse_property(self, target):
        z = tail_factor(target)
        assert 2 * math.exp(-(z**2)) <= target * 1.0001


class TestMaxNoiseStd:
    def test_meets_target(self):
        q, t = 1 << 54, 1 << 20
        sigma = max_noise_std(q, t, 1e-10)
        assert failure_probability(q, t, sigma) <= 1e-10 * 1.001

    def test_larger_q_allows_more_noise(self):
        t = 1 << 20
        assert max_noise_std(1 << 60, t) > max_noise_std(1 << 54, t)
