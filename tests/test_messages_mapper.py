"""Coverage for protocol traffic accounting and accelerator mapping edges."""

import pytest

from repro.accel import map_layer, map_network, mean_out_cts, mean_partials
from repro.core.ptune import ModelParams
from repro.nn.layers import ConvLayer, FCLayer
from repro.protocol.messages import TrafficLog, ciphertext_bytes, plaintext_bytes


def mp(n=2048, q=54):
    return ModelParams(n=n, plain_bits=20, coeff_bits=q, w_dcmp_bits=10, a_dcmp_bits=9)


class TestTrafficLog:
    def test_directional_accounting(self):
        log = TrafficLog()
        log.send_to_cloud(100, "acts")
        log.send_to_client(250, "masked")
        log.end_round()
        assert log.client_to_cloud_bytes == 100
        assert log.cloud_to_client_bytes == 250
        assert log.total_bytes == 350
        assert log.rounds == 1

    def test_events_recorded(self):
        log = TrafficLog()
        log.send_to_cloud(10, "x")
        assert log.events == [("client->cloud", "x", 10)]

    def test_ciphertext_bytes_scale_with_params(self, small_params):
        assert ciphertext_bytes(small_params) == 2 * small_params.n * small_params.coeff_bits // 8

    def test_plaintext_smaller_than_ciphertext(self, small_params):
        assert plaintext_bytes(small_params) < ciphertext_bytes(small_params)


class TestMapperEdges:
    def test_split_image_case(self):
        """n < w^2: multiple ciphertexts per channel."""
        layer = ConvLayer("c", w=64, fw=3, ci=4, co=4)
        mapping = map_layer(layer, mp(n=1024))
        assert mapping.in_cts == -(-4 * 62 * 62 // 1024)
        assert mapping.out_cts > 1

    def test_fc_multiple_output_cts(self):
        layer = FCLayer("f", ni=4096, no=8192)
        mapping = map_layer(layer, mp(n=2048))
        assert mapping.out_cts == 4

    def test_map_network_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            map_network([FCLayer("f", 8, 4)], [])

    def test_means(self):
        layers = [FCLayer("f1", 2048, 2048), FCLayer("f2", 2048, 4096)]
        mappings = map_network(layers, [mp(), mp()])
        assert mean_out_cts(mappings) == pytest.approx(1.5)
        assert mean_partials(mappings) > 0

    def test_rejects_activation_layer(self):
        from repro.nn.layers import ActivationLayer

        with pytest.raises(TypeError):
            map_layer(ActivationLayer("r", "relu", 10), mp())
