"""Tests for HE-PTune's design-space exploration (Section IV)."""

import pytest

from repro.core.noise_model import NoiseMode, Schedule
from repro.core.ptune import (
    HePTune,
    ModelParams,
    SearchSpace,
    infeasible_fraction,
)
from repro.nn.layers import ConvLayer, FCLayer
from repro.nn.models import lenet5


@pytest.fixture(scope="module")
def tuner():
    return HePTune()


@pytest.fixture(scope="module")
def conv_layer():
    return ConvLayer("c", w=14, fw=5, ci=6, co=16)


class TestModelParams:
    def test_derived_quantities(self):
        p = ModelParams(n=4096, plain_bits=20, coeff_bits=60, w_dcmp_bits=10, a_dcmp_bits=15)
        assert p.l_pt == 2
        assert p.l_ct == 4
        assert p.noise_capacity_bits == 39
        assert p.w_dcmp == 1024

    def test_realize_produces_usable_params(self):
        p = ModelParams(n=2048, plain_bits=20, coeff_bits=54, w_dcmp_bits=10, a_dcmp_bits=9)
        real = p.realize()
        assert real.n == 2048
        assert real.plain_modulus.bit_length() == 20
        assert abs(real.coeff_bits - 54) <= 2

    def test_describe(self):
        p = ModelParams(n=2048, plain_bits=20, coeff_bits=54, w_dcmp_bits=10, a_dcmp_bits=9)
        assert "n=2048" in p.describe()


class TestSearchSpace:
    def test_q_options_respect_security(self):
        space = SearchSpace()
        options = space.q_bits_options(2048)
        assert max(options) == 54
        assert min(options) >= space.q_bits_min

    def test_ceiling_included(self):
        space = SearchSpace(q_bits_step=50)
        assert 109 in space.q_bits_options(4096)


class TestTuning:
    def test_tuned_layer_is_feasible(self, tuner, conv_layer):
        tuned = tuner.tune_layer(conv_layer)
        assert tuned.noise.budget_bits > 0
        assert tuned.int_mults > 0

    def test_tuned_layer_is_optimal_in_space(self, tuner, conv_layer):
        tuned = tuner.tune_layer(conv_layer)
        for candidate in tuner.candidates(conv_layer):
            if candidate.noise.budget_bits > 0:
                assert tuned.int_mults <= candidate.int_mults

    def test_pa_forces_single_window(self, conv_layer):
        tuner = HePTune(schedule=Schedule.PARTIAL_ALIGNED)
        tuned = tuner.tune_layer(conv_layer)
        assert tuned.op_counts.he_mult <= tuned.op_counts.he_rotate * 2  # no l_pt blowup

    def test_network_tuning_counts(self, tuner):
        net = lenet5()
        tuned = tuner.tune_network(net)
        assert len(tuned) == len(net.linear_layers)

    def test_global_tuning_single_config(self, tuner):
        net = lenet5()
        tuned = tuner.tune_network_global(net)
        params = {t.params for t in tuned}
        assert len(params) == 1

    def test_global_never_beats_per_layer(self):
        net = lenet5()
        tuner = HePTune()
        per_layer = sum(t.int_mults for t in tuner.tune_network(net))
        global_cfg = sum(t.int_mults for t in tuner.tune_network_global(net))
        assert per_layer <= global_cfg

    def test_worst_mode_needs_more_budget(self, conv_layer):
        practical = HePTune(mode=NoiseMode.PRACTICAL).tune_layer(conv_layer)
        worst = HePTune(mode=NoiseMode.WORST).tune_layer(conv_layer)
        assert worst.int_mults >= practical.int_mults

    def test_impossible_space_raises(self, conv_layer):
        space = SearchSpace(n_options=(1024,), q_bits_min=24, q_bits_step=60)
        tuner = HePTune(space=space, mode=NoiseMode.WORST)
        with pytest.raises(RuntimeError):
            tuner.tune_layer(conv_layer)


class TestInfeasibleFraction:
    def test_many_points_infeasible_for_deep_layer(self):
        """Section IV-C: most of the raw space fails for ImageNet layers.

        The paper reports >99% over an unfiltered sweep; our grid already
        prunes insecure (n, q) pairs, so we assert the qualitative claim:
        a substantial share of even the curated space fails, and deep
        layers fail more often than small ones.
        """
        deep = ConvLayer("c", w=28, fw=3, ci=256, co=256)
        small = FCLayer("f", ni=100, no=10)
        tuner = HePTune(mode=NoiseMode.WORST, schedule=Schedule.INPUT_ALIGNED)
        deep_fraction = infeasible_fraction(tuner, deep)
        small_fraction = infeasible_fraction(tuner, small)
        assert deep_fraction > 0.25
        assert deep_fraction > small_fraction
