"""Unit + property tests for the batch encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv import BfvParameters
from repro.bfv.encoder import BatchEncoder


@pytest.fixture(scope="module")
def encoder():
    params = BfvParameters.create(
        n=64, plain_bits=18, coeff_bits=40, require_security=False
    )
    return BatchEncoder(params)


class TestRoundtrip:
    def test_unsigned_roundtrip(self, encoder):
        values = np.arange(encoder.slot_count)
        decoded = encoder.decode(encoder.encode(values), signed=False)
        assert np.array_equal(decoded, values)

    def test_signed_roundtrip(self, encoder):
        values = np.arange(-32, 32)
        decoded = encoder.decode(encoder.encode(values))
        assert np.array_equal(decoded, values)

    def test_partial_vector_zero_pads(self, encoder):
        values = np.array([5, 6, 7])
        decoded = encoder.decode(encoder.encode(values), signed=False)
        assert np.array_equal(decoded[:3], values)
        assert not decoded[3:].any()

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=64))
    @settings(max_examples=30)
    def test_roundtrip_property(self, values):
        params = BfvParameters.create(
            n=64, plain_bits=18, coeff_bits=40, require_security=False
        )
        enc = BatchEncoder(params)
        decoded = enc.decode(enc.encode(np.array(values)))
        assert np.array_equal(decoded[: len(values)], np.array(values))

    def test_rejects_oversized(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode(np.zeros(encoder.slot_count + 1, dtype=np.int64))


class TestSlotStructure:
    def test_index_map_is_bijection(self, encoder):
        mapping = encoder._slot_to_eval
        assert sorted(mapping) == list(range(encoder.slot_count))

    def test_row_encode_isolates_rows(self, encoder):
        row0 = encoder.encode_row(np.array([1, 2, 3]), row=0)
        row1 = encoder.encode_row(np.array([4, 5, 6]), row=1)
        d0 = encoder.decode(row0, signed=False)
        d1 = encoder.decode(row1, signed=False)
        half = encoder.row_size
        assert np.array_equal(d0[:3], [1, 2, 3]) and not d0[half:].any()
        assert np.array_equal(d1[half : half + 3], [4, 5, 6]) and not d1[:half].any()

    def test_row_decode(self, encoder):
        pt = encoder.encode_row(np.array([9, 8, 7]), row=1)
        assert np.array_equal(encoder.decode_row(pt, row=1)[:3], [9, 8, 7])

    def test_row_rejects_oversized(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode_row(np.zeros(encoder.row_size + 1, dtype=np.int64))


class TestSemantics:
    def test_slotwise_addition(self, encoder):
        """Encoding is a ring homomorphism: slot add == poly add."""
        t = encoder.params.plain_modulus
        a = np.arange(encoder.slot_count)
        b = np.arange(encoder.slot_count) * 3
        pa, pb = encoder.encode(a), encoder.encode(b)
        summed = type(pa)((pa.coeffs + pb.coeffs) % t)
        assert np.array_equal(encoder.decode(summed, signed=False), (a + b) % t)

    def test_constant_vector_is_constant_polynomial(self, encoder):
        pt = encoder.encode(np.full(encoder.slot_count, 7))
        assert pt.coeffs[0] == 7
        assert not pt.coeffs[1:].any()
