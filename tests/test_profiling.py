"""Tests for profiling, the limit study (Fig. 7) and the GPU model (Fig. 8)."""

import pytest

from repro.core.baselines import cheetah_configuration
from repro.nn.models import lenet5
from repro.profiling import (
    PEAK_SPEEDUP,
    estimated_cpu_seconds,
    gpu_ntt_speedup,
    layer_breakdown,
    limit_study,
    measure_unit_costs,
    network_profile,
    sweep,
    warp_execution_efficiency,
    warp_occupancy,
)


@pytest.fixture(scope="module")
def lenet_tuned():
    return cheetah_configuration(lenet5()).tuned_layers


@pytest.fixture(scope="module")
def lenet_profile(lenet_tuned):
    return network_profile(lenet_tuned)


class TestKernelBreakdown:
    def test_fractions_sum_to_one(self, lenet_profile):
        assert sum(lenet_profile.fractions().values()) == pytest.approx(1.0)

    def test_ntt_dominates(self, lenet_profile):
        """Figure 7a headline: NTT is the primary bottleneck."""
        assert lenet_profile.dominant() == "ntt"
        assert lenet_profile.fractions()["ntt"] > 0.4

    def test_add_negligible(self, lenet_profile):
        assert lenet_profile.fractions()["add"] < 0.05

    def test_rotate_second_tier(self, lenet_profile):
        fractions = lenet_profile.fractions()
        assert fractions["rotate"] > fractions["add"]

    def test_layer_breakdown_positive(self, lenet_tuned):
        breakdown = layer_breakdown(lenet_tuned[0])
        assert breakdown.total > 0
        assert breakdown.ntt > 0


class TestUnitCosts:
    def test_measured_costs_positive(self):
        costs = measure_unit_costs(n=1024, repeats=3)
        assert costs.per_butterfly > 0
        assert costs.per_modmul > 0
        assert costs.per_modadd > 0

    def test_estimated_cpu_seconds(self, lenet_tuned):
        costs = measure_unit_costs(n=1024, repeats=3)
        assert estimated_cpu_seconds(lenet_tuned, costs) > 0


class TestLimitStudy:
    def test_converges_to_target(self, lenet_profile):
        result = limit_study(lenet_profile, total_seconds=970.0, target_seconds=0.1)
        assert result.final_seconds <= 0.1

    def test_speedups_are_powers_of_two(self, lenet_profile):
        result = limit_study(lenet_profile, 970.0, 0.1)
        for factor in result.speedups.values():
            assert factor & (factor - 1) == 0

    def test_ntt_needs_most_speedup(self, lenet_profile):
        """Figure 7b: NTT requires the largest factor."""
        result = limit_study(lenet_profile, 970.0, 0.1)
        assert result.speedups["ntt"] == max(result.speedups.values())

    def test_magnitudes_match_paper_order(self, lenet_profile):
        """Paper: NTT 16384x, Rotate 8192x, Mult/Add 4096x (ResNet50)."""
        result = limit_study(lenet_profile, 970.0, 0.1)
        assert 1024 <= result.speedups["ntt"] <= 65536

    def test_trajectory_monotone(self, lenet_profile):
        result = limit_study(lenet_profile, 970.0, 0.1)
        totals = [t for _, _, t in result.trajectory]
        assert totals == sorted(totals, reverse=True)

    def test_invalid_target(self, lenet_profile):
        with pytest.raises(ValueError):
            limit_study(lenet_profile, 970.0, 0.0)


class TestGpuModel:
    def test_monotone_in_batch(self):
        speedups = [gpu_ntt_speedup(b) for b in (1, 8, 64, 512, 1024)]
        assert speedups == sorted(speedups)

    def test_saturates_near_120(self):
        """Figure 8: speedup saturates around 120x at batch 512-1024."""
        assert 100 <= gpu_ntt_speedup(512) <= PEAK_SPEEDUP
        assert 105 <= gpu_ntt_speedup(1024) <= PEAK_SPEEDUP

    def test_small_batch_far_from_peak(self):
        assert gpu_ntt_speedup(1) < 0.2 * PEAK_SPEEDUP

    def test_larger_n_saturates_earlier(self):
        assert gpu_ntt_speedup(64, n=65536) > gpu_ntt_speedup(64, n=16384)

    def test_paper_measurements_at_512(self):
        """nvprof at batch 512: 70% occupancy, 85% execution efficiency."""
        assert warp_occupancy(512) == pytest.approx(0.70, abs=0.08)
        assert warp_execution_efficiency(512) == pytest.approx(0.85)

    def test_sweep_grid(self):
        points = sweep([1, 512], [16384, 65536])
        assert len(points) == 4
        assert all(p.speedup > 0 for p in points)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            gpu_ntt_speedup(0)
