"""Tests for the ahead-of-time model artifact subsystem (repro.artifacts).

Covers the two guarantees the subsystem exists for -- warm starts do
**zero recompute** (no NTT transforms, memmapped read-only stacks) and
serve **bit-identical logits** to a fresh compile -- plus the integrity
discipline: truncated, bit-flipped, version-skewed, or wrong-parameter
artifacts are rejected with specific errors instead of corrupting plans.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.artifacts import (
    ArtifactError,
    load_artifact,
    load_zoo,
    read_manifest,
    save_artifact,
    update_manifest,
)
from repro.artifacts.format import FORMAT_VERSION, MAGIC, _PREFIX
from repro.bfv import BfvParameters
from repro.bfv.counters import counting
from repro.core.noise_model import Schedule
from repro.nn.layers import ActivationLayer, ConvLayer, FCLayer
from repro.nn.models import Network, network_from_dict, network_to_dict
from repro.protocol import GazelleProtocol
from repro.scheduling.plan import ConvPlan, FcPlan
from repro.serving import (
    DEMO_RESCALE_BITS,
    ClientSession,
    LoopbackTransport,
    ModelRegistry,
    ServingEngine,
    demo_image,
    demo_network,
    demo_weights,
)

SERVE_SCHEDULE = Schedule.INPUT_ALIGNED


@pytest.fixture(scope="module")
def serve_params() -> BfvParameters:
    return BfvParameters.create(
        n=2048, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


@pytest.fixture(scope="module")
def fresh_registry(serve_params) -> ModelRegistry:
    registry = ModelRegistry()
    registry.register(
        "demo",
        demo_network(),
        demo_weights(),
        serve_params,
        schedule=SERVE_SCHEDULE,
        rescale_bits=DEMO_RESCALE_BITS,
    )
    return registry


@pytest.fixture(scope="module")
def artifact_path(fresh_registry, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "demo.rpa"
    save_artifact(fresh_registry.get("demo"), path)
    return path


def _small_params() -> BfvParameters:
    return BfvParameters.create(
        n=256, plain_bits=18, coeff_bits=90, a_dcmp_bits=16,
        require_security=False,
    )


def _small_network() -> Network:
    return Network(
        "TinyCNN",
        [
            ConvLayer("c1", w=4, fw=3, ci=1, co=2),
            ActivationLayer("r1", "relu", 2 * 2 * 2),
            FCLayer("f1", 8, 4),
        ],
    )


def _small_weights(seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "c1": rng.integers(-4, 5, (2, 1, 3, 3)),
        "f1": rng.integers(-4, 5, (4, 8)),
    }


@pytest.fixture()
def small_artifact(tmp_path):
    registry = ModelRegistry()
    entry = registry.register(
        "tiny", _small_network(), _small_weights(), _small_params(),
        schedule=Schedule.PARTIAL_ALIGNED, rescale_bits=2,
    )
    path = tmp_path / "tiny.rpa"
    save_artifact(entry, path)
    return entry, path


class TestRoundTrip:
    def test_zero_recompute_warm_start(self, fresh_registry, artifact_path):
        """Loading must run zero NTT transforms and copy nothing."""
        fresh = fresh_registry.get("demo")
        with counting() as delta:
            registry = ModelRegistry()
            entry = registry.register_artifact(artifact_path)
        assert delta().ntt == 0, "artifact load must not pay any NTT"
        assert entry.rotation_steps == fresh.rotation_steps
        assert entry.schedule is fresh.schedule
        assert entry.rescale_bits == fresh.rescale_bits
        for name, plan in fresh.plans.items():
            loaded = entry.plans[name]
            assert loaded.metadata() == plan.metadata()
            assert np.array_equal(loaded.weight_stacks, plan.weight_stacks)
            # Memmap-backed and read-only: pages are shared, never copied.
            assert not loaded.weight_stacks.flags.writeable
            assert isinstance(loaded.weight_stacks.base, np.memmap) or isinstance(
                loaded.weight_stacks, np.memmap
            )

    def test_serving_bit_identical_to_fresh_compile(
        self, fresh_registry, serve_params, artifact_path
    ):
        """Loopback serving off the artifact == fresh compile == direct run."""
        registry = ModelRegistry()
        registry.register_artifact(artifact_path)
        image = demo_image(11)
        logits = {}
        for tag, source in (("fresh", fresh_registry), ("artifact", registry)):
            engine = ServingEngine(source, max_batch=1, seed=5)
            session = ClientSession(
                demo_network(), serve_params, LoopbackTransport(engine), seed=7
            )
            session.connect("demo")
            logits[tag] = session.infer(image).logits
        direct = GazelleProtocol(
            demo_network(), demo_weights(), serve_params,
            schedule=SERVE_SCHEDULE, rescale_bits=DEMO_RESCALE_BITS, seed=3,
        ).run(image).logits
        assert np.array_equal(logits["artifact"], logits["fresh"])
        assert np.array_equal(logits["artifact"], direct)

    def test_gazelle_protocol_direct_on_loaded_plans(self, small_artifact):
        """Loaded plans also execute directly (not only through serving)."""
        entry, path = small_artifact
        loaded = ModelRegistry().register_artifact(path)
        scheme = loaded.scheme
        secret, public = scheme.keygen()
        steps = loaded.rotation_steps
        keys = scheme.generate_galois_keys(secret, steps)
        plan = loaded.plans["f1"]
        from repro.scheduling.fc import pack_fc_input

        x = np.arange(8)
        packed = pack_fc_input(x, scheme.params.row_size)
        ct = scheme.encrypt(scheme.encoder.encode_row(packed), public)
        got = scheme.decrypt_values(plan.execute(ct, keys), secret, signed=False)
        want = scheme.decrypt_values(
            entry.plans["f1"].execute(ct, keys), secret, signed=False
        )
        assert np.array_equal(got, want)

    def test_network_dict_round_trip(self):
        network = demo_network()
        assert network_from_dict(network_to_dict(network)) == network


class TestIntegrity:
    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.rpa"
        path.write_bytes(b"definitely not an artifact, but long enough" * 4)
        with pytest.raises(ArtifactError, match="not a repro model artifact"):
            load_artifact(path)

    def test_truncated_artifact_rejected(self, small_artifact, tmp_path):
        _entry, path = small_artifact
        blob = path.read_bytes()
        clipped = tmp_path / "clipped.rpa"
        clipped.write_bytes(blob[: len(blob) - 100])
        with pytest.raises(ArtifactError, match="truncated"):
            load_artifact(clipped)

    def test_bit_flipped_section_rejected(self, small_artifact, tmp_path):
        _entry, path = small_artifact
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x40  # inside the last weight section
        flipped = tmp_path / "flipped.rpa"
        flipped.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="CRC-32 mismatch"):
            load_artifact(flipped)
        with pytest.raises(ArtifactError, match="corrupted"):
            load_artifact(flipped, verify="full")

    def test_full_verify_checks_sha256(self, small_artifact, tmp_path):
        """A forged section that fools CRC-32 still fails the SHA-256 pass."""
        import json
        import zlib

        _entry, path = small_artifact
        blob = bytearray(path.read_bytes())
        header_len = struct.unpack_from("<I", blob, _PREFIX.size - 4)[0]
        header = json.loads(bytes(blob[_PREFIX.size : _PREFIX.size + header_len]))
        # Flip a section byte AND fix up the stored CRC to match, as an
        # attacker (or a very unlucky disk) could; re-seal the header hash.
        blob[-1] ^= 0x40
        data_start = (
            (_PREFIX.size + header_len + 4096 - 1) // 4096 * 4096
        )
        last = max(header["sections"], key=lambda s: s["offset"])
        start = data_start + last["offset"]
        count = int(np.prod(last["shape"]))
        last["crc32"] = zlib.crc32(bytes(blob[start : start + count * 8]))
        new_header = json.dumps(header, sort_keys=True).encode()
        import hashlib

        rebuilt = bytearray()
        rebuilt += struct.pack(
            "<4sI32sI", MAGIC, FORMAT_VERSION,
            hashlib.sha256(new_header).digest(), len(new_header),
        )
        rebuilt += new_header
        new_data_start = (len(rebuilt) + 4096 - 1) // 4096 * 4096
        rebuilt += b"\0" * (new_data_start - len(rebuilt))
        rebuilt += blob[data_start:]
        forged = tmp_path / "forged.rpa"
        forged.write_bytes(bytes(rebuilt))
        load_artifact(forged)  # CRC passes: the forgery is consistent
        with pytest.raises(ArtifactError, match="SHA-256 mismatch"):
            load_artifact(forged, verify="full")

    def test_bit_flipped_header_rejected(self, small_artifact, tmp_path):
        _entry, path = small_artifact
        blob = bytearray(path.read_bytes())
        blob[_PREFIX.size + 10] ^= 0x01  # inside the header JSON
        flipped = tmp_path / "flipped.rpa"
        flipped.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="header corrupted"):
            load_artifact(flipped)

    def test_version_mismatch_rejected(self, small_artifact, tmp_path):
        _entry, path = small_artifact
        blob = bytearray(path.read_bytes())
        blob[4:8] = struct.pack("<I", FORMAT_VERSION + 1)
        skewed = tmp_path / "skewed.rpa"
        skewed.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="format version"):
            load_artifact(skewed)
        assert blob[:4] == MAGIC  # the version field really was what flipped

    def test_unknown_verify_level_rejected(self, small_artifact):
        """A typo'd verify level must not silently degrade the check."""
        _entry, path = small_artifact
        with pytest.raises(ValueError, match="verify must be"):
            load_artifact(path, verify="FULL")

    def test_wrong_params_rejected(self, small_artifact):
        _entry, path = small_artifact
        other = BfvParameters.create(
            n=256, plain_bits=17, coeff_bits=90, a_dcmp_bits=16,
            require_security=False,
        )
        with pytest.raises(ArtifactError, match="different parameters"):
            load_artifact(path, params=other)

    def test_from_stacks_rejects_mismatched_shapes(self, small_artifact):
        entry, _path = small_artifact
        scheme = entry.scheme
        good = entry.plans["c1"]
        with pytest.raises(ValueError, match="shape"):
            ConvPlan.from_stacks(
                scheme,
                schedule=good.schedule,
                grid_w=good.grid_w,
                co=good.co + 1,  # claims one more channel than the stack has
                ci=good.ci,
                fw=good.fw,
                offsets=good.offsets,
                weight_stacks=good.weight_stacks,
            )
        fc = entry.plans["f1"]
        with pytest.raises(ValueError, match="shape"):
            FcPlan.from_stacks(
                scheme,
                schedule=fc.schedule,
                ni=fc.ni,
                no=fc.no,
                no_eff=fc.no_eff,
                weight_stacks=fc.weight_stacks[:, :-1],
            )


class TestZoo:
    def test_multi_model_zoo_round_trip(self, tmp_path):
        registry = ModelRegistry()
        params = _small_params()
        for index, name in enumerate(["alpha", "beta"]):
            entry = registry.register(
                name, _small_network(), _small_weights(seed=index), params,
                schedule=Schedule.PARTIAL_ALIGNED, rescale_bits=2,
            )
            path = tmp_path / f"{name}.rpa"
            save_artifact(entry, path, tuned={"n": params.n})
            update_manifest(tmp_path, load_artifact(path), path.name)

        manifest = read_manifest(tmp_path)
        assert [m["name"] for m in manifest["models"]] == ["alpha", "beta"]
        assert all(m["tuned"] == {"n": params.n} for m in manifest["models"])
        assert all(m["params"]["n"] == params.n for m in manifest["models"])

        loaded = load_zoo(tmp_path)
        assert loaded.names() == ["alpha", "beta"]
        assert not np.array_equal(
            loaded.get("alpha").plans["c1"].weight_stacks,
            loaded.get("beta").plans["c1"].weight_stacks,
        )

    def test_zoo_rejects_duplicate_model_names(self, tmp_path):
        registry = ModelRegistry()
        entry = registry.register(
            "tiny", _small_network(), _small_weights(), _small_params(),
            schedule=Schedule.PARTIAL_ALIGNED, rescale_bits=2,
        )
        save_artifact(entry, tmp_path / "a.rpa")
        save_artifact(entry, tmp_path / "b.rpa")
        with pytest.raises(ArtifactError, match="redeclares"):
            load_zoo(tmp_path)

    def test_zoo_warns_on_unlisted_artifact(self, tmp_path):
        """A .rpa sitting next to a manifest that omits it is an operator
        mistake (compile without --manifest) -- warn, don't silently skip."""
        registry = ModelRegistry()
        listed = registry.register(
            "listed", _small_network(), _small_weights(), _small_params(),
            schedule=Schedule.PARTIAL_ALIGNED, rescale_bits=2,
        )
        path = tmp_path / "listed.rpa"
        save_artifact(listed, path)
        update_manifest(tmp_path, load_artifact(path), "listed.rpa")
        stray = registry.register(
            "stray", _small_network(), _small_weights(seed=9), _small_params(),
            schedule=Schedule.PARTIAL_ALIGNED, rescale_bits=2,
        )
        save_artifact(stray, tmp_path / "stray.rpa")
        with pytest.warns(UserWarning, match="stray.rpa.*not listed"):
            loaded = load_zoo(tmp_path)
        assert loaded.names() == ["listed"]

    def test_zoo_manifest_missing_file(self, tmp_path):
        registry = ModelRegistry()
        entry = registry.register(
            "tiny", _small_network(), _small_weights(), _small_params(),
            schedule=Schedule.PARTIAL_ALIGNED, rescale_bits=2,
        )
        path = tmp_path / "tiny.rpa"
        save_artifact(entry, path)
        update_manifest(tmp_path, load_artifact(path), "tiny.rpa")
        path.unlink()
        with pytest.raises(ArtifactError, match="missing"):
            load_zoo(tmp_path)

    def test_empty_zoo_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="no .* artifacts"):
            load_zoo(tmp_path)


class TestRegistryValidation:
    """Satellite: weights are validated before any compilation starts."""

    def _register(self, weights):
        ModelRegistry().register(
            "tiny", _small_network(), weights, _small_params(),
            schedule=Schedule.PARTIAL_ALIGNED, rescale_bits=2,
        )

    def test_missing_layer_rejected(self):
        weights = _small_weights()
        del weights["f1"]
        with pytest.raises(ValueError, match="missing weights.*f1"):
            self._register(weights)

    def test_unexpected_key_rejected(self):
        weights = _small_weights()
        weights["ghost"] = np.zeros((1, 1), dtype=np.int64)
        with pytest.raises(ValueError, match="unexpected weight key.*ghost"):
            self._register(weights)

    def test_wrong_shape_rejected(self):
        weights = _small_weights()
        weights["c1"] = weights["c1"][:, :, :2, :2]
        with pytest.raises(ValueError, match=r"'c1' expects weights of shape"):
            self._register(weights)

    def test_float_weights_rejected(self):
        weights = _small_weights()
        weights["f1"] = weights["f1"].astype(np.float64)
        with pytest.raises(ValueError, match="integer .*weights"):
            self._register(weights)

    def test_all_problems_reported_at_once(self):
        weights = _small_weights()
        del weights["c1"]
        weights["ghost"] = np.zeros(3, dtype=np.int64)
        weights["f1"] = weights["f1"].astype(np.float32)
        with pytest.raises(ValueError) as excinfo:
            self._register(weights)
        message = str(excinfo.value)
        assert "missing" in message and "ghost" in message and "float32" in message
