"""Tests for HE-PTune's noise model (Tables III and V), including
validation that the model bounds measured noise on live ciphertexts."""

import math

import numpy as np
import pytest

from repro.bfv import invariant_noise_budget
from repro.bfv.noise import noise_magnitude
from repro.core.noise_model import (
    NoiseMode,
    Schedule,
    conv_output_noise,
    eta_mult,
    eta_rotate,
    fc_output_noise,
    fresh_noise,
    layer_output_noise,
    remaining_budget_bits,
)
from repro.core.ptune import ModelParams
from repro.nn.layers import ConvLayer, FCLayer


def params(n=2048, t=20, q=54, w=10, a=9):
    return ModelParams(n=n, plain_bits=t, coeff_bits=q, w_dcmp_bits=w, a_dcmp_bits=a)


class TestOperatorNoise:
    def test_worst_exceeds_practical(self):
        p = params()
        assert fresh_noise(p, NoiseMode.WORST) > fresh_noise(p, NoiseMode.PRACTICAL)
        assert eta_mult(p, NoiseMode.WORST) > eta_mult(p, NoiseMode.PRACTICAL)
        assert eta_rotate(p, NoiseMode.WORST) > eta_rotate(p, NoiseMode.PRACTICAL)

    def test_fresh_noise_table3(self):
        """Worst case is exactly 2 n B^2 with B = 6 sigma."""
        p = params()
        b = 6 * p.sigma
        assert fresh_noise(p, NoiseMode.WORST) == pytest.approx(2 * p.n * b * b)

    def test_eta_mult_table3(self):
        p = params()
        expected = p.n * p.l_pt * (p.w_dcmp / 2)
        assert eta_mult(p, NoiseMode.WORST) == pytest.approx(expected)

    def test_eta_rotate_table3(self):
        p = params()
        b = 6 * p.sigma
        expected = p.l_ct * p.a_dcmp * b * p.n / 2
        assert eta_rotate(p, NoiseMode.WORST) == pytest.approx(expected)

    def test_eta_mult_weight_bits_cap(self):
        p = params(w=20)
        capped = eta_mult(p, NoiseMode.WORST, weight_bits=5, l_pt=1)
        uncapped = eta_mult(p, NoiseMode.WORST, l_pt=1)
        assert capped < uncapped

    def test_eta_rotate_grows_with_base(self):
        small = eta_rotate(params(a=4))
        large = eta_rotate(params(a=20))
        assert large > small


class TestScheduleOrdering:
    @pytest.mark.parametrize(
        "layer",
        [ConvLayer("c", w=16, fw=3, ci=8, co=8), FCLayer("f", ni=256, no=64)],
    )
    def test_pa_noise_below_ia(self, layer):
        """eta_M v0 + eta_A < eta_M (v0 + eta_A): Sched-PA always wins."""
        p = params()
        for mode in NoiseMode:
            pa = layer_output_noise(layer, p, Schedule.PARTIAL_ALIGNED, mode)
            ia = layer_output_noise(layer, p, Schedule.INPUT_ALIGNED, mode)
            assert pa < ia

    def test_gap_widens_with_rotation_base(self):
        layer = ConvLayer("c", w=16, fw=3, ci=8, co=8)
        gaps = []
        for a_bits in (4, 12, 20):
            p = params(a=a_bits)
            pa = layer_output_noise(layer, p, Schedule.PARTIAL_ALIGNED)
            ia = layer_output_noise(layer, p, Schedule.INPUT_ALIGNED)
            gaps.append(ia / pa)
        assert gaps == sorted(gaps)


class TestLayerNoiseStructure:
    def test_conv_grows_with_channels(self):
        p = params()
        small = conv_output_noise(ConvLayer("c", w=16, fw=3, ci=4, co=4), p)
        large = conv_output_noise(ConvLayer("c", w=16, fw=3, ci=64, co=4), p)
        assert large > small

    def test_fc_grows_with_inputs(self):
        p = params()
        small = fc_output_noise(FCLayer("f", ni=64, no=16), p)
        large = fc_output_noise(FCLayer("f", ni=1024, no=16), p)
        assert large > small

    def test_budget_sign_tracks_capacity(self):
        layer = FCLayer("f", ni=256, no=64)
        tight = remaining_budget_bits(layer, params(q=30, t=20))
        roomy = remaining_budget_bits(layer, params(q=54, t=20))
        assert roomy.budget_bits > tight.budget_bits

    def test_infeasible_detection(self):
        layer = ConvLayer("c", w=32, fw=3, ci=512, co=512)
        estimate = remaining_budget_bits(
            layer, params(q=30, t=20), mode=NoiseMode.WORST
        )
        assert not estimate.decryptable

    def test_rejects_non_linear_layer(self):
        with pytest.raises(TypeError):
            layer_output_noise(object(), params())


class TestModelVsMeasured:
    """Section IV-B validation: the practical model must bound live noise."""

    def test_fresh_noise_bound_holds(self, conv_scheme, conv_keys):
        secret, public = conv_keys
        real = conv_scheme.params
        proxy = ModelParams(
            n=real.n,
            plain_bits=real.plain_modulus.bit_length(),
            coeff_bits=real.coeff_bits,
            w_dcmp_bits=real.w_dcmp_bits,
            a_dcmp_bits=real.a_dcmp_bits,
        )
        predicted = fresh_noise(proxy, NoiseMode.PRACTICAL)
        worst = fresh_noise(proxy, NoiseMode.WORST)
        measured = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            ct = conv_scheme.encrypt_values(rng.integers(0, 50, 32), public)
            # Invariant noise includes the r_t(q)*m term; remove headroom by
            # comparing magnitudes / t.
            measured.append(
                noise_magnitude(conv_scheme, ct, secret) / real.plain_modulus
            )
        assert max(measured) < worst
        # The practical estimate should be within ~6 bits of measurement.
        assert max(measured) < predicted * 64

    def test_budget_model_orders_parameter_sets(self):
        """More aggressive Adcmp must show a smaller predicted budget."""
        layer = FCLayer("f", ni=64, no=16)
        lo = remaining_budget_bits(layer, params(a=4))
        hi = remaining_budget_bits(layer, params(a=20))
        assert hi.budget_bits < lo.budget_bits
