"""Tests for the multi-process sharded execution backend (repro.serving.shards).

The conformance suite (``test_conformance.py``) pins sharded logits and
op counters against every other execution path; this file covers the
pool mechanics themselves: readiness, key broadcast/drop, row and
output-channel splitting, error propagation, and shutdown.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.nn.plaintext import PlaintextRunner
from repro.serving import (
    DEMO_RESCALE_BITS,
    ClientSession,
    LoopbackTransport,
    Message,
    ModelRegistry,
    ServingEngine,
    ShardError,
    ShardExecutor,
    ShardPool,
    demo_image,
    demo_network,
    demo_weights,
)

SCHEDULE = Schedule.INPUT_ALIGNED


@pytest.fixture(scope="module")
def shard_params() -> BfvParameters:
    return BfvParameters.create(
        n=256, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


@pytest.fixture(scope="module")
def artifact_dir(shard_params, tmp_path_factory):
    """A one-model artifact zoo both the registry and the pools load."""
    from repro.artifacts import save_artifact, update_manifest

    entry = ModelRegistry().register(
        "demo", demo_network(), demo_weights(), shard_params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )
    directory = tmp_path_factory.mktemp("shard-zoo")
    save_artifact(entry, directory / "demo.rpa")
    update_manifest(directory, entry, "demo.rpa")
    return directory


@pytest.fixture(scope="module")
def registry(artifact_dir):
    from repro.artifacts import load_zoo

    return load_zoo(artifact_dir)


@pytest.fixture(scope="module")
def pool(artifact_dir):
    with ShardPool(artifact_dir, workers=2) as pool:
        yield pool


@pytest.fixture(scope="module")
def plaintext_logits():
    runner = PlaintextRunner(
        demo_network(), demo_weights(), rescale_bits=DEMO_RESCALE_BITS
    )
    return lambda image: runner.run(image)


class TestPoolLifecycle:
    def test_workers_report_ready_with_models(self, pool):
        assert pool.alive_workers() == 2
        assert pool.model_names == ["demo"]
        reply = pool.ping(1)[0]
        assert reply.meta["status"] == "ok"
        assert reply.meta["models"] == ["demo"]
        # Workers are real separate processes, not threads.
        import os

        assert reply.meta["pid"] != os.getpid()

    def test_missing_artifact_dir_fails_startup(self, tmp_path):
        with pytest.raises(ShardError, match="failed"):
            ShardPool(tmp_path / "nowhere", workers=1, start_timeout_s=30).start()

    def test_stop_terminates_workers(self, artifact_dir):
        pool = ShardPool(artifact_dir, workers=1).start()
        assert pool.alive_workers() == 1
        pool.stop()
        assert pool.alive_workers() == 0
        with pytest.raises(ShardError, match="not running"):
            pool.execute([Message("ping", {})])

    def test_dead_worker_is_respawned_and_pool_keeps_serving(self, artifact_dir):
        """Supervision: a SIGKILLed worker is respawned, requests survive.

        The monitor thread must notice the corpse, fork a replacement
        incarnation from the same artifact dir, and keep the pool
        serving -- the request issued right after the kill lands on the
        survivor or the respawn, never on an error.
        """
        import os
        import signal
        import time

        pool = ShardPool(
            artifact_dir, workers=2, respawn_backoff_s=0.05,
        ).start()
        try:
            victim = pool._slots[0].process
            os.kill(victim.pid, signal.SIGKILL)
            # The pool answers even while one worker is down ...
            assert pool.ping(1)[0].meta["status"] == "ok"
            # ... and the supervisor restores full strength.
            deadline = time.monotonic() + 15.0
            while pool.alive_workers() < 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.alive_workers() == 2
            assert pool.respawns_total >= 1
            assert pool.available_workers() == 2
            replies = pool.ping(4)
            assert all(r.meta["status"] == "ok" for r in replies)
            incarnations = {
                (r.meta["worker"], r.meta["incarnation"]) for r in replies
            }
            assert any(inc > 0 for _w, inc in incarnations)
        finally:
            pool.stop()

    def test_worker_death_during_startup_raises_fast_without_leaks(
        self, artifact_dir
    ):
        """Satellite: a pre-readiness death aborts start() immediately.

        Without early dead-sentinel detection, start() would sit out the
        full start_timeout_s and could leave the live sibling running
        after the raise.
        """
        import time

        from repro.serving import WorkerFaults

        pool = ShardPool(
            artifact_dir, workers=2, start_timeout_s=60.0,
            fault_plan=WorkerFaults(startup_crash_worker=0),
        )
        start = time.monotonic()
        with pytest.raises(ShardError, match="died during startup"):
            pool.start()
        assert time.monotonic() - start < 30  # never waits out the timeout
        assert pool.alive_workers() == 0  # the sibling was cleaned up too

    def test_worker_error_propagates_without_killing_worker(self, pool):
        with pytest.raises(ShardError, match="no model"):
            pool.execute(
                [
                    Message(
                        "task",
                        {
                            "model": "nope", "layer": "conv1",
                            "key_ids": [], "cts_per_request": [],
                        },
                    )
                ]
            )
        # The worker survived the bad task and still answers.
        assert pool.ping(1)[0].meta["status"] == "ok"


class TestShardedServing:
    def test_sharded_logits_match_plaintext(
        self, registry, shard_params, pool, plaintext_logits
    ):
        engine = ServingEngine(
            registry, max_batch=1, executor=ShardExecutor(pool)
        )
        session = ClientSession(
            demo_network(), shard_params, LoopbackTransport(engine), seed=3
        )
        session.connect("demo")
        for seed in (0, 1):
            image = demo_image(seed)
            assert np.array_equal(
                session.infer(image).logits, plaintext_logits(image)
            )
        session.close()

    def test_concurrent_batched_sharded_sessions(
        self, registry, shard_params, pool, plaintext_logits
    ):
        """Cross-client batching + row-splitting across 2 workers."""
        clients = 4
        engine = ServingEngine(
            registry, max_batch=clients, batch_window_s=0.05,
            executor=ShardExecutor(pool),
        )
        transport = LoopbackTransport(engine)
        sessions = []
        for i in range(clients):
            session = ClientSession(
                demo_network(), shard_params, transport, seed=20 + i
            )
            session.connect("demo")
            sessions.append(session)
        images = [demo_image(100 + i) for i in range(clients)]
        results = [None] * clients
        errors = []

        def run(i):
            try:
                results[i] = sessions[i].infer(images[i])
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for i in range(clients):
            assert np.array_equal(
                results[i].logits, plaintext_logits(images[i])
            ), i

    def test_oc_split_bit_identical(
        self, registry, shard_params, pool, plaintext_logits
    ):
        """Splitting a conv by output channels must not change outputs.

        conv1 has co=4, so oc_split_min_co=2 forces the per-channel
        partition across both workers for a single request.
        """
        engine = ServingEngine(
            registry, max_batch=1,
            executor=ShardExecutor(pool, oc_split_min_co=2),
        )
        session = ClientSession(
            demo_network(), shard_params, LoopbackTransport(engine), seed=5
        )
        session.connect("demo")
        image = demo_image(7)
        assert np.array_equal(session.infer(image).logits, plaintext_logits(image))
        session.close()

    def test_session_close_drops_worker_key_cache(self, registry, shard_params, artifact_dir):
        with ShardPool(artifact_dir, workers=1) as pool:
            engine = ServingEngine(
                registry, max_batch=1, executor=ShardExecutor(pool)
            )
            session = ClientSession(
                demo_network(), shard_params, LoopbackTransport(engine), seed=9
            )
            session.connect("demo")
            session.infer(demo_image(0))
            # Key ids on the wire are scoped per executor+upload; the
            # session id is embedded in the middle.
            marker = f":{session.session_id}:"
            cached = pool.ping(1)[0].meta["cached_keys"]
            assert any(marker in key_id for key_id in cached), cached
            session.close()
            # Drops are applied when the worker next drains its key
            # channel; queue feeders are asynchronous, so give the drop
            # a bounded window to land rather than asserting one ping.
            import time

            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                cached = pool.ping(1)[0].meta["cached_keys"]
                if not any(marker in key_id for key_id in cached):
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"keys never dropped from worker cache: {cached}")

    def test_mismatched_registry_rejected(self, shard_params, pool):
        """A model the workers did not load must be rejected at key upload."""
        registry = ModelRegistry()
        registry.register(
            "other", demo_network(), demo_weights(seed=5), shard_params,
            schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
        )
        engine = ServingEngine(
            registry, max_batch=1, executor=ShardExecutor(pool)
        )
        session = ClientSession(
            demo_network(), shard_params, LoopbackTransport(engine), seed=11
        )
        from repro.serving import ServingError

        with pytest.raises(ServingError, match="artifact"):
            session.connect("other")


class TestOcRangePlanSlicing:
    """ConvPlan.execute(oc_range=...) is the primitive the split rides on."""

    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_slices_concatenate_to_full_run(self, schedule, shard_params):
        from repro.bfv import BfvScheme
        from repro.scheduling import ConvPlan, encrypt_channels
        from repro.scheduling.conv2d import _infer_width

        rng = np.random.default_rng(0)
        server = BfvScheme(shard_params, seed=42)
        weights = rng.integers(-4, 5, (5, 2, 3, 3))
        plan = ConvPlan.compile(server, weights, schedule)
        client = BfvScheme(shard_params, seed=1)
        secret, public = client.keygen()
        keys = client.generate_galois_keys(secret, plan.rotation_steps)
        grid_w = _infer_width(shard_params.row_size)
        grids = np.zeros((2, grid_w, grid_w), dtype=np.int64)
        grids[:, :6, :6] = rng.integers(0, 8, (2, 6, 6))
        cts = encrypt_channels(server, grids, public)
        full = plan.execute(cts, keys)
        sliced = [
            ct
            for oc_range in ((0, 2), (2, 3), (3, 5))
            for ct in plan.execute(cts, keys, oc_range=oc_range)
        ]
        assert len(sliced) == len(full)
        for got, want in zip(sliced, full):
            assert np.array_equal(got.c0.data, want.c0.data)
            assert np.array_equal(got.c1.data, want.c1.data)

    def test_invalid_oc_range_rejected(self, shard_params):
        from repro.bfv import BfvScheme
        from repro.scheduling import ConvPlan

        server = BfvScheme(shard_params, seed=42)
        weights = np.ones((2, 1, 3, 3), dtype=np.int64)
        plan = ConvPlan.compile(server, weights, Schedule.INPUT_ALIGNED)
        with pytest.raises(ValueError, match="oc_range"):
            plan.execute([], None, oc_range=(0, 3))
