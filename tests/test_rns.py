"""Unit + property tests for the RNS basis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.rns import RnsBasis


@pytest.fixture(scope="module")
def basis():
    return RnsBasis.for_bit_budget(60, 256)


class TestConstruction:
    def test_bit_budget_met(self, basis):
        assert 58 <= basis.bits <= 62

    def test_limbs_stay_under_int64_safe_width(self, basis):
        for prime in basis.primes:
            assert prime.bit_length() <= 30

    def test_ntt_friendly(self, basis):
        for prime in basis.primes:
            assert prime % 512 == 1  # 2n = 512

    def test_large_budget_partitions(self):
        basis = RnsBasis.for_bit_budget(100, 1024)
        assert 98 <= basis.bits <= 102
        assert basis.count == 4

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RnsBasis([257, 257])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RnsBasis([])

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            RnsBasis.for_bit_budget(10, 256)


class TestComposeDecompose:
    def test_roundtrip(self, basis):
        rng = np.random.default_rng(0)
        coeffs = np.array(
            [int(rng.integers(0, 1 << 57)) for _ in range(16)], dtype=object
        )
        assert np.array_equal(basis.compose(basis.decompose(coeffs)), coeffs)

    def test_values_reduced_mod_q(self, basis):
        q = basis.modulus
        coeffs = np.array([q + 5, 2 * q + 7], dtype=object)
        composed = basis.compose(basis.decompose(coeffs))
        assert list(composed) == [5, 7]

    def test_compose_validates_shape(self, basis):
        with pytest.raises(ValueError):
            basis.compose(np.zeros((basis.count + 1, 4), dtype=np.int64))

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 59)), min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_roundtrip_property(self, values):
        basis = RnsBasis.for_bit_budget(60, 256)
        coeffs = np.array(values, dtype=object) % basis.modulus
        assert np.array_equal(basis.compose(basis.decompose(coeffs)), coeffs)

    def test_additive_homomorphism(self, basis):
        rng = np.random.default_rng(1)
        a = np.array([int(rng.integers(0, 1 << 50)) for _ in range(8)], dtype=object)
        b = np.array([int(rng.integers(0, 1 << 50)) for _ in range(8)], dtype=object)
        primes = np.array(basis.primes, dtype=np.int64)[:, None]
        summed = (basis.decompose(a) + basis.decompose(b)) % primes
        assert np.array_equal(basis.compose(summed), (a + b) % basis.modulus)


class TestScalar:
    def test_reduce_scalar(self, basis):
        residues = basis.reduce_scalar(12345678901234567)
        for residue, prime in zip(residues, basis.primes):
            assert residue == 12345678901234567 % prime
