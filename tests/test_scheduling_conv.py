"""Live homomorphic convolution: correctness against the plaintext oracle."""

import numpy as np
import pytest

from repro.core.noise_model import Schedule
from repro.nn.plaintext import conv2d
from repro.scheduling import (
    conv2d_he_small,
    conv_rotation_steps,
    conv_tap_plaintext_ia,
    conv_tap_plaintext_pa,
    pack_image,
    tap_offset,
    unpack_image,
    valid_output_positions,
)


@pytest.fixture(scope="module")
def conv_galois(conv_scheme, conv_keys):
    secret, _ = conv_keys
    grid_w = int(np.sqrt(conv_scheme.params.row_size))
    steps = sorted(
        set(conv_rotation_steps(grid_w, 3)) | set(conv_rotation_steps(grid_w, 2))
    )
    return conv_scheme.generate_galois_keys(secret, steps)


class TestLayouts:
    def test_pack_unpack_roundtrip(self):
        image = np.arange(36).reshape(6, 6)
        assert np.array_equal(unpack_image(pack_image(image), 6), image)

    def test_pack_rejects_non_square(self):
        with pytest.raises(ValueError):
            pack_image(np.zeros((3, 4), dtype=np.int64))

    def test_tap_offset(self):
        assert tap_offset(0, 0, 10) == 0
        assert tap_offset(2, 3, 10) == 23

    def test_valid_positions_count(self):
        positions = valid_output_positions(8, 3)
        assert positions.shape[0] == 36  # (8-3+1)^2

    def test_pa_plaintext_zero_boundary(self):
        """Zeros must appear exactly outside shifted valid positions."""
        tap = conv_tap_plaintext_pa(5, 8, 3, 1, 1, 64)
        expected_nonzero = valid_output_positions(8, 3) + tap_offset(1, 1, 8)
        nonzero = np.nonzero(tap)[0]
        assert np.array_equal(np.sort(expected_nonzero), nonzero)

    def test_ia_plaintext_sits_at_outputs(self):
        tap = conv_tap_plaintext_ia(5, 8, 3, 2, 2, 64)
        assert np.array_equal(np.nonzero(tap)[0], np.sort(valid_output_positions(8, 3)))


class TestConvCorrectness:
    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_single_channel(self, conv_scheme, conv_keys, conv_galois, schedule, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 16, (1, 6, 6))
        weights = rng.integers(-4, 5, (1, 1, 3, 3))
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, conv_galois, schedule
        )
        assert np.array_equal(out, conv2d(acts, weights))

    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_multi_channel(self, conv_scheme, conv_keys, conv_galois, schedule, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 8, (3, 6, 6))
        weights = rng.integers(-4, 5, (2, 3, 3, 3))
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, conv_galois, schedule
        )
        assert np.array_equal(out, conv2d(acts, weights))

    def test_2x2_filter(self, conv_scheme, conv_keys, conv_galois, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 10, (1, 5, 5))
        weights = rng.integers(-3, 4, (1, 1, 2, 2))
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, conv_galois
        )
        assert np.array_equal(out, conv2d(acts, weights))

    def test_negative_activations(self, conv_scheme, conv_keys, conv_galois, rng):
        secret, public = conv_keys
        acts = rng.integers(-8, 8, (1, 6, 6))
        weights = rng.integers(-4, 5, (1, 1, 3, 3))
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, conv_galois
        )
        assert np.array_equal(out, conv2d(acts, weights))

    def test_identity_filter(self, conv_scheme, conv_keys, conv_galois, rng):
        secret, public = conv_keys
        acts = rng.integers(0, 16, (1, 6, 6))
        weights = np.zeros((1, 1, 3, 3), dtype=np.int64)
        weights[0, 0, 0, 0] = 1
        out = conv2d_he_small(
            conv_scheme, acts, weights, public, secret, conv_galois
        )
        assert np.array_equal(out, acts[:, :4, :4])

    def test_oversized_image_rejected(self, conv_scheme, conv_keys, conv_galois):
        secret, public = conv_keys
        w = int(np.sqrt(conv_scheme.params.row_size)) + 1
        acts = np.zeros((1, w, w), dtype=np.int64)
        weights = np.zeros((1, 1, 3, 3), dtype=np.int64)
        with pytest.raises(ValueError):
            conv2d_he_small(conv_scheme, acts, weights, public, secret, conv_galois)

    def test_channel_count_mismatch_rejected(self, conv_scheme, conv_keys, conv_galois):
        from repro.scheduling.conv2d import conv2d_he, encrypt_channels

        secret, public = conv_keys
        grid_w = int(np.sqrt(conv_scheme.params.row_size))
        cts = encrypt_channels(
            conv_scheme, np.zeros((1, grid_w, grid_w), dtype=np.int64), public
        )
        weights = np.zeros((1, 2, 3, 3), dtype=np.int64)  # wants 2 channels
        with pytest.raises(ValueError):
            conv2d_he(conv_scheme, cts, weights, conv_galois)
