"""Tests for the wire format (parameters, plaintexts, ciphertexts)."""

import numpy as np
import pytest

from repro.bfv.serialize import (
    ciphertext_wire_bytes,
    deserialize_ciphertext,
    deserialize_plaintext,
    params_from_dict,
    params_to_dict,
    serialize_ciphertext,
    serialize_plaintext,
)


class TestParams:
    def test_roundtrip(self, small_params):
        data = params_to_dict(small_params)
        restored = params_from_dict(data)
        assert restored.n == small_params.n
        assert restored.plain_modulus == small_params.plain_modulus
        assert restored.coeff_basis.primes == small_params.coeff_basis.primes
        assert restored.l_ct == small_params.l_ct

    def test_json_safe(self, small_params):
        import json

        json.dumps(params_to_dict(small_params))


class TestPlaintext:
    def test_roundtrip(self, small_scheme):
        pt = small_scheme.encoder.encode(np.arange(30))
        restored = deserialize_plaintext(serialize_plaintext(pt))
        assert np.array_equal(restored.coeffs, pt.coeffs)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            deserialize_plaintext(b"not a plaintext blob")


class TestCiphertext:
    def test_roundtrip_decrypts(self, small_scheme, small_keys):
        secret, public = small_keys
        values = np.arange(20)
        ct = small_scheme.encrypt_values(values, public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        restored = deserialize_ciphertext(blob, small_scheme.params)
        decoded = small_scheme.decrypt_values(restored, secret, signed=False)
        assert np.array_equal(decoded[:20], values)

    def test_restored_ciphertext_still_computes(
        self, small_scheme, small_keys, small_galois
    ):
        secret, public = small_keys
        values = np.arange(small_scheme.params.row_size)
        ct = small_scheme.encrypt(small_scheme.encoder.encode_row(values), public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        restored = deserialize_ciphertext(blob, small_scheme.params)
        rotated = small_scheme.rotate_rows(restored, 1, small_galois)
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(rotated, secret), signed=False
        )
        assert np.array_equal(decoded, np.roll(values, -1))

    def test_wire_size(self, small_scheme, small_keys):
        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(4), public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        data_bytes = ciphertext_wire_bytes(small_scheme.params)
        assert len(blob) > data_bytes  # header on top of payload
        assert len(blob) < data_bytes + 2048

    def test_parameter_mismatch_detected(self, small_scheme, small_keys):
        from repro.bfv import BfvParameters

        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(4), public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        other = BfvParameters.create(
            n=small_scheme.params.n,
            plain_bits=18,
            coeff_bits=40,
            require_security=False,
        )
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob, other)


class TestGaloisKeys:
    def test_roundtrip_rotates_correctly(self, small_scheme, small_keys):
        from repro.bfv.serialize import (
            deserialize_galois_keys,
            serialize_galois_keys,
        )

        secret, public = small_keys
        keys = small_scheme.generate_galois_keys(secret, [1, 3])
        blob = serialize_galois_keys(keys, small_scheme.params)
        restored = deserialize_galois_keys(blob, small_scheme.params)
        values = np.arange(small_scheme.params.row_size)
        ct = small_scheme.encrypt(small_scheme.encoder.encode_row(values), public)
        rotated = small_scheme.rotate_rows(ct, 3, restored)
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(rotated, secret), signed=False
        )
        assert np.array_equal(decoded, np.roll(values, -3))

    def test_type_validation(self, small_scheme):
        from repro.bfv.serialize import serialize_galois_keys

        with pytest.raises(TypeError):
            serialize_galois_keys("not keys", small_scheme.params)

    def test_kind_mismatch(self, small_scheme, small_keys):
        from repro.bfv.serialize import deserialize_galois_keys, serialize_plaintext

        pt = small_scheme.encoder.encode(np.arange(4))
        with pytest.raises(ValueError):
            deserialize_galois_keys(serialize_plaintext(pt), small_scheme.params)


class TestMalformedBlobs:
    """Corrupt or mismatched wire data must raise, never mis-deserialize."""

    @pytest.fixture()
    def ct_blob(self, small_scheme, small_keys):
        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(8), public)
        return serialize_ciphertext(ct, small_scheme.params)

    def test_truncated_ciphertext_body(self, ct_blob, small_params):
        with pytest.raises(ValueError, match="expected"):
            deserialize_ciphertext(ct_blob[:-100], small_params)

    def test_oversized_ciphertext_body(self, ct_blob, small_params):
        with pytest.raises(ValueError, match="body has"):
            deserialize_ciphertext(ct_blob + b"\x00" * 64, small_params)

    def test_truncated_header(self, ct_blob, small_params):
        with pytest.raises(ValueError, match="truncated|not a repro"):
            deserialize_ciphertext(ct_blob[:10], small_params)

    def test_header_not_json(self, small_params):
        import struct

        blob = b"RPRO" + struct.pack("<I", 8) + b"not json" + b"\x00" * 16
        with pytest.raises(ValueError, match="malformed"):
            deserialize_ciphertext(blob, small_params)

    @staticmethod
    def _patch_body(blob: bytes, offset: int, value: bytes) -> bytes:
        """Overwrite body bytes and re-seal the header CRC.

        Lets tests exercise the *semantic* validators (residue ranges)
        behind the checksum, the way an attacker -- not line noise --
        would have to.
        """
        import json
        import struct
        import zlib

        header_len = int.from_bytes(blob[4:8], "little")
        body = bytearray(blob[8 + header_len :])
        body[offset : offset + len(value)] = value
        header = json.loads(blob[8 : 8 + header_len].decode())
        header["crc32"] = zlib.crc32(bytes(body))
        new_header = json.dumps(header, sort_keys=True).encode()
        return (
            blob[:4] + struct.pack("<I", len(new_header)) + new_header + bytes(body)
        )

    def test_out_of_range_residues_rejected(self, ct_blob, small_params):
        """Residues >= p_i would be silently reduced downstream; reject them."""
        bad = self._patch_body(ct_blob, 0, (2**62).to_bytes(8, "little"))
        with pytest.raises(ValueError, match="residues outside"):
            deserialize_ciphertext(bad, small_params)

    def test_in_range_body_corruption_fails_crc(self, ct_blob, small_params):
        """A bit-flip landing inside a valid residue range must not decode.

        Every structural check would pass (right size, right header,
        residues in [0, p_i)); only the body CRC stands between this
        blob and a silently different polynomial.
        """
        header_len = int.from_bytes(ct_blob[4:8], "little")
        bad = bytearray(ct_blob)
        bad[8 + header_len] ^= 0x01  # LSB of the first residue: stays in range
        with pytest.raises(ValueError, match="CRC"):
            deserialize_ciphertext(bytes(bad), small_params)

    def test_wrong_n_rejected(self, small_scheme, small_keys):
        from repro.bfv import BfvParameters

        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(4), public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        other = BfvParameters.create(
            n=512,
            plain_bits=18,
            coeff_bits=60,
            w_dcmp_bits=6,
            a_dcmp_bits=12,
            require_security=False,
        )
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob, other)

    def test_galois_base_bits_mismatch(self, small_scheme, small_keys):
        """A key blob under a different Adcmp must not key-switch garbage."""
        from dataclasses import replace

        from repro.bfv.serialize import (
            deserialize_galois_keys,
            serialize_galois_keys,
        )

        secret, _ = small_keys
        keys = small_scheme.generate_galois_keys(secret, [1])
        blob = serialize_galois_keys(keys, small_scheme.params)
        other = replace(small_scheme.params, a_dcmp_bits=10)
        with pytest.raises(ValueError, match="base|pairs"):
            deserialize_galois_keys(blob, other)

    def test_galois_invalid_element_rejected(self, small_scheme, small_keys):
        import json
        import struct

        from repro.bfv.serialize import (
            deserialize_galois_keys,
            serialize_galois_keys,
        )

        secret, _ = small_keys
        keys = small_scheme.generate_galois_keys(secret, [1])
        blob = serialize_galois_keys(keys, small_scheme.params)
        header_len = int.from_bytes(blob[4:8], "little")
        header = json.loads(blob[8 : 8 + header_len].decode())
        header["elements"] = [4]  # even => not a valid Galois element
        new_header = json.dumps(header, sort_keys=True).encode()
        patched = (
            blob[:4]
            + struct.pack("<I", len(new_header))
            + new_header
            + blob[8 + header_len :]
        )
        with pytest.raises(ValueError, match="Galois element"):
            deserialize_galois_keys(patched, small_scheme.params)

    def test_galois_truncated_body(self, small_scheme, small_keys):
        from repro.bfv.serialize import (
            deserialize_galois_keys,
            serialize_galois_keys,
        )

        secret, _ = small_keys
        keys = small_scheme.generate_galois_keys(secret, [1, 2])
        blob = serialize_galois_keys(keys, small_scheme.params)
        with pytest.raises(ValueError, match="body has"):
            deserialize_galois_keys(blob[:-8], small_scheme.params)
