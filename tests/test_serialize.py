"""Tests for the wire format (parameters, plaintexts, ciphertexts)."""

import numpy as np
import pytest

from repro.bfv.serialize import (
    ciphertext_wire_bytes,
    deserialize_ciphertext,
    deserialize_plaintext,
    params_from_dict,
    params_to_dict,
    serialize_ciphertext,
    serialize_plaintext,
)


class TestParams:
    def test_roundtrip(self, small_params):
        data = params_to_dict(small_params)
        restored = params_from_dict(data)
        assert restored.n == small_params.n
        assert restored.plain_modulus == small_params.plain_modulus
        assert restored.coeff_basis.primes == small_params.coeff_basis.primes
        assert restored.l_ct == small_params.l_ct

    def test_json_safe(self, small_params):
        import json

        json.dumps(params_to_dict(small_params))


class TestPlaintext:
    def test_roundtrip(self, small_scheme):
        pt = small_scheme.encoder.encode(np.arange(30))
        restored = deserialize_plaintext(serialize_plaintext(pt))
        assert np.array_equal(restored.coeffs, pt.coeffs)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            deserialize_plaintext(b"not a plaintext blob")


class TestCiphertext:
    def test_roundtrip_decrypts(self, small_scheme, small_keys):
        secret, public = small_keys
        values = np.arange(20)
        ct = small_scheme.encrypt_values(values, public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        restored = deserialize_ciphertext(blob, small_scheme.params)
        decoded = small_scheme.decrypt_values(restored, secret, signed=False)
        assert np.array_equal(decoded[:20], values)

    def test_restored_ciphertext_still_computes(
        self, small_scheme, small_keys, small_galois
    ):
        secret, public = small_keys
        values = np.arange(small_scheme.params.row_size)
        ct = small_scheme.encrypt(small_scheme.encoder.encode_row(values), public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        restored = deserialize_ciphertext(blob, small_scheme.params)
        rotated = small_scheme.rotate_rows(restored, 1, small_galois)
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(rotated, secret), signed=False
        )
        assert np.array_equal(decoded, np.roll(values, -1))

    def test_wire_size(self, small_scheme, small_keys):
        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(4), public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        data_bytes = ciphertext_wire_bytes(small_scheme.params)
        assert len(blob) > data_bytes  # header on top of payload
        assert len(blob) < data_bytes + 2048

    def test_parameter_mismatch_detected(self, small_scheme, small_keys):
        from repro.bfv import BfvParameters

        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(4), public)
        blob = serialize_ciphertext(ct, small_scheme.params)
        other = BfvParameters.create(
            n=small_scheme.params.n,
            plain_bits=18,
            coeff_bits=40,
            require_security=False,
        )
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob, other)


class TestGaloisKeys:
    def test_roundtrip_rotates_correctly(self, small_scheme, small_keys):
        from repro.bfv.serialize import (
            deserialize_galois_keys,
            serialize_galois_keys,
        )

        secret, public = small_keys
        keys = small_scheme.generate_galois_keys(secret, [1, 3])
        blob = serialize_galois_keys(keys, small_scheme.params)
        restored = deserialize_galois_keys(blob, small_scheme.params)
        values = np.arange(small_scheme.params.row_size)
        ct = small_scheme.encrypt(small_scheme.encoder.encode_row(values), public)
        rotated = small_scheme.rotate_rows(ct, 3, restored)
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(rotated, secret), signed=False
        )
        assert np.array_equal(decoded, np.roll(values, -3))

    def test_type_validation(self, small_scheme):
        from repro.bfv.serialize import serialize_galois_keys

        with pytest.raises(TypeError):
            serialize_galois_keys("not keys", small_scheme.params)

    def test_kind_mismatch(self, small_scheme, small_keys):
        from repro.bfv.serialize import deserialize_galois_keys, serialize_plaintext

        pt = small_scheme.encoder.encode(np.arange(4))
        with pytest.raises(ValueError):
            deserialize_galois_keys(serialize_plaintext(pt), small_scheme.params)
