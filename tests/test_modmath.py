"""Unit tests for modular arithmetic primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.modmath import (
    BarrettReducer,
    centered,
    generate_ntt_primes,
    generate_plain_modulus,
    invmod,
    is_prime,
    primitive_root,
    root_of_unity,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 65537):
            assert is_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 15, 91, 561, 65536):
            assert not is_prime(c)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that must not fool Miller-Rabin.
        for c in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_prime(c)

    def test_large_known_prime(self):
        assert is_prime((1 << 61) - 1)  # Mersenne prime M61

    def test_large_known_composite(self):
        assert not is_prime((1 << 61) - 3)

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=50)
    def test_matches_trial_division(self, value):
        reference = value > 1 and all(
            value % d for d in range(2, int(value**0.5) + 1)
        )
        assert is_prime(value) == reference


class TestPrimeGeneration:
    def test_congruence_and_primality(self):
        primes = generate_ntt_primes(30, 1024, 3)
        assert len(set(primes)) == 3
        for p in primes:
            assert is_prime(p)
            assert p % 2048 == 1
            assert p.bit_length() == 30

    def test_plain_modulus(self):
        t = generate_plain_modulus(20, 4096)
        assert is_prime(t)
        assert t % 8192 == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            generate_ntt_primes(30, 1000, 1)

    def test_distinct_across_sizes(self):
        a = generate_ntt_primes(25, 256, 2)
        assert a[0] != a[1]


class TestRoots:
    def test_primitive_root_order(self):
        p = generate_ntt_primes(20, 128, 1)[0]
        g = primitive_root(p)
        # g must not have any proper-divisor order.
        assert pow(g, p - 1, p) == 1
        assert pow(g, (p - 1) // 2, p) != 1

    def test_root_of_unity_order(self):
        n = 128
        p = generate_ntt_primes(20, n, 1)[0]
        psi = root_of_unity(2 * n, p)
        assert pow(psi, 2 * n, p) == 1
        assert pow(psi, n, p) == p - 1  # psi^n = -1 (negacyclic)

    def test_root_of_unity_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            root_of_unity(64, 97)  # 96 not divisible by 64

    def test_primitive_root_rejects_composite(self):
        with pytest.raises(ValueError):
            primitive_root(100)


class TestBarrett:
    def test_matches_mod(self):
        reducer = BarrettReducer(1_000_003)
        for value in (0, 1, 999_999, 1_000_003, 10**12, 1_000_002**2):
            assert reducer.reduce(value) == value % 1_000_003

    @given(st.integers(min_value=2, max_value=(1 << 30)), st.data())
    @settings(max_examples=50)
    def test_mulmod_random(self, modulus, data):
        a = data.draw(st.integers(min_value=0, max_value=modulus - 1))
        b = data.draw(st.integers(min_value=0, max_value=modulus - 1))
        reducer = BarrettReducer(modulus)
        assert reducer.mulmod(a, b) == a * b % modulus

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            BarrettReducer(1)


class TestHelpers:
    def test_invmod(self):
        p = 1_000_003
        for value in (1, 2, 7, 12345):
            assert invmod(value, p) * value % p == 1

    def test_centered_range(self):
        values = np.array([0, 1, 5, 6, 10], dtype=object)
        result = centered(values, 11)
        assert list(result) == [0, 1, 5, -5, -1]

    @given(st.integers(min_value=3, max_value=1 << 20))
    @settings(max_examples=30)
    def test_centered_magnitude_bound(self, modulus):
        values = np.arange(0, modulus, max(1, modulus // 17), dtype=object)
        result = centered(values, modulus)
        assert all(-modulus // 2 <= int(v) <= (modulus + 1) // 2 for v in result)
