"""Statistical validation of the IBDG noise assumption (Section IV-B).

The paper's practical noise model rests on two claims: (1) encryption
noise behaves like an independent bounded discrete Gaussian, so sums
accumulate in variance (sqrt growth), and (2) the worst-case bounds are
"very rare".  These tests measure noise over repeated encryptions of the
live scheme and check both claims empirically.
"""

import math

import numpy as np
import pytest

from repro.bfv import BfvParameters, BfvScheme
from repro.bfv.noise import noise_magnitude
from repro.core.noise_model import NoiseMode, fresh_noise
from repro.core.ptune import ModelParams

TRIALS = 24


@pytest.fixture(scope="module")
def stat_scheme():
    params = BfvParameters.create(
        n=512, plain_bits=18, coeff_bits=60, a_dcmp_bits=12, require_security=False
    )
    return BfvScheme(params, seed=1000)


@pytest.fixture(scope="module")
def stat_keys(stat_scheme):
    return stat_scheme.keygen()


def _proxy(params):
    return ModelParams(
        n=params.n,
        plain_bits=params.plain_modulus.bit_length(),
        coeff_bits=params.coeff_bits,
        w_dcmp_bits=params.w_dcmp_bits,
        a_dcmp_bits=params.a_dcmp_bits,
    )


def _fresh_magnitudes(scheme, keys, trials=TRIALS):
    """Noise of fresh encryptions of zero.

    Encrypting zero isolates the random noise term: for nonzero messages
    the invariant noise is dominated by the deterministic rounding term
    r_t(q) * m, which is not what the IBDG claim is about.
    """
    secret, public = keys
    t = scheme.params.plain_modulus
    zero = np.zeros(16, dtype=np.int64)
    return [
        noise_magnitude(scheme, scheme.encrypt_values(zero, public), secret) / t
        for _ in range(trials)
    ]


class TestFreshNoiseDistribution:
    def test_worst_case_never_observed(self, stat_scheme, stat_keys):
        """The Table III worst case (2nB^2) must be far above reality."""
        worst = fresh_noise(_proxy(stat_scheme.params), NoiseMode.WORST)
        observed = max(_fresh_magnitudes(stat_scheme, stat_keys))
        assert observed < worst / 4

    def test_practical_estimate_is_an_upper_quantile(self, stat_scheme, stat_keys):
        """The z-scaled practical estimate bounds all observed samples."""
        practical = fresh_noise(_proxy(stat_scheme.params), NoiseMode.PRACTICAL)
        magnitudes = _fresh_magnitudes(stat_scheme, stat_keys)
        assert max(magnitudes) < practical * 8  # within a few bits

    def test_noise_concentrates(self, stat_scheme, stat_keys):
        """IBDG concentration: the spread across trials is small
        relative to the magnitude (no heavy tail at this sample size)."""
        magnitudes = np.array(_fresh_magnitudes(stat_scheme, stat_keys))
        assert magnitudes.max() / magnitudes.min() < 4.0


class TestAdditiveAccumulation:
    def test_sum_grows_subadditively(self, stat_scheme, stat_keys):
        """Adding k ciphertexts grows noise ~sqrt(k), not k (variance
        accumulation -- the core of the practical model)."""
        secret, public = stat_keys
        rng = np.random.default_rng(1)
        t = stat_scheme.params.plain_modulus
        k = 16
        zero = np.zeros(8, dtype=np.int64)
        cts = [stat_scheme.encrypt_values(zero, public) for _ in range(k)]
        total = cts[0]
        for ct in cts[1:]:
            total = stat_scheme.add(total, ct)
        single = np.median(_fresh_magnitudes(stat_scheme, stat_keys))
        summed = noise_magnitude(stat_scheme, total, secret) / t
        growth = summed / single
        # Between sqrt(k) = 4 and the worst case k = 16; should hug the
        # lower end with comfortable slack.
        assert growth < k * 0.75
        assert growth > 1.0


class TestRotationNoiseStatistics:
    def test_rotation_additive_increment_scales_with_base(self, stat_scheme, stat_keys):
        """Measured keyswitch noise grows with Adcmp, as eta_A predicts."""
        secret, public = stat_keys
        increments = {}
        for a_bits in (6, 18):
            params = BfvParameters.create(
                n=512, plain_bits=18, coeff_bits=60, a_dcmp_bits=a_bits,
                require_security=False,
            )
            scheme = BfvScheme(params, seed=2000 + a_bits)
            sk, pk = scheme.keygen()
            galois = scheme.generate_galois_keys(sk, [1])
            ct = scheme.encrypt_values(np.arange(16), pk)
            t = params.plain_modulus
            before = noise_magnitude(scheme, ct, sk) / t
            after = noise_magnitude(scheme, scheme.rotate_rows(ct, 1, galois), sk) / t
            increments[a_bits] = after - before
        assert increments[18] > increments[6]
