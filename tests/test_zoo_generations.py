"""Zoo generations and live reloads: the deployment-versioning contract.

The live-upgrade path (PR 10) rests on three small guarantees:

* the manifest ``generation`` counter is monotonic and total -- every
  ``update_manifest`` bumps it by exactly one, unversioned manifests
  compare older than every versioned one, and malformed counters raise
  instead of mis-ordering a deployment;
* :func:`repro.artifacts.diff_manifests` is a true partition of the
  model namespace -- every name lands in exactly one of added / removed
  / changed / unchanged, and the diff is involutive under argument
  swap;
* :meth:`~repro.serving.registry.ModelRegistry.reload_zoo` is
  *transactional*: idempotent at the same generation, all-or-nothing
  across a multi-model diff, and it refuses parameter-fingerprint
  changes with a specific :class:`~repro.artifacts.ArtifactError`
  (sessions and Galois keys are parameter-bound).

Hypothesis drives the manifest-shape properties; the reload tests run
against real compiled artifacts so the staging path (load, verify,
cross-check) is the production one.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifacts import (
    ArtifactError,
    diff_manifests,
    load_zoo,
    manifest_generation,
    read_manifest,
    save_artifact,
    update_manifest,
)
from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.serving import (
    DEMO_RESCALE_BITS,
    ModelRegistry,
    demo_network,
    demo_weights,
)

SCHEDULE = Schedule.INPUT_ALIGNED


# -- manifest-shape strategies -------------------------------------------------

_names = st.text(alphabet="abcdef", min_size=1, max_size=3)

_entry_bodies = st.fixed_dictionaries(
    {
        "file": st.sampled_from(["m0.rpa", "m1.rpa", "m2.rpa"]),
        "schedule": st.sampled_from(["input_aligned", "psum_aligned"]),
        "rescale_bits": st.integers(min_value=0, max_value=12),
        "rotation_steps": st.integers(min_value=0, max_value=9),
    }
)


@st.composite
def manifests(draw):
    by_name = draw(st.dictionaries(_names, _entry_bodies, max_size=5))
    return {
        "kind": "repro-artifact-zoo",
        "models": [
            {"name": name, **body} for name, body in sorted(by_name.items())
        ],
    }


# -- generation counter --------------------------------------------------------

class TestManifestGeneration:
    def test_absent_manifest_is_generation_zero(self, tmp_path):
        assert manifest_generation(None) == 0
        assert manifest_generation(tmp_path) == 0  # no manifest.json at all

    def test_pre_versioning_manifest_is_generation_zero(self):
        assert manifest_generation({"kind": "repro-artifact-zoo", "models": []}) == 0

    @given(bad=st.one_of(st.text(alphabet="xyz!", min_size=1), st.none()))
    def test_malformed_counter_raises(self, bad):
        with pytest.raises(ArtifactError, match="generation"):
            manifest_generation({"generation": bad})

    @given(generation=st.integers(max_value=-1))
    def test_negative_counter_raises(self, generation):
        with pytest.raises(ArtifactError, match="generation"):
            manifest_generation({"generation": generation})

    @given(updates=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_every_update_bumps_by_exactly_one(self, tmp_path_factory, updates):
        # update_manifest only reads the model's recorded facts, so a
        # lightweight stand-in exercises the counter without compiling.
        params = BfvParameters.create(
            n=64, plain_bits=18, coeff_bits=54, a_dcmp_bits=10,
            require_security=False,
        )
        model = SimpleNamespace(
            name="m", params=params, schedule=SCHEDULE,
            rescale_bits=DEMO_RESCALE_BITS, rotation_steps=[1, 2],
        )
        directory = tmp_path_factory.mktemp("gen")
        for expected in range(1, updates + 1):
            update_manifest(directory, model, "m.rpa")
            assert manifest_generation(read_manifest(directory)) == expected


# -- diff properties -----------------------------------------------------------

class TestDiffManifests:
    @given(old=manifests(), new=manifests())
    @settings(max_examples=60, deadline=None)
    def test_diff_partitions_the_namespace(self, old, new):
        diff = diff_manifests(old, new)
        old_names = {entry["name"] for entry in old["models"]}
        new_names = {entry["name"] for entry in new["models"]}
        buckets = [set(diff[key]) for key in ("added", "removed", "changed", "unchanged")]
        # Every name in exactly one bucket; buckets cover the union.
        assert set().union(*buckets) == old_names | new_names
        assert sum(len(bucket) for bucket in buckets) == len(old_names | new_names)
        assert set(diff["added"]) == new_names - old_names
        assert set(diff["removed"]) == old_names - new_names

    @given(manifest=manifests())
    @settings(max_examples=30, deadline=None)
    def test_self_diff_is_all_unchanged(self, manifest):
        diff = diff_manifests(manifest, manifest)
        assert diff["added"] == diff["removed"] == diff["changed"] == []
        assert diff["unchanged"] == sorted(
            entry["name"] for entry in manifest["models"]
        )

    @given(old=manifests(), new=manifests())
    @settings(max_examples=60, deadline=None)
    def test_swap_exchanges_added_and_removed(self, old, new):
        forward, backward = diff_manifests(old, new), diff_manifests(new, old)
        assert forward["added"] == backward["removed"]
        assert forward["removed"] == backward["added"]
        assert forward["changed"] == backward["changed"]
        assert forward["unchanged"] == backward["unchanged"]

    @given(manifest=manifests())
    @settings(max_examples=30, deadline=None)
    def test_none_diffs_to_all_added_or_removed(self, manifest):
        names = sorted(entry["name"] for entry in manifest["models"])
        assert diff_manifests(None, manifest)["added"] == names
        assert diff_manifests(manifest, None)["removed"] == names


# -- transactional reloads -----------------------------------------------------

@pytest.fixture(scope="module")
def params():
    return BfvParameters.create(
        n=256, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


def _compile(name: str, params, seed: int = 0):
    return ModelRegistry().register(
        name, demo_network(), demo_weights(seed=seed), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )


def _write(directory, *entries):
    for entry in entries:
        save_artifact(entry, directory / f"{entry.name}.rpa")
        update_manifest(directory, entry, f"{entry.name}.rpa")
    return directory


@pytest.fixture(scope="module")
def zoo_v1(params, tmp_path_factory):
    return _write(
        tmp_path_factory.mktemp("zoo-v1"),
        _compile("alpha", params, seed=0),
        _compile("beta", params, seed=1),
    )


class TestReloadZoo:
    def test_same_generation_reload_is_idempotent(self, zoo_v1):
        registry = load_zoo(zoo_v1)
        before = {name: registry.get(name) for name in registry.names()}
        for _ in range(2):
            summary = registry.reload_zoo()
            assert summary["applied"] is False
            assert summary["generation"] == summary["previous_generation"]
        # Not merely equal: the very same live entries (no churn at all).
        for name, entry in before.items():
            assert registry.get(name) is entry

    def test_new_generation_swaps_updated_entries_only(
        self, params, zoo_v1, tmp_path_factory
    ):
        registry = load_zoo(zoo_v1)
        old_alpha = registry.get("alpha")
        old_beta = registry.get("beta")
        # Regenerate beta in place (same weights): generation moves.
        _write(zoo_v1, _compile("beta", params, seed=1))
        summary = registry.reload_zoo()
        assert summary["applied"] is True
        assert summary["generation"] == summary["previous_generation"] + 1
        assert summary["updated"] == ["alpha", "beta"]
        assert registry.zoo_generation == summary["generation"]
        # Old entries stay alive for pinned sessions; the table moved on.
        assert registry.get("beta") is not old_beta
        assert old_alpha.plans and old_beta.plans

    def test_params_fingerprint_change_is_rejected(
        self, params, zoo_v1, tmp_path_factory
    ):
        registry = load_zoo(zoo_v1)
        other_params = BfvParameters.create(
            n=256, plain_bits=20, coeff_bits=100, a_dcmp_bits=20,
            require_security=False,
        )
        bad = _write(
            tmp_path_factory.mktemp("zoo-badparams"),
            _compile("alpha", other_params, seed=0),
            _compile("beta", params, seed=1),
        )
        before = {name: registry.get(name) for name in registry.names()}
        generation = registry.zoo_generation
        with pytest.raises(ArtifactError, match="parameter fingerprint"):
            registry.reload_zoo(bad)
        # Nothing applied: same entries, same generation, same directory.
        assert {name: registry.get(name) for name in registry.names()} == before
        assert registry.zoo_generation == generation
        assert registry.zoo_dir == str(zoo_v1)

    def test_multi_model_diff_never_partially_applies(
        self, params, zoo_v1, tmp_path_factory
    ):
        """One good artifact + one bad one must apply *neither*."""
        registry = load_zoo(zoo_v1)
        other_params = BfvParameters.create(
            n=256, plain_bits=20, coeff_bits=100, a_dcmp_bits=20,
            require_security=False,
        )
        mixed = _write(
            tmp_path_factory.mktemp("zoo-mixed"),
            _compile("alpha", params, seed=0),   # fine: same fingerprint
            _compile("beta", other_params, seed=1),  # rejected
        )
        old_alpha = registry.get("alpha")
        generation = registry.zoo_generation
        with pytest.raises(ArtifactError, match="parameter fingerprint"):
            registry.reload_zoo(mixed)
        assert registry.get("alpha") is old_alpha
        assert registry.zoo_generation == generation

    def test_dropped_model_is_removed(self, params, tmp_path_factory):
        full = _write(
            tmp_path_factory.mktemp("zoo-full"),
            _compile("alpha", params, seed=0),
            _compile("beta", params, seed=1),
        )
        registry = load_zoo(full)
        slim = _write(
            tmp_path_factory.mktemp("zoo-slim"), _compile("alpha", params, seed=0)
        )
        summary = registry.reload_zoo(slim)
        assert summary["applied"] is True
        assert summary["removed"] == ["beta"]
        assert registry.names() == ["alpha"]

    def test_reload_without_zoo_provenance_raises(self, params):
        registry = ModelRegistry()
        registry.register(
            "demo", demo_network(), demo_weights(), params,
            schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
        )
        with pytest.raises(ArtifactError, match="needs a directory"):
            registry.reload_zoo()
