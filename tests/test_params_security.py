"""Tests for BFV parameter validation and RLWE security estimation."""

import pytest

from repro.bfv import BfvParameters
from repro.bfv.security import (
    estimated_security_level,
    is_secure,
    max_coeff_modulus_bits,
)


class TestSecurityTable:
    def test_standard_entries(self):
        assert max_coeff_modulus_bits(2048, 128) == 54
        assert max_coeff_modulus_bits(4096, 128) == 109
        assert max_coeff_modulus_bits(8192, 128) == 218

    def test_higher_levels_are_stricter(self):
        for n in (2048, 4096, 8192):
            assert (
                max_coeff_modulus_bits(n, 256)
                < max_coeff_modulus_bits(n, 192)
                < max_coeff_modulus_bits(n, 128)
            )

    def test_interpolation_between_powers(self):
        mid = max_coeff_modulus_bits(3072, 128)
        assert 54 < mid < 109

    def test_is_secure(self):
        assert is_secure(4096, 100)
        assert not is_secure(4096, 120)

    def test_estimated_level(self):
        assert estimated_security_level(4096, 70) >= 128
        assert estimated_security_level(4096, 50) >= 192
        assert estimated_security_level(2048, 200) == 0

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            max_coeff_modulus_bits(4096, 100)

    def test_out_of_range_dimension(self):
        with pytest.raises(ValueError):
            max_coeff_modulus_bits(512, 128)


class TestParameters:
    def test_create_derivations(self):
        params = BfvParameters.create(
            n=2048, plain_bits=20, coeff_bits=54, w_dcmp_bits=10, a_dcmp_bits=9
        )
        assert params.plain_modulus.bit_length() == 20
        assert 52 <= params.coeff_bits <= 56
        assert params.l_pt == 2  # ceil(20 / 10)
        assert params.l_ct == 6  # ceil(54 / 9)
        assert params.delta == params.coeff_modulus // params.plain_modulus
        assert params.row_size == 1024

    def test_noise_capacity(self):
        params = BfvParameters.create(n=2048, plain_bits=20, coeff_bits=54)
        assert 30 <= params.noise_capacity_bits <= 36

    def test_security_enforced(self):
        with pytest.raises(ValueError):
            BfvParameters.create(n=2048, plain_bits=20, coeff_bits=100)

    def test_security_bypass_flag(self):
        params = BfvParameters.create(
            n=256, plain_bits=18, coeff_bits=60, require_security=False
        )
        assert params.security_level == 0

    def test_plain_modulus_congruence_enforced(self):
        params = BfvParameters.create(n=2048, plain_bits=20, coeff_bits=54)
        assert (params.plain_modulus - 1) % (2 * params.n) == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BfvParameters.create(n=2000, plain_bits=20, coeff_bits=54)

    def test_describe_contains_knobs(self):
        params = BfvParameters.create(n=2048, plain_bits=20, coeff_bits=54)
        text = params.describe()
        assert "n=2048" in text and "Adcmp" in text and "Wdcmp" in text
