"""Property-based tests: the scheme is homomorphic over Z_t slot vectors.

Hypothesis drives random vectors and operation sequences through the
live scheme and checks the decrypted result against plain integer
arithmetic mod t.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfv import BfvParameters, BfvScheme

# A single shared toy context: hypothesis re-runs bodies many times, so
# construction cost must be paid once.
_PARAMS = BfvParameters.create(
    n=64, plain_bits=18, coeff_bits=54, a_dcmp_bits=10, require_security=False
)
_SCHEME = BfvScheme(_PARAMS, seed=77)
_SECRET, _PUBLIC = _SCHEME.keygen()
_GALOIS = _SCHEME.generate_galois_keys(_SECRET, list(range(1, 8)))
_T = _PARAMS.plain_modulus

vectors = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=_PARAMS.n
)


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(vectors, vectors)
def test_addition_is_slotwise(a, b):
    size = min(len(a), len(b))
    va = np.array(a[:size], dtype=np.int64)
    vb = np.array(b[:size], dtype=np.int64)
    ct = _SCHEME.add(
        _SCHEME.encrypt_values(va, _PUBLIC), _SCHEME.encrypt_values(vb, _PUBLIC)
    )
    decoded = _SCHEME.decrypt_values(ct, _SECRET, signed=False)
    assert np.array_equal(decoded[:size], (va + vb) % _T)


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(vectors, st.integers(min_value=-100, max_value=100))
def test_plain_multiplication_is_slotwise(a, scalar):
    va = np.array(a, dtype=np.int64)
    plain = _SCHEME.encode_for_mul(
        _SCHEME.encoder.encode(np.full(_PARAMS.n, scalar))
    )
    ct = _SCHEME.mul_plain(_SCHEME.encrypt_values(va, _PUBLIC), plain)
    decoded = _SCHEME.decrypt_values(ct, _SECRET, signed=False)
    assert np.array_equal(decoded[: len(a)], (va * scalar) % _T)


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=1, max_value=7))
def test_rotation_is_cyclic_shift(step):
    row = _PARAMS.row_size
    values = np.arange(row)
    ct = _SCHEME.encrypt(_SCHEME.encoder.encode_row(values), _PUBLIC)
    rotated = _SCHEME.rotate_rows(ct, step, _GALOIS)
    decoded = _SCHEME.encoder.decode_row(
        _SCHEME.decrypt(rotated, _SECRET), signed=False
    )
    assert np.array_equal(decoded, np.roll(values, -step))


@settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.sampled_from(["add_self", "rotate1", "triple"]), min_size=1, max_size=5
    )
)
def test_random_operation_sequences(ops):
    """Any interleaving of the three operators tracks plain arithmetic."""
    row = _PARAMS.row_size
    reference = np.arange(row) % 50
    ct = _SCHEME.encrypt(_SCHEME.encoder.encode_row(reference), _PUBLIC)
    triple = _SCHEME.encode_for_mul(_SCHEME.encoder.encode(np.full(_PARAMS.n, 3)))
    for op in ops:
        if op == "add_self":
            ct = _SCHEME.add(ct, ct)
            reference = (reference * 2) % _T
        elif op == "rotate1":
            ct = _SCHEME.rotate_rows(ct, 1, _GALOIS)
            reference = np.roll(reference, -1)
        else:
            ct = _SCHEME.mul_plain(ct, triple)
            reference = (reference * 3) % _T
    decoded = _SCHEME.encoder.decode_row(_SCHEME.decrypt(ct, _SECRET), signed=False)
    assert np.array_equal(decoded, reference)


@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
@given(vectors)
def test_encrypt_decrypt_identity(a):
    va = np.array(a, dtype=np.int64)
    ct = _SCHEME.encrypt_values(va, _PUBLIC)
    assert np.array_equal(
        _SCHEME.decrypt_values(ct, _SECRET, signed=False)[: len(a)], va % _T
    )


@settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
@given(vectors, vectors)
def test_add_commutes_with_rotation(a, b):
    """rot(x) + rot(y) == rot(x + y): rotation is linear."""
    row = _PARAMS.row_size
    va = np.zeros(row, dtype=np.int64)
    vb = np.zeros(row, dtype=np.int64)
    va[: min(len(a), row)] = a[: min(len(a), row)]
    vb[: min(len(b), row)] = b[: min(len(b), row)]
    ct_a = _SCHEME.encrypt(_SCHEME.encoder.encode_row(va), _PUBLIC)
    ct_b = _SCHEME.encrypt(_SCHEME.encoder.encode_row(vb), _PUBLIC)
    left = _SCHEME.add(
        _SCHEME.rotate_rows(ct_a, 2, _GALOIS), _SCHEME.rotate_rows(ct_b, 2, _GALOIS)
    )
    right = _SCHEME.rotate_rows(_SCHEME.add(ct_a, ct_b), 2, _GALOIS)
    dl = _SCHEME.encoder.decode_row(_SCHEME.decrypt(left, _SECRET), signed=False)
    dr = _SCHEME.encoder.decode_row(_SCHEME.decrypt(right, _SECRET), signed=False)
    assert np.array_equal(dl, dr)
