"""Integration tests for the full BFV scheme: the three HE operators."""

import numpy as np
import pytest

from repro.bfv import invariant_noise_budget
from repro.bfv.counters import GLOBAL_COUNTERS
from repro.bfv.scheme import expected_digit_count


@pytest.fixture(scope="module")
def values(small_scheme):
    rng = np.random.default_rng(99)
    return rng.integers(0, 100, small_scheme.params.row_size)


class TestEncryptDecrypt:
    def test_roundtrip(self, small_scheme, small_keys, values):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(values, public)
        decoded = small_scheme.decrypt_values(ct, secret, signed=False)
        assert np.array_equal(decoded[: len(values)], values)

    def test_fresh_budget_positive(self, small_scheme, small_keys, values):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(values, public)
        assert invariant_noise_budget(small_scheme, ct, secret) > 5

    def test_signed_values(self, small_scheme, small_keys):
        secret, public = small_keys
        vals = np.array([-5, -1, 0, 1, 5])
        ct = small_scheme.encrypt_values(vals, public)
        assert np.array_equal(small_scheme.decrypt_values(ct, secret)[:5], vals)

    def test_fresh_ciphertexts_differ(self, small_scheme, small_keys, values):
        """Encryption must be randomized (IND-CPA sanity)."""
        _, public = small_keys
        ct1 = small_scheme.encrypt_values(values, public)
        ct2 = small_scheme.encrypt_values(values, public)
        assert not np.array_equal(ct1.c0.data, ct2.c0.data)


class TestAddition:
    def test_add(self, small_scheme, small_keys, values):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(values, public)
        result = small_scheme.decrypt_values(
            small_scheme.add(ct, ct), secret, signed=False
        )
        t = small_scheme.params.plain_modulus
        assert np.array_equal(result[: len(values)], (2 * values) % t)

    def test_sub(self, small_scheme, small_keys, values):
        secret, public = small_keys
        ct1 = small_scheme.encrypt_values(values, public)
        ct2 = small_scheme.encrypt_values(values // 2, public)
        result = small_scheme.decrypt_values(
            small_scheme.sub(ct1, ct2), secret, signed=False
        )
        assert np.array_equal(result[: len(values)], values - values // 2)

    def test_add_plain(self, small_scheme, small_keys, values):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(values, public)
        pt = small_scheme.encoder.encode(np.full(len(values), 3))
        result = small_scheme.decrypt_values(
            small_scheme.add_plain(ct, pt), secret, signed=False
        )
        assert np.array_equal(result[: len(values)], values + 3)

    def test_add_noise_is_additive(self, small_scheme, small_keys, values):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(values, public)
        fresh = invariant_noise_budget(small_scheme, ct, secret)
        summed = small_scheme.add(ct, ct)
        after = invariant_noise_budget(small_scheme, summed, secret)
        assert fresh - 2.0 <= after <= fresh  # at most ~1 bit for doubling


class TestPlainMultiplication:
    def test_mul_plain(self, small_scheme, small_keys, values):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(values, public)
        weights = np.full(small_scheme.params.n, 7)
        plain = small_scheme.encode_for_mul(small_scheme.encoder.encode(weights))
        result = small_scheme.decrypt_values(
            small_scheme.mul_plain(ct, plain), secret, signed=False
        )
        t = small_scheme.params.plain_modulus
        assert np.array_equal(result[: len(values)], (7 * values) % t)

    def test_mul_plain_elementwise(self, small_scheme, small_keys):
        secret, public = small_keys
        n = small_scheme.params.n
        t = small_scheme.params.plain_modulus
        rng = np.random.default_rng(5)
        x = rng.integers(0, 50, n)
        w = rng.integers(0, 50, n)
        ct = small_scheme.encrypt_values(x, public)
        plain = small_scheme.encode_for_mul(small_scheme.encoder.encode(w))
        result = small_scheme.decrypt_values(
            small_scheme.mul_plain(ct, plain), secret, signed=False
        )
        assert np.array_equal(result, (x * w) % t)

    def test_windowed_mul_matches_plain(self, small_scheme, small_keys):
        secret, public = small_keys
        params = small_scheme.params
        rng = np.random.default_rng(6)
        x = rng.integers(0, 100, 40)
        w = rng.integers(0, params.plain_modulus, params.n, dtype=np.int64)
        windows = small_scheme.encrypt_windowed(x, public, params.l_pt)
        pt_w = small_scheme.encoder.encode(w)
        result = small_scheme.decrypt_values(
            small_scheme.mul_plain_windowed(windows, pt_w), secret, signed=False
        )
        expected = (x * w[:40]) % params.plain_modulus
        assert np.array_equal(result[:40], expected)

    def test_windowed_mul_saves_noise(self, small_scheme, small_keys):
        """Large-coefficient weights: windowing must beat direct mult."""
        secret, public = small_keys
        params = small_scheme.params
        rng = np.random.default_rng(7)
        x = rng.integers(0, 100, 20)
        w = rng.integers(0, params.plain_modulus, params.n, dtype=np.int64)
        pt_w = small_scheme.encoder.encode(w)
        windows = small_scheme.encrypt_windowed(x, public, params.l_pt)
        windowed = small_scheme.mul_plain_windowed(windows, pt_w)
        direct = small_scheme.mul_plain(
            small_scheme.encrypt_values(x, public), small_scheme.encode_for_mul(pt_w)
        )
        budget_windowed = invariant_noise_budget(small_scheme, windowed, secret)
        budget_direct = invariant_noise_budget(small_scheme, direct, secret)
        assert budget_windowed > budget_direct

    def test_windowed_mul_validates_count(self, small_scheme, small_keys):
        _, public = small_keys
        windows = small_scheme.encrypt_windowed(np.arange(4), public, 1)
        pt = small_scheme.encoder.encode(np.arange(4))
        if small_scheme.params.l_pt != 1:
            with pytest.raises(ValueError):
                small_scheme.mul_plain_windowed(windows, pt)


class TestRotation:
    @pytest.mark.parametrize("step", [1, 2, 5, 16])
    def test_rotate_rows(self, small_scheme, small_keys, small_galois, step):
        secret, public = small_keys
        row = small_scheme.params.row_size
        vals = np.arange(row)
        ct = small_scheme.encrypt(small_scheme.encoder.encode_row(vals), public)
        rotated = small_scheme.rotate_rows(ct, step, small_galois)
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(rotated, secret), signed=False
        )
        assert np.array_equal(decoded, np.roll(vals, -step))

    def test_rotation_composes(self, small_scheme, small_keys, small_galois):
        secret, public = small_keys
        row = small_scheme.params.row_size
        vals = np.arange(row)
        ct = small_scheme.encrypt(small_scheme.encoder.encode_row(vals), public)
        once = small_scheme.rotate_rows(ct, 3, small_galois)
        twice = small_scheme.rotate_rows(once, 5, small_galois)
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(twice, secret), signed=False
        )
        assert np.array_equal(decoded, np.roll(vals, -8))

    def test_rotate_columns_swaps_rows(self, small_scheme, small_keys):
        secret, public = small_keys
        column_key = small_scheme.generate_column_key(secret)
        row = small_scheme.params.row_size
        slots = np.concatenate([np.arange(row), np.arange(row) + 1000])
        ct = small_scheme.encrypt(small_scheme.encoder.encode(slots), public)
        swapped = small_scheme.rotate_columns(ct, column_key)
        decoded = small_scheme.decrypt_values(swapped, secret, signed=False)
        assert np.array_equal(decoded, np.concatenate([slots[row:], slots[:row]]))

    def test_rotation_noise_is_additive(self, small_scheme, small_keys, small_galois):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(40), public)
        fresh = invariant_noise_budget(small_scheme, ct, secret)
        rotated = small_scheme.rotate_rows(ct, 1, small_galois)
        after = invariant_noise_budget(small_scheme, rotated, secret)
        assert after > 0
        assert after >= fresh - 12  # small additive hit, not multiplicative

    @pytest.mark.parametrize("multiple", [0, 1, 2])
    def test_zero_step_rotation_is_free_copy(
        self, small_scheme, small_keys, small_galois, multiple
    ):
        """Steps that are multiples of the row size short-circuit: no key
        switch (even without a key for Galois element 1), no HE_Rotate."""
        secret, public = small_keys
        row = small_scheme.params.row_size
        vals = np.arange(row)
        ct = small_scheme.encrypt(small_scheme.encoder.encode_row(vals), public)
        assert 1 not in small_scheme.generate_galois_keys(secret, []).keys
        before = GLOBAL_COUNTERS.snapshot()
        rotated = small_scheme.rotate_rows(ct, multiple * row, small_galois)
        delta = GLOBAL_COUNTERS.diff(before)
        assert delta.he_rotate == 0
        assert delta.ntt == 0
        assert rotated is not ct  # an independent copy, not an alias
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(rotated, secret), signed=False
        )
        assert np.array_equal(decoded, vals)

    def test_zero_step_rotation_needs_no_keys(self, small_scheme, small_keys):
        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(4), public)
        from repro.bfv.keys import GaloisKeys

        rotated = small_scheme.rotate_rows(ct, 0, GaloisKeys())
        assert np.array_equal(rotated.c0.data, ct.c0.data)

    def test_missing_galois_key_raises(self, small_scheme, small_keys, small_galois):
        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(4), public)
        with pytest.raises(KeyError):
            small_scheme.rotate_rows(ct, 29, small_galois)

    def test_rotate_counts_match_paper_census(
        self, small_scheme, small_keys, small_galois
    ):
        """One HE_Rotate = 2*l_ct poly products + (l_ct + 1) NTTs per limb."""
        _, public = small_keys
        params = small_scheme.params
        ct = small_scheme.encrypt_values(np.arange(10), public)
        before = GLOBAL_COUNTERS.snapshot()
        small_scheme.rotate_rows(ct, 1, small_galois)
        delta = GLOBAL_COUNTERS.diff(before)
        limbs = params.coeff_basis.count
        assert delta.he_rotate == 1
        assert delta.ntt == (params.l_ct + 1) * limbs


class TestMulPlainAccumulate:
    def test_matches_mul_add_fold(self, small_scheme, small_keys):
        """The fused batched helper equals T mul_plains folded with add."""
        secret, public = small_keys
        rng = np.random.default_rng(5)
        row = small_scheme.params.row_size
        values = [rng.integers(0, 8, row) for _ in range(3)]
        weights = [rng.integers(0, 8, row) for _ in range(3)]
        cts = [
            small_scheme.encrypt(small_scheme.encoder.encode_row(v), public)
            for v in values
        ]
        plains = [
            small_scheme.encode_for_mul(small_scheme.encoder.encode_row(w))
            for w in weights
        ]
        stack = np.stack([p.poly.data for p in plains], axis=1)

        before = GLOBAL_COUNTERS.snapshot()
        fused = small_scheme.mul_plain_accumulate(cts, stack)
        delta = GLOBAL_COUNTERS.diff(before)
        assert delta.he_mult == 3
        assert delta.he_add == 2

        reference = None
        for ct, plain in zip(cts, plains):
            term = small_scheme.mul_plain(ct, plain)
            reference = term if reference is None else small_scheme.add(reference, term)
        fused_out = small_scheme.encoder.decode_row(
            small_scheme.decrypt(fused, secret), signed=False
        )
        ref_out = small_scheme.encoder.decode_row(
            small_scheme.decrypt(reference, secret), signed=False
        )
        assert np.array_equal(fused_out, ref_out)

    def test_shape_mismatch_rejected(self, small_scheme, small_keys):
        _, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(4), public)
        stack = np.zeros(
            (small_scheme.params.coeff_basis.count, 2, small_scheme.params.n),
            dtype=np.int64,
        )
        with pytest.raises(ValueError):
            small_scheme.mul_plain_accumulate([ct], stack)


class TestDigitCount:
    def test_l_ct_consistency(self, small_params):
        assert expected_digit_count(small_params) in (
            small_params.l_ct,
            small_params.l_ct + 1,
        )
