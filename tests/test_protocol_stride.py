"""Regression: strided/padded convolutions through the full protocol.

``GazelleProtocol._cloud_linear_layer`` used to ignore ``ConvLayer.stride``
and ``padding`` entirely -- it always returned the dense valid-convolution
outputs, so any network with a stride-2 or padded conv produced wrong
logits with no error.  These tests pin the fix against the plaintext
oracle end to end.
"""

import numpy as np
import pytest

from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.nn.layers import ActivationLayer, ConvLayer, FCLayer
from repro.nn.models import Network
from repro.nn.plaintext import PlaintextRunner
from repro.nn.quantize import synthetic_conv_weights, synthetic_fc_weights
from repro.protocol import GazelleProtocol


@pytest.fixture(scope="module")
def proto_params():
    return BfvParameters.create(
        n=4096, plain_bits=20, coeff_bits=100, a_dcmp_bits=16
    )


@pytest.fixture(scope="module")
def strided_net():
    # conv1: (8 + 2*1 - 3) // 2 + 1 = 4 output pixels per side.
    return Network(
        "StridedCNN",
        [
            ConvLayer("conv1", w=8, fw=3, ci=1, co=2, stride=2, padding=1),
            ActivationLayer("relu1", "relu", 2 * 4 * 4),
            FCLayer("fc1", 32, 5),
        ],
    )


@pytest.fixture(scope="module")
def strided_weights():
    return {
        "conv1": synthetic_conv_weights(3, 1, 2, bits=5, seed=50),
        "fc1": synthetic_fc_weights(32, 5, bits=5, seed=51),
    }


class TestStridedPaddedProtocol:
    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_stride2_padding1_matches_plaintext(
        self, strided_net, strided_weights, proto_params, schedule
    ):
        rng = np.random.default_rng(52)
        image = rng.integers(0, 16, (1, 8, 8))
        expected = PlaintextRunner(strided_net, strided_weights, rescale_bits=4).run(
            image
        )
        proto = GazelleProtocol(
            strided_net,
            strided_weights,
            proto_params,
            schedule=schedule,
            rescale_bits=4,
            seed=53,
        )
        result = proto.run(image)
        assert np.array_equal(result.logits, expected)
        assert result.min_noise_budget > 0

    def test_padding_only_same_conv(self, proto_params):
        """'Same' convolution: padded 7x7 stays 7x7 through the protocol."""
        net = Network(
            "SameCNN",
            [
                ConvLayer("conv1", w=7, fw=3, ci=1, co=2, padding=1),
                ActivationLayer("relu1", "relu", 2 * 7 * 7),
                FCLayer("fc1", 98, 4),
            ],
        )
        weights = {
            "conv1": synthetic_conv_weights(3, 1, 2, bits=5, seed=60),
            "fc1": synthetic_fc_weights(98, 4, bits=5, seed=61),
        }
        rng = np.random.default_rng(62)
        image = rng.integers(0, 16, (1, 7, 7))
        expected = PlaintextRunner(net, weights, rescale_bits=4).run(image)
        proto = GazelleProtocol(net, weights, proto_params, rescale_bits=4, seed=63)
        assert np.array_equal(proto.run(image).logits, expected)

    def test_stride_only_mid_network(self, proto_params):
        """A stride-2 conv fed by a stride-1 conv (shapes threaded through)."""
        net = Network(
            "Stride2Deep",
            [
                ConvLayer("conv1", w=9, fw=3, ci=1, co=2),
                ActivationLayer("relu1", "relu", 2 * 7 * 7),
                ConvLayer("conv2", w=7, fw=3, ci=2, co=2, stride=2),
                ActivationLayer("relu2", "relu", 2 * 3 * 3),
                FCLayer("fc1", 18, 4),
            ],
        )
        weights = {
            "conv1": synthetic_conv_weights(3, 1, 2, bits=4, seed=70),
            "conv2": synthetic_conv_weights(3, 2, 2, bits=4, seed=71),
            "fc1": synthetic_fc_weights(18, 4, bits=4, seed=72),
        }
        rng = np.random.default_rng(73)
        image = rng.integers(0, 8, (1, 9, 9))
        expected = PlaintextRunner(net, weights, rescale_bits=4).run(image)
        proto = GazelleProtocol(net, weights, proto_params, rescale_bits=4, seed=74)
        assert np.array_equal(proto.run(image).logits, expected)

    def test_every_conv_output_slot_is_masked(
        self, strided_net, strided_weights, proto_params
    ):
        """Privacy: the *entire* slot row must be blinded before a conv
        output leaves the cloud -- not just the dense block the client
        reads.  The schedule leaves partial filter responses in grid-edge
        slots and a stride > 1 discards positions after decryption; any
        unmasked slot hands the client a clean linear equation in the
        model weights."""
        from repro.nn.plaintext import conv2d
        from repro.protocol.messages import TrafficLog
        from repro.scheduling import encrypt_channels
        from repro.scheduling.layouts import unpack_image

        rng = np.random.default_rng(90)
        image = rng.integers(0, 16, (1, 8, 8))
        proto = GazelleProtocol(
            strided_net, strided_weights, proto_params, rescale_bits=4, seed=91
        )
        # Public path: the returned mask/masked pair is stride-subsampled.
        masked, mask, _ = proto._cloud_linear_layer(
            strided_net.layers[0], image, TrafficLog()
        )
        assert masked.shape == mask.shape == (2, 4, 4)

        # Cloud side, replayed: compare each masked ciphertext against the
        # raw (unmasked) schedule output across the whole slot row.  An
        # unmasked region shows up as a run of zero differences; honest
        # full-row masking leaves at most the handful of slots where the
        # uniform mask drew 0 (deterministic seeds).
        t = proto_params.plain_modulus
        scheme = proto.scheme
        plan = proto.plans["conv1"]
        grid_w = plan.grid_w
        padded = np.pad(image, ((0, 0), (1, 1), (1, 1)))
        dense = conv2d(padded, strided_weights["conv1"]) % t
        dense_w = dense.shape[1]
        grids = np.zeros((1, grid_w, grid_w), dtype=np.int64)
        grids[:, : padded.shape[1], : padded.shape[2]] = padded
        cts = encrypt_channels(scheme, grids, proto.public)
        out_cts = plan.execute(cts, proto.galois_keys)
        masked_cts, mask_dense, _ = proto._mask_outputs_conv(out_cts, grid_w, dense_w)
        for oc, ct in enumerate(masked_cts):
            raw = scheme.encoder.decode_row(
                scheme.decrypt(out_cts[oc], proto.secret), signed=False
            )
            blinded = scheme.encoder.decode_row(
                scheme.decrypt(ct, proto.secret), signed=False
            )
            unmasked_slots = int(np.count_nonzero((blinded - raw) % t == 0))
            assert unmasked_slots <= 4, f"{unmasked_slots} slots left unmasked"
            got = unpack_image(blinded, grid_w)[:dense_w, :dense_w]
            assert np.array_equal((got - mask_dense[oc]) % t, dense[oc])

    def test_fc_fold_slots_are_masked(self, proto_params):
        """Privacy: the FC fold leaves partial weight sums in slots >= no;
        every slot of the row must be blinded before leaving the cloud."""
        from repro.nn.quantize import synthetic_fc_weights
        from repro.scheduling import FcPlan, pack_fc_input

        ni, no = 24, 7
        net = Network("Mlp", [FCLayer("fc1", ni, no)])
        weights = {"fc1": synthetic_fc_weights(ni, no, bits=5, seed=95)}
        proto = GazelleProtocol(net, weights, proto_params, rescale_bits=4, seed=96)
        scheme = proto.scheme
        plan = proto.plans["fc1"]
        assert isinstance(plan, FcPlan) and plan.fold_steps  # fold actually fires
        rng = np.random.default_rng(97)
        x = rng.integers(0, 16, ni)
        packed = pack_fc_input(x, proto_params.row_size)
        ct = scheme.encrypt(scheme.encoder.encode_row(packed), proto.public)
        out_ct = plan.execute(ct, proto.galois_keys)
        raw = scheme.encoder.decode_row(
            scheme.decrypt(out_ct, proto.secret), signed=False
        )
        # The fold's residue beyond slot no is real weight information ...
        assert np.any(raw[no : 2 * ni] != 0)
        # ... and the protocol's masking blinds all of it.
        masked_ct, mask, _ = proto._mask_output_fc(out_ct, no)
        blinded = scheme.encoder.decode_row(
            scheme.decrypt(masked_ct, proto.secret), signed=False
        )
        t = proto_params.plain_modulus
        diff = (blinded - raw) % t
        assert np.all(diff[no : 2 * ni] != 0), "fold residue slots left unmasked"
        assert int(np.count_nonzero(diff == 0)) <= 4
        assert np.array_equal(
            (blinded[:no] - mask) % t, (weights["fc1"] @ x) % t
        )

    def test_oversized_padded_image_rejected(self, proto_params):
        net = Network(
            "TooBig",
            [ConvLayer("conv1", w=64, fw=3, ci=1, co=1, padding=1)],
        )
        weights = {"conv1": synthetic_conv_weights(3, 1, 1, bits=4, seed=80)}
        proto = GazelleProtocol(net, weights, proto_params, rescale_bits=4, seed=81)
        with pytest.raises(ValueError):
            proto.run(np.zeros((1, 64, 64), dtype=np.int64))
