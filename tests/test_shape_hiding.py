"""Tests for shape hiding (the paper's Section II-B future work)."""

import numpy as np
import pytest

from repro.nn.layers import ActivationLayer, ConvLayer, FCLayer
from repro.nn.models import Network, lenet5
from repro.nn.plaintext import PlaintextRunner
from repro.nn.quantize import synthetic_conv_weights, synthetic_fc_weights
from repro.protocol.shape_hiding import (
    hiding_overhead,
    insert_null_layers,
    null_layer_weights,
    pad_network,
    pad_weights,
)


@pytest.fixture()
def tiny_net():
    return Network(
        "tiny",
        [
            ConvLayer("c1", w=8, fw=3, ci=1, co=3),
            ActivationLayer("r1", "relu", 3 * 6 * 6),
            FCLayer("f1", 108, 10),
        ],
    )


@pytest.fixture()
def tiny_weights():
    return {
        "c1": synthetic_conv_weights(3, 1, 3, bits=4, seed=0),
        "f1": synthetic_fc_weights(108, 10, bits=4, seed=1),
    }


class TestPadding:
    def test_channels_rounded_to_bucket(self, tiny_net):
        padded = pad_network(tiny_net, channel_bucket=16, feature_bucket=128)
        conv = padded.conv_layers[0]
        assert conv.ci == 1  # first-layer input stays public
        assert conv.co == 16

    def test_final_output_preserved(self, tiny_net):
        padded = pad_network(tiny_net)
        assert padded.fc_layers[-1].no == 10

    def test_intermediate_fc_padded(self):
        net = lenet5()
        padded = pad_network(net, feature_bucket=128)
        assert padded.fc_layers[0].no == 128  # 120 -> 128
        assert padded.fc_layers[1].ni == 128

    def test_two_architectures_become_indistinguishable(self):
        a = Network("a", [FCLayer("f", 100, 30), FCLayer("g", 30, 10)])
        b = Network("b", [FCLayer("f", 100, 57), FCLayer("g", 57, 10)])
        pa = pad_network(a, feature_bucket=64)
        pb = pad_network(b, feature_bucket=64)
        shapes_a = [(l.ni, l.no) for l in pa.fc_layers]
        shapes_b = [(l.ni, l.no) for l in pb.fc_layers]
        assert shapes_a == shapes_b

    def test_padded_function_unchanged(self, tiny_net, tiny_weights):
        """Zero-padded weights must compute the identical function."""
        padded = pad_network(tiny_net, channel_bucket=8, feature_bucket=64)
        # FC input grows with the padded conv output: repack weights at
        # the flattened boundary by embedding into the padded layout.
        rng = np.random.default_rng(2)
        image = rng.integers(0, 16, (1, 8, 8))
        original = PlaintextRunner(tiny_net, tiny_weights, rescale_bits=3).run(image)

        conv = tiny_net.conv_layers[0]
        padded_conv = padded.conv_layers[0]
        new_weights = pad_weights(tiny_net, padded, tiny_weights)
        # The flattened FC input ordering changes with channel padding:
        # rebuild f1 by scattering original columns into the new layout.
        out_pixels = conv.out_w * conv.out_w
        f1 = np.zeros((padded.fc_layers[0].no, padded_conv.co * out_pixels), dtype=np.int64)
        original_f1 = tiny_weights["f1"]
        for channel in range(conv.co):
            src = original_f1[:, channel * out_pixels : (channel + 1) * out_pixels]
            f1[: original_f1.shape[0], channel * out_pixels : (channel + 1) * out_pixels] = src
        new_weights["f1"] = f1
        hidden = PlaintextRunner(padded, new_weights, rescale_bits=3).run(image)
        assert np.array_equal(hidden[:10], original)


class TestNullLayers:
    def test_depth_increases(self, tiny_net):
        hidden = insert_null_layers(tiny_net, 3)
        assert len(hidden.conv_layers) == len(tiny_net.conv_layers) + 3

    def test_null_layers_preserve_function(self, tiny_net, tiny_weights):
        rescale = 3
        hidden = insert_null_layers(tiny_net, 2)
        weights = dict(tiny_weights)
        weights.update(null_layer_weights(hidden, rescale))
        rng = np.random.default_rng(3)
        image = rng.integers(0, 16, (1, 8, 8))
        original = PlaintextRunner(tiny_net, tiny_weights, rescale_bits=rescale).run(image)
        hidden_out = PlaintextRunner(hidden, weights, rescale_bits=rescale).run(image)
        assert np.array_equal(hidden_out, original)

    def test_rejects_negative_count(self, tiny_net):
        with pytest.raises(ValueError):
            insert_null_layers(tiny_net, -1)

    def test_requires_convolution(self):
        mlp = Network("mlp", [FCLayer("f", 8, 4)])
        with pytest.raises(ValueError):
            insert_null_layers(mlp, 1)


class TestOverhead:
    def test_padding_costs_compute(self):
        net = lenet5()
        padded = pad_network(net, channel_bucket=32)
        overhead = hiding_overhead(net, padded)
        assert overhead.slowdown > 1.0
        assert overhead.slowdown < 30.0  # bounded, usable trade-off
