"""Shared fixtures: small (insecure, fast) BFV contexts for unit tests.

Cryptographic unit tests use deliberately small ring dimensions with
``require_security=False`` so the suite runs quickly; parameter-security
itself is tested separately in ``test_params_security.py``.

Networked tests never use fixed ports or sleeps: ``shard_worker_fleet``
(and the servers it wraps) binds port 0 -- the OS picks a free port, and
the EADDRINUSE race on the pick is retried inside
:func:`repro.serving.bind_listener` -- and readiness is an event (the
server's ``start()`` returns with the bound address), not a poll loop.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest

from repro.bfv import BfvParameters, BfvScheme


@pytest.fixture(scope="session")
def small_params() -> BfvParameters:
    """Tiny, fast context: n=256, 18-bit t, 60-bit q."""
    return BfvParameters.create(
        n=256,
        plain_bits=18,
        coeff_bits=60,
        w_dcmp_bits=6,
        a_dcmp_bits=12,
        require_security=False,
    )


@pytest.fixture(scope="session")
def small_scheme(small_params) -> BfvScheme:
    return BfvScheme(small_params, seed=42)


@pytest.fixture(scope="session")
def small_keys(small_scheme):
    return small_scheme.keygen()


@pytest.fixture(scope="session")
def small_galois(small_scheme, small_keys):
    secret, _ = small_keys
    return small_scheme.generate_galois_keys(secret, list(range(1, 17)))


@pytest.fixture(scope="session")
def conv_params() -> BfvParameters:
    """Context large enough for live conv/FC layers: n=2048, wide q."""
    return BfvParameters.create(
        n=2048,
        plain_bits=17,
        coeff_bits=100,
        w_dcmp_bits=6,
        a_dcmp_bits=16,
        require_security=False,
    )


@pytest.fixture(scope="session")
def conv_scheme(conv_params) -> BfvScheme:
    return BfvScheme(conv_params, seed=7)


@pytest.fixture(scope="session")
def conv_keys(conv_scheme):
    return conv_scheme.keygen()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def shard_worker_fleet():
    """Start-and-stop helper for remote shard-worker fleets.

    Usage::

        with shard_worker_fleet(artifact_dir, count=2) as servers:
            pool = ShardPool(None, workers=0,
                             remote_endpoints=[s.endpoint for s in servers])

    Every server binds port 0 (free-port pick, EADDRINUSE-retried) and
    ``start()`` returning *is* the readiness event -- no fixed ports, no
    sleeps.  Servers are stopped on exit even when the body raises.
    """
    from repro.serving import ShardWorkerServer

    @contextmanager
    def fleet(artifact_dir, count: int = 1, **kwargs):
        servers = []
        try:
            for _ in range(count):
                servers.append(
                    ShardWorkerServer(artifact_dir, port=0, **kwargs).start()
                )
            yield servers
        finally:
            for server in servers:
                server.stop()

    return fleet
