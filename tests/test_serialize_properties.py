"""Property-based round-trip and corruption tests for ``bfv/serialize``.

The serving runtime feeds every byte that crosses a process or network
boundary through this module, so its contract must hold *pointwise*:

* round-trips are exact for arbitrary (in-range) content, and
* **every single-byte corruption of a valid blob either raises or
  decodes to the very same polynomials** -- never silently to different
  ones.  Structural checks catch headers and sizes; the body CRC-32
  catches the dangerous case of a bit-flip that lands inside a valid
  residue range (which would otherwise decrypt to garbage).

Hypothesis drives the random content; the corruption sweeps are
exhaustive over byte positions with a seeded flip value per position.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bfv import BfvParameters, BfvScheme
from repro.bfv.serialize import (
    deserialize_ciphertext,
    deserialize_galois_keys,
    deserialize_plaintext,
    serialize_ciphertext,
    serialize_galois_keys,
    serialize_plaintext,
)

# One tiny shared context: hypothesis re-runs bodies many times and the
# corruption sweeps decode thousands of blobs, so blobs must be small.
_PARAMS = BfvParameters.create(
    n=64, plain_bits=18, coeff_bits=54, a_dcmp_bits=10, require_security=False
)
_SCHEME = BfvScheme(_PARAMS, seed=5)
_SECRET, _PUBLIC = _SCHEME.keygen()

# A fixed ciphertext/blob pair for the mutation properties: hypothesis
# replays examples, so the subject must not change between draws.
_CORRUPTION_CT = _SCHEME.encrypt_values(np.arange(8), _PUBLIC)
_CORRUPTION_BLOB = serialize_ciphertext(_CORRUPTION_CT, _PARAMS)

values = st.lists(
    st.integers(min_value=0, max_value=_PARAMS.plain_modulus - 1),
    min_size=1,
    max_size=_PARAMS.n,
)


def _ct_polys(ct):
    return ct.c0.data.copy(), ct.c1.data.copy()


def _keys_polys(keys):
    return {
        element: [
            (body.data.copy(), a.data.copy()) for body, a in key.pairs
        ]
        for element, key in keys.keys.items()
    }


class TestRoundTrips:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(values)
    def test_plaintext_roundtrip_exact(self, vals):
        pt = _SCHEME.encoder.encode_row(
            np.pad(np.array(vals, dtype=np.int64), (0, _PARAMS.row_size - 0))[
                : _PARAMS.row_size
            ]
        )
        restored = deserialize_plaintext(serialize_plaintext(pt))
        assert np.array_equal(restored.coeffs, pt.coeffs)

    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    @given(values)
    def test_ciphertext_roundtrip_byte_exact(self, vals):
        ct = _SCHEME.encrypt_values(np.array(vals, dtype=np.int64), _PUBLIC)
        restored = deserialize_ciphertext(
            serialize_ciphertext(ct, _PARAMS), _PARAMS
        )
        assert np.array_equal(restored.c0.data, ct.c0.data)
        assert np.array_equal(restored.c1.data, ct.c1.data)

    @settings(max_examples=10, suppress_health_check=[HealthCheck.too_slow])
    @given(st.sets(st.integers(min_value=1, max_value=8), min_size=1, max_size=3))
    def test_galois_keys_roundtrip_byte_exact(self, steps):
        keys = _SCHEME.generate_galois_keys(_SECRET, sorted(steps))
        restored = deserialize_galois_keys(
            serialize_galois_keys(keys, _PARAMS), _PARAMS
        )
        assert _keys_polys(restored).keys() == _keys_polys(keys).keys()
        for element, pairs in _keys_polys(keys).items():
            for (b0, a0), (b1, a1) in zip(pairs, _keys_polys(restored)[element]):
                assert np.array_equal(b0, b1) and np.array_equal(a0, a1)

    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(st.binary(min_size=0, max_size=64))
    def test_random_bytes_never_crash_differently(self, junk):
        """Garbage input raises ValueError -- not struct/index errors."""
        for payload in (junk, b"RPRO" + junk):
            with pytest.raises(ValueError):
                deserialize_ciphertext(payload, _PARAMS)


def _sweep_corruptions(blob, positions, decode, check_equal, rng):
    """Flip one byte per position; decoding must raise or be identical."""
    silent = []
    for index in positions:
        corrupted = bytearray(blob)
        corrupted[index] ^= int(rng.integers(1, 256))
        try:
            decoded = decode(bytes(corrupted))
        except (ValueError, KeyError):
            continue
        if not check_equal(decoded):
            silent.append(index)
    assert not silent, (
        f"{len(silent)} single-byte corruption(s) decoded to different "
        f"polynomials at offsets {silent[:10]}..."
    )


class TestSingleByteCorruption:
    """Every byte of every blob kind, one seeded flip each."""

    def test_ciphertext_corruption_never_silent(self):
        rng = np.random.default_rng(2024)
        ct = _SCHEME.encrypt_values(np.arange(16), _PUBLIC)
        blob = serialize_ciphertext(ct, _PARAMS)
        c0, c1 = _ct_polys(ct)
        _sweep_corruptions(
            blob,
            range(len(blob)),
            lambda b: deserialize_ciphertext(b, _PARAMS),
            lambda ct2: np.array_equal(ct2.c0.data, c0)
            and np.array_equal(ct2.c1.data, c1),
            rng,
        )

    def test_plaintext_corruption_never_silent(self):
        rng = np.random.default_rng(2025)
        pt = _SCHEME.encoder.encode_row(np.arange(_PARAMS.row_size))
        blob = serialize_plaintext(pt)
        coeffs = pt.coeffs.copy()
        _sweep_corruptions(
            blob,
            range(len(blob)),
            deserialize_plaintext,
            lambda pt2: np.array_equal(pt2.coeffs, coeffs),
            rng,
        )

    def test_galois_keys_corruption_never_silent(self):
        rng = np.random.default_rng(2026)
        keys = _SCHEME.generate_galois_keys(_SECRET, [1, 2])
        blob = serialize_galois_keys(keys, _PARAMS)
        original = _keys_polys(keys)

        def equal(restored):
            polys = _keys_polys(restored)
            if polys.keys() != original.keys():
                return False
            return all(
                np.array_equal(b0, b1) and np.array_equal(a0, a1)
                for element in original
                for (b0, a0), (b1, a1) in zip(original[element], polys[element])
            )

        # Header exhaustively; body sampled (every byte of a key blob
        # is CRC-covered identically, so a seeded sample pins the same
        # property without thousands of redundant decodes).
        header_len = int.from_bytes(blob[4:8], "little")
        body_positions = rng.choice(
            np.arange(8 + header_len, len(blob)), size=512, replace=False
        )
        positions = list(range(8 + header_len)) + sorted(int(p) for p in body_positions)
        _sweep_corruptions(
            blob,
            positions,
            lambda b: deserialize_galois_keys(b, _PARAMS),
            equal,
            rng,
        )

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.binary(min_size=1, max_size=32),
    )
    def test_truncation_and_extension_never_silent(self, cut_frac, tail):
        ct = _CORRUPTION_CT
        blob = _CORRUPTION_BLOB
        c0, c1 = _ct_polys(ct)
        cut = min(len(blob) - 1, int(cut_frac * len(blob)))
        for mutated in (blob[:cut], blob + tail):
            try:
                decoded = deserialize_ciphertext(bytes(mutated), _PARAMS)
            except (ValueError, KeyError):
                continue
            assert np.array_equal(decoded.c0.data, c0)
            assert np.array_equal(decoded.c1.data, c1)
