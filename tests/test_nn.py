"""Tests for the DNN substrate: layers, model zoo, plaintext inference,
quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    ActivationLayer,
    ConvLayer,
    FCLayer,
    PlaintextRunner,
    alexnet,
    all_models,
    build_model,
    conv2d,
    fully_connected,
    lenet5,
    lenet_300_100,
    maxpool2d,
    meanpool2d,
    quantize,
    relu,
    required_plain_bits,
    resnet50,
    synthetic_conv_weights,
    synthetic_fc_weights,
    vgg16,
)


class TestLayerDescriptors:
    def test_conv_output_width(self):
        layer = ConvLayer("c", w=28, fw=5, ci=1, co=6, padding=2)
        assert layer.out_w == 28
        strided = ConvLayer("c", w=227, fw=11, ci=3, co=96, stride=4)
        assert strided.out_w == 55

    def test_conv_macs(self):
        layer = ConvLayer("c", w=8, fw=3, ci=2, co=4)
        assert layer.macs == 6 * 6 * 9 * 2 * 4

    def test_fc_macs(self):
        assert FCLayer("f", 784, 300).macs == 235200

    def test_required_plain_bits(self):
        layer = FCLayer("f", ni=1024, no=10)
        assert required_plain_bits(layer, 9, 8) == 9 + 8 + 10

    def test_accumulation_depth(self):
        layer = ConvLayer("c", w=8, fw=3, ci=16, co=4)
        assert layer.accumulation_depth == 9 * 16


class TestModelZoo:
    def test_all_five_models(self):
        names = {m.name for m in all_models()}
        assert names == {"LeNet300100", "LeNet5", "AlexNet", "VGG16", "ResNet50"}

    def test_lenet300100_shapes(self):
        net = lenet_300_100()
        assert [l.ni for l in net.fc_layers] == [784, 300, 100]
        assert [l.no for l in net.fc_layers] == [300, 100, 10]

    def test_lenet5_structure(self):
        net = lenet5()
        assert len(net.conv_layers) == 2
        assert len(net.fc_layers) == 3

    def test_alexnet_structure(self):
        net = alexnet()
        assert len(net.conv_layers) == 5
        assert len(net.fc_layers) == 3
        assert net.conv_layers[0].stride == 4

    def test_vgg16_structure(self):
        net = vgg16()
        assert len(net.conv_layers) == 13
        assert len(net.fc_layers) == 3

    def test_resnet50_structure(self):
        net = resnet50()
        assert len(net.conv_layers) == 53  # bottleneck count
        assert len(net.fc_layers) == 1
        assert net.fc_layers[0].ni == 2048

    def test_channel_chaining_consistent(self):
        """Each conv's ci must match the producing layer's co (per stage)."""
        net = resnet50()
        convs = net.conv_layers
        assert convs[0].ci == 3
        assert convs[-1].co == 2048

    def test_total_macs_ordering(self):
        macs = {m.name: m.total_macs for m in all_models()}
        assert macs["VGG16"] > macs["ResNet50"] > macs["AlexNet"]
        assert macs["AlexNet"] > macs["LeNet5"] > macs["LeNet300100"]

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("GPT4")


class TestPlaintextOps:
    def test_conv_matches_manual(self):
        acts = np.arange(16).reshape(1, 4, 4)
        weights = np.ones((1, 1, 2, 2), dtype=np.int64)
        out = conv2d(acts, weights)
        assert out[0, 0, 0] == 0 + 1 + 4 + 5

    def test_conv_stride(self):
        acts = np.arange(36).reshape(1, 6, 6)
        out = conv2d(acts, np.ones((1, 1, 2, 2), dtype=np.int64), stride=2)
        assert out.shape == (1, 3, 3)

    def test_conv_padding(self):
        acts = np.ones((1, 4, 4), dtype=np.int64)
        out = conv2d(acts, np.ones((1, 1, 3, 3), dtype=np.int64), padding=1)
        assert out.shape == (1, 4, 4)
        assert out[0, 0, 0] == 4  # corner sees 2x2 window

    def test_conv_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((2, 4, 4), dtype=np.int64), np.zeros((1, 3, 2, 2), dtype=np.int64))

    def test_fc(self):
        weights = np.array([[1, 2], [3, 4]])
        assert list(fully_connected(np.array([5, 6]), weights)) == [17, 39]

    def test_relu(self):
        assert list(relu(np.array([-2, 0, 3]))) == [0, 0, 3]

    def test_maxpool(self):
        acts = np.array([[[1, 2, 5, 6], [3, 4, 7, 8], [1, 1, 1, 1], [1, 1, 2, 1]]])
        out = maxpool2d(acts, 2)
        assert np.array_equal(out[0], [[4, 8], [1, 2]])

    def test_meanpool(self):
        acts = np.full((1, 4, 4), 8, dtype=np.int64)
        assert np.all(meanpool2d(acts, 2) == 8)

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=3))
    @settings(max_examples=20)
    def test_conv_linearity(self, w_plus, scale):
        """conv(a*x) == a*conv(x): convolution is linear."""
        rng = np.random.default_rng(0)
        w = w_plus + 2
        acts = rng.integers(0, 10, (2, w, w))
        weights = rng.integers(-3, 4, (3, 2, 2, 2))
        assert np.array_equal(conv2d(acts * scale, weights), conv2d(acts, weights) * scale)


class TestRunner:
    def test_tiny_network_end_to_end(self):
        from repro.nn.models import Network

        net = Network(
            "tiny",
            [
                ConvLayer("c1", w=6, fw=3, ci=1, co=2),
                ActivationLayer("r1", "relu", 32),
                FCLayer("f1", 32, 4),
            ],
        )
        weights = {
            "c1": synthetic_conv_weights(3, 1, 2, bits=4, seed=0),
            "f1": synthetic_fc_weights(32, 4, bits=4, seed=1),
        }
        runner = PlaintextRunner(net, weights, rescale_bits=3)
        rng = np.random.default_rng(2)
        out = runner.run(rng.integers(0, 16, (1, 6, 6)))
        assert out.shape == (4,)

    def test_trace_recording(self):
        from repro.nn.models import Network

        net = Network("t", [FCLayer("f1", 4, 2)])
        weights = {"f1": np.ones((2, 4), dtype=np.int64)}
        runner = PlaintextRunner(net, weights, rescale_bits=0)
        out, trace = runner.run(np.array([1, 2, 3, 4]), record=True)
        assert trace[0][0] == "f1"
        assert np.array_equal(out, [10, 10])


class TestQuantize:
    def test_bounds(self):
        values = quantize(np.array([-1.0, 0.0, 1.0]), 8)
        assert list(values) == [-127, 0, 127]

    def test_clipping(self):
        assert quantize(np.array([5.0]), 8)[0] == 127

    def test_synthetic_weights_deterministic(self):
        a = synthetic_conv_weights(3, 2, 4, seed=7)
        b = synthetic_conv_weights(3, 2, 4, seed=7)
        assert np.array_equal(a, b)

    def test_synthetic_weight_range(self):
        weights = synthetic_fc_weights(10, 10, bits=5)
        assert weights.max() <= 15 and weights.min() >= -15
