"""Tests for invariant noise budget measurement."""

import numpy as np
import pytest

from repro.bfv import decryption_correct, invariant_noise_budget, noise_bits


class TestBudgetBasics:
    def test_fresh_budget_within_capacity(self, small_scheme, small_keys):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(10), public)
        budget = invariant_noise_budget(small_scheme, ct, secret)
        assert 0 < budget < small_scheme.params.noise_capacity_bits

    def test_budget_decreases_under_ops(self, small_scheme, small_keys, small_galois):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(10), public)
        budgets = [invariant_noise_budget(small_scheme, ct, secret)]
        current = ct
        for _ in range(3):
            current = small_scheme.rotate_rows(current, 1, small_galois)
            budgets.append(invariant_noise_budget(small_scheme, current, secret))
        assert budgets == sorted(budgets, reverse=True) or all(
            later <= earlier + 0.5 for earlier, later in zip(budgets, budgets[1:])
        )

    def test_positive_budget_decrypts_correctly(self, small_scheme, small_keys):
        secret, public = small_keys
        values = np.arange(20)
        ct = small_scheme.encrypt_values(values, public)
        assert invariant_noise_budget(small_scheme, ct, secret) > 0
        assert decryption_correct(small_scheme, ct, secret, values)

    def test_noise_bits_nonnegative(self, small_scheme, small_keys):
        secret, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(5), public)
        assert noise_bits(small_scheme, ct, secret) >= 0


class TestBudgetExhaustion:
    def test_repeated_mults_exhaust_budget(self, small_scheme, small_keys):
        """Chaining large-coefficient plaintext mults must eventually fail."""
        secret, public = small_keys
        params = small_scheme.params
        rng = np.random.default_rng(11)
        big = rng.integers(0, params.plain_modulus, params.n, dtype=np.int64)
        plain = small_scheme.encode_for_mul(small_scheme.encoder.encode(big))
        ct = small_scheme.encrypt_values(np.arange(4) + 1, public)
        budgets = []
        for _ in range(4):
            ct = small_scheme.mul_plain(ct, plain)
            budgets.append(invariant_noise_budget(small_scheme, ct, secret))
        # The measured budget saturates just above zero (|t w mod q| is
        # capped at q/2), so "exhausted" means driven to (almost) nothing.
        assert budgets[-1] < 1.0
        assert budgets[0] > budgets[-1]

    def test_exhausted_budget_corrupts_decryption(self, small_scheme, small_keys):
        secret, public = small_keys
        params = small_scheme.params
        rng = np.random.default_rng(12)
        big = rng.integers(0, params.plain_modulus, params.n, dtype=np.int64)
        plain = small_scheme.encode_for_mul(small_scheme.encoder.encode(big))
        values = np.arange(4) + 1
        ct = small_scheme.encrypt_values(values, public)
        expected = values.astype(object)
        for _ in range(6):
            ct = small_scheme.mul_plain(ct, plain)
            expected = expected * big[:4] % params.plain_modulus
        if invariant_noise_budget(small_scheme, ct, secret) < 1.0:
            decoded = small_scheme.decrypt_values(ct, secret, signed=False)
            assert not np.array_equal(decoded[:4], expected)
