"""Tests for the accelerator model: kernels, lanes, PEs, mapping,
simulation and DSE (Figures 9-11, Table VI)."""

import pytest

from repro.accel import (
    AcceleratorConfig,
    KernelDesign,
    LaneDesign,
    PeDesign,
    evaluate_kernel,
    evaluate_lane,
    evaluate_pe,
    kernel_design_space,
    kernel_dse,
    kernel_work,
    map_layer,
    pareto_front,
    simulate,
    tech,
)
from repro.core.baselines import cheetah_configuration
from repro.core.ptune import ModelParams
from repro.nn.layers import ConvLayer, FCLayer
from repro.nn.models import lenet5


@pytest.fixture(scope="module")
def lenet_tuned():
    return cheetah_configuration(lenet5()).tuned_layers


def mp(n=4096, t=20, q=54, a=14):
    return ModelParams(n=n, plain_bits=t, coeff_bits=q, w_dcmp_bits=10, a_dcmp_bits=a)


class TestKernelWork:
    def test_ntt_butterflies(self):
        work = kernel_work("ntt", 4096)
        assert work.primary_ops == 2048 * 12

    def test_simd_mult(self):
        assert kernel_work("simd_mult", 4096).primary_ops == 4096

    def test_decompose_scales_with_digits(self):
        assert kernel_work("decompose", 1024, l_ct=4).primary_ops == 4096

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            kernel_work("fft", 1024)


class TestKernelCosts:
    def test_unroll_reduces_latency(self):
        slow = evaluate_kernel(KernelDesign("ntt", unroll=1), 4096)
        fast = evaluate_kernel(KernelDesign("ntt", unroll=64), 4096)
        assert fast.latency_s < slow.latency_s

    def test_unroll_increases_area(self):
        small = evaluate_kernel(KernelDesign("ntt", unroll=1), 4096)
        big = evaluate_kernel(KernelDesign("ntt", unroll=64), 4096)
        assert big.area_mm2 > small.area_mm2

    def test_ii_scales_latency(self):
        ii1 = evaluate_kernel(KernelDesign("simd_mult", unroll=4, ii=1), 4096)
        ii4 = evaluate_kernel(KernelDesign("simd_mult", unroll=4, ii=4), 4096)
        assert ii4.latency_s > ii1.latency_s

    def test_power_positive(self):
        cost = evaluate_kernel(KernelDesign("ntt", unroll=8), 4096)
        assert cost.power_w > 0

    def test_design_space_size(self):
        designs = kernel_design_space("ntt", max_unroll=256)
        assert len(designs) == 9 * 3  # unroll 1..256 x ii {1,2,4}

    def test_dse_returns_all_points(self):
        points = kernel_dse("simd_add", 2048, max_unroll=64)
        assert len(points) == 7 * 3


class TestPareto:
    def test_dominated_points_removed(self):
        points = [(1.0, 1.0), (2.0, 2.0), (0.5, 3.0), (3.0, 0.5)]
        front = pareto_front(points, objectives=lambda p: p)
        assert (2.0, 2.0) not in front
        assert (1.0, 1.0) in front

    def test_kernel_pareto_nontrivial(self):
        points = kernel_dse("ntt", 4096, max_unroll=256)
        front = pareto_front(points, objectives=lambda c: (c.latency_s, c.power_w))
        assert 1 < len(front) < len(points)


class TestSramModel:
    def test_small_arrays_pay_density_penalty(self):
        """The paper's 2.5x bit-density observation for 128-word arrays."""
        large = tech.sram_area_mm2(16384, banks=1)
        small = tech.sram_area_mm2(16384, banks=256)  # 64 words per bank
        assert small > 2.0 * large

    def test_zero_words(self):
        assert tech.sram_area_mm2(0) == 0.0

    def test_scaling_factors(self):
        assert tech.scale_power_to_5nm(100.0) == pytest.approx(5.6)
        assert tech.scale_area_to_5nm(1000.0) == pytest.approx(38.0)


class TestLaneAndPe:
    def test_lane_interval_below_fill(self):
        lane = evaluate_lane(LaneDesign(n=4096, l_ct=4))
        assert lane.interval <= lane.fill_latency

    def test_ntt_is_lane_bottleneck(self):
        lane = evaluate_lane(LaneDesign(n=4096, l_ct=4))
        bottleneck = max(lane.stage_latencies, key=lane.stage_latencies.get)
        assert bottleneck in ("ntt", "key_mult")

    def test_ntt_parallelism_shrinks_ntt_stage(self):
        serial = evaluate_lane(LaneDesign(n=4096, l_ct=4, ntt_parallel=1))
        parallel = evaluate_lane(LaneDesign(n=4096, l_ct=4, ntt_parallel=4))
        assert parallel.stage_latencies["ntt"] < serial.stage_latencies["ntt"]
        assert parallel.area_mm2 > serial.area_mm2

    def test_pe_area_breakdown_sums(self):
        lane = LaneDesign(n=4096, l_ct=4)
        pe = evaluate_pe(PeDesign(lane=lane, lanes=64, input_ct_words=8192))
        assert sum(pe.area_breakdown.values()) == pytest.approx(pe.area_mm2)

    def test_more_lanes_more_area(self):
        lane = LaneDesign(n=4096, l_ct=4)
        small = evaluate_pe(PeDesign(lane=lane, lanes=16, input_ct_words=8192))
        big = evaluate_pe(PeDesign(lane=lane, lanes=128, input_ct_words=8192))
        assert big.area_mm2 > small.area_mm2


class TestMapper:
    def test_conv_mapping(self):
        layer = ConvLayer("c", w=16, fw=3, ci=4, co=8, padding=1)
        mapping = map_layer(layer, mp(n=2048))
        assert mapping.out_cts == 1  # 8 * 256 / 2048
        assert mapping.partials_per_ct > 0

    def test_fc_mapping(self):
        layer = FCLayer("f", ni=2048, no=1000)
        mapping = map_layer(layer, mp(n=4096))
        assert mapping.out_cts == 1
        assert mapping.in_cts == 1

    def test_total_partials(self):
        layer = ConvLayer("c", w=16, fw=3, ci=4, co=8, padding=1)
        mapping = map_layer(layer, mp(n=2048))
        assert mapping.total_partials == mapping.out_cts * mapping.partials_per_ct


class TestSimulator:
    def test_more_lanes_not_slower(self, lenet_tuned):
        few = simulate(lenet_tuned, AcceleratorConfig(num_pes=4, lanes_per_pe=16))
        many = simulate(lenet_tuned, AcceleratorConfig(num_pes=4, lanes_per_pe=256))
        assert many.latency_s <= few.latency_s

    def test_more_pes_not_slower(self, lenet_tuned):
        few = simulate(lenet_tuned, AcceleratorConfig(num_pes=2, lanes_per_pe=64))
        many = simulate(lenet_tuned, AcceleratorConfig(num_pes=32, lanes_per_pe=64))
        assert many.latency_s <= few.latency_s

    def test_energy_independent_of_lane_count(self, lenet_tuned):
        """Work is fixed; parallelism changes time, not switched energy."""
        a = simulate(lenet_tuned, AcceleratorConfig(num_pes=4, lanes_per_pe=16))
        b = simulate(lenet_tuned, AcceleratorConfig(num_pes=4, lanes_per_pe=256))
        assert a.energy_j == pytest.approx(b.energy_j)

    def test_area_breakdown_sums(self, lenet_tuned):
        report = simulate(lenet_tuned, AcceleratorConfig(num_pes=4, lanes_per_pe=32))
        assert sum(report.area_breakdown_40nm.values()) == pytest.approx(
            report.area_mm2_40nm
        )

    def test_5nm_scaling_applied(self, lenet_tuned):
        report = simulate(lenet_tuned, AcceleratorConfig(num_pes=4, lanes_per_pe=32))
        assert report.area_mm2_5nm == pytest.approx(report.area_mm2_40nm * 0.038)
        assert report.power_w_5nm == pytest.approx(report.power_w_40nm * 0.056)

    def test_io_utilization_below_one(self, lenet_tuned):
        report = simulate(lenet_tuned, AcceleratorConfig(num_pes=8, lanes_per_pe=64))
        assert 0.0 <= report.io_utilization < 1.0

    def test_per_layer_results_cover_network(self, lenet_tuned):
        report = simulate(lenet_tuned, AcceleratorConfig(num_pes=4, lanes_per_pe=32))
        assert len(report.layer_results) == len(lenet_tuned)
