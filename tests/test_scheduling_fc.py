"""Live homomorphic FC layers: diagonal method under both schedules."""

import numpy as np
import pytest

from repro.core.noise_model import Schedule
from repro.scheduling import (
    fc_diagonal,
    fc_he_small,
    fc_rotation_steps,
    pack_fc_input,
    pad_fc_weights,
)


@pytest.fixture(scope="module")
def fc_galois(conv_scheme, conv_keys):
    secret, _ = conv_keys
    return conv_scheme.generate_galois_keys(secret, fc_rotation_steps(24))


class TestDiagonals:
    def test_ia_diagonal_definition(self):
        weights = np.arange(16).reshape(4, 4)
        diag = fc_diagonal(weights, 1, schedule_pa=False)
        expected = [weights[j, (j + 1) % 4] for j in range(4)]
        assert list(diag) == expected

    def test_pa_diagonal_definition(self):
        weights = np.arange(16).reshape(4, 4)
        diag = fc_diagonal(weights, 1, schedule_pa=True)
        expected = [weights[(j - 1) % 4, j] for j in range(4)]
        assert list(diag) == expected

    def test_pad_weights(self):
        weights = np.ones((2, 5), dtype=np.int64)
        padded = pad_fc_weights(weights)
        assert padded.shape == (5, 5)
        assert padded[2:].sum() == 0

    def test_pad_rejects_wide_output(self):
        with pytest.raises(ValueError):
            pad_fc_weights(np.ones((6, 5), dtype=np.int64))

    def test_diagonal_requires_square(self):
        with pytest.raises(ValueError):
            fc_diagonal(np.ones((2, 5), dtype=np.int64), 0, True)


class TestPacking:
    def test_duplicated_packing(self):
        packed = pack_fc_input(np.array([1, 2, 3]), 16)
        assert list(packed[:6]) == [1, 2, 3, 1, 2, 3]
        assert not packed[6:].any()

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_fc_input(np.arange(9), 16)


class TestFcCorrectness:
    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_square_matrix(self, conv_scheme, conv_keys, fc_galois, schedule, rng):
        secret, public = conv_keys
        x = rng.integers(-8, 8, 12)
        weights = rng.integers(-4, 5, (12, 12))
        out = fc_he_small(conv_scheme, x, weights, public, secret, fc_galois, schedule)
        assert np.array_equal(out, weights @ x)

    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_rectangular(self, conv_scheme, conv_keys, fc_galois, schedule, rng):
        secret, public = conv_keys
        x = rng.integers(0, 16, 24)
        weights = rng.integers(-4, 5, (7, 24))
        out = fc_he_small(conv_scheme, x, weights, public, secret, fc_galois, schedule)
        assert np.array_equal(out, weights @ x)

    def test_single_output(self, conv_scheme, conv_keys, fc_galois, rng):
        secret, public = conv_keys
        x = rng.integers(0, 8, 8)
        weights = rng.integers(-4, 5, (1, 8))
        out = fc_he_small(conv_scheme, x, weights, public, secret, fc_galois)
        assert np.array_equal(out, weights @ x)

    def test_zero_weights(self, conv_scheme, conv_keys, fc_galois, rng):
        secret, public = conv_keys
        x = rng.integers(0, 8, 8)
        weights = np.zeros((3, 8), dtype=np.int64)
        out = fc_he_small(conv_scheme, x, weights, public, secret, fc_galois)
        assert not out.any()

    def test_identity_matrix(self, conv_scheme, conv_keys, fc_galois, rng):
        secret, public = conv_keys
        x = rng.integers(0, 16, 10)
        out = fc_he_small(conv_scheme, x, np.eye(10, dtype=np.int64), public, secret, fc_galois)
        assert np.array_equal(out, x)

    def test_input_size_validation(self, conv_scheme, conv_keys, fc_galois):
        secret, public = conv_keys
        with pytest.raises(ValueError):
            fc_he_small(
                conv_scheme,
                np.zeros(4, dtype=np.int64),
                np.zeros((2, 8), dtype=np.int64),
                public,
                secret,
                fc_galois,
            )
