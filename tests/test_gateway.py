"""Tests for the asyncio serving gateway and its satellite layers.

Covers the event-driven front end (`repro.serving.gateway`), the session
state machine and idle TTL, admission control (token buckets, queue
bounds, BUSY retries), the metrics surface (HTTP scrape + wire message),
frame-size caps, and TrafficLog isolation under concurrent batched
rounds.  Small ring (n=256, security off) keeps live-HE end-to-end runs
fast.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.nn.plaintext import PlaintextRunner
from repro.serving import (
    DEMO_RESCALE_BITS,
    AdmissionController,
    AsyncGateway,
    ClientSession,
    LocalExecutor,
    LoopbackTransport,
    Message,
    MetricsRegistry,
    ModelRegistry,
    ServingEngine,
    ServingError,
    SessionState,
    SocketServer,
    SocketTransport,
    TokenBucket,
    demo_image,
    demo_network,
    demo_weights,
)
from repro.serving.faults import ConnectionFaults

GATEWAY_SCHEDULE = Schedule.INPUT_ALIGNED


@pytest.fixture(scope="module")
def params() -> BfvParameters:
    return BfvParameters.create(
        n=256, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


@pytest.fixture(scope="module")
def registry(params) -> ModelRegistry:
    registry = ModelRegistry()
    registry.register(
        "demo",
        demo_network(),
        demo_weights(),
        params,
        schedule=GATEWAY_SCHEDULE,
        rescale_bits=DEMO_RESCALE_BITS,
    )
    return registry


@pytest.fixture(scope="module")
def plaintext_logits():
    runner = PlaintextRunner(
        demo_network(), demo_weights(), rescale_bits=DEMO_RESCALE_BITS
    )
    return lambda image: runner.run(image)


def _client(params, transport, seed=7, **kwargs) -> ClientSession:
    return ClientSession(demo_network(), params, transport, seed=seed, **kwargs)


class TestGatewayEndToEnd:
    def test_matches_plaintext_over_gateway(
        self, registry, params, plaintext_logits
    ):
        engine = ServingEngine(registry, max_batch=1, seed=11)
        with AsyncGateway(engine, executor_threads=2) as gateway:
            with SocketTransport(gateway.host, gateway.port) as transport:
                session = _client(params, transport, track_noise=True)
                session.connect("demo")
                image = demo_image(3)
                result = session.infer(image)
                session.close()
        assert np.array_equal(result.logits, plaintext_logits(image))
        assert result.rounds == 3
        assert result.min_noise_budget > 0
        assert result.busy_retries == 0

    def test_concurrent_batched_sessions_bit_identical(
        self, registry, params, plaintext_logits
    ):
        """Connections multiplex on the loop yet still meet in the batcher."""
        clients = 4
        metrics = MetricsRegistry()
        engine = ServingEngine(
            registry, max_batch=clients, batch_window_s=0.05, seed=12,
            metrics=metrics,
        )
        with AsyncGateway(engine, executor_threads=clients * 2) as gateway:
            transports = [
                SocketTransport(gateway.host, gateway.port)
                for _ in range(clients)
            ]
            sessions = []
            for i, transport in enumerate(transports):
                session = _client(params, transport, seed=30 + i)
                session.connect("demo")
                sessions.append(session)
            images = [demo_image(200 + i) for i in range(clients)]
            results = [None] * clients
            errors = []

            def run(i):
                try:
                    results[i] = sessions[i].infer(images[i])
                except BaseException as exc:  # surfaces in the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for transport in transports:
                transport.close()
        assert not errors
        for i in range(clients):
            assert np.array_equal(
                results[i].logits, plaintext_logits(images[i])
            ), i
        # The batcher reported its fills into the metrics registry.
        fill = metrics.snapshot()["batch_fill"]
        assert fill["requests"] == clients * 3  # 3 linear rounds each
        assert fill["batches"] >= 3

    def test_session_survives_reconnect(
        self, registry, params, plaintext_logits
    ):
        """Session state lives on the engine, not the connection."""
        engine = ServingEngine(registry, max_batch=1, seed=13)
        with AsyncGateway(engine, executor_threads=2) as gateway:
            first = SocketTransport(gateway.host, gateway.port)
            session = _client(params, first)
            session.connect("demo")
            image = demo_image(5)
            before = session.infer(image)
            session_id = session.session_id
            first.close()  # client vanishes without close()
            second = SocketTransport(gateway.host, gateway.port)
            session.transport = second
            after = session.infer(image)
            assert session.session_id == session_id
            session.close()
            second.close()
        assert np.array_equal(before.logits, plaintext_logits(image))
        assert np.array_equal(after.logits, before.logits)

    def test_connection_cut_recovers_through_gateway(
        self, registry, params, plaintext_logits
    ):
        """PR 6 fault injection recovers through the async front end."""
        engine = ServingEngine(registry, max_batch=1, seed=14)
        faults = ConnectionFaults(cut_on_recv=3)
        with AsyncGateway(engine, executor_threads=2) as gateway:
            with SocketTransport(
                gateway.host, gateway.port, socket_factory=faults.connect,
                backoff_base_s=0.01, retry_jitter_seed=0,
            ) as transport:
                session = _client(params, transport)
                session.connect("demo")
                image = demo_image(6)
                result = session.infer(image)
                session.close()
        assert faults.fired == ["cut_on_recv:3"]
        assert result.transport_retries >= 1
        assert np.array_equal(result.logits, plaintext_logits(image))


class TestSessionStateMachine:
    def test_lifecycle_transitions(self, registry, params):
        engine = ServingEngine(registry, max_batch=1, seed=15)
        transport = LoopbackTransport(engine)
        session = _client(params, transport)
        # Drive the handshake by hand to observe the intermediate state.
        from repro.bfv.serialize import params_to_dict, serialize_galois_keys

        hello = transport.request(
            Message("hello", {"model": "demo", "params": params_to_dict(params)})
        )
        sid = hello.meta["session"]
        assert engine._sessions[sid].state is SessionState.AWAIT_KEYS
        linear = transport.request(Message("linear", {"session": sid, "layer": "conv1"}))
        assert linear.kind == "error" and "Galois" in linear.meta["reason"]
        steps = [int(s) for s in hello.meta["rotation_steps"]]
        galois = session.scheme.generate_galois_keys(session.secret, steps)
        blob = serialize_galois_keys(galois, params)
        reply = transport.request(
            Message("galois_keys", {"session": sid}, [blob])
        )
        assert reply.kind == "keys_ok"
        assert engine._sessions[sid].state is SessionState.READY
        # Re-upload is idempotent (transport replay safety), state holds.
        reply = transport.request(
            Message("galois_keys", {"session": sid}, [blob])
        )
        assert reply.kind == "keys_ok"
        assert engine._sessions[sid].state is SessionState.READY
        assert transport.request(Message("close", {"session": sid})).kind == "close_ok"
        assert sid not in engine._sessions


class _RecordingExecutor(LocalExecutor):
    """LocalExecutor that records key release calls (TTL reclamation)."""

    def __init__(self):
        self.prepared: list[str] = []
        self.released: list[str] = []

    def prepare_keys(self, entry, key_id, blob, keys):
        self.prepared.append(key_id)
        return keys

    def release_keys(self, key_id):
        self.released.append(key_id)


class TestSessionTtl:
    def test_idle_sessions_reclaimed_and_rehandshake(
        self, registry, params, plaintext_logits
    ):
        executor = _RecordingExecutor()
        engine = ServingEngine(
            registry, max_batch=1, seed=16, executor=executor,
            session_ttl_s=30.0,
        )
        transport = LoopbackTransport(engine)
        session = _client(params, transport)
        session.connect("demo")
        sid = session.session_id
        assert executor.prepared == [sid]
        # Backdate the session past the TTL and sweep.
        engine._sessions[sid].last_used -= 60.0
        evicted = engine.evict_idle_sessions()
        assert evicted == [sid]
        # Memory is reclaimed: keys released, traffic log gone.
        assert executor.released == [sid]
        assert sid not in engine._sessions
        with pytest.raises(KeyError):
            engine.session_traffic(sid)
        # The client's next round fails with "unknown session" ...
        with pytest.raises(ServingError, match="unknown session"):
            session.infer(demo_image(0))
        # ... and a clean re-handshake restores service.
        session.connect("demo")
        assert session.session_id != sid
        image = demo_image(7)
        assert np.array_equal(
            session.infer(image).logits, plaintext_logits(image)
        )

    def test_lazy_sweep_on_request_path(self, registry, params):
        engine = ServingEngine(
            registry, max_batch=1, seed=17, session_ttl_s=30.0
        )
        transport = LoopbackTransport(engine)
        stale = _client(params, transport, seed=1)
        stale.connect("demo")
        engine._sessions[stale.session_id].last_used -= 60.0
        engine._last_sweep -= 60.0  # the sweep rate limiter
        fresh = _client(params, transport, seed=2)
        fresh.connect("demo")  # any request triggers the lazy sweep
        assert stale.session_id not in engine._sessions
        assert fresh.session_id in engine._sessions


class _DenyFirstAdmission(AdmissionController):
    """Deterministic backpressure: refuse the first ``denials`` rounds."""

    def __init__(self, denials: int):
        super().__init__()
        self.denials = denials

    def try_admit(self, session_id):
        if self.denials > 0:
            self.denials -= 1
            return 0.01
        return super().try_admit(session_id)


class TestBackpressure:
    def test_busy_retry_completes_bit_identical(
        self, registry, params, plaintext_logits
    ):
        """A client hitting a full queue gets BUSY, retries, completes."""
        admission = _DenyFirstAdmission(denials=2)
        engine = ServingEngine(
            registry, max_batch=1, seed=18, admission=admission
        )
        with AsyncGateway(engine, executor_threads=2) as gateway:
            with SocketTransport(gateway.host, gateway.port) as transport:
                session = _client(params, transport)
                session.connect("demo")
                image = demo_image(8)
                result = session.infer(image)
                session.close()
        assert result.busy_retries == 2
        assert np.array_equal(result.logits, plaintext_logits(image))

    def test_busy_retries_exhausted_raises(self, registry, params):
        admission = _DenyFirstAdmission(denials=1000)
        engine = ServingEngine(
            registry, max_batch=1, seed=19, admission=admission
        )
        transport = LoopbackTransport(engine)
        session = _client(params, transport, busy_retry_limit=3)
        session.connect("demo")
        with pytest.raises(ServingError, match="busy"):
            session.infer(demo_image(0))

    def test_queue_depth_bound(self, registry, params):
        """try_admit holds a slot; the bound refuses the excess round."""
        admission = AdmissionController(max_queue_depth=2)
        assert admission.try_admit("s0") is None
        assert admission.try_admit("s1") is None
        wait = admission.try_admit("s2")
        assert wait is not None and wait > 0
        assert admission.rejections["queue"] == 1
        admission.release()
        assert admission.try_admit("s2") is None

    def test_token_bucket_rate_limits_per_tenant(self):
        clock = [0.0]
        admission = AdmissionController(
            rate_per_tenant=10.0, burst=2.0, clock=lambda: clock[0]
        )
        admission.bind("s0", "acme")
        admission.bind("s1", "acme")
        admission.bind("s2", "other")
        # The burst admits two rounds; the third must wait ~1/rate.
        assert admission.try_admit("s0") is None
        assert admission.try_admit("s1") is None
        wait = admission.try_admit("s0")
        assert wait == pytest.approx(0.1, abs=0.02)
        assert admission.rejections["rate"] == 1
        # Another tenant has its own bucket.
        assert admission.try_admit("s2") is None
        # Tokens accrue with the (injected) clock.
        clock[0] += 0.2
        assert admission.try_admit("s0") is None

    def test_token_bucket_refill_capped_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate_per_s=5.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock[0] += 100.0  # long idle must not bank more than the burst
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_gateway_sheds_load_in_event_loop(self, registry, params):
        """queue_limit=0 means linear rounds are refused at the gateway."""
        engine = ServingEngine(registry, max_batch=1, seed=21)
        gateway = AsyncGateway(engine, executor_threads=2, queue_limit=1)
        # Force the shed path deterministically: pretend a round is stuck.
        gateway._inflight = 1
        with gateway:
            with SocketTransport(gateway.host, gateway.port) as transport:
                session = _client(params, transport)
                session.connect("demo")  # control plane is never shed
                reply = transport.request(
                    Message(
                        "linear",
                        {"session": session.session_id, "layer": "conv1"},
                    )
                )
                assert reply.kind == "busy"
                assert reply.meta["retry_after_s"] > 0
            gateway._inflight = 0
        assert gateway.busy_rejections == 1


class TestTrafficIsolation:
    def test_concurrent_interleaved_rounds_tally_per_session(
        self, registry, params
    ):
        """Two sessions racing one layer batch each see only their own counts.

        The serial baseline runs the *identical* clients (same seeds,
        same images) one at a time against a fresh engine; a client's
        uploaded bytes are a deterministic function of (seed, image), so
        any cross-session leakage in the concurrent tally -- a byte or an
        event landing on the wrong session's log -- breaks the exact
        per-session equality below.
        """
        seeds, images = [50, 51], [demo_image(60), demo_image(61)]
        serial_engine = ServingEngine(registry, max_batch=1, seed=22)
        serial_transport = LoopbackTransport(serial_engine)
        expected = []
        for seed, image in zip(seeds, images):
            session = _client(params, serial_transport, seed=seed)
            session.connect("demo")
            session.infer(image)
            expected.append(serial_engine.session_traffic(session.session_id))

        engine = ServingEngine(
            registry, max_batch=2, batch_window_s=0.1, seed=22
        )
        transport = LoopbackTransport(engine)
        sessions = []
        for seed in seeds:
            session = _client(params, transport, seed=seed)
            session.connect("demo")
            sessions.append(session)
        barrier = threading.Barrier(2)
        errors = []

        def run(session, image):
            try:
                barrier.wait(timeout=5)
                session.infer(image)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(session, image))
            for session, image in zip(sessions, images)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        def label_counts(traffic):
            counts: dict[str, int] = {}
            for _direction, label, _nbytes in traffic.events:
                counts[label] = counts.get(label, 0) + 1
            return counts

        for session, reference in zip(sessions, expected):
            traffic = engine.session_traffic(session.session_id)
            assert traffic.rounds == reference.rounds == 3
            assert label_counts(traffic) == label_counts(reference)
            # Uploaded bytes are deterministic per (seed, image): exact.
            assert traffic.client_to_cloud_bytes == reference.client_to_cloud_bytes
            # Downloads involve the engine's blinding RNG, whose draw
            # order is interleaving-dependent; the mask block itself is
            # fixed-size, so only ciphertext encodings may wiggle.
            assert traffic.cloud_to_client_bytes > 0


class TestMetricsSurface:
    def test_http_scrape_after_inference(
        self, registry, params, plaintext_logits
    ):
        metrics = MetricsRegistry()
        engine = ServingEngine(registry, max_batch=1, seed=23, metrics=metrics)
        with AsyncGateway(engine, executor_threads=2) as gateway:
            with SocketTransport(gateway.host, gateway.port) as transport:
                session = _client(params, transport)
                session.connect("demo")
                image = demo_image(9)
                result = session.infer(image)
                session.close()
            url = f"http://{gateway.host}:{gateway.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                import json

                snapshot = json.loads(response.read().decode())
        assert np.array_equal(result.logits, plaintext_logits(image))
        assert snapshot["requests"]["count"] >= 6  # hello+keys+3 linear+close
        assert snapshot["requests"]["by_kind"]["linear"] == 3
        assert set(snapshot["layers"]) == {"conv1", "fc1", "fc2"}
        for series in snapshot["layers"].values():
            assert series["count"] == 1
            assert series["p95_ms"] >= series["p50_ms"] > 0
        assert snapshot["he_ops"]["he_rotate"] > 0
        assert snapshot["gauges"]["noise_headroom_bits"]["demo"] > 0
        assert snapshot["gauges"]["gateway_connections"] >= 0

    def test_http_unknown_path_is_404(self, registry):
        engine = ServingEngine(registry, max_batch=1, seed=24)
        with AsyncGateway(engine, executor_threads=1) as gateway:
            request = urllib.request.Request(
                f"http://{gateway.host}:{gateway.port}/nope"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 404

    def test_wire_metrics_message(self, registry, params):
        metrics = MetricsRegistry()
        engine = ServingEngine(registry, max_batch=1, seed=25, metrics=metrics)
        transport = LoopbackTransport(engine)
        session = _client(params, transport)
        session.connect("demo")
        reply = transport.request(Message("metrics"))
        assert reply.kind == "metrics_ok"
        snapshot = reply.meta["metrics"]
        assert snapshot["requests"]["by_kind"]["hello"] == 1
        assert snapshot["gauges"]["sessions"] == 1

    def test_metrics_disabled_is_an_error_reply(self, registry):
        engine = ServingEngine(registry, max_batch=1, seed=26)
        reply = LoopbackTransport(engine).request(Message("metrics"))
        assert reply.kind == "error"

    def test_requests_per_second_windowed(self):
        metrics = MetricsRegistry(window_s=60.0)
        for _ in range(10):
            metrics.record_request("linear", 0.001, "linear_ok")
        assert metrics.requests_per_second() > 0
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["ok"] == 10
        assert snapshot["requests"]["busy"] == 0


class TestFrameCaps:
    def _oversized_probe(self, host, port, claim=1 << 24):
        """Claim a huge frame; return whether the peer closed on us."""
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(struct.pack("<I", claim))
            sock.settimeout(5)
            try:
                return sock.recv(1) == b""
            except (ConnectionResetError, TimeoutError):
                return True

    def test_gateway_rejects_oversized_claim_before_allocation(
        self, registry
    ):
        engine = ServingEngine(registry, max_batch=1, seed=27)
        with AsyncGateway(
            engine, executor_threads=1, max_frame_bytes=1 << 16
        ) as gateway:
            assert self._oversized_probe(gateway.host, gateway.port)

    def test_threaded_server_rejects_oversized_claim(self, registry):
        engine = ServingEngine(registry, max_batch=1, seed=28)
        with SocketServer(
            engine, workers=1, max_frame_bytes=1 << 16
        ) as server:
            assert self._oversized_probe(server.host, server.port)

    def test_recv_frame_cap_is_checked_before_body_read(self):
        from repro.serving.wire import recv_frame

        left, right = socket.socketpair()
        try:
            # A 1 MiB claim with *no body at all*: with the cap enforced
            # from the prefix, recv_frame must raise without blocking on
            # the (absent) body bytes.
            left.sendall(struct.pack("<I", 1 << 20))
            right.settimeout(2)
            with pytest.raises(ValueError, match="exceeds cap"):
                recv_frame(right, max_frame_bytes=1 << 16)
        finally:
            left.close()
            right.close()

    def test_cap_default_still_serves_large_frames(self, registry, params):
        """The configurable cap must not break normal key-upload frames."""
        engine = ServingEngine(registry, max_batch=1, seed=29)
        with AsyncGateway(engine, executor_threads=1) as gateway:
            with SocketTransport(gateway.host, gateway.port) as transport:
                session = _client(params, transport)
                session.connect("demo")  # the Galois key blob is the big one
                session.close()


class TestGatewayLifecycle:
    def test_stop_drains_in_flight_requests(self):
        """A round already executing when stop() arrives gets its reply."""
        started = threading.Event()

        class SlowEngine:
            def handle(self, request):
                started.set()
                time.sleep(0.4)
                return Message("slow_ok", {"echo": request.kind})

        gateway = AsyncGateway(SlowEngine(), executor_threads=2).start()
        replies = []

        def drive():
            with SocketTransport(gateway.host, gateway.port) as transport:
                replies.append(transport.request(Message("ping", {})))

        client = threading.Thread(target=drive)
        client.start()
        assert started.wait(5), "request never reached the engine"
        stop_start = time.monotonic()
        gateway.stop()
        stopped_after = time.monotonic() - stop_start
        client.join(timeout=5)
        assert replies and replies[0].kind == "slow_ok"
        assert stopped_after >= 0.2

    def test_stop_unblocks_idle_connections(self, registry):
        engine = ServingEngine(registry, max_batch=1, seed=31)
        gateway = AsyncGateway(engine, executor_threads=1).start()
        idle = socket.create_connection((gateway.host, gateway.port))
        start = time.monotonic()
        gateway.stop()
        assert time.monotonic() - start < 5
        idle.close()

    def test_stop_is_idempotent(self, registry):
        engine = ServingEngine(registry, max_batch=1, seed=32)
        gateway = AsyncGateway(engine, executor_threads=1).start()
        gateway.stop()
        gateway.stop()
