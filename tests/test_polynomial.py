"""Unit tests for RNS polynomials and Galois automorphisms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.modmath import generate_ntt_primes
from repro.bfv.ntt_batch import get_engine
from repro.bfv.polynomial import (
    Domain,
    RnsPolynomial,
    eval_domain_galois_map,
    galois_automorphism_coeffs,
)
from repro.bfv.rns import RnsBasis

N = 32


@pytest.fixture(scope="module")
def basis():
    return RnsBasis.for_bit_budget(56, N)


@pytest.fixture(scope="module")
def engine(basis):
    return get_engine(N, basis.primes)


def random_poly(basis, seed):
    rng = np.random.default_rng(seed)
    coeffs = np.array([int(rng.integers(0, basis.modulus)) for _ in range(N)], dtype=object)
    return RnsPolynomial.from_bigint_coeffs(basis, coeffs), coeffs


class TestArithmetic:
    def test_add_matches_bigint(self, basis, engine):
        a, ca = random_poly(basis, 0)
        b, cb = random_poly(basis, 1)
        result = a.add(b).bigint_coeffs(engine)
        assert np.array_equal(result, (ca + cb) % basis.modulus)

    def test_sub_matches_bigint(self, basis, engine):
        a, ca = random_poly(basis, 2)
        b, cb = random_poly(basis, 3)
        result = a.sub(b).bigint_coeffs(engine)
        assert np.array_equal(result, (ca - cb) % basis.modulus)

    def test_neg(self, basis, engine):
        a, ca = random_poly(basis, 4)
        assert np.array_equal(a.neg().bigint_coeffs(engine), (-ca) % basis.modulus)

    def test_scalar_multiply_bigint_scalar(self, basis, engine):
        a, ca = random_poly(basis, 5)
        scalar = basis.modulus // 3
        result = a.scalar_multiply(scalar).bigint_coeffs(engine)
        assert np.array_equal(result, ca * scalar % basis.modulus)

    def test_pointwise_requires_eval_domain(self, basis, engine):
        a, _ = random_poly(basis, 6)
        b, _ = random_poly(basis, 7)
        with pytest.raises(ValueError):
            a.pointwise(b, engine)

    def test_domain_mismatch_rejected(self, basis, engine):
        a, _ = random_poly(basis, 8)
        b, _ = random_poly(basis, 9)
        with pytest.raises(ValueError):
            a.add(b.to_eval(engine))


class TestDomainConversion:
    def test_eval_roundtrip(self, basis, engine):
        a, ca = random_poly(basis, 10)
        back = a.to_eval(engine).to_coeff(engine)
        assert np.array_equal(back.bigint_coeffs(engine), ca)

    def test_pointwise_is_negacyclic_product(self, basis, engine):
        a, ca = random_poly(basis, 11)
        b, cb = random_poly(basis, 12)
        prod = (
            a.to_eval(engine)
            .pointwise(b.to_eval(engine), engine)
            .to_coeff(engine)
            .bigint_coeffs(engine)
        )
        # Schoolbook negacyclic product over the big modulus.
        expected = np.zeros(N, dtype=object)
        for i in range(N):
            for j in range(N):
                term = int(ca[i]) * int(cb[j])
                if i + j >= N:
                    expected[i + j - N] -= term
                else:
                    expected[i + j] += term
        expected %= basis.modulus
        assert np.array_equal(prod, expected)


class TestGaloisAutomorphism:
    @pytest.mark.parametrize("galois_elt", [3, 9, 2 * N - 1])
    def test_coeff_domain_definition(self, galois_elt):
        modulus = 97 * 193
        rng = np.random.default_rng(13)
        coeffs = np.array([int(rng.integers(0, modulus)) for _ in range(N)], dtype=object)
        result = galois_automorphism_coeffs(coeffs, galois_elt, modulus)
        # Check against polynomial substitution x -> x^g evaluated termwise.
        expected = np.zeros(N, dtype=object)
        for i in range(N):
            exponent = i * galois_elt % (2 * N)
            sign = 1
            if exponent >= N:
                exponent -= N
                sign = -1
            expected[exponent] = (expected[exponent] + sign * int(coeffs[i])) % modulus
        assert np.array_equal(result, expected)

    def test_eval_map_is_permutation(self):
        mapping = eval_domain_galois_map(N, 3)
        assert sorted(mapping) == list(range(N))

    def test_eval_map_matches_coeff_automorphism(self, basis, engine):
        """Permuting evaluations must equal transforming the automorphed poly."""
        a, ca = random_poly(basis, 14)
        galois_elt = 3
        rotated_coeffs = galois_automorphism_coeffs(ca, galois_elt, basis.modulus)
        direct = RnsPolynomial.from_bigint_coeffs(basis, rotated_coeffs).to_eval(engine)
        permuted = a.to_eval(engine).permute(eval_domain_galois_map(N, galois_elt))
        assert np.array_equal(direct.data, permuted.data)

    def test_identity_element(self, basis, engine):
        a, ca = random_poly(basis, 15)
        result = galois_automorphism_coeffs(ca, 1, basis.modulus)
        assert np.array_equal(result, ca)


class TestValidation:
    def test_shape_validation(self, basis):
        with pytest.raises(ValueError):
            RnsPolynomial(basis, np.zeros((1, N), dtype=np.int64), Domain.COEFF)

    def test_zero_constructor(self, basis):
        poly = RnsPolynomial.zero(basis, N)
        assert poly.domain is Domain.EVAL
        assert not poly.data.any()

    def test_copy_is_independent(self, basis):
        a, _ = random_poly(basis, 16)
        b = a.copy()
        b.data[0, 0] = (b.data[0, 0] + 1) % basis.primes[0]
        assert a.data[0, 0] != b.data[0, 0]
