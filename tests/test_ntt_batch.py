"""Property and cross-check tests for the batched RNS-NTT engine.

The engine must be bit-identical to the per-limb reference
:class:`NttContext` on every path (numpy kernels and, when a compiler is
present, the native C kernel), keep its lazily-reduced outputs fully
reduced into [0, p), and leave the paper's NTT/modmul accounting exactly
as the scalar implementation recorded it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.counters import GLOBAL_COUNTERS
from repro.bfv.modmath import generate_ntt_primes
from repro.bfv.ntt import NttContext, naive_negacyclic_multiply
from repro.bfv.ntt_batch import RnsNttEngine, get_context, get_engine
from repro.bfv.native import native_available

N = 64
K = 3

PATHS = [False] + ([None] if native_available() else [])
PATH_IDS = ["numpy"] + (["native"] if native_available() else [])


@pytest.fixture(scope="module")
def moduli():
    return generate_ntt_primes(28, N, K)


@pytest.fixture(scope="module", params=PATHS, ids=PATH_IDS)
def engine(request, moduli):
    return RnsNttEngine(N, moduli, use_native=request.param)


@pytest.fixture(scope="module")
def contexts(moduli):
    return [NttContext(N, m) for m in moduli]


def random_stack(moduli, shape_tail, seed):
    rng = np.random.default_rng(seed)
    return np.stack(
        [rng.integers(0, m, shape_tail, dtype=np.int64) for m in moduli]
    )


class TestCrossCheck:
    @pytest.mark.parametrize("batch", [None, 1, 4])
    def test_forward_matches_context_bit_exactly(self, engine, contexts, moduli, batch):
        tail = (N,) if batch is None else (batch, N)
        stack = random_stack(moduli, tail, seed=batch or 0)
        got = engine.forward(stack, count_ops=False)
        ref = np.stack(
            [contexts[i].forward(stack[i], count_ops=False) for i in range(K)]
        )
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("batch", [None, 1, 4])
    def test_inverse_matches_context_bit_exactly(self, engine, contexts, moduli, batch):
        tail = (N,) if batch is None else (batch, N)
        stack = random_stack(moduli, tail, seed=10 + (batch or 0))
        got = engine.inverse(stack, count_ops=False)
        ref = np.stack(
            [contexts[i].inverse(stack[i], count_ops=False) for i in range(K)]
        )
        assert np.array_equal(got, ref)

    def test_roundtrip_identity(self, engine, moduli):
        stack = random_stack(moduli, (5, N), seed=2)
        back = engine.inverse(engine.forward(stack, count_ops=False), count_ops=False)
        assert np.array_equal(back, stack)

    def test_negative_and_unreduced_inputs_are_reduced(self, engine, contexts, moduli):
        rng = np.random.default_rng(3)
        stack = rng.integers(-(1 << 40), 1 << 40, (K, N), dtype=np.int64)
        got = engine.forward(stack, count_ops=False)
        ref = np.stack(
            [contexts[i].forward(stack[i], count_ops=False) for i in range(K)]
        )
        assert np.array_equal(got, ref)

    def test_matches_naive_negacyclic_multiply(self, engine, moduli):
        rng = np.random.default_rng(4)
        a = random_stack(moduli, (N,), seed=5)
        b = random_stack(moduli, (N,), seed=6)
        fast = engine.negacyclic_multiply(a, b)
        for i, m in enumerate(moduli):
            assert np.array_equal(fast[i], naive_negacyclic_multiply(a[i], b[i], m))

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_convolution_property_small_ring(self, data):
        n = 8
        moduli = generate_ntt_primes(18, n, 2)
        engine = RnsNttEngine(n, moduli, use_native=False)
        stack_a = np.stack(
            [
                np.array(data.draw(st.lists(st.integers(0, m - 1), min_size=n, max_size=n)))
                for m in moduli
            ]
        )
        stack_b = np.stack(
            [
                np.array(data.draw(st.lists(st.integers(0, m - 1), min_size=n, max_size=n)))
                for m in moduli
            ]
        )
        fast = engine.negacyclic_multiply(stack_a, stack_b)
        for i, m in enumerate(moduli):
            assert np.array_equal(
                fast[i], naive_negacyclic_multiply(stack_a[i], stack_b[i], m)
            )


class TestLazyReduction:
    """Lazy intermediates must never leak: outputs live in [0, p)."""

    @pytest.mark.parametrize("batch", [1, 3])
    def test_forward_fully_reduced(self, engine, moduli, batch):
        stack = random_stack(moduli, (batch, N), seed=7)
        out = engine.forward(stack, count_ops=False)
        for i, m in enumerate(moduli):
            assert out[i].min() >= 0
            assert out[i].max() < m

    @pytest.mark.parametrize("batch", [1, 3])
    def test_inverse_fully_reduced(self, engine, moduli, batch):
        stack = random_stack(moduli, (batch, N), seed=8)
        out = engine.inverse(stack, count_ops=False)
        for i, m in enumerate(moduli):
            assert out[i].min() >= 0
            assert out[i].max() < m


class TestAccounting:
    """The refactor must not change GLOBAL_COUNTERS NTT/modmul tallies."""

    def test_forward_counts_match_scalar_loop(self, engine, contexts, moduli):
        stack = random_stack(moduli, (4, N), seed=9)
        before = GLOBAL_COUNTERS.snapshot()
        engine.forward(stack)
        batched = GLOBAL_COUNTERS.diff(before)
        before = GLOBAL_COUNTERS.snapshot()
        for i in range(K):
            contexts[i].forward(stack[i])
        scalar = GLOBAL_COUNTERS.diff(before)
        assert batched.ntt == scalar.ntt == 4 * K
        assert batched.butterflies == scalar.butterflies

    def test_count_ops_false_is_silent(self, engine, moduli):
        stack = random_stack(moduli, (N,), seed=11)
        before = GLOBAL_COUNTERS.snapshot()
        engine.inverse(engine.forward(stack, count_ops=False), count_ops=False)
        delta = GLOBAL_COUNTERS.diff(before)
        assert delta.ntt == 0 and delta.butterflies == 0

    def test_pointwise_counts_modmuls(self, engine, moduli):
        a = random_stack(moduli, (N,), seed=12)
        b = random_stack(moduli, (N,), seed=13)
        before = GLOBAL_COUNTERS.snapshot()
        engine.pointwise(a, b)
        assert GLOBAL_COUNTERS.diff(before).modmuls == K * N

    def test_pointwise_accumulate_counts_like_loop(self, engine, contexts, moduli):
        batch = 5
        a = random_stack(moduli, (batch, N), seed=14)
        b = random_stack(moduli, (batch, N), seed=15)
        before = GLOBAL_COUNTERS.snapshot()
        fused = engine.pointwise_accumulate(a, b)
        fused_delta = GLOBAL_COUNTERS.diff(before)
        before = GLOBAL_COUNTERS.snapshot()
        acc = np.zeros((K, N), dtype=np.int64)
        for d in range(batch):
            for i in range(K):
                term = contexts[i].pointwise(a[i, d], b[i, d])
                acc[i] = (acc[i] + term) % moduli[i]
        loop_delta = GLOBAL_COUNTERS.diff(before)
        assert np.array_equal(fused, acc)
        assert fused_delta.modmuls == loop_delta.modmuls == batch * K * N

    def test_rotation_census_is_unchanged(self, small_scheme, small_keys, small_galois):
        """HE_Rotate still records k*(1 + l_ct) NTTs and 2*l_ct*k*n modmuls."""
        secret, public = small_keys
        ct = small_scheme.encrypt_values(np.arange(small_scheme.params.n) % 50, public)
        params = small_scheme.params
        before = GLOBAL_COUNTERS.snapshot()
        small_scheme.rotate_rows(ct, 1, small_galois)
        delta = GLOBAL_COUNTERS.diff(before)
        k = params.coeff_basis.count
        assert delta.he_rotate == 1
        assert delta.ntt == k * (1 + params.l_ct)
        assert delta.modmuls == 2 * params.l_ct * k * params.n


class TestEngineConstruction:
    def test_get_engine_is_memoized(self, moduli):
        assert get_engine(N, moduli) is get_engine(N, tuple(moduli))
        assert get_engine(N, list(moduli)) is get_engine(N, moduli)

    def test_contexts_are_shared_via_get_context(self, moduli):
        engine = get_engine(N, moduli)
        for m, context in zip(moduli, engine.contexts):
            assert context is get_context(N, m)

    def test_scheme_and_encoder_share_memoized_engines(self, small_scheme):
        from repro.bfv import BatchEncoder, BfvScheme

        other = BfvScheme(small_scheme.params, seed=1)
        assert other.engine is small_scheme.engine
        assert (
            BatchEncoder(small_scheme.params).engine
            is small_scheme.encoder.engine
        )

    def test_shape_validation(self, engine):
        with pytest.raises(ValueError):
            engine.forward(np.zeros((K + 1, N), dtype=np.int64))
        with pytest.raises(ValueError):
            engine.forward(np.zeros((K, N // 2), dtype=np.int64))

    def test_requires_moduli(self):
        with pytest.raises(ValueError):
            RnsNttEngine(N, ())

    def test_concurrent_transforms_are_isolated(self, engine, contexts, moduli):
        """Memoized engines share scratch buffers; the lock must keep
        concurrent transforms from corrupting each other."""
        import concurrent.futures

        stacks = [random_stack(moduli, (2, N), seed=20 + i) for i in range(8)]
        refs = [
            np.stack([contexts[i].forward(s[i], count_ops=False) for i in range(K)])
            for s in stacks
        ]
        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(lambda s: engine.forward(s, count_ops=False), stacks)
            )
        for got, ref in zip(results, refs):
            assert np.array_equal(got, ref)

    def test_numpy_and_native_paths_agree(self, moduli):
        if not native_available():
            pytest.skip("no C compiler: only the numpy path exists")
        numpy_engine = RnsNttEngine(N, moduli, use_native=False)
        native_engine = RnsNttEngine(N, moduli, use_native=None)
        assert native_engine.uses_native_kernel
        stack = random_stack(moduli, (3, N), seed=16)
        assert np.array_equal(
            numpy_engine.forward(stack, count_ops=False),
            native_engine.forward(stack, count_ops=False),
        )
        assert np.array_equal(
            numpy_engine.inverse(stack, count_ops=False),
            native_engine.inverse(stack, count_ops=False),
        )
