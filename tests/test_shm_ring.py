"""Property suite for the shared-memory slab ring (``serving/shm_ring``).

The ring is the zero-copy half of the shm shard channel: if its SPSC
protocol tears a record, misorders payloads, or accepts a corrupted
slab, workers decode garbage ciphertexts and the bit-identity contract
dies silently.  So the protocol is pinned the same way the wire codecs
are (``test_serialize_properties.py``):

* FIFO round-trips are exact for arbitrary payloads, including across
  many wraparounds of the data area (free-running position counters);
* full/empty boundaries raise (:class:`RingFull` / :class:`RingEmpty`)
  rather than tear, and an impossible payload raises
  :class:`SlabTooLarge` up front;
* a concurrent producer/consumer pair over the ring preserves the exact
  push sequence;
* **every single-byte corruption of a sealed record (header or slab)
  raises** :class:`RingCorruption` without advancing ``read_pos`` -- the
  record is still intact and consumable once the byte is restored;
* ``pack_into_ring``/``unpack_from_ring`` round-trip wire messages
  through the ring, degrade to in-band encoding when the ring cannot
  take the slab, and reject descriptor/slab mismatches.

Hypothesis drives payload content and sizes; the corruption sweep is
exhaustive over byte positions, mirroring the serializer suite.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving.shm_ring import (
    DATA_OFFSET,
    RingCorruption,
    RingEmpty,
    RingFull,
    ShmRing,
    SlabTooLarge,
    flip_ring_byte,
    pack_into_ring,
    retire_ring,
    unpack_from_ring,
)
from repro.serving.wire import SLAB_META_KEY, Message, decode_message

#: One data page of capacity -- the smallest ring -- so modest payload
#: streams wrap the data area many times.
SMALL_CAPACITY = DATA_OFFSET

payloads = st.lists(
    st.binary(min_size=0, max_size=600), min_size=1, max_size=40
)


@pytest.fixture
def ring():
    ring = ShmRing.create(SMALL_CAPACITY)
    yield ring
    retire_ring(ring)


class TestFifoRoundTrip:
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(payloads)
    def test_interleaved_push_pop_is_exact_fifo(self, items):
        """Alternating push/pop round-trips every payload byte-exactly.

        The cumulative byte stream of up to 40 x 600-byte records over a
        4 KiB data area crosses the wraparound boundary repeatedly, so
        record splitting at the ring edge is exercised by construction.
        """
        ring = ShmRing.create(SMALL_CAPACITY)
        try:
            for payload in items:
                ring.push(payload, timeout_s=0)
                _offset, out = ring.pop(timeout_s=0)
                assert out == payload
            assert ring.used_bytes() == 0
        finally:
            retire_ring(ring)

    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    @given(payloads)
    def test_queued_records_preserve_order(self, items):
        """Multiple in-flight records pop back in exact push order."""
        ring = ShmRing.create(SMALL_CAPACITY)
        try:
            queued = []
            for payload in items:
                try:
                    ring.push(payload, timeout_s=0)
                except RingFull:
                    _offset, out = ring.pop(timeout_s=0)
                    assert out == queued.pop(0)
                    ring.push(payload, timeout_s=0)
                queued.append(payload)
            for expected in queued:
                _offset, out = ring.pop(timeout_s=0)
                assert out == expected
        finally:
            retire_ring(ring)

    def test_positions_are_free_running(self, ring):
        """write/read positions never reset, so 'full' and 'empty' stay
        unambiguous after the counters pass many multiples of capacity."""
        payload = bytes(range(256)) * 4  # 1024B payload, 1040B record
        for _ in range(50):  # ~52 KiB through a 4 KiB ring
            ring.push(payload, timeout_s=0)
            _offset, out = ring.pop(timeout_s=0)
            assert out == payload
        assert ring._load(0) == ring._load(64) > ring.capacity


class TestBoundaries:
    def test_pop_empty_raises(self, ring):
        with pytest.raises(RingEmpty):
            ring.pop(timeout_s=0)

    def test_push_full_raises_and_recovers(self, ring):
        payload = b"x" * 1000
        pushed = 0
        with pytest.raises(RingFull):
            for _ in range(100):
                ring.push(payload, timeout_s=0)
                pushed += 1
        assert pushed == ring.capacity // ring.record_bytes(len(payload))
        ring.pop(timeout_s=0)
        ring.push(payload, timeout_s=0)  # freed space is reusable
        for _ in range(pushed):
            _offset, out = ring.pop(timeout_s=0)
            assert out == payload

    def test_exact_capacity_record_fits(self, ring):
        payload = b"y" * (ring.capacity - 16)
        assert ring.record_bytes(len(payload)) == ring.capacity
        ring.push(payload, timeout_s=0)
        _offset, out = ring.pop(timeout_s=0)
        assert out == payload

    def test_slab_too_large_raises_immediately(self, ring):
        with pytest.raises(SlabTooLarge):
            # timeout=None would block forever if this were RingFull.
            ring.push(b"z" * (ring.capacity + 1), timeout_s=None)


class TestConcurrent:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_producer_consumer_interleaving_is_exact(self, seed):
        """A real cross-thread producer/consumer preserves the sequence.

        Payload sizes are seeded so runs are reproducible; the consumer
        blocks on ``pop`` while the producer blocks on ``push`` when the
        ring fills, so every full/empty transition interleaving the
        scheduler produces must still deliver the exact sequence.
        """
        import random

        rng = random.Random(seed)
        items = [
            rng.randbytes(rng.randrange(0, 900)) for _ in range(60)
        ]
        ring = ShmRing.create(SMALL_CAPACITY)
        errors = []

        def produce():
            try:
                for payload in items:
                    ring.push(payload, timeout_s=10.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        try:
            producer = threading.Thread(target=produce)
            producer.start()
            received = [ring.pop(timeout_s=10.0)[1] for _ in items]
            producer.join(timeout=10.0)
            assert not errors
            assert received == items
            assert ring.used_bytes() == 0
        finally:
            retire_ring(ring)


class TestCorruption:
    def test_every_record_byte_flip_is_rejected_then_recoverable(self, ring):
        """Exhaustive sweep: any flipped bit in header or slab raises.

        ``pop`` must raise :class:`RingCorruption` without advancing
        ``read_pos``, so after restoring the byte the very same record
        pops clean -- corruption detection never consumes data.
        (Alignment padding is excluded: it is outside both CRCs and
        outside the payload, so flipping it is harmless by layout.)
        """
        payload = bytes(range(251))  # prime length: exercises padding
        offset = ring.push(payload, timeout_s=0)
        silent = []
        for index in range(16 + len(payload)):  # header + payload bytes
            flip_ring_byte(ring, offset + index)
            try:
                ring.pop(timeout_s=0)
            except RingCorruption:
                pass
            else:
                silent.append(index)
            flip_ring_byte(ring, offset + index)  # restore
        assert not silent, (
            f"{len(silent)} single-byte corruption(s) were accepted at "
            f"record offsets {silent[:10]}..."
        )
        _offset, out = ring.pop(timeout_s=0)
        assert out == payload

    def test_corruption_of_queued_slab_is_detected_by_unpack(self, ring):
        message = Message("task", {"task": "t0"}, [b"a" * 500, b"b" * 300])
        frame, slab_bytes = pack_into_ring(message, ring)
        assert slab_bytes == 800
        flip_ring_byte(ring, 16 + 123)  # a byte inside the slab
        with pytest.raises(RingCorruption):
            unpack_from_ring(frame, ring, timeout_s=0)


class TestFramePacking:
    def test_round_trip_moves_blobs_off_the_frame(self, ring):
        message = Message(
            "task", {"task": "t1", "attempt": 2}, [b"p" * 700, b"", b"q" * 41]
        )
        frame, slab_bytes = pack_into_ring(message, ring)
        assert slab_bytes == 741
        assert len(frame) < 300  # control frame: meta + descriptor only
        assert SLAB_META_KEY in decode_message(frame).meta
        restored, got = unpack_from_ring(frame, ring, timeout_s=0)
        assert got == slab_bytes
        assert restored.kind == message.kind
        assert restored.blobs == message.blobs
        assert restored.meta["task"] == "t1"
        assert SLAB_META_KEY not in restored.meta

    def test_no_ring_or_no_blobs_encodes_inline(self, ring):
        bare = Message("ping", {"task": "t2"})
        frame, slab_bytes = pack_into_ring(bare, ring)
        assert slab_bytes == 0
        restored, got = unpack_from_ring(frame, ring, timeout_s=0)
        assert got == 0 and restored.kind == "ping"
        blobby = Message("task", {"task": "t3"}, [b"inline" * 10])
        frame, slab_bytes = pack_into_ring(blobby, None)
        assert slab_bytes == 0
        restored, _ = unpack_from_ring(frame, None)
        assert restored.blobs == blobby.blobs

    def test_oversized_slab_degrades_to_inline(self, ring):
        message = Message(
            "task", {"task": "t4"}, [b"w" * (ring.capacity + 100)]
        )
        frame, slab_bytes = pack_into_ring(message, ring)
        assert slab_bytes == 0  # SlabTooLarge -> in-band fallback
        restored, got = unpack_from_ring(frame, ring, timeout_s=0)
        assert got == 0
        assert restored.blobs == message.blobs
        assert ring.used_bytes() == 0  # nothing left behind in the ring

    def test_full_ring_degrades_to_inline(self, ring):
        ring.push(b"f" * (ring.capacity - 16), timeout_s=0)  # fill it
        message = Message("task", {"task": "t5"}, [b"v" * 100])
        frame, slab_bytes = pack_into_ring(message, ring, timeout_s=0)
        assert slab_bytes == 0  # RingFull -> in-band fallback
        restored, _ = unpack_from_ring(frame, ring, timeout_s=0)
        assert restored.blobs == message.blobs

    def test_descriptor_slab_mismatch_is_rejected(self, ring):
        """A frame must resolve against *its own* slab, not whichever
        record happens to be next (e.g. after a torn predecessor)."""
        stray = Message("task", {"task": "t6"}, [b"stray" * 20])
        _frame_stray, _ = pack_into_ring(stray, ring)
        mine = Message("task", {"task": "t7"}, [b"mine" * 25])
        frame_mine, _ = pack_into_ring(mine, ring)
        # Popping for frame_mine first yields the stray slab -> mismatch.
        with pytest.raises(RingCorruption):
            unpack_from_ring(frame_mine, ring, timeout_s=0)

    def test_slab_frame_without_ring_is_corruption(self, ring):
        message = Message("task", {"task": "t8"}, [b"x" * 50])
        frame, _ = pack_into_ring(message, ring)
        with pytest.raises(RingCorruption):
            unpack_from_ring(frame, None)
