"""Tests for the multi-client serving runtime (repro.serving).

Covers the wire format, the parameter handshake, loopback and socket
transports, and the core serving guarantee: concurrent sessions -- with
cross-client batching on -- return logits bit-identical to direct
in-process :class:`GazelleProtocol` runs.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.bfv import BfvParameters, BfvScheme
from repro.core.noise_model import Schedule
from repro.nn.plaintext import PlaintextRunner
from repro.protocol import GazelleProtocol
from repro.scheduling import ConvPlan, FcPlan, encrypt_channels, pack_fc_input
from repro.scheduling.conv2d import _infer_width
from repro.serving import (
    DEMO_RESCALE_BITS,
    ClientSession,
    LoopbackTransport,
    Message,
    ModelRegistry,
    ServingEngine,
    ServingError,
    SocketServer,
    SocketTransport,
    decode_message,
    demo_image,
    demo_network,
    demo_weights,
    encode_message,
)



SERVE_SCHEDULE = Schedule.INPUT_ALIGNED


@pytest.fixture(scope="module")
def serve_params() -> BfvParameters:
    return BfvParameters.create(
        n=2048, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


@pytest.fixture(scope="module")
def registry(serve_params) -> ModelRegistry:
    registry = ModelRegistry()
    registry.register(
        "demo",
        demo_network(),
        demo_weights(),
        serve_params,
        schedule=SERVE_SCHEDULE,
        rescale_bits=DEMO_RESCALE_BITS,
    )
    return registry


@pytest.fixture(scope="module")
def plaintext_logits():
    runner = PlaintextRunner(
        demo_network(), demo_weights(), rescale_bits=DEMO_RESCALE_BITS
    )
    return lambda image: runner.run(image)


class TestWireFormat:
    def test_message_roundtrip(self):
        msg = Message("linear", {"session": "s1", "layer": "conv1"}, [b"abc", b"", b"xy"])
        restored = decode_message(encode_message(msg))
        assert restored.kind == msg.kind
        assert restored.meta == msg.meta
        assert restored.blobs == msg.blobs

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_message(b"definitely not a frame")

    def test_rejects_truncated_blob(self):
        payload = encode_message(Message("x", {}, [b"0123456789"]))
        with pytest.raises(ValueError, match="truncated"):
            decode_message(payload[:-3])

    def test_rejects_trailing_bytes(self):
        payload = encode_message(Message("x", {}))
        with pytest.raises(ValueError, match="trailing"):
            decode_message(payload + b"!!")


class TestHandshake:
    def test_unknown_model_rejected(self, registry, serve_params):
        engine = ServingEngine(registry, max_batch=1)
        session = ClientSession(
            demo_network(), serve_params, LoopbackTransport(engine)
        )
        with pytest.raises(ServingError, match="no model"):
            session.connect("nope")

    def test_mismatched_params_rejected(self, registry):
        engine = ServingEngine(registry, max_batch=1)
        other = BfvParameters.create(
            n=2048, plain_bits=17, coeff_bits=100, a_dcmp_bits=16,
            require_security=False,
        )
        session = ClientSession(demo_network(), other, LoopbackTransport(engine))
        with pytest.raises(ServingError, match="parameter mismatch"):
            session.connect("demo")

    def test_linear_before_keys_rejected(self, registry, serve_params):
        engine = ServingEngine(registry, max_batch=1)
        transport = LoopbackTransport(engine)
        reply = transport.request(
            Message(
                "hello",
                {
                    "model": "demo",
                    "params": __import__(
                        "repro.bfv.serialize", fromlist=["params_to_dict"]
                    ).params_to_dict(serve_params),
                },
            )
        )
        assert reply.kind == "hello_ok"
        linear = transport.request(
            Message("linear", {"session": reply.meta["session"], "layer": "conv1"})
        )
        assert linear.kind == "error"
        assert "Galois" in linear.meta["reason"]

    def test_handshake_reports_plan_facts(self, registry, serve_params):
        engine = ServingEngine(registry, max_batch=1)
        session = ClientSession(
            demo_network(), serve_params, LoopbackTransport(engine)
        )
        session.connect("demo")
        entry = registry.get("demo")
        assert session.rescale_bits == DEMO_RESCALE_BITS
        assert set(session._layer_meta) == {"conv1", "fc1", "fc2"}
        assert session._layer_meta["conv1"]["grid_w"] == entry.plans["conv1"].grid_w


class TestLoopbackInference:
    def test_matches_direct_protocol(self, registry, serve_params, plaintext_logits):
        engine = ServingEngine(registry, max_batch=1)
        session = ClientSession(
            demo_network(), serve_params, LoopbackTransport(engine),
            seed=3, track_noise=True,
        )
        session.connect("demo")
        image = demo_image(1)
        result = session.infer(image)
        direct = GazelleProtocol(
            demo_network(), demo_weights(), serve_params,
            schedule=SERVE_SCHEDULE, rescale_bits=DEMO_RESCALE_BITS, seed=9,
        ).run(image)
        assert np.array_equal(result.logits, direct.logits)
        assert np.array_equal(result.logits, plaintext_logits(image))
        assert result.min_noise_budget > 0
        assert result.rounds == 3

    def test_traffic_tallied_per_session(self, registry, serve_params):
        engine = ServingEngine(registry, max_batch=1)
        session = ClientSession(
            demo_network(), serve_params, LoopbackTransport(engine), seed=4
        )
        session.connect("demo")
        session.infer(demo_image(0))
        traffic = engine.session_traffic(session.session_id)
        assert traffic.rounds == 3
        assert traffic.client_to_cloud_bytes > 0
        assert traffic.cloud_to_client_bytes > 0
        labels = [label for _dir, label, _n in traffic.events]
        assert "galois_keys" in labels and "conv1" in labels and "fc2+mask" in labels

    def test_concurrent_batched_sessions_bit_identical(
        self, registry, serve_params, plaintext_logits
    ):
        """Cross-client batching preserves every request's own output."""
        clients = 4
        engine = ServingEngine(registry, max_batch=clients, batch_window_s=0.05)
        transport = LoopbackTransport(engine)
        sessions = []
        for i in range(clients):
            session = ClientSession(
                demo_network(), serve_params, transport, seed=20 + i
            )
            session.connect("demo")
            sessions.append(session)
        images = [demo_image(100 + i) for i in range(clients)]
        results = [None] * clients
        errors = []

        def run(i):
            try:
                results[i] = sessions[i].infer(images[i])
            except BaseException as exc:  # surfaces in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        direct = GazelleProtocol(
            demo_network(), demo_weights(), serve_params,
            schedule=SERVE_SCHEDULE, rescale_bits=DEMO_RESCALE_BITS, seed=77,
        )
        for i in range(clients):
            assert np.array_equal(results[i].logits, direct.run(images[i]).logits), i
            assert np.array_equal(results[i].logits, plaintext_logits(images[i])), i

    def test_reregistered_model_not_served_stale_plans(self, serve_params):
        """New sessions after a re-register must use the new weights, even
        with batching on (the per-layer batcher is entry-bound)."""
        from repro.nn.plaintext import PlaintextRunner

        registry = ModelRegistry()
        registry.register(
            "m", demo_network(), demo_weights(seed=0), serve_params,
            schedule=SERVE_SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
        )
        engine = ServingEngine(registry, max_batch=2, batch_window_s=0.01)
        transport = LoopbackTransport(engine)
        old = ClientSession(demo_network(), serve_params, transport, seed=1)
        old.connect("m")
        image = demo_image(0)
        old_logits = old.infer(image).logits

        registry.register(
            "m", demo_network(), demo_weights(seed=5), serve_params,
            schedule=SERVE_SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
        )
        new = ClientSession(demo_network(), serve_params, transport, seed=2)
        new.connect("m")
        expected_new = PlaintextRunner(
            demo_network(), demo_weights(seed=5), rescale_bits=DEMO_RESCALE_BITS
        ).run(image)
        assert np.array_equal(new.infer(image).logits, expected_new)
        # The pre-existing session keeps the entry it handshook with.
        assert np.array_equal(old.infer(image).logits, old_logits)

    def test_session_table_is_bounded(self, registry, serve_params):
        """Clients that vanish without close() must not leak key material."""
        engine = ServingEngine(registry, max_batch=1, max_sessions=2)
        transport = LoopbackTransport(engine)
        sessions = []
        for i in range(4):
            session = ClientSession(
                demo_network(), serve_params, transport, seed=40 + i
            )
            session.connect("demo")
            sessions.append(session)
        assert len(engine._sessions) == 2
        with pytest.raises(ServingError, match="unknown session"):
            sessions[0].infer(demo_image(0))

    def test_close_frees_session(self, registry, serve_params):
        engine = ServingEngine(registry, max_batch=1)
        session = ClientSession(
            demo_network(), serve_params, LoopbackTransport(engine)
        )
        session.connect("demo")
        sid = session.session_id
        session.close()
        with pytest.raises(KeyError):
            engine.session_traffic(sid)


class TestSocketTransport:
    def test_end_to_end_over_tcp(self, registry, serve_params, plaintext_logits):
        engine = ServingEngine(registry, max_batch=1)
        with SocketServer(engine, workers=2) as server:
            with SocketTransport(server.host, server.port) as transport:
                session = ClientSession(
                    demo_network(), serve_params, transport, seed=6
                )
                session.connect("demo")
                image = demo_image(7)
                result = session.infer(image)
                assert np.array_equal(result.logits, plaintext_logits(image))

    def test_stop_unblocks_idle_connections(self, registry):
        """stop() must not hang while a client sits connected and silent."""
        import socket
        import time

        engine = ServingEngine(registry, max_batch=1)
        server = SocketServer(engine, workers=2).start()
        idle = socket.create_connection((server.host, server.port))
        # Readiness event, not a fixed sleep: the connection only
        # matters to stop() once a pooled worker owns it.
        assert server.wait_for_connections(1, timeout_s=5)
        start = time.monotonic()
        server.stop()
        assert time.monotonic() - start < 5
        idle.close()

    def test_bad_frame_gets_error_reply(self, registry):
        from repro.serving.wire import recv_frame, send_frame
        import socket

        engine = ServingEngine(registry, max_batch=1)
        with SocketServer(engine, workers=1) as server:
            with socket.create_connection((server.host, server.port)) as sock:
                send_frame(sock, b"not a message frame")
                reply = decode_message(recv_frame(sock))
                assert reply.kind == "error"

    def test_stop_drains_in_flight_requests(self):
        """A request already executing when stop() is called gets its reply."""
        import socket
        import time

        from repro.serving.wire import encode_message, recv_frame, send_frame

        started = threading.Event()

        class SlowEngine:
            def handle(self, request):
                started.set()
                time.sleep(0.4)
                return Message("slow_ok", {"echo": request.kind})

        server = SocketServer(SlowEngine(), workers=2).start()
        replies = []

        def drive():
            with socket.create_connection((server.host, server.port)) as sock:
                send_frame(sock, encode_message(Message("ping", {})))
                replies.append(decode_message(recv_frame(sock)))

        client = threading.Thread(target=drive)
        client.start()
        assert started.wait(5), "request never reached the engine"
        stop_start = time.monotonic()
        server.stop()
        stopped_after = time.monotonic() - stop_start
        client.join(timeout=5)
        assert replies and replies[0].kind == "slow_ok"
        # stop() waited for the in-flight handler rather than racing it.
        assert stopped_after >= 0.2


class TestBatchedPrimitives:
    """Bit-exactness of the stacked (k, B, n) execution paths."""

    @pytest.fixture(scope="class")
    def small(self):
        params = BfvParameters.create(
            n=256, plain_bits=18, coeff_bits=90, a_dcmp_bits=16,
            require_security=False,
        )
        return params, BfvScheme(params, seed=42)

    def _clients(self, params, server, steps, count=3):
        clients = []
        for i in range(count):
            scheme = BfvScheme(params, seed=i)
            secret, public = scheme.keygen()
            keys = scheme.generate_galois_keys(secret, steps)
            clients.append((secret, public, keys))
        return clients

    def test_rotate_rows_batch_matches_serial(self, small):
        params, server = small
        clients = self._clients(params, server, [1, 5])
        values = np.arange(params.row_size)
        for step in [1, 5]:
            cts = [
                server.encrypt(server.encoder.encode_row(values * (i + 1)), pub)
                for i, (_s, pub, _k) in enumerate(clients)
            ]
            batch = server.rotate_rows_batch(
                cts, step, [keys for _s, _p, keys in clients]
            )
            for i, (secret, _pub, keys) in enumerate(clients):
                serial = server.rotate_rows(cts[i], step, keys)
                assert np.array_equal(
                    server.decrypt_values(batch[i], secret, signed=False),
                    server.decrypt_values(serial, secret, signed=False),
                )

    def test_hoist_batch_matches_hoist(self, small):
        params, server = small
        clients = self._clients(params, server, [2])
        cts = [
            server.encrypt_values(np.arange(16) + i, pub)
            for i, (_s, pub, _k) in enumerate(clients)
        ]
        batch = server.hoist_batch(cts)
        for i, ct in enumerate(cts):
            single = server.hoist(ct)
            assert np.array_equal(batch[i].digit_stack(), single.digit_stack())

    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_conv_plan_execute_batch(self, small, schedule):
        params, server = small
        rng = np.random.default_rng(0)
        weights = rng.integers(-4, 5, (3, 2, 3, 3))
        plan = ConvPlan.compile(server, weights, schedule)
        clients = self._clients(params, server, plan.rotation_steps)
        grid_w = _infer_width(params.row_size)
        inputs = []
        for _secret, public, _keys in clients:
            grids = np.zeros((2, grid_w, grid_w), dtype=np.int64)
            grids[:, :6, :6] = rng.integers(0, 8, (2, 6, 6))
            inputs.append(encrypt_channels(server, grids, public))
        batch = plan.execute_batch(
            inputs, [keys for _s, _p, keys in clients]
        )
        for i, (secret, _public, keys) in enumerate(clients):
            serial = plan.execute(inputs[i], keys)
            for got, want in zip(batch[i], serial):
                assert np.array_equal(
                    server.decrypt_values(got, secret, signed=False),
                    server.decrypt_values(want, secret, signed=False),
                )

    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_fc_plan_execute_batch(self, small, schedule):
        params, server = small
        rng = np.random.default_rng(1)
        weights = rng.integers(-4, 5, (8, 32))
        plan = FcPlan.compile(server, weights, schedule)
        clients = self._clients(params, server, plan.rotation_steps)
        cts, xs = [], []
        for _secret, public, _keys in clients:
            x = rng.integers(0, 8, 32)
            xs.append(x)
            packed = pack_fc_input(x, params.row_size)
            cts.append(server.encrypt(server.encoder.encode_row(packed), public))
        batch = plan.execute_batch(cts, [keys for _s, _p, keys in clients])
        for i, (secret, _public, keys) in enumerate(clients):
            decoded = server.decrypt_values(batch[i], secret, signed=False)
            serial = server.decrypt_values(plan.execute(cts[i], keys), secret, signed=False)
            assert np.array_equal(decoded, serial)
            assert np.array_equal(
                decoded[: len(weights)],
                (weights @ xs[i]) % params.plain_modulus,
            )
