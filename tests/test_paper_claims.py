"""Executable index of the paper's headline claims.

Each test pins one quantitative or structural claim from the paper to
the module that reproduces it, so a regression anywhere in the stack
surfaces as a named claim failing.  (Absolute-value claims are asserted
as order-of-magnitude / ordering properties per DESIGN.md's fidelity
policy; the benches print the exact measured numbers.)
"""

import math

import pytest

from repro.core.baselines import speedup_report
from repro.core.failure import failure_probability, tail_factor
from repro.core.noise_model import (
    NoiseMode,
    Schedule,
    eta_mult,
    eta_rotate,
    fresh_noise,
    layer_output_noise,
)
from repro.core.ptune import HePTune, ModelParams
from repro.nn.layers import ConvLayer
from repro.nn.models import build_model
from repro.profiling import gpu_ntt_speedup, limit_study, network_profile


@pytest.fixture(scope="module")
def lenet5_report():
    return speedup_report(build_model("LeNet5"))


@pytest.fixture(scope="module")
def lenet5_tuned(lenet5_report):
    return lenet5_report.cheetah.tuned_layers


def params(**kw):
    defaults = dict(n=4096, plain_bits=20, coeff_bits=60, w_dcmp_bits=10, a_dcmp_bits=15)
    defaults.update(kw)
    return ModelParams(**defaults)


class TestAbstractClaims:
    def test_algorithmic_speedup_is_order_tens(self, lenet5_report):
        """'HE-parameter tuning and operator scheduling ... together
        deliver 79x speedup over state-of-the-art' (up to; mean 13.5x)."""
        assert 3.0 < lenet5_report.cheetah_speedup < 100.0

    def test_both_optimizations_contribute(self, lenet5_report):
        assert lenet5_report.ptune_speedup > 1.0
        assert lenet5_report.sched_pa_speedup > 1.0


class TestSection3Claims:
    def test_he_add_noise_additive(self):
        """Table III: HE_Add noise is v0 + v1."""
        p = params()
        v0 = fresh_noise(p, NoiseMode.WORST)
        assert v0 + v0 == pytest.approx(2 * v0)  # additive by construction

    def test_he_mult_noise_multiplicative(self):
        """Table III: HE_Mult scales noise by ~n l_pt Wdcmp / 2."""
        p = params()
        assert eta_mult(p, NoiseMode.WORST) == pytest.approx(
            p.n * p.l_pt * p.w_dcmp / 2
        )

    def test_decomposition_tradeoff(self):
        """Section III-B2: smaller bases -> less noise but more compute."""
        small_base, large_base = params(a_dcmp_bits=5), params(a_dcmp_bits=25)
        assert eta_rotate(small_base) < eta_rotate(large_base)
        assert small_base.l_ct > large_base.l_ct  # more polynomials


class TestSection4Claims:
    def test_single_config_provisioned_for_worst_layer(self):
        """'Using a single set of HE parameters for all DNN layers
        results in poor performance.'"""
        net = build_model("LeNet5")
        tuner = HePTune()
        per_layer = sum(t.int_mults for t in tuner.tune_network(net))
        global_cfg = sum(t.int_mults for t in tuner.tune_network_global(net))
        assert global_cfg > per_layer

    def test_failure_rate_below_1e10(self):
        """The scaled noise model keeps failure below 1e-10."""
        z = tail_factor(1e-10)
        # Y with std sigma_Y, threshold z*sigma_Y: paper's bound form.
        assert 2 * math.exp(-(z**2)) <= 1e-10 * 1.001

    def test_failure_bound_matches_paper_formula(self):
        q, t, sigma = 1 << 60, 1 << 20, 1e6
        expected = 2 * math.exp(-(q**2) / (4 * t**2 * sigma**2))
        assert failure_probability(q, t, sigma) == pytest.approx(expected)

    def test_optimum_leaves_little_budget(self, lenet5_tuned):
        """Fig. 3: HE-PTune finds configs leaving ~1 bit vs Gazelle's 4.6+."""
        tightest = min(t.noise.budget_bits for t in lenet5_tuned)
        assert tightest < 8.0


class TestSection5Claims:
    def test_sched_pa_noise_identity(self):
        """Fig. 5: PA grows eta_M v0 + eta_A; IA grows eta_M (v0 + eta_A)."""
        layer = ConvLayer("c", w=16, fw=3, ci=8, co=8, padding=1)
        p = params()
        pa = layer_output_noise(layer, p, Schedule.PARTIAL_ALIGNED, NoiseMode.WORST)
        ia = layer_output_noise(layer, p, Schedule.INPUT_ALIGNED, NoiseMode.WORST)
        assert pa < ia

    def test_cheetah_avoids_plaintext_decomposition(self, lenet5_tuned):
        """Section V-C: 'Cheetah avoids all plaintext decomposition.'"""
        from repro.core.perf_model import layer_op_counts

        for tuned in lenet5_tuned:
            assert (
                tuned.op_counts.he_mult
                == layer_op_counts(tuned.layer, tuned.params, l_pt=1).he_mult
            )

    def test_cheetah_uses_larger_ct_bases(self, lenet5_report):
        """Section V-C: ciphertext base 8-16 bits larger than Gazelle's."""
        from repro.core.baselines import GAZELLE_A_DCMP_BITS

        largest = max(
            t.params.a_dcmp_bits for t in lenet5_report.cheetah.tuned_layers
        )
        assert largest >= GAZELLE_A_DCMP_BITS + 4


class TestSection6Claims:
    def test_ntt_is_primary_bottleneck(self, lenet5_tuned):
        """Fig. 7a: NTT takes the majority share."""
        profile = network_profile(lenet5_tuned)
        assert profile.dominant() == "ntt"

    def test_hardware_needs_3_to_4_orders(self, lenet5_tuned):
        """Fig. 7b: kernels need thousands-fold speedups for plaintext
        latency."""
        profile = network_profile(lenet5_tuned)
        result = limit_study(profile, 970.0, 0.1)
        assert max(result.speedups.values()) >= 1024

    def test_gpus_fall_well_short(self):
        """Section VI: GPUs give ~120x, far below the ~16384x needed."""
        assert gpu_ntt_speedup(1024) < 130
        assert gpu_ntt_speedup(1024) < 16384 / 10


class TestSection7And8Claims:
    def test_intra_kernel_parallelism_one_order(self):
        """'Intra-kernel parallelism can reduce HE overhead by roughly one
        order of magnitude' -- unrolling 16x buys ~16x latency."""
        from repro.accel import KernelDesign, evaluate_kernel

        base = evaluate_kernel(KernelDesign("ntt", unroll=1), 4096)
        unrolled = evaluate_kernel(KernelDesign("ntt", unroll=16), 4096)
        assert 8.0 < base.latency_s / unrolled.latency_s <= 16.5

    def test_inter_kernel_parallelism_orders(self):
        """Section VIII-B2: thousands of parallel partials for ResNet50
        mid layers (the paper's Layer6 example exposes 36,864)."""
        from repro.accel import map_layer

        layer = ConvLayer("conv", w=56, fw=3, ci=64, co=64, padding=1)
        mapping = map_layer(layer, params(n=4096))
        assert mapping.total_partials > 10_000

    def test_accelerator_compute_bound(self):
        """Fig. 11: 'even in the most parallel design point considered,
        the accelerator is compute bound'."""
        from repro.accel import AcceleratorConfig, simulate
        from repro.core.baselines import cheetah_configuration

        tuned = cheetah_configuration(build_model("LeNet5")).tuned_layers
        report = simulate(tuned, AcceleratorConfig(num_pes=64, lanes_per_pe=512))
        assert report.io_utilization < 1.0
