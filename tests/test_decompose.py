"""Tests for polynomial digit decomposition and weight windowing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.decompose import (
    digit_compose,
    digit_count,
    digit_decompose,
    digit_decompose_windows,
)


class TestDigitCount:
    def test_exact_fit(self):
        assert digit_count((1 << 20) - 1, 10) == 2

    def test_rounds_up(self):
        assert digit_count((1 << 21) - 1, 10) == 3

    def test_minimum_one(self):
        assert digit_count(1, 30) == 1


class TestDecomposeCompose:
    def test_roundtrip(self):
        values = np.array([0, 1, 12345, (1 << 29) + 7], dtype=object)
        digits = digit_decompose(values, 10, 3)
        assert np.array_equal(digit_compose(digits, 10), values)

    def test_digit_bounds(self):
        values = np.array([(1 << 30) - 1], dtype=object)
        for digit in digit_decompose(values, 10, 3):
            assert 0 <= int(digit[0]) < (1 << 10)

    def test_overflow_detected(self):
        values = np.array([1 << 31], dtype=object)
        with pytest.raises(ValueError):
            digit_decompose(values, 10, 3)

    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 59)), min_size=1, max_size=6),
        st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, values, base_bits):
        array = np.array(values, dtype=object)
        count = digit_count(1 << 60, base_bits)
        digits = digit_decompose(array, base_bits, count)
        assert np.array_equal(digit_compose(digits, base_bits), array)
        for digit in digits:
            assert all(0 <= int(d) < (1 << base_bits) for d in digit)


class TestWindows:
    def test_final_window_absorbs_residual(self):
        values = np.array([(1 << 25) + 3], dtype=object)
        windows = digit_decompose_windows(values, 10, 2)
        # Recombination must still hold even with an oversized last window.
        recombined = windows[0] + (windows[1] << 10)
        assert int(recombined[0]) == (1 << 25) + 3

    def test_matches_digit_decompose_when_enough_windows(self):
        values = np.array([123456789], dtype=object)
        windows = digit_decompose_windows(values, 10, 3)
        digits = digit_decompose(values, 10, 3)
        for w, d in zip(windows, digits):
            assert int(w[0]) == int(d[0])
