"""Chaos suite: injected faults must not change what is computed.

Every test here kills, stalls, cuts, or corrupts something mid-protocol
(via :mod:`repro.serving.faults`) and then asserts the two recovery
invariants of the serving stack:

* **bit-identical logits** -- retries, replays, respawned workers and
  local degradation all re-execute deterministic plan math, so the
  client decrypts exactly what a fault-free run produces;
* **exact op-counter accounting** -- a task's HE op delta is folded
  exactly once no matter how many attempts ran, so the coordinator's
  counters match the fault-free :class:`GazelleProtocol` reference
  (except where the *protocol itself* legitimately re-executes a round,
  e.g. a reply lost after the server already served it -- those tests
  assert logits only and say so).

Faults are counted, not random (see ``faults.py``), so each test names
one exact failure point and the suite is deterministic.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.bfv import BfvParameters
from repro.bfv.counters import counting
from repro.core.noise_model import Schedule
from repro.protocol import GazelleProtocol
from repro.serving import (
    DEMO_RESCALE_BITS,
    ClientSession,
    ConnectionFaults,
    LoopbackTransport,
    ModelRegistry,
    ServingEngine,
    ShardExecutor,
    ShardPool,
    SocketServer,
    SocketTransport,
    WorkerFaults,
    demo_image,
    demo_network,
    demo_weights,
)

SCHEDULE = Schedule.INPUT_ALIGNED


@pytest.fixture(scope="module")
def params() -> BfvParameters:
    return BfvParameters.create(
        n=256, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


@pytest.fixture(scope="module")
def artifact_dir(params, tmp_path_factory):
    from repro.artifacts import save_artifact, update_manifest

    entry = ModelRegistry().register(
        "demo", demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )
    directory = tmp_path_factory.mktemp("faults-zoo")
    save_artifact(entry, directory / "demo.rpa")
    update_manifest(directory, entry, "demo.rpa")
    return directory


@pytest.fixture(scope="module")
def registry(artifact_dir):
    from repro.artifacts import load_zoo

    return load_zoo(artifact_dir)


@pytest.fixture(scope="module")
def reference(params):
    """The fault-free ground truth: reference logits + HE op counters."""
    image = demo_image(0)
    protocol = GazelleProtocol(
        demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS, seed=97,
    )
    with counting() as delta:
        result = protocol.run(image)
    d = delta()
    return SimpleNamespace(
        image=image,
        logits=result.logits,
        counters=(
            d.he_mult, d.he_add, d.he_rotate, d.ntt, d.modmuls, d.butterflies
        ),
    )


def _infer_counted(registry, params, image, executor=None, transport=None,
                   **engine_kwargs):
    """One serial inference with op counting; returns (result, counters, engine)."""
    engine = ServingEngine(registry, max_batch=1, executor=executor,
                           **engine_kwargs)
    transport = LoopbackTransport(engine) if transport is None else transport
    # track_noise matches the reference protocol's own noise accounting,
    # so the op-counter comparison is apples-to-apples.
    session = ClientSession(
        demo_network(), params, transport, seed=7, track_noise=True
    )
    session.connect("demo")
    with counting() as delta:
        result = session.infer(image)
    d = delta()
    counters = (
        d.he_mult, d.he_add, d.he_rotate, d.ntt, d.modmuls, d.butterflies
    )
    return result, counters, engine


class TestWorkerFaults:
    """Shard-worker faults: the supervised pool absorbs them."""

    def test_sigkill_mid_task_recovers_bit_identically(
        self, artifact_dir, registry, params, reference
    ):
        """The flagship chaos case: SIGKILL the only worker mid-task.

        The supervisor must requeue the claimed task, respawn the worker
        (replaying the session's Galois keys into it), and complete the
        inference with logits and op counters identical to the fault-free
        run -- and *without* touching the engine's local fallback.
        """
        plan = WorkerFaults(crash_worker=0, crash_on_task=1)
        with ShardPool(
            artifact_dir, workers=1, respawn_backoff_s=0.05, fault_plan=plan
        ) as pool:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.degraded_calls == 0
            assert pool.respawns_total >= 1
            assert pool.retries_total >= 1

    def test_stalled_task_is_requeued_onto_sibling(
        self, artifact_dir, registry, params, reference
    ):
        """A hung worker costs a retry on the sibling, nothing else.

        The stalled worker eventually wakes and answers the old attempt;
        that duplicate reply must be dropped without folding its op
        counters a second time -- the exactly-once accounting invariant.
        """
        plan = WorkerFaults(stall_worker=0, stall_on_task=1, stall_s=2.0)
        with ShardPool(
            artifact_dir, workers=2, attempt_timeout_s=0.5, fault_plan=plan
        ) as pool:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.degraded_calls == 0
            assert pool.retries_total >= 1
            assert pool.respawns_total == 0  # stalls never cost a respawn

    def test_permanent_crasher_is_abandoned_survivor_serves(
        self, artifact_dir, registry, params, reference
    ):
        """A worker that crashes in every incarnation gets abandoned.

        Until abandonment every task it eats is requeued onto the
        sibling, so all requests succeed and the accounting still
        matches the fault-free run exactly.
        """
        plan = WorkerFaults(
            crash_worker=0, crash_on_task=1, every_incarnation=True
        )
        with ShardPool(
            artifact_dir, workers=2, max_respawns=1, respawn_backoff_s=0.05,
            fault_plan=plan,
        ) as pool:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.degraded_calls == 0
            assert pool.retries_total >= 1
            # Keep serving: every real task the crasher claims kills it
            # again (pings don't trigger faults), until its slot runs
            # out of respawns.  Every inference along the way must still
            # come out exact, served by requeue onto the survivor.
            deadline = time.monotonic() + 30.0
            while (
                pool.available_workers() > 1 and time.monotonic() < deadline
            ):
                result, counters, _engine = _infer_counted(
                    registry, params, reference.image,
                    executor=ShardExecutor(pool),
                )
                assert np.array_equal(result.logits, reference.logits)
                assert counters == reference.counters
            assert pool.available_workers() == 1

    def test_pool_collapse_degrades_to_local_execution(
        self, artifact_dir, registry, params, reference
    ):
        """Every slot abandoned -> the engine serves locally, not an error.

        The worker dies at claim time (before executing anything), so no
        worker-side ops are ever folded and the locally-executed rounds
        reproduce the reference accounting exactly.
        """
        plan = WorkerFaults(
            crash_worker=0, crash_on_task=1, every_incarnation=True
        )
        with ShardPool(
            artifact_dir, workers=1, max_respawns=0, max_attempts=2,
            respawn_backoff_s=0.05, fault_plan=plan,
        ) as pool:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.backend_failures == 3  # one per linear round
            assert engine.degraded_calls == 3
            assert pool.available_workers() == 0

    def test_request_deadline_miss_degrades_to_local(
        self, artifact_dir, registry, params, reference
    ):
        """A stalled pool misses the per-request deadline; local serves.

        The worker's own deadline check refuses the expired task when it
        finally wakes, so nothing is double-executed worker-side and the
        counters still match the reference exactly.
        """
        plan = WorkerFaults(stall_worker=0, stall_on_task=1, stall_s=5.0)
        with ShardPool(artifact_dir, workers=1, fault_plan=plan) as pool:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
                request_deadline_s=0.6,
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.degraded_calls >= 1
            assert engine.degraded_calls == engine.backend_failures


class TestConnectionFaults:
    """Client-transport faults: reconnect + bit-identical replay."""

    def _run_over_socket(self, registry, params, image, faults,
                         retry_kwargs=None):
        engine = ServingEngine(registry, max_batch=1)
        with SocketServer(engine, port=0, workers=2) as server:
            transport = SocketTransport(
                server.host, server.port, timeout=30.0,
                backoff_base_s=0.01, retry_jitter_seed=0,
                socket_factory=faults.connect, **(retry_kwargs or {}),
            )
            session = ClientSession(
                demo_network(), params, transport, seed=7, track_noise=True
            )
            session.connect("demo")
            with counting() as delta:
                result = session.infer(image)
            d = delta()
            session.close()
            transport.close()
        counters = (
            d.he_mult, d.he_add, d.he_rotate, d.ntt, d.modmuls, d.butterflies
        )
        return result, counters

    def test_dropped_request_is_replayed_bit_identically(
        self, registry, params, reference
    ):
        """Frame 3 (the first ``linear`` request) dies on send.

        The server never saw the round, so the replay is the *only*
        execution: logits and op counters both match the fault-free run.
        """
        faults = ConnectionFaults(drop_on_send=3, seed=7)
        result, counters = self._run_over_socket(
            registry, params, reference.image, faults
        )
        assert np.array_equal(result.logits, reference.logits)
        assert counters == reference.counters
        assert result.transport_retries >= 1
        assert any(f.startswith("drop_on_send") for f in faults.fired)

    def test_truncated_request_is_replayed_bit_identically(
        self, registry, params, reference
    ):
        """Frame 3 is cut off half-way through send.

        The server reads a partial frame and drops the connection; it
        never executed the round, so counters match exactly too.
        """
        faults = ConnectionFaults(truncate_on_send=3, seed=7)
        result, counters = self._run_over_socket(
            registry, params, reference.image, faults
        )
        assert np.array_equal(result.logits, reference.logits)
        assert counters == reference.counters
        assert result.transport_retries >= 1

    def test_cut_reply_is_retried(self, registry, params, reference):
        """The link dies while reading the reply to the first round.

        The server already *served* the round, so the protocol-level
        replay legitimately executes it twice -- logits are still
        bit-identical (each reply is self-consistent: blinded outputs
        plus the matching mask), but op counters intentionally differ
        from the fault-free run here.
        """
        faults = ConnectionFaults(cut_on_recv=3, seed=7)
        result, _counters = self._run_over_socket(
            registry, params, reference.image, faults
        )
        assert np.array_equal(result.logits, reference.logits)
        assert result.transport_retries >= 1
        assert any(f.startswith("cut_on_recv") for f in faults.fired)

    def test_corrupted_reply_is_detected_and_retried(
        self, registry, params, reference
    ):
        """A flipped byte in a reply frame must be *detected*, not used.

        Frame validation rejects the corrupted reply (ValueError), the
        transport replays the round, and the logits come out
        bit-identical -- never silently wrong.
        """
        faults = ConnectionFaults(corrupt_reply_to=3, seed=7)
        result, _counters = self._run_over_socket(
            registry, params, reference.image, faults
        )
        assert np.array_equal(result.logits, reference.logits)
        assert result.transport_retries >= 1
        assert any(f.startswith("corrupt_reply") for f in faults.fired)

    def test_retries_exhausted_surfaces_connection_error(
        self, registry, params
    ):
        """With retries disabled, a dropped frame is a clean hard error."""
        faults = ConnectionFaults(drop_on_send=1, seed=7)
        engine = ServingEngine(registry, max_batch=1)
        with SocketServer(engine, port=0, workers=2) as server:
            transport = SocketTransport(
                server.host, server.port, max_retries=0,
                socket_factory=faults.connect,
            )
            session = ClientSession(demo_network(), params, transport, seed=7)
            with pytest.raises(ConnectionError, match="after 1 attempt"):
                session.connect("demo")
            transport.close()


class TestShmChannelFaults:
    """Chaos on the zero-copy shm channel: rings die with their worker."""

    def test_sigkill_shm_worker_mid_task_recovers_bit_identically(
        self, artifact_dir, registry, params, reference
    ):
        """SIGKILL the only shm worker at claim time, ring mid-write.

        The dead incarnation's rings may hold a half-written slab; the
        supervisor discards them wholesale, respawns the worker with
        fresh rings, replays the Galois keys, and the requeued task
        re-executes -- logits and op counters exactly match the
        fault-free run, with zero local degradation.
        """
        plan = WorkerFaults(crash_worker=0, crash_on_task=1)
        with ShardPool(
            artifact_dir, workers=1, channels="shm",
            respawn_backoff_s=0.05, fault_plan=plan,
        ) as pool:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.degraded_calls == 0
            assert pool.respawns_total >= 1
            assert pool.retries_total >= 1

    def test_sigkill_one_of_two_shm_workers_requeues_onto_sibling(
        self, artifact_dir, registry, params, reference
    ):
        """The sibling's rings are untouched by the corpse's channels."""
        plan = WorkerFaults(crash_worker=0, crash_on_task=1)
        with ShardPool(
            artifact_dir, workers=2, channels="shm",
            respawn_backoff_s=0.05, fault_plan=plan,
        ) as pool:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.degraded_calls == 0
            assert pool.retries_total >= 1

    def test_undersized_ring_degrades_to_inline_bit_identically(
        self, artifact_dir, registry, params, reference
    ):
        """Slabs that cannot fit the ring ride the queue path instead.

        A one-page ring cannot hold the demo layers' ciphertext stacks,
        so every task falls back to in-band encoding -- ring capacity is
        a performance knob, never a correctness constraint.
        """
        with ShardPool(
            artifact_dir, workers=1, channels="shm", ring_bytes=4096
        ) as pool:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.degraded_calls == 0
            stats = pool.ipc_stats()
            # The big task slabs overflowed the one-page ring, so the
            # pickled path carried (at least) their inline frames.
            assert stats["pickled_bytes"] > stats["slab_bytes"]


class TestRemoteWorkerFaults:
    """Chaos on the coordinator->remote-worker link: reconnect + replay."""

    def test_cut_connection_mid_result_recovers_bit_identically(
        self, artifact_dir, registry, params, reference, shard_worker_fleet
    ):
        """The link dies while the first task's result frame is read.

        The worker already executed the task, but its reply never
        landed: the coordinator marks the connection dead, requeues the
        task, reconnects (replaying the session's Galois keys), and the
        retry re-executes.  Only the accepted reply's counter delta is
        folded, so the accounting still matches the fault-free run
        exactly -- the exactly-once invariant under connection loss.
        """
        # Coordinator-side frames read per connection: 1 shard_ready,
        # then claimed + result per task => the 3rd read is task 1's
        # result frame.
        faults = ConnectionFaults(cut_on_recv=3, seed=7)
        with shard_worker_fleet(artifact_dir, count=1) as servers:
            with ShardPool(
                None, workers=0,
                remote_endpoints=[servers[0].endpoint],
                remote_socket_factory=faults.connect,
                respawn_backoff_s=0.05,
            ) as pool:
                result, counters, engine = _infer_counted(
                    registry, params, reference.image,
                    executor=ShardExecutor(pool),
                )
                assert np.array_equal(result.logits, reference.logits)
                assert counters == reference.counters
                assert engine.degraded_calls == 0
                assert pool.retries_total >= 1
                assert any(f.startswith("cut_on_recv") for f in faults.fired)

    def test_corrupted_remote_frame_poisons_connection_and_recovers(
        self, artifact_dir, registry, params, reference, shard_worker_fleet
    ):
        """A flipped byte in a worker reply must reconnect, not decode.

        Stream framing cannot be trusted past a corrupt frame, so the
        collector treats it like a death: requeue + reconnect.  Logits
        and counters still come out exact.
        """
        # Coordinator-side frames sent: hello(1), keys(2), task(3) --
        # corrupting the reply to frame 3 hits task 1's claimed frame.
        faults = ConnectionFaults(corrupt_reply_to=3, seed=7)
        with shard_worker_fleet(artifact_dir, count=1) as servers:
            with ShardPool(
                None, workers=0,
                remote_endpoints=[servers[0].endpoint],
                remote_socket_factory=faults.connect,
                respawn_backoff_s=0.05,
            ) as pool:
                result, counters, engine = _infer_counted(
                    registry, params, reference.image,
                    executor=ShardExecutor(pool),
                )
                assert np.array_equal(result.logits, reference.logits)
                assert counters == reference.counters
                assert engine.degraded_calls == 0
                assert pool.retries_total >= 1
                assert any(
                    f.startswith("corrupt_reply") for f in faults.fired
                )

    def test_remote_fleet_collapse_degrades_to_local_execution(
        self, artifact_dir, registry, params, reference, shard_worker_fleet
    ):
        """Every remote worker gone -> the engine serves locally.

        The fleet stops after startup; with zero respawn budget the only
        slot is abandoned on the first detected loss and the pool fails
        fast, so the engine degrades every linear round to in-process
        execution with exact reference accounting.
        """
        with shard_worker_fleet(artifact_dir, count=1) as servers:
            pool = ShardPool(
                None, workers=0,
                remote_endpoints=[servers[0].endpoint],
                max_respawns=0, max_attempts=2, respawn_backoff_s=0.05,
            ).start()
        # Fleet is stopped here; the pool only finds out via the link.
        try:
            result, counters, engine = _infer_counted(
                registry, params, reference.image,
                executor=ShardExecutor(pool),
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.backend_failures == 3  # one per linear round
            assert engine.degraded_calls == 3
            assert pool.available_workers() == 0
        finally:
            pool.stop()


class TestGracefulShutdown:
    """SIGTERM ordering: the server drains in-flight work, then the pool."""

    def test_server_drains_inflight_sharded_request_before_pool_stop(
        self, artifact_dir, registry, params
    ):
        """Stop server-then-pool while a sharded round is in flight.

        This is exactly the CLI's SIGTERM sequence: ``server.stop()``
        must hold the teardown until the in-flight request got its
        reply *from the pool* (degraded_calls stays 0 -- the pool was
        still alive to serve it), and only then does ``pool.stop()``
        run.  The stall fault keeps the round in flight long enough for
        the stop to genuinely race it.
        """
        plan = WorkerFaults(stall_worker=0, stall_on_task=1, stall_s=1.5)
        pool = ShardPool(artifact_dir, workers=1, fault_plan=plan).start()
        engine = ServingEngine(
            registry, max_batch=1, executor=ShardExecutor(pool)
        )
        server = SocketServer(engine, port=0, workers=2).start()
        transport = SocketTransport(server.host, server.port, timeout=60.0)
        session = ClientSession(demo_network(), params, transport, seed=7)
        session.connect("demo")
        # connect() returns the instant the keys_ok bytes land client-side,
        # a hair before the server's keys handler deregisters in-flight --
        # so wait for that round to drain first, or the in-flight check
        # below can latch onto its tail and stop() races the real round.
        deadline = time.monotonic() + 5.0
        with server._inflight_cond:
            while server._inflight and time.monotonic() < deadline:
                server._inflight_cond.wait(0.05)
            assert server._inflight == 0, "connect round never drained"
        conv1 = demo_network().layers[0]
        outcome: dict = {}

        def run_round():
            try:
                outcome["result"] = session._linear_round(
                    conv1, demo_image(0)
                )
            except BaseException as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=run_round)
        thread.start()
        # Wait until the round is registered in-flight server-side (the
        # worker is stalling on it), then stop in the CLI's order.
        deadline = time.monotonic() + 5.0
        with server._inflight_cond:
            while server._inflight == 0 and time.monotonic() < deadline:
                server._inflight_cond.wait(0.05)
            assert server._inflight >= 1, "round never went in-flight"
        server.stop()
        pool.stop()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert "error" not in outcome, outcome.get("error")
        masked, mask = outcome["result"]
        assert masked.shape == mask.shape
        assert engine.degraded_calls == 0  # the pool served it, pre-stop
        transport.close()


class TestUpgradeChaos:
    """Faults injected *into* a rolling upgrade: the swap must stay safe.

    A rolling upgrade is the one moment the pool deliberately takes a
    worker down, so it is exactly where an unplanned failure is most
    likely to be mishandled (double-spawns, lost requeues, a quorum
    dip).  Each test here breaks one phase of the upgrade -- the drain,
    the freshly-swapped worker, the key re-broadcast -- and asserts the
    same two invariants as every other chaos case: bit-identical logits
    and exact op-counter accounting.
    """

    def test_sigkill_mid_drain_recovers_bit_identically(
        self, artifact_dir, registry, params, reference
    ):
        """The draining worker is SIGKILLed while its task is in flight.

        A stall fault parks the first round on worker 0; the upgrade
        starts draining that slot and then the worker is killed outright
        mid-drain.  The supervisor's death path requeues the round onto
        the sibling, the drain observes in-flight reach zero, and the
        upgrade completes its swap as planned -- the client never sees
        an error and the accounting is exact (the killed attempt's delta
        was never folded).
        """
        plan = WorkerFaults(stall_worker=0, stall_on_task=1, stall_s=3.0)
        with ShardPool(
            artifact_dir, workers=2, fault_plan=plan, respawn_backoff_s=0.05
        ) as pool:
            engine = ServingEngine(
                registry, max_batch=1, executor=ShardExecutor(pool)
            )
            session = ClientSession(
                demo_network(), params, LoopbackTransport(engine),
                seed=7, track_noise=True,
            )
            session.connect("demo")
            slot0 = pool._slots[0]
            outcome: dict = {}

            def run_inference():
                try:
                    with counting() as delta:
                        outcome["result"] = session.infer(reference.image)
                    d = delta()
                    outcome["counters"] = (
                        d.he_mult, d.he_add, d.he_rotate,
                        d.ntt, d.modmuls, d.butterflies,
                    )
                except BaseException as exc:  # surfaced by the assert below
                    outcome["error"] = exc

            infer_thread = threading.Thread(target=run_inference)
            infer_thread.start()
            # Wait until the stalled round is in flight on worker 0, so
            # the upgrade's drain phase genuinely has something to wait
            # out.
            deadline = time.monotonic() + 10.0
            while (
                pool._slot_inflight(slot0) == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            assert pool._slot_inflight(slot0) >= 1, "round never reached worker 0"

            upgrade_outcome: dict = {}

            def run_upgrade():
                try:
                    upgrade_outcome.update(pool.rolling_upgrade())
                except BaseException as exc:
                    upgrade_outcome["error"] = exc

            upgrade_thread = threading.Thread(target=run_upgrade)
            upgrade_thread.start()
            # The kill lands mid-drain: slot 0 is flagged draining but
            # its stalled task has not finished.
            deadline = time.monotonic() + 10.0
            while not slot0.draining and time.monotonic() < deadline:
                time.sleep(0.005)
            assert slot0.draining, "upgrade never started draining slot 0"
            process = slot0.process
            assert process is not None
            os.kill(process.pid, signal.SIGKILL)

            infer_thread.join(timeout=120.0)
            upgrade_thread.join(timeout=120.0)
            assert not infer_thread.is_alive()
            assert not upgrade_thread.is_alive()
            assert "error" not in outcome, outcome.get("error")
            assert "error" not in upgrade_outcome, upgrade_outcome.get("error")
            assert upgrade_outcome["upgraded"] == [0, 1]
            assert np.array_equal(
                outcome["result"].logits, reference.logits
            )
            assert outcome["counters"] == reference.counters
            assert engine.degraded_calls == 0
            assert pool.upgrades_total == 1
            assert pool.available_workers() == 2  # quorum never violated

    def test_fresh_worker_crash_on_first_task_recovers(
        self, artifact_dir, registry, params, reference
    ):
        """The freshly-swapped worker dies the moment it claims work.

        No task is dispatched before the upgrade, so the crash fault
        (``every_incarnation``) can only ever fire on the *post-swap*
        incarnation's first claimed task.  The supervisor handles it as
        a normal death -- requeue onto the sibling, backoff respawn --
        and the round still comes out bit-identical with exact
        counters.
        """
        plan = WorkerFaults(
            crash_worker=0, crash_on_task=1, every_incarnation=True
        )
        with ShardPool(
            artifact_dir, workers=2, fault_plan=plan, respawn_backoff_s=0.05
        ) as pool:
            summary = pool.rolling_upgrade()
            assert summary["upgraded"] == [0, 1]
            assert pool.upgrades_total == 1
            result, counters, engine = _infer_counted(
                registry, params, reference.image, executor=ShardExecutor(pool)
            )
            assert np.array_equal(result.logits, reference.logits)
            assert counters == reference.counters
            assert engine.degraded_calls == 0
            # The post-swap worker really did crash and was re-supervised.
            assert pool._slots[0].deaths >= 1
            assert pool.available_workers() == 2

    def test_remote_cut_during_key_rebroadcast_recovers(
        self, artifact_dir, registry, params, reference, shard_worker_fleet
    ):
        """The coordinator link dies while replaying Galois keys.

        A remote slot upgrades by reconnecting; the reconnect replays
        every live key blob before the slot rejoins dispatch.  Cutting
        the link on exactly that replay frame fails the reconnect
        mid-re-broadcast -- the pool treats it as a death, backs off,
        reconnects again (replaying the keys in full), and the upgrade's
        rejoin wait succeeds.  Coordinator-side frames sent: hello(1),
        keys(2), 3 tasks (3-5), then the upgrade reconnect's hello(6)
        and key re-broadcast(7) -- the injected cut.
        """
        faults = ConnectionFaults(drop_on_send=7, seed=7)
        with shard_worker_fleet(artifact_dir, count=1) as servers:
            with ShardPool(
                None, workers=0,
                remote_endpoints=[servers[0].endpoint],
                remote_socket_factory=faults.connect,
                respawn_backoff_s=0.05,
            ) as pool:
                engine = ServingEngine(
                    registry, max_batch=1, executor=ShardExecutor(pool)
                )
                session = ClientSession(
                    demo_network(), params, LoopbackTransport(engine),
                    seed=7, track_noise=True,
                )
                session.connect("demo")
                with counting() as delta:
                    before = session.infer(reference.image)
                d = delta()
                counters_before = (
                    d.he_mult, d.he_add, d.he_rotate,
                    d.ntt, d.modmuls, d.butterflies,
                )
                summary = pool.rolling_upgrade()
                assert summary["upgraded"] == [0]
                assert any(
                    f.startswith("drop_on_send") for f in faults.fired
                ), "the key re-broadcast cut never fired"
                with counting() as delta:
                    after = session.infer(reference.image)
                d = delta()
                counters_after = (
                    d.he_mult, d.he_add, d.he_rotate,
                    d.ntt, d.modmuls, d.butterflies,
                )
                assert np.array_equal(before.logits, reference.logits)
                assert np.array_equal(after.logits, reference.logits)
                assert counters_before == reference.counters
                assert counters_after == reference.counters
                assert engine.degraded_calls == 0
                assert pool.upgrades_total == 1


class TestEnvHooks:
    """REPRO_FAULT_* parsing: the CI seam for unmodified binaries."""

    def test_no_hooks_means_no_plan(self):
        assert WorkerFaults.from_env({}) is None
        assert ConnectionFaults.from_env({}) is None

    def test_worker_hooks_parse(self):
        plan = WorkerFaults.from_env(
            {
                "REPRO_FAULT_WORKER_CRASH": "0:2",
                "REPRO_FAULT_TASK_STALL": "1:3:2.5",
                "REPRO_FAULT_STARTUP_CRASH": "1",
                "REPRO_FAULT_EVERY_INCARNATION": "1",
            }
        )
        assert plan == WorkerFaults(
            crash_worker=0, crash_on_task=2,
            stall_worker=1, stall_on_task=3, stall_s=2.5,
            startup_crash_worker=1, every_incarnation=True,
        )

    def test_connection_hooks_parse(self):
        plan = ConnectionFaults.from_env(
            {"REPRO_FAULT_CONN_DROP": "3", "REPRO_FAULT_SEED": "9"}
        )
        assert plan.drop_on_send == 3
        assert plan.cut_on_recv == 0

    def test_malformed_spec_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            WorkerFaults.from_env({"REPRO_FAULT_WORKER_CRASH": "0"})

    def test_crash_fires_only_in_first_incarnation_by_default(self):
        plan = WorkerFaults(crash_worker=0, crash_on_task=1)
        assert plan._applies(0)
        assert not plan._applies(1)
        assert WorkerFaults(
            crash_worker=0, every_incarnation=True
        )._applies(3)
