"""Tests for HE op accounting."""

import time

from repro.bfv.counters import (
    BARRETT_INT_MULTS,
    GLOBAL_COUNTERS,
    HARVEY_INT_MULTS,
    OpCounters,
    counting,
)


class TestOpCounters:
    def test_int_mults_formula(self):
        counters = OpCounters(modmuls=10, butterflies=4)
        assert counters.int_mults == 10 * BARRETT_INT_MULTS + 4 * HARVEY_INT_MULTS

    def test_add_ntt_butterflies(self):
        counters = OpCounters()
        counters.add_ntt(1024, count=2)
        assert counters.ntt == 2
        assert counters.butterflies == 2 * 512 * 10

    def test_snapshot_diff(self):
        counters = OpCounters()
        counters.he_mult = 3
        snap = counters.snapshot()
        counters.he_mult = 7
        counters.add_modmuls(5)
        delta = counters.diff(snap)
        assert delta.he_mult == 4
        assert delta.modmuls == 5

    def test_snapshot_is_independent(self):
        counters = OpCounters(he_add=1)
        snap = counters.snapshot()
        counters.he_add = 99
        assert snap.he_add == 1

    def test_reset(self):
        counters = OpCounters(he_mult=5, modmuls=10)
        counters.add_time("ntt", 1.0)
        counters.reset()
        assert counters.he_mult == 0
        assert counters.modmuls == 0
        assert counters.kernel_seconds == {}

    def test_timed_context(self):
        counters = OpCounters()
        with counters.timed("kernel"):
            time.sleep(0.01)
        assert counters.kernel_seconds["kernel"] >= 0.005

    def test_timer_accumulates(self):
        counters = OpCounters()
        with counters.timed("k"):
            pass
        first = counters.kernel_seconds["k"]
        with counters.timed("k"):
            pass
        assert counters.kernel_seconds["k"] >= first


class TestGlobalCounting:
    def test_counting_context(self):
        with counting() as delta:
            GLOBAL_COUNTERS.he_add += 2
        assert delta().he_add == 2

    def test_time_diff(self):
        counters = OpCounters()
        counters.add_time("x", 1.0)
        snap = counters.snapshot()
        counters.add_time("x", 0.5)
        assert abs(counters.diff(snap).kernel_seconds["x"] - 0.5) < 1e-9
