"""Tests for hoisted rotations (Gazelle's shared-decomposition trick)."""

import numpy as np
import pytest

from repro.bfv import invariant_noise_budget
from repro.bfv.counters import GLOBAL_COUNTERS


@pytest.fixture()
def row_ct(small_scheme, small_keys):
    _, public = small_keys
    values = np.arange(small_scheme.params.row_size)
    return values, small_scheme.encrypt(
        small_scheme.encoder.encode_row(values), public
    )


class TestHoistedCorrectness:
    @pytest.mark.parametrize("step", [1, 3, 7, 16])
    def test_matches_plain_rotation(
        self, small_scheme, small_keys, small_galois, row_ct, step
    ):
        secret, _ = small_keys
        values, ct = row_ct
        hoisted = small_scheme.hoist(ct)
        rotated = small_scheme.rotate_rows_hoisted(hoisted, step, small_galois)
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(rotated, secret), signed=False
        )
        assert np.array_equal(decoded, np.roll(values, -step))

    def test_same_result_as_unhoisted(
        self, small_scheme, small_keys, small_galois, row_ct
    ):
        secret, _ = small_keys
        values, ct = row_ct
        hoisted = small_scheme.hoist(ct)
        a = small_scheme.rotate_rows_hoisted(hoisted, 5, small_galois)
        b = small_scheme.rotate_rows(ct, 5, small_galois)
        da = small_scheme.encoder.decode_row(small_scheme.decrypt(a, secret))
        db = small_scheme.encoder.decode_row(small_scheme.decrypt(b, secret))
        assert np.array_equal(da, db)

    def test_noise_comparable_to_plain_path(
        self, small_scheme, small_keys, small_galois, row_ct
    ):
        secret, _ = small_keys
        _, ct = row_ct
        hoisted = small_scheme.hoist(ct)
        rotated = small_scheme.rotate_rows_hoisted(hoisted, 2, small_galois)
        plain = small_scheme.rotate_rows(ct, 2, small_galois)
        hoisted_budget = invariant_noise_budget(small_scheme, rotated, secret)
        plain_budget = invariant_noise_budget(small_scheme, plain, secret)
        assert abs(hoisted_budget - plain_budget) < 3.0

    def test_hoisted_output_composes_with_add(
        self, small_scheme, small_keys, small_galois, row_ct
    ):
        secret, _ = small_keys
        values, ct = row_ct
        hoisted = small_scheme.hoist(ct)
        r1 = small_scheme.rotate_rows_hoisted(hoisted, 1, small_galois)
        r2 = small_scheme.rotate_rows_hoisted(hoisted, 2, small_galois)
        total = small_scheme.add(r1, r2)
        decoded = small_scheme.encoder.decode_row(
            small_scheme.decrypt(total, secret), signed=False
        )
        t = small_scheme.params.plain_modulus
        expected = (np.roll(values, -1) + np.roll(values, -2)) % t
        assert np.array_equal(decoded, expected)


class TestHoistedSavings:
    def test_no_ntts_after_hoisting(
        self, small_scheme, small_keys, small_galois, row_ct
    ):
        """Hoisting removes all NTTs from the per-rotation path."""
        _, ct = row_ct
        hoisted = small_scheme.hoist(ct)
        before = GLOBAL_COUNTERS.snapshot()
        for step in (1, 2, 3, 4):
            small_scheme.rotate_rows_hoisted(hoisted, step, small_galois)
        delta = GLOBAL_COUNTERS.diff(before)
        assert delta.ntt == 0
        assert delta.he_rotate == 4

    def test_hoist_pays_the_ntts_once(self, small_scheme, small_keys, row_ct):
        _, ct = row_ct
        params = small_scheme.params
        limbs = params.coeff_basis.count
        before = GLOBAL_COUNTERS.snapshot()
        small_scheme.hoist(ct)
        delta = GLOBAL_COUNTERS.diff(before)
        # One INTT (inside bigint_coeffs) + l_ct digit NTTs, per limb.
        assert delta.ntt == (params.l_ct + 1) * limbs
