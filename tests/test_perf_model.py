"""Tests for HE-PTune's performance model (Table IV), including
validation against op traces of the live schedulers."""

import numpy as np
import pytest

from repro.core.noise_model import Schedule
from repro.core.perf_model import (
    conv_op_counts,
    fc_op_counts,
    int_mults_per_he_mult,
    int_mults_per_he_rotate,
    int_mults_per_ntt,
    layer_int_mults,
    layer_kernel_int_mults,
    layer_op_counts,
    word_cost_factor,
    word_limbs,
)
from repro.core.ptune import ModelParams
from repro.nn.layers import ConvLayer, FCLayer
from repro.scheduling import TraceRecorder, conv_rotation_steps, fc_rotation_steps
from repro.scheduling.conv2d import _infer_width, conv2d_he_naive, encrypt_channels
from repro.scheduling.fc import fc_he_naive, pack_fc_input


def params(n=2048, t=20, q=54, w=10, a=9):
    return ModelParams(n=n, plain_bits=t, coeff_bits=q, w_dcmp_bits=w, a_dcmp_bits=a)


class TestConvCounts:
    def test_image_fits_case(self):
        """n >= w^2: counts follow l_pt ci co fw^2 / cn (Table IV row 1)."""
        layer = ConvLayer("c", w=16, fw=3, ci=4, co=8, padding=1)  # he_w = 16
        p = params(n=2048)  # cn = 2048 // 256 = 8
        counts = conv_op_counts(layer, p, l_pt=1)
        assert counts.he_mult == 4 * 8 * 9 // 8
        assert counts.he_rotate == 4 * 8 * 9 // 8

    def test_image_exceeds_case(self):
        """n < w^2: the (2 cn - 1) splitting factor applies (Table IV row 2)."""
        layer = ConvLayer("c", w=64, fw=3, ci=2, co=2)
        p = params(n=1024)  # cn = ceil(4096 / 1024) = 4
        counts = conv_op_counts(layer, p, l_pt=1)
        assert counts.he_mult == 7 * 2 * 2 * 9
        assert counts.he_rotate == 7 * 2 * 2 * 8

    def test_l_pt_scales_mults(self):
        layer = ConvLayer("c", w=16, fw=3, ci=4, co=8, padding=1)
        p = params()
        base = conv_op_counts(layer, p, l_pt=1)
        tripled = conv_op_counts(layer, p, l_pt=3)
        assert tripled.he_mult == 3 * base.he_mult
        assert tripled.he_rotate == base.he_rotate  # Sched-PA rotations

    def test_windowed_rotations_scale_with_l_pt(self):
        """Sched-IA: every windowed ciphertext is rotated per tap."""
        layer = ConvLayer("c", w=16, fw=3, ci=4, co=8, padding=1)
        p = params()
        pa = conv_op_counts(layer, p, l_pt=3, windowed_rotations=False)
        ia = conv_op_counts(layer, p, l_pt=3, windowed_rotations=True)
        assert ia.he_rotate == 3 * pa.he_rotate
        assert ia.he_mult == pa.he_mult


class TestFcCounts:
    def test_both_fit(self):
        layer = FCLayer("f", ni=512, no=64)
        p = params(n=2048)
        counts = fc_op_counts(layer, p, l_pt=1)
        assert counts.he_mult == 512 * 64 // 2048
        # ni no / n - 1 + log(n / no)
        assert counts.he_rotate == 16 - 1 + 5

    def test_large_output(self):
        layer = FCLayer("f", ni=512, no=4096)
        p = params(n=2048)
        counts = fc_op_counts(layer, p, l_pt=1)
        assert counts.he_rotate == (512 - 1) * 4096 // 2048  # exact

    def test_large_input(self):
        layer = FCLayer("f", ni=4096, no=64)
        p = params(n=2048)
        counts = fc_op_counts(layer, p, l_pt=1)
        assert counts.he_mult == 4096 * 64 // 2048

    def test_both_large(self):
        layer = FCLayer("f", ni=4096, no=4096)
        p = params(n=2048)
        counts = fc_op_counts(layer, p, l_pt=1)
        assert counts.he_rotate == (2048 - 1) * 4096 * 4096 // (2048 * 2048)


class TestIntMultReduction:
    def test_he_mult_cost(self):
        p = params(n=2048, q=54)
        assert int_mults_per_he_mult(p) == 2 * 2048 * 5

    def test_ntt_cost(self):
        p = params(n=2048, q=54)
        assert int_mults_per_ntt(p) == 1024 * 11 * 3

    def test_rotate_cost_structure(self):
        p = params(n=2048, q=54, a=9)  # l_ct = 6
        expected = 2 * 6 * 2048 * 5 + 7 * int_mults_per_ntt(p)
        assert int_mults_per_he_rotate(p) == expected

    def test_word_width_cost_quadratic(self):
        assert word_cost_factor(params(q=54)) == 1
        assert word_cost_factor(params(q=100)) == 4
        assert word_cost_factor(params(q=150)) == 9

    def test_word_limbs(self):
        assert word_limbs(params(q=54)) == 1
        assert word_limbs(params(q=61)) == 2

    def test_layer_int_mults_composition(self):
        layer = ConvLayer("c", w=16, fw=3, ci=2, co=2)
        p = params()
        ops = layer_op_counts(layer, p)
        expected = ops.he_mult * int_mults_per_he_mult(
            p
        ) + ops.he_rotate * int_mults_per_he_rotate(p)
        assert layer_int_mults(layer, p) == expected

    def test_kernel_split_sums_to_rotate_plus_mult(self):
        layer = ConvLayer("c", w=16, fw=3, ci=2, co=2)
        p = params()
        split = layer_kernel_int_mults(layer, p)
        assert split.ntt + split.rotate_other == layer_op_counts(
            layer, p
        ).he_rotate * int_mults_per_he_rotate(p)


class TestModelVsLiveExecution:
    """Table IV validation: analytical counts vs actual scheduler traces."""

    def test_conv_trace_matches_model(self, conv_scheme, conv_keys):
        secret, public = conv_keys
        fw, ci, co = 3, 2, 2
        grid_w = _infer_width(conv_scheme.params.row_size)
        galois = conv_scheme.generate_galois_keys(
            secret, conv_rotation_steps(grid_w, fw)
        )
        rng = np.random.default_rng(0)
        channels = rng.integers(0, 8, (ci, grid_w, grid_w))
        weights = rng.integers(-4, 5, (co, ci, fw, fw))
        cts = encrypt_channels(conv_scheme, channels, public)
        with TraceRecorder() as rec:
            conv2d_he_naive(conv_scheme, cts, weights, galois, Schedule.PARTIAL_ALIGNED)
        trace = rec.trace
        # Live layout packs one channel per ciphertext (cn = 1 equivalent).
        assert trace.he_mult == ci * co * fw * fw
        # The zero-offset tap needs no rotation: fw^2 - 1 per (ci, co) pair.
        assert trace.he_rotate == ci * co * (fw * fw - 1)

    def test_fc_trace_matches_model(self, conv_scheme, conv_keys):
        secret, public = conv_keys
        ni, no = 16, 8
        galois = conv_scheme.generate_galois_keys(secret, fc_rotation_steps(ni))
        rng = np.random.default_rng(1)
        weights = rng.integers(-4, 5, (no, ni))
        packed = pack_fc_input(rng.integers(0, 8, ni), conv_scheme.params.row_size)
        ct = conv_scheme.encrypt(conv_scheme.encoder.encode_row(packed), public)
        with TraceRecorder() as rec:
            fc_he_naive(conv_scheme, ct, weights, galois, Schedule.PARTIAL_ALIGNED)
        trace = rec.trace
        assert trace.he_mult == ni  # one diagonal per input position
        assert trace.he_rotate == ni - 1  # diagonal 0 needs no rotation

    def test_ia_trace_has_equal_ops_different_order(self, conv_scheme, conv_keys):
        secret, public = conv_keys
        ni, no = 12, 6
        galois = conv_scheme.generate_galois_keys(secret, fc_rotation_steps(ni))
        rng = np.random.default_rng(2)
        weights = rng.integers(-4, 5, (no, ni))
        packed = pack_fc_input(rng.integers(0, 8, ni), conv_scheme.params.row_size)
        ct = conv_scheme.encrypt(conv_scheme.encoder.encode_row(packed), public)
        traces = {}
        for schedule in (Schedule.PARTIAL_ALIGNED, Schedule.INPUT_ALIGNED):
            with TraceRecorder() as rec:
                fc_he_naive(conv_scheme, ct, weights, galois, schedule)
            traces[schedule] = rec.trace
        pa, ia = traces[Schedule.PARTIAL_ALIGNED], traces[Schedule.INPUT_ALIGNED]
        assert pa.he_mult == ia.he_mult
        assert pa.he_rotate == ia.he_rotate
