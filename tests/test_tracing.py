"""End-to-end request-tracing suite.

Covers the observability contracts the serving stack now carries:

* **Off-by-default free** -- a disabled :class:`Tracer` hands out the
  shared :data:`NOOP_SPAN`, touches no locks and accumulates no state;
  an engine without a tracer serves trace-stamping clients unchanged
  (the wire backward-compat path).
* **One request, one stitched tree** -- front-end root (``request``),
  engine child (``handle``), per-stage children (admission /
  deserialize / execute / blind / serialize), and -- under a
  :class:`ShardExecutor` -- per-shard ``shard_task`` envelopes with the
  worker-side spans re-anchored underneath, every parent link resolving
  inside the trace.
* **Attribution adds up exactly** -- each ``execute`` span's HE op
  delta equals the sum of its workers' ``worker.compute`` op counts,
  per op, per layer (the same exactly-once accounting the chaos suite
  pins for the metrics fold).
* **Faults stay visible** -- a SIGKILLed worker's requeued attempt
  shows up as a ``shard_requeue`` sibling of the completed
  ``shard_task`` span instead of silently stretching it.
* **Exports are valid** -- Chrome ``trace_event`` JSON (complete ``X``
  events, per-worker ``tid`` lanes), bounded trace-file ring retention,
  structured span log lines, and the ``/healthz`` + Prometheus text
  endpoints on both TCP front ends.
"""

from __future__ import annotations

import io
import json
import logging
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.bfv import BfvParameters
from repro.core.noise_model import Schedule
from repro.nn.plaintext import PlaintextRunner
from repro.serving import (
    DEMO_RESCALE_BITS,
    AsyncGateway,
    ClientSession,
    LoopbackTransport,
    MetricsRegistry,
    ModelRegistry,
    ServingEngine,
    ShardExecutor,
    ShardPool,
    SocketServer,
    SocketTransport,
    Tracer,
    WorkerFaults,
    configure_logging,
    demo_image,
    demo_network,
    demo_weights,
)
from repro.serving.tracing import HE_OP_FIELDS, NOOP_SPAN
from repro.serving.wire import TRACE_META_KEY

SCHEDULE = Schedule.INPUT_ALIGNED


@pytest.fixture(scope="module")
def params() -> BfvParameters:
    return BfvParameters.create(
        n=256, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )


@pytest.fixture(scope="module")
def registry(params):
    registry = ModelRegistry()
    registry.register(
        "demo", demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )
    return registry


@pytest.fixture(scope="module")
def artifact_dir(params, tmp_path_factory):
    from repro.artifacts import save_artifact, update_manifest

    entry = ModelRegistry().register(
        "demo", demo_network(), demo_weights(), params,
        schedule=SCHEDULE, rescale_bits=DEMO_RESCALE_BITS,
    )
    directory = tmp_path_factory.mktemp("tracing-zoo")
    save_artifact(entry, directory / "demo.rpa")
    update_manifest(directory, entry, "demo.rpa")
    return directory


@pytest.fixture(scope="module")
def expected(params):
    runner = PlaintextRunner(
        demo_network(), demo_weights(), rescale_bits=DEMO_RESCALE_BITS
    )
    return runner.run(demo_image(0))


def _infer(engine, params, transport=None, trace=True):
    """One serial traced inference; returns (logits, session)."""
    transport = LoopbackTransport(engine) if transport is None else transport
    session = ClientSession(
        demo_network(), params, transport, seed=7, trace_requests=trace
    )
    session.connect("demo")
    logits = session.infer(demo_image(0)).logits
    session.close()
    return logits, session


def _spans_by_name(spans):
    by_name: dict[str, list] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    return by_name


def _assert_tree_complete(spans):
    """Every parent link resolves in-trace; exactly one root."""
    ids = {span["span_id"] for span in spans}
    roots = [span for span in spans if not span["parent_id"]]
    assert len(roots) == 1, f"expected one root, got {[r['name'] for r in roots]}"
    for span in spans:
        if span["parent_id"]:
            assert span["parent_id"] in ids, (
                f"{span['name']} parent {span['parent_id']} not in trace"
            )
        assert span["end_s"] >= span["start_s"]
    return roots[0]


class TestDisabledAndCompat:
    def test_disabled_tracer_is_stateless(self):
        tracer = Tracer(enabled=False)
        meta: dict = {}
        assert tracer.accept("request", meta) is NOOP_SPAN
        assert meta == {}, "disabled accept must not rewrite request meta"
        assert tracer.server_span("handle", {TRACE_META_KEY: {"trace_id": "x"}}) \
            is NOOP_SPAN
        assert tracer.span("child") is NOOP_SPAN
        assert tracer.begin("detached", NOOP_SPAN) is NOOP_SPAN
        assert tracer.current() is None
        assert tracer.spans_total == 0
        assert tracer.trace_ids() == []

    def test_noop_span_interface(self):
        with NOOP_SPAN as span:
            assert span.set(anything=1) is NOOP_SPAN
        assert NOOP_SPAN.finish() is NOOP_SPAN
        assert not NOOP_SPAN
        assert NOOP_SPAN.trace_id is None and NOOP_SPAN.context is None

    def test_engine_without_tracer_serves_tracing_clients(
        self, registry, params, expected
    ):
        """Wire backward-compat: trace meta is ignored by untraced peers."""
        engine = ServingEngine(registry, max_batch=1, seed=1234)
        logits, session = _infer(engine, params, trace=True)
        assert np.array_equal(logits, expected)
        assert session.trace_ids == [], "untraced engine must echo nothing"

    def test_untraced_client_against_traced_loopback_engine(
        self, registry, params, expected
    ):
        """No front end + no client context = untraced request (no root)."""
        tracer = Tracer(enabled=True)
        engine = ServingEngine(registry, max_batch=1, seed=1234, tracer=tracer)
        logits, _session = _infer(engine, params, trace=False)
        assert np.array_equal(logits, expected)
        assert tracer.trace_ids() == []
        assert tracer.spans_total == 0


class TestLoopbackTraces:
    STAGES = ("admission", "deserialize", "execute", "blind", "serialize")

    def test_linear_round_span_tree(self, registry, params, expected):
        from repro.serving import AdmissionController

        tracer = Tracer(enabled=True)
        engine = ServingEngine(
            registry, max_batch=1, seed=1234, tracer=tracer,
            admission=AdmissionController(),
        )
        logits, session = _infer(engine, params)
        assert np.array_equal(logits, expected)
        assert set(session.trace_ids) == set(tracer.trace_ids())
        linear = [
            trace_id for trace_id in tracer.trace_ids()
            if "execute" in _spans_by_name(tracer.spans_of(trace_id))
        ]
        assert len(linear) == 3, "demo CNN runs three traced linear rounds"
        for trace_id in linear:
            spans = tracer.spans_of(trace_id)
            root = _assert_tree_complete(spans)
            assert root["name"] == "handle", "loopback root is the engine span"
            by_name = _spans_by_name(spans)
            for stage in self.STAGES:
                assert stage in by_name, f"missing {stage} span"
            for span in by_name["execute"]:
                assert span["start_s"] >= root["start_s"] - 1e-6
                assert span["end_s"] <= root["end_s"] + 1e-6

    def test_execute_spans_carry_he_ops(self, registry, params):
        tracer = Tracer(enabled=True)
        engine = ServingEngine(registry, max_batch=1, seed=1234, tracer=tracer)
        _infer(engine, params)
        executes = [
            span
            for trace_id in tracer.trace_ids()
            for span in tracer.spans_of(trace_id)
            if span["name"] == "execute"
        ]
        assert executes
        for span in executes:
            ops = span["attrs"]["he_ops"]
            assert set(ops) == set(HE_OP_FIELDS)
            assert ops["he_mult"] > 0 and ops["modmuls"] > 0
            assert "layer" in span["attrs"]

    def test_stage_latencies_fold_into_metrics(self, registry, params):
        metrics = MetricsRegistry()
        tracer = Tracer(enabled=True, metrics=metrics)
        engine = ServingEngine(
            registry, max_batch=1, seed=1234, metrics=metrics, tracer=tracer
        )
        _infer(engine, params)
        stages = metrics.snapshot()["stages"]
        for stage in ("handle", "execute", "serialize"):
            assert stages[stage]["count"] > 0
            assert stages[stage]["p50_ms"] >= 0.0


class TestFrontEndRoots:
    def test_gateway_adopts_client_trace_ids(self, registry, params, expected):
        tracer = Tracer(enabled=True)
        engine = ServingEngine(registry, max_batch=1, seed=1234, tracer=tracer)
        server = AsyncGateway(engine, port=0, executor_threads=2)
        with server:
            with SocketTransport(server.host, server.port) as transport:
                logits, session = _infer(engine, params, transport=transport)
        assert np.array_equal(logits, expected)
        assert session.trace_ids
        assert set(session.trace_ids) <= set(tracer.trace_ids())
        spans = tracer.spans_of(session.trace_ids[0])
        root = _assert_tree_complete(spans)
        assert root["name"] == "request"
        assert root["attrs"]["frontend"] == "async"
        by_name = _spans_by_name(spans)
        assert by_name["handle"][0]["parent_id"] == root["span_id"]

    def test_threaded_frontend_mints_roots_for_untraced_clients(
        self, registry, params, expected
    ):
        """Server-side tracing needs no client cooperation."""
        tracer = Tracer(enabled=True)
        engine = ServingEngine(registry, max_batch=1, seed=1234, tracer=tracer)
        server = SocketServer(engine, port=0, workers=2)
        with server:
            with SocketTransport(server.host, server.port) as transport:
                logits, session = _infer(
                    engine, params, transport=transport, trace=False
                )
        assert np.array_equal(logits, expected)
        assert session.trace_ids, "front end mints + echoes ids unprompted"
        spans = tracer.spans_of(session.trace_ids[0])
        root = _assert_tree_complete(spans)
        assert root["name"] == "request"
        assert root["attrs"]["frontend"] == "threaded"


class TestShardedTraces:
    def test_worker_spans_stitched_with_exact_he_ops(
        self, artifact_dir, registry, params, expected
    ):
        from repro.artifacts import load_zoo

        tracer = Tracer(enabled=True)
        with ShardPool(artifact_dir, workers=2) as pool:
            engine = ServingEngine(
                load_zoo(artifact_dir), max_batch=1, seed=1234,
                executor=ShardExecutor(pool), tracer=tracer,
            )
            logits, _session = _infer(engine, params)
        assert np.array_equal(logits, expected)
        checked = 0
        for trace_id in tracer.trace_ids():
            spans = tracer.spans_of(trace_id)
            by_name = _spans_by_name(spans)
            if "execute" not in by_name:
                continue
            _assert_tree_complete(spans)
            tasks = by_name.get("shard_task", [])
            computes = by_name.get("worker.compute", [])
            assert tasks and computes, "sharded rounds must carry worker spans"
            task_ids = {span["span_id"] for span in tasks}
            execute_ids = {span["span_id"] for span in by_name["execute"]}
            for task in tasks:
                assert task["parent_id"] in execute_ids
                assert isinstance(task["attrs"]["worker"], int)
            for compute in computes:
                assert compute["parent_id"] in task_ids
                assert compute["attrs"]["noise_headroom_bits"] > 0
            # Exactly-once attribution: each execute span's op delta is
            # the sum of its workers' compute deltas, per op.
            for execute in by_name["execute"]:
                mine = {
                    compute["span_id"]: compute
                    for compute in computes
                    if compute["parent_id"] in {
                        task["span_id"] for task in tasks
                        if task["parent_id"] == execute["span_id"]
                    }
                }
                summed = {field: 0 for field in HE_OP_FIELDS}
                for compute in mine.values():
                    for field, value in compute["attrs"]["he_ops"].items():
                        summed[field] += value
                assert summed == execute["attrs"]["he_ops"], (
                    "worker.compute op counts do not sum to the execute "
                    "span's delta"
                )
            # Anchoring: worker spans stay inside their task envelope.
            for compute in computes:
                task = next(
                    t for t in tasks if t["span_id"] == compute["parent_id"]
                )
                assert compute["start_s"] >= task["start_s"] - 1e-9
                assert compute["end_s"] <= task["end_s"] + 1e-9
            checked += 1
        assert checked == 3, "all three linear rounds run sharded"

    def test_sigkill_retry_appears_as_requeue_sibling(
        self, artifact_dir, registry, params, expected
    ):
        """The chaos contract, now visible: a crashed attempt is a span."""
        from repro.artifacts import load_zoo

        tracer = Tracer(enabled=True)
        plan = WorkerFaults(crash_worker=0, crash_on_task=1)
        with ShardPool(
            artifact_dir, workers=2, respawn_backoff_s=0.05, fault_plan=plan
        ) as pool:
            engine = ServingEngine(
                load_zoo(artifact_dir), max_batch=1, seed=1234,
                executor=ShardExecutor(pool), tracer=tracer,
            )
            logits, _session = _infer(engine, params)
        assert np.array_equal(logits, expected)
        requeues = []
        for trace_id in tracer.trace_ids():
            spans = tracer.spans_of(trace_id)
            by_name = _spans_by_name(spans)
            if "execute" in by_name:
                _assert_tree_complete(spans)
            requeues.extend(by_name.get("shard_requeue", []))
            for requeue in by_name.get("shard_requeue", []):
                siblings = [
                    span for span in by_name.get("shard_task", [])
                    if span["parent_id"] == requeue["parent_id"]
                    and span["attrs"].get("task") == requeue["attrs"]["task"]
                ]
                assert siblings, "requeue span without its completed sibling"
                assert siblings[0]["attrs"]["attempts"] >= 1
        assert requeues, "the SIGKILLed attempt must surface as a span"


class TestExportAndRetention:
    def test_chrome_trace_export_is_valid(self, registry, params):
        tracer = Tracer(enabled=True)
        engine = ServingEngine(registry, max_batch=1, seed=1234, tracer=tracer)
        _infer(engine, params)
        payload = tracer.chrome_trace(tracer.last_trace_id())
        events = payload["traceEvents"]
        assert events and payload["displayTimeUnit"] == "ms"
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == 1 and event["tid"] >= 1
            assert "span_id" in event["args"]
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_trace_dir_ring_retention(self, tmp_path):
        tracer = Tracer(trace_dir=tmp_path / "traces", max_trace_files=3)
        for index in range(7):
            tracer.accept("request", {}, index=index).finish()
        files = sorted((tmp_path / "traces").glob("trace-*.json"))
        assert len(files) == 3
        kept = [
            json.loads(path.read_text())["traceEvents"][0]["args"]["index"]
            for path in files
        ]
        assert kept == [4, 5, 6], "retention must prune oldest-first"

    def test_in_memory_trace_ring(self):
        tracer = Tracer(max_traces=2)
        for index in range(3):
            tracer.accept("request", {}, index=index).finish()
        assert len(tracer.trace_ids()) == 2
        assert tracer.dropped_traces == 1
        assert tracer.traces_total == 3


class TestIngestAnchoring:
    def test_worker_offsets_center_inside_envelope(self):
        tracer = Tracer(enabled=True)
        root = tracer.accept("request", {})
        start = tracer._clock()
        # 10ms of worker time inside a 50ms envelope: centered => +20ms.
        tracer.ingest(
            root.trace_id, root.span_id,
            [{"name": "worker.compute", "off_s": 0.0, "dur_s": 0.010}],
            start, start + 0.050, worker=0,
        )
        root.finish()
        spans = _spans_by_name(tracer.spans_of(root.trace_id))
        compute = spans["worker.compute"][0]
        anchored = compute["start_s"] - (start - tracer._epoch)
        assert anchored == pytest.approx(0.020, abs=1e-9)
        assert compute["attrs"]["worker"] == 0

    def test_skewed_offsets_clamp_to_envelope(self):
        """A worker bundle longer than the envelope can't escape it."""
        tracer = Tracer(enabled=True)
        root = tracer.accept("request", {})
        start = tracer._clock()
        tracer.ingest(
            root.trace_id, root.span_id,
            [{"name": "worker.compute", "off_s": -5.0, "dur_s": 99.0}],
            start, start + 0.010,
        )
        root.finish()
        compute = _spans_by_name(tracer.spans_of(root.trace_id))[
            "worker.compute"
        ][0]
        assert compute["start_s"] >= start - tracer._epoch - 1e-9
        assert compute["end_s"] <= start + 0.010 - tracer._epoch + 1e-9

    def test_malformed_worker_spans_are_dropped(self):
        tracer = Tracer(enabled=True)
        root = tracer.accept("request", {})
        tracer.ingest(
            root.trace_id, root.span_id,
            [{"name": "worker.compute", "dur_s": "nope"}],
            0.0, 1.0,
        )
        root.finish()
        assert _spans_by_name(tracer.spans_of(root.trace_id)).keys() == {
            "request"
        }


class TestLoggingAndHttp:
    def test_configure_logging_emits_parseable_json(self):
        stream = io.StringIO()
        configure_logging("debug", json_lines=True, stream=stream)
        try:
            tracer = Tracer(enabled=True, log_spans=True)
            tracer.accept("request", {}, kind="linear").finish()
            lines = [
                json.loads(line)
                for line in stream.getvalue().splitlines() if line
            ]
            assert lines, "span completion must produce a log line"
            record = lines[-1]
            assert record["level"] == "info"
            assert record["logger"] == "repro.serving.trace"
            assert record["span"]["name"] == "request"
            assert record["span"]["attrs"]["kind"] == "linear"
            assert record["ts"] >= 0.0
        finally:
            configure_logging("info", json_lines=False)

    def test_plain_logging_does_not_duplicate_handlers(self):
        root = configure_logging("info")
        once = len(root.handlers)
        configure_logging("warning")
        assert len(logging.getLogger("repro").handlers) == once
        assert logging.getLogger("repro").level == logging.WARNING
        configure_logging("info")

    @pytest.mark.parametrize("frontend", ["threaded", "async"])
    def test_healthz_and_prometheus_endpoints(
        self, registry, params, frontend
    ):
        metrics = MetricsRegistry()
        tracer = Tracer(enabled=True, metrics=metrics)
        engine = ServingEngine(
            registry, max_batch=1, seed=1234, metrics=metrics, tracer=tracer
        )
        if frontend == "async":
            server = AsyncGateway(engine, port=0, executor_threads=2)
        else:
            server = SocketServer(engine, port=0, workers=2)
        with server:
            with SocketTransport(server.host, server.port) as transport:
                _infer(engine, params, transport=transport)
            base = f"http://{server.host}:{server.port}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as rsp:
                assert rsp.status == 200
                health = json.loads(rsp.read())
            assert health["status"] == "ok"
            assert health["models"] == ["demo"]
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as rsp:
                snapshot = json.loads(rsp.read())
            assert snapshot["requests"]["count"] > 0
            url = f"{base}/metrics?format=prometheus"
            with urllib.request.urlopen(url, timeout=5) as rsp:
                assert rsp.headers["Content-Type"].startswith("text/plain")
                text = rsp.read().decode()
            assert "repro_requests_total" in text
            assert 'repro_stage_seconds{stage="execute"' in text
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert err.value.code == 404
