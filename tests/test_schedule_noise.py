"""The Figure 5 claim on live ciphertexts: Sched-PA leaves more noise
budget than Sched-IA for identical computations."""

import numpy as np
import pytest

from repro.bfv import BfvParameters, BfvScheme, invariant_noise_budget
from repro.core.noise_model import Schedule
from repro.scheduling import fc_he_naive, fc_rotation_steps, pack_fc_input
from repro.scheduling.conv2d import conv2d_he_naive, conv_rotation_steps, encrypt_channels


@pytest.fixture(scope="module")
def noisy_scheme():
    """Large rotation base so eta_A dominates v0 and the gap is visible."""
    params = BfvParameters.create(
        n=2048,
        plain_bits=17,
        coeff_bits=100,
        w_dcmp_bits=6,
        a_dcmp_bits=25,
        require_security=False,
    )
    return BfvScheme(params, seed=3)


@pytest.fixture(scope="module")
def noisy_keys(noisy_scheme):
    return noisy_scheme.keygen()


class TestScheduleNoiseGap:
    def test_fc_pa_beats_ia(self, noisy_scheme, noisy_keys):
        secret, public = noisy_keys
        ni = 16
        galois = noisy_scheme.generate_galois_keys(secret, fc_rotation_steps(ni))
        rng = np.random.default_rng(0)
        weights = rng.integers(-4, 5, (8, ni))
        packed = pack_fc_input(rng.integers(0, 8, ni), noisy_scheme.params.row_size)
        ct = noisy_scheme.encrypt(noisy_scheme.encoder.encode_row(packed), public)
        budgets = {}
        for schedule in Schedule:
            out = fc_he_naive(noisy_scheme, ct, weights, galois, schedule)
            budgets[schedule] = invariant_noise_budget(noisy_scheme, out, secret)
        assert budgets[Schedule.PARTIAL_ALIGNED] > budgets[Schedule.INPUT_ALIGNED]

    def test_conv_pa_beats_ia(self, noisy_scheme, noisy_keys):
        secret, public = noisy_keys
        grid_w = int(np.sqrt(noisy_scheme.params.row_size))
        galois = noisy_scheme.generate_galois_keys(
            secret, conv_rotation_steps(grid_w, 3)
        )
        rng = np.random.default_rng(1)
        channels = np.zeros((1, grid_w, grid_w), dtype=np.int64)
        channels[0, :8, :8] = rng.integers(0, 8, (8, 8))
        weights = rng.integers(-4, 5, (1, 1, 3, 3))
        cts = encrypt_channels(noisy_scheme, channels, public)
        budgets = {}
        for schedule in Schedule:
            out = conv2d_he_naive(noisy_scheme, cts, weights, galois, schedule)[0]
            budgets[schedule] = invariant_noise_budget(noisy_scheme, out, secret)
        assert budgets[Schedule.PARTIAL_ALIGNED] > budgets[Schedule.INPUT_ALIGNED]

    def test_gap_meaningful(self, noisy_scheme, noisy_keys):
        """With a 25-bit rotation base the gap should be several bits."""
        secret, public = noisy_keys
        ni = 12
        galois = noisy_scheme.generate_galois_keys(secret, fc_rotation_steps(ni))
        rng = np.random.default_rng(2)
        weights = rng.integers(-4, 5, (4, ni))
        packed = pack_fc_input(rng.integers(0, 8, ni), noisy_scheme.params.row_size)
        ct = noisy_scheme.encrypt(noisy_scheme.encoder.encode_row(packed), public)
        pa = invariant_noise_budget(
            noisy_scheme,
            fc_he_naive(noisy_scheme, ct, weights, galois, Schedule.PARTIAL_ALIGNED),
            secret,
        )
        ia = invariant_noise_budget(
            noisy_scheme,
            fc_he_naive(noisy_scheme, ct, weights, galois, Schedule.INPUT_ALIGNED),
            secret,
        )
        assert pa - ia > 3.0
