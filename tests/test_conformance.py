"""Differential conformance suite: every execution path, one ground truth.

One seeded sweep runs the same demo model end-to-end through every
execution path the repo offers --

1. in-process :class:`GazelleProtocol` (the reference simulation),
2. the serving engine over :class:`LoopbackTransport` (full wire encoding),
3. the serving engine over a real TCP socket (threaded front end),
4. the serving engine behind the asyncio :class:`AsyncGateway`,
5. artifact warm-start (``.rpa`` -> memmapped plans) over loopback,
6. the multi-process sharded backend (``ShardPool`` + ``ShardExecutor``),
7. the sharded backend over zero-copy shared-memory ring channels
   (``channels="shm"`` -- ciphertext slabs never pickled),
8. the sharded backend over remote TCP workers
   (:class:`ShardWorkerServer` endpoints, frames over sockets)

-- and asserts that all eight produce **bit-identical logits** and
**identical HE op counters**, under both dot-product schedules.  This is
the gate a new execution backend must pass before it can serve traffic:
if a refactor changes what is computed (not just where), this suite
fails loudly.

The NTT-backend dimension (``REPRO_NTT_NATIVE=0/1``) is covered twice:
the whole suite runs under both values in the CI matrix, and
``test_mixed_ntt_backends_agree`` pins numpy-backed shard workers
against the coordinator's backend in a single run (the two kernels are
bit-identical by contract).

The noise-budget regression (`TestNoiseRegression`) asserts the
post-inference invariant-noise budget on every path stays within the
Table III worst-case bound (same proxy convention as
``tests/test_linear_plans.py``), so a future batching/sharding change
that silently adds noise fails here instead of corrupting logits at
deployment scale.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np
import pytest

from repro.bfv import BfvParameters
from repro.bfv.counters import counting
from repro.core.noise_model import (
    NoiseMode,
    Schedule,
    eta_mult,
    eta_rotate,
    fresh_noise,
)
from repro.core.ptune import ModelParams
from repro.nn.layers import ConvLayer
from repro.nn.plaintext import PlaintextRunner
from repro.protocol import GazelleProtocol
from repro.serving import (
    DEMO_RESCALE_BITS,
    AsyncGateway,
    ClientSession,
    LoopbackTransport,
    ServingEngine,
    ModelRegistry,
    ShardExecutor,
    ShardPool,
    SocketServer,
    SocketTransport,
    Tracer,
    demo_image,
    demo_network,
    demo_weights,
)

IMAGE_SEEDS = (0, 1)
ENGINE_SEED = 1234


@dataclass
class PathResult:
    logits: np.ndarray
    counters: tuple
    min_noise_budget: float


@pytest.fixture(scope="module", params=list(Schedule), ids=lambda s: s.value)
def env(request, tmp_path_factory, shard_worker_fleet):
    """Everything the paths share, compiled once per schedule."""
    schedule = request.param
    params = BfvParameters.create(
        n=256, plain_bits=20, coeff_bits=100, a_dcmp_bits=16,
        require_security=False,
    )
    registry = ModelRegistry()
    entry = registry.register(
        "demo", demo_network(), demo_weights(), params,
        schedule=schedule, rescale_bits=DEMO_RESCALE_BITS,
    )
    directory = tmp_path_factory.mktemp(f"conformance-{schedule.value}")
    from repro.artifacts import load_zoo, save_artifact, update_manifest

    save_artifact(entry, directory / "demo.rpa")
    update_manifest(directory, entry, "demo.rpa")
    artifact_registry = load_zoo(directory)
    pool = ShardPool(directory, workers=2).start()
    shm_pool = ShardPool(directory, workers=2, channels="shm").start()
    runner = PlaintextRunner(
        demo_network(), demo_weights(), rescale_bits=DEMO_RESCALE_BITS
    )
    with shard_worker_fleet(directory, count=2) as servers:
        remote_pool = ShardPool(
            None, workers=0,
            remote_endpoints=[server.endpoint for server in servers],
        ).start()
        yield SimpleNamespace(
            schedule=schedule,
            params=params,
            registry=registry,
            artifact_dir=directory,
            artifact_registry=artifact_registry,
            pool=pool,
            shm_pool=shm_pool,
            remote_pool=remote_pool,
            plaintext=runner,
        )
        remote_pool.stop()
    shm_pool.stop()
    pool.stop()


def _counters_tuple(delta):
    return (
        delta.he_mult, delta.he_add, delta.he_rotate,
        delta.ntt, delta.modmuls, delta.butterflies,
    )


def _run_gazelle(env, image) -> PathResult:
    protocol = GazelleProtocol(
        demo_network(), demo_weights(), env.params,
        schedule=env.schedule, rescale_bits=DEMO_RESCALE_BITS, seed=97,
    )
    with counting() as delta:
        result = protocol.run(image)
    return PathResult(result.logits, _counters_tuple(delta()), result.min_noise_budget)


def _run_session(env, registry, image, transport_factory, executor=None) -> PathResult:
    """Drive one serial ClientSession over an arbitrary transport.

    Every path runs with tracing on and a trace-stamping client, so the
    conformance sweep doubles as the propagation matrix: client-minted
    trace ids must round-trip through whatever transport/executor
    combination the path uses and land as complete span trees.
    """
    tracer = Tracer(enabled=True)
    engine = ServingEngine(
        registry, max_batch=1, seed=ENGINE_SEED, executor=executor,
        tracer=tracer,
    )
    with transport_factory(engine) as transport:
        session = ClientSession(
            demo_network(), env.params, transport, seed=7, track_noise=True,
            trace_requests=True,
        )
        session.connect("demo")
        with counting() as delta:
            result = session.infer(image)
        session.close()
    _assert_traced(tracer, session, result.rounds)
    return PathResult(
        result.logits, _counters_tuple(delta()), result.min_noise_budget
    )


def _assert_traced(tracer, session, rounds) -> None:
    """The propagation contract every execution path must honour."""
    server_ids = set(tracer.trace_ids())
    assert session.trace_ids, "server echoed no trace ids"
    assert set(session.trace_ids) <= server_ids, (
        "client-observed trace ids missing from the server tracer"
    )
    with_execute = [
        trace_id for trace_id in server_ids
        if any(s["name"] == "execute" for s in tracer.spans_of(trace_id))
    ]
    assert len(with_execute) >= rounds, (
        f"only {len(with_execute)} traces carry execute spans for "
        f"{rounds} linear rounds"
    )


class _LoopbackFactory:
    """Context-managed loopback so all transports share one interface."""

    def __init__(self, engine):
        self.transport = LoopbackTransport(engine)

    def __enter__(self):
        return self.transport

    def __exit__(self, *_exc):
        pass


class _SocketFactory:
    def __init__(self, engine):
        # Ephemeral bind; SocketServer itself retries the (rare)
        # EADDRINUSE race on port-0 binds.
        self.server = SocketServer(engine, port=0, workers=2)

    def __enter__(self):
        self.server.start()
        self.transport = SocketTransport(self.server.host, self.server.port)
        return self.transport

    def __exit__(self, *_exc):
        self.transport.close()
        self.server.stop()


class _GatewayFactory:
    """The asyncio front end, behind the same TCP client transport."""

    def __init__(self, engine):
        self.server = AsyncGateway(engine, port=0, executor_threads=2)

    def __enter__(self):
        self.server.start()
        self.transport = SocketTransport(self.server.host, self.server.port)
        return self.transport

    def __exit__(self, *_exc):
        self.transport.close()
        self.server.stop()


def _all_paths(env, image) -> dict[str, PathResult]:
    return {
        "gazelle": _run_gazelle(env, image),
        "loopback": _run_session(env, env.registry, image, _LoopbackFactory),
        "socket": _run_session(env, env.registry, image, _SocketFactory),
        "gateway": _run_session(env, env.registry, image, _GatewayFactory),
        "artifact": _run_session(
            env, env.artifact_registry, image, _LoopbackFactory
        ),
        "sharded": _run_session(
            env, env.artifact_registry, image, _LoopbackFactory,
            executor=ShardExecutor(env.pool),
        ),
        "shm-shard": _run_session(
            env, env.artifact_registry, image, _LoopbackFactory,
            executor=ShardExecutor(env.shm_pool),
        ),
        "remote-shard": _run_session(
            env, env.artifact_registry, image, _LoopbackFactory,
            executor=ShardExecutor(env.remote_pool),
        ),
    }


def _table3_min_budget_bound(params, schedule) -> float:
    """Worst-case Table III budget floor over the demo model's layers.

    Same proxy convention as ``tests/test_linear_plans.py``: slot-encoded
    weight plaintexts carry coefficients bounded by t (one window of
    base Wdcmp = t, l_pt = 1).
    """
    t_bits = params.plain_modulus.bit_length()
    proxy = ModelParams(
        n=params.n, plain_bits=t_bits, coeff_bits=params.coeff_bits,
        w_dcmp_bits=t_bits, a_dcmp_bits=params.a_dcmp_bits,
    )
    v0 = fresh_noise(proxy, NoiseMode.WORST)
    eta_m = eta_mult(proxy, NoiseMode.WORST, l_pt=1)
    eta_a = eta_rotate(proxy, NoiseMode.WORST)
    bounds = []
    for layer in demo_network().linear_layers:
        if isinstance(layer, ConvLayer):
            mult_terms = layer.ci * layer.fw**2
            rot_terms = layer.ci * (layer.fw**2 - 1)
        else:
            mult_terms = layer.ni
            rot_terms = layer.ni - 1
        if schedule is Schedule.PARTIAL_ALIGNED:
            noise = mult_terms * eta_m * v0 + rot_terms * eta_a
        else:
            noise = mult_terms * eta_m * (v0 + eta_a) + rot_terms * eta_a
        bounds.append(params.noise_capacity_bits - math.log2(noise))
    return min(bounds)


class TestConformance:
    @pytest.mark.parametrize("image_seed", IMAGE_SEEDS)
    def test_all_paths_bit_identical(self, env, image_seed):
        image = demo_image(image_seed)
        expected = env.plaintext.run(image)
        results = _all_paths(env, image)
        for name, result in results.items():
            assert np.array_equal(result.logits, expected), (
                f"{name} logits diverged from plaintext "
                f"({env.schedule.value}, image {image_seed})"
            )
        reference = results["gazelle"].counters
        for name, result in results.items():
            assert result.counters == reference, (
                f"{name} HE op counters {result.counters} differ from the "
                f"reference protocol's {reference} "
                f"({env.schedule.value}, image {image_seed})"
            )

    def test_mixed_ntt_backends_agree(self, env):
        """numpy-pinned shard workers == the coordinator's own backend.

        Workers forced onto the numpy kernel must produce byte-identical
        ciphertexts to whatever backend this process runs (native when
        available) -- the cross-backend half of the bit-identity contract,
        exercised across a real process boundary.
        """
        image = demo_image(2)
        expected = env.plaintext.run(image)
        baseline = _run_session(
            env, env.artifact_registry, image, _LoopbackFactory,
            executor=ShardExecutor(env.pool),
        )
        with ShardPool(env.artifact_dir, workers=1, ntt_native=False) as numpy_pool:
            numpy_result = _run_session(
                env, env.artifact_registry, image, _LoopbackFactory,
                executor=ShardExecutor(numpy_pool),
            )
        assert np.array_equal(baseline.logits, expected)
        assert np.array_equal(numpy_result.logits, expected)
        assert numpy_result.counters == baseline.counters


class TestRollingUpgradeConformance:
    """Zero-downtime upgrades are conformance-gated like any other path.

    A client hammering serial inference rounds while the deployment is
    regenerated (same weights, new artifact bytes, new manifest
    generation) and rolling-upgraded must observe **zero errors** and
    **bit-identical logits** on every round -- before, during, and
    after the swap -- on all three shard fabrics.
    """

    @pytest.mark.parametrize("fabric", ["queue", "shm", "remote"])
    def test_continuous_rounds_through_rolling_upgrade(
        self, env, fabric, tmp_path_factory, shard_worker_fleet
    ):
        from repro.artifacts import load_zoo, save_artifact, update_manifest

        # A private zoo copy: the upgrade regenerates it in place, which
        # must not perturb the module-shared conformance environment.
        zoo_dir = tmp_path_factory.mktemp(
            f"upgrade-{env.schedule.value}-{fabric}"
        )
        live_entry = env.registry.get("demo")
        save_artifact(live_entry, zoo_dir / "demo.rpa")
        update_manifest(zoo_dir, live_entry, "demo.rpa")
        registry = load_zoo(zoo_dir)
        assert registry.zoo_generation == 1
        image = demo_image(0)
        expected = env.plaintext.run(image)

        with ExitStack() as stack:
            if fabric == "remote":
                servers = stack.enter_context(
                    shard_worker_fleet(zoo_dir, count=2)
                )
                pool = stack.enter_context(
                    ShardPool(
                        None, workers=0,
                        remote_endpoints=[s.endpoint for s in servers],
                    )
                )
            else:
                servers = []
                pool = stack.enter_context(
                    ShardPool(zoo_dir, workers=2, channels=fabric)
                )
            engine = ServingEngine(
                registry, max_batch=1, seed=ENGINE_SEED,
                executor=ShardExecutor(pool),
            )
            session = ClientSession(
                demo_network(), env.params, LoopbackTransport(engine),
                seed=7, track_noise=True,
            )
            session.connect("demo")
            stop = threading.Event()
            outcome: dict = {"logits": [], "errors": []}

            def hammer():
                while not stop.is_set():
                    try:
                        outcome["logits"].append(session.infer(image).logits)
                    except BaseException as exc:
                        outcome["errors"].append(exc)
                        return

            client = threading.Thread(target=hammer)
            client.start()
            try:
                # Let the client establish its cadence first.
                deadline = time.monotonic() + 30.0
                while not outcome["logits"] and client.is_alive():
                    assert time.monotonic() < deadline, "client never started"
                    time.sleep(0.01)
                rounds_before = len(outcome["logits"])
                # Regenerate the deployment: same weights recompiled
                # from scratch (new artifact bytes), manifest generation
                # bumped -- the canonical "redeploy the same model" op.
                regenerated = ModelRegistry().register(
                    "demo", demo_network(), demo_weights(), env.params,
                    schedule=env.schedule, rescale_bits=DEMO_RESCALE_BITS,
                )
                save_artifact(regenerated, zoo_dir / "demo.rpa")
                update_manifest(zoo_dir, regenerated, "demo.rpa")
                summary = registry.reload_zoo(zoo_dir)
                assert summary["applied"] is True
                assert summary["updated"] == ["demo"]
                upgrade = pool.rolling_upgrade(
                    None if fabric == "remote" else zoo_dir
                )
                # Keep the client running past the swap so post-upgrade
                # rounds are asserted too.
                deadline = time.monotonic() + 60.0
                while (
                    len(outcome["logits"]) < rounds_before + 2
                    and time.monotonic() < deadline
                    and client.is_alive()
                ):
                    time.sleep(0.01)
            finally:
                stop.set()
                client.join(timeout=120.0)
            assert not client.is_alive()
            assert outcome["errors"] == [], outcome["errors"]
            assert len(outcome["logits"]) >= rounds_before + 2, (
                "client made no progress across the upgrade"
            )
            for index, logits in enumerate(outcome["logits"]):
                assert np.array_equal(logits, expected), (
                    f"round {index} diverged during the rolling upgrade "
                    f"({fabric}, {env.schedule.value})"
                )
            assert len(upgrade["upgraded"]) == 2
            assert upgrade["skipped"] == []
            assert registry.zoo_generation == 2
            assert pool.upgrades_total == 1
            assert engine.degraded_calls == 0
            if fabric == "remote":
                # Each worker server noticed the new generation at its
                # reconnect handshake and reloaded its own zoo.
                for server in servers:
                    assert server.reloads_total >= 1
                    assert server.registry.zoo_generation == 2


class TestNoiseRegression:
    def test_noise_within_table3_bound_on_every_path(self, env):
        """Post-inference noise stays within the Table III worst case.

        A batching/sharding change that silently adds noise (an extra
        rotation, a forgotten lazy reduction, a double-blinding) shrinks
        the measured budget below the analytic floor and fails here,
        long before logits start corrupting at larger depth.
        """
        bound = _table3_min_budget_bound(env.params, env.schedule)
        results = _all_paths(env, demo_image(0))
        for name, result in results.items():
            assert result.min_noise_budget > 0, name
            assert result.min_noise_budget >= bound - 1.0, (
                f"{name} consumed more noise than the Table III bound "
                f"allows: budget {result.min_noise_budget:.1f}b < floor "
                f"{bound - 1.0:.1f}b ({env.schedule.value})"
            )
