"""Unit + property tests for the negacyclic NTT kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.counters import GLOBAL_COUNTERS
from repro.bfv.modmath import generate_ntt_primes
from repro.bfv.ntt import (
    NttContext,
    bit_reverse_indices,
    naive_negacyclic_multiply,
)


@pytest.fixture(scope="module")
def ctx16():
    n = 16
    prime = generate_ntt_primes(20, n, 1)[0]
    return NttContext(n, prime)


class TestBitReverse:
    def test_n8(self):
        assert list(bit_reverse_indices(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_is_involution(self):
        indices = bit_reverse_indices(64)
        assert np.array_equal(indices[indices], np.arange(64))


class TestRoundtrip:
    def test_forward_inverse_identity(self, ctx16):
        rng = np.random.default_rng(0)
        a = rng.integers(0, ctx16.modulus, 16)
        assert np.array_equal(ctx16.inverse(ctx16.forward(a)), a % ctx16.modulus)

    def test_batched_inputs(self, ctx16):
        rng = np.random.default_rng(1)
        batch = rng.integers(0, ctx16.modulus, (5, 16))
        back = ctx16.inverse(ctx16.forward(batch))
        assert np.array_equal(back, batch % ctx16.modulus)

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 19)), min_size=16, max_size=16))
    @settings(max_examples=30)
    def test_roundtrip_property(self, coeffs):
        n = 16
        prime = generate_ntt_primes(20, n, 1)[0]
        ctx = NttContext(n, prime)
        a = np.array(coeffs, dtype=np.int64) % prime
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)


class TestEvaluationProperty:
    def test_forward_gives_odd_power_evaluations(self, ctx16):
        """Index j must hold a(psi^(2j+1)) -- the encoder relies on this."""
        rng = np.random.default_rng(2)
        a = rng.integers(0, ctx16.modulus, 16)
        evals = ctx16.forward(a)
        p = ctx16.modulus
        for j in range(16):
            point = pow(ctx16.psi, 2 * j + 1, p)
            expected = sum(int(a[i]) * pow(point, i, p) for i in range(16)) % p
            assert int(evals[j]) == expected

    def test_psi_is_negacyclic(self, ctx16):
        assert pow(ctx16.psi, 16, ctx16.modulus) == ctx16.modulus - 1


class TestConvolution:
    def test_matches_schoolbook(self, ctx16):
        rng = np.random.default_rng(3)
        a = rng.integers(0, ctx16.modulus, 16)
        b = rng.integers(0, ctx16.modulus, 16)
        fast = ctx16.negacyclic_multiply(a, b)
        slow = naive_negacyclic_multiply(a, b, ctx16.modulus)
        assert np.array_equal(fast, slow)

    def test_x_times_xn_minus_1_wraps_negatively(self, ctx16):
        """x * x^(n-1) = x^n = -1 in the negacyclic ring."""
        n, p = 16, ctx16.modulus
        x = np.zeros(n, dtype=np.int64)
        x[1] = 1
        xn1 = np.zeros(n, dtype=np.int64)
        xn1[n - 1] = 1
        product = ctx16.negacyclic_multiply(x, xn1)
        expected = np.zeros(n, dtype=np.int64)
        expected[0] = p - 1
        assert np.array_equal(product, expected)

    @given(st.data())
    @settings(max_examples=20)
    def test_convolution_property(self, data):
        n = 8
        prime = generate_ntt_primes(18, n, 1)[0]
        ctx = NttContext(n, prime)
        a = np.array(
            data.draw(st.lists(st.integers(0, prime - 1), min_size=n, max_size=n))
        )
        b = np.array(
            data.draw(st.lists(st.integers(0, prime - 1), min_size=n, max_size=n))
        )
        assert np.array_equal(
            ctx.negacyclic_multiply(a, b), naive_negacyclic_multiply(a, b, prime)
        )


class TestValidation:
    def test_rejects_wide_modulus(self):
        wide = generate_ntt_primes(31, 16, 1)[0] if False else (1 << 30) + 1
        with pytest.raises(ValueError):
            NttContext(16, (1 << 35) + 1)

    def test_rejects_bad_congruence(self):
        with pytest.raises(ValueError):
            NttContext(16, 113)  # 112 not divisible by 32

    def test_rejects_non_power_of_two(self):
        prime = generate_ntt_primes(20, 16, 1)[0]
        with pytest.raises(ValueError):
            NttContext(12, prime)


class TestOpAccounting:
    def test_forward_counts_butterflies(self, ctx16):
        before = GLOBAL_COUNTERS.snapshot()
        rng = np.random.default_rng(4)
        ctx16.forward(rng.integers(0, ctx16.modulus, 16))
        delta = GLOBAL_COUNTERS.diff(before)
        assert delta.ntt == 1
        assert delta.butterflies == (16 // 2) * 4  # n/2 * log2 n

    def test_count_ops_false_is_silent(self, ctx16):
        before = GLOBAL_COUNTERS.snapshot()
        rng = np.random.default_rng(5)
        ctx16.forward(rng.integers(0, ctx16.modulus, 16), count_ops=False)
        delta = GLOBAL_COUNTERS.diff(before)
        assert delta.ntt == 0

    def test_pointwise_counts_modmuls(self, ctx16):
        rng = np.random.default_rng(6)
        a = rng.integers(0, ctx16.modulus, 16)
        b = rng.integers(0, ctx16.modulus, 16)
        before = GLOBAL_COUNTERS.snapshot()
        ctx16.pointwise(a, b)
        assert GLOBAL_COUNTERS.diff(before).modmuls == 16
