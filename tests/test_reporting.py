"""Tests for the JSON experiment export."""

import json

import pytest

from repro.reporting import (
    figure6_results,
    figure7_results,
    figure8_results,
    figure11_results,
    write_report,
)


class TestSections:
    def test_figure6_structure(self):
        payload = figure6_results(["LeNet300100"])
        model = payload["per_model"]["LeNet300100"]
        assert model["combined_speedup"] > 1.0
        assert "harmonic_means" not in payload  # single model

    def test_figure6_means_with_multiple_models(self):
        payload = figure6_results(["LeNet300100", "LeNet5"])
        assert payload["harmonic_means"]["combined"] > 1.0

    def test_figure7_structure(self):
        payload = figure7_results("LeNet5")
        assert abs(sum(payload["kernel_fractions"].values()) - 1.0) < 1e-9
        assert payload["final_latency_ms"] <= 100.0

    def test_figure8_grid(self):
        payload = figure8_results()
        assert payload["n=16384"]["1024"] > payload["n=16384"]["1"]

    def test_figure11_selected_design(self):
        payload = figure11_results("LeNet5")
        assert payload["selected"]["latency_ms"] > 0
        assert len(payload["pareto"]) >= 1


class TestWriteReport:
    def test_writes_valid_json(self, tmp_path):
        path = tmp_path / "results.json"
        payload = write_report(str(path), ["LeNet300100"])
        on_disk = json.loads(path.read_text())
        assert set(on_disk) == set(payload)
        assert "figure6_speedups" in on_disk

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.json"
        assert main(["report", "--out", str(out), "LeNet300100"]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
