"""Accelerator DSE and generality tests (Figure 11, Table VI).

ResNet50 tuning is cached at module scope; these are the heaviest tests
in the suite.
"""

import pytest

from repro.accel import accelerator_dse, generality_study
from repro.core.baselines import cheetah_configuration
from repro.nn.models import alexnet, lenet5, resnet50


@pytest.fixture(scope="module")
def resnet_tuned():
    return cheetah_configuration(resnet50()).tuned_layers


@pytest.fixture(scope="module")
def resnet_dse(resnet_tuned):
    return accelerator_dse(resnet_tuned)


class TestDse:
    def test_pareto_subset(self, resnet_dse):
        assert 0 < len(resnet_dse.pareto) <= len(resnet_dse.reports)

    def test_pareto_sorted_and_undominated(self, resnet_dse):
        front = resnet_dse.pareto
        latencies = [r.latency_s for r in front]
        assert latencies == sorted(latencies)
        powers = [r.power_w_40nm for r in front]
        # Along the frontier, lower latency must cost more power.
        assert powers == sorted(powers, reverse=True)

    def test_select_meets_target(self, resnet_dse):
        selected = resnet_dse.select_for_latency(0.1)
        assert selected.latency_s <= 0.1

    def test_select_falls_back_to_fastest(self, resnet_dse):
        selected = resnet_dse.select_for_latency(1e-9)
        assert selected.latency_s == min(r.latency_s for r in resnet_dse.pareto)


class TestHeadlineResult:
    """The paper's flagship number: ResNet50 at ~100 ms needs ~30 W and
    ~545 mm^2 in 5 nm.  We assert the same order of magnitude."""

    def test_latency_power_area(self, resnet_dse):
        selected = resnet_dse.select_for_latency(0.1)
        assert selected.latency_ms <= 100.0
        assert 5.0 < selected.power_w_5nm < 120.0
        assert 100.0 < selected.area_mm2_5nm < 2500.0

    def test_compute_bound_not_io_bound(self, resnet_dse):
        """Paper: even the most parallel design is compute bound (IO ~12%)."""
        selected = resnet_dse.select_for_latency(0.1)
        assert selected.io_utilization < 0.5

    def test_ntt_dominates_time(self, resnet_dse):
        selected = resnet_dse.select_for_latency(0.1)
        breakdown = selected.time_breakdown
        ntt_share = (breakdown["ntt"] + breakdown["intt"]) / sum(breakdown.values())
        assert ntt_share > 0.35

    def test_ntt_and_sram_dominate_area(self, resnet_dse):
        selected = resnet_dse.select_for_latency(0.1)
        area = selected.area_breakdown_40nm
        total = sum(area.values())
        assert (area["ntt"] + area["lane_sram"] + area["pe_sram"]) / total > 0.5


class TestGenerality:
    def test_table6_shape(self):
        rows = generality_study(
            [resnet50(), alexnet()], host_network=resnet50(), target_latency_s=0.1
        )
        by_model = {row.model: row for row in rows}
        # The host model runs near its own optimum...
        assert by_model["ResNet50"].increase_pct < 15.0
        # ...while foreign models pay a generality penalty.
        assert by_model["AlexNet"].increase_pct > by_model["ResNet50"].increase_pct

    def test_rows_have_statistics(self):
        rows = generality_study([lenet5()], host_network=lenet5())
        assert rows[0].mean_partials > 0
        assert rows[0].pes >= 2
