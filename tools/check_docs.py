#!/usr/bin/env python3
"""Link and heading checker for README.md and docs/.

Validates, for every markdown file given (default: README.md and
docs/**/*.md relative to the repository root):

* relative link targets exist on disk (files or directories);
* ``#fragment`` links — both in-page and cross-file — resolve to a
  heading whose GitHub-style anchor slug matches;
* no duplicate heading slugs inside one file (duplicate anchors silently
  shadow each other);
* every file has exactly one H1.

External (``http://``/``https://``/``mailto:``) links are not fetched;
CI must not flake on other people's servers.

Exit status is non-zero when any check fails, so CI can gate on it:

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^\s*(```|~~~)")


def heading_slug(text: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces to dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", text)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep label
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect(path: Path) -> tuple[list[tuple[int, int, str]], list[tuple[int, str]]]:
    """Return (headings, links): (line, level, text) / (line, target), skipping code."""
    headings: list[tuple[int, int, str]] = []
    links: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            headings.append((number, len(match.group(1)), match.group(2)))
        for pattern in (_LINK, _IMAGE):
            for link in pattern.finditer(line):
                links.append((number, link.group(1)))
    return headings, links


def _rel(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_file(path: Path, slug_index: dict[Path, set[str]]) -> list[str]:
    errors: list[str] = []
    headings, links = collect(path)
    rel = _rel(path)

    h1_count = sum(1 for _line, level, _text in headings if level == 1)
    if h1_count != 1:
        errors.append(f"{rel}: expected exactly one H1, found {h1_count}")

    seen: set[str] = set()
    for line, _level, text in headings:
        slug = heading_slug(text)
        if slug in seen:
            errors.append(f"{rel}:{line}: duplicate heading anchor #{slug}")
        seen.add(slug)

    for line, target in links:
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel}:{line}: broken link target {target!r}")
                continue
        else:
            resolved = path.resolve()
        if fragment:
            if resolved.suffix != ".md":
                continue
            if fragment not in slug_index[resolved]:
                errors.append(
                    f"{rel}:{line}: anchor #{fragment} not found in "
                    f"{_rel(resolved)}"
                )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        files = [Path(arg).resolve() for arg in argv[1:]]
    else:
        files = [REPO_ROOT / "README.md"] + sorted(
            (REPO_ROOT / "docs").glob("**/*.md")
        )
    files = [path for path in files if path.exists()]
    if not files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    # Pre-index anchors of every markdown file links might point at.
    slug_index: dict[Path, set[str]] = {}

    def index(path: Path) -> None:
        headings, links = collect(path)
        slug_index[path.resolve()] = {heading_slug(t) for _l, _lvl, t in headings}
        for _line, target in links:
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue
            file_part = target.partition("#")[0]
            if file_part:
                candidate = (path.parent / file_part).resolve()
                if (
                    candidate.suffix == ".md"
                    and candidate.exists()
                    and candidate not in slug_index
                ):
                    index(candidate)

    for path in files:
        if path.resolve() not in slug_index:
            index(path)

    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, slug_index))
    for error in errors:
        print(error, file=sys.stderr)
    checked = ", ".join(_rel(p) for p in files)
    if errors:
        print(f"check_docs: {len(errors)} problem(s) in {checked}", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
