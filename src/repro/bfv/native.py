"""Optional compiled fast path for the batched RNS-NTT engine.

:mod:`repro.bfv.ntt_batch` computes transforms with vectorised numpy
kernels; when a C compiler is present this module compiles
``_ntt_kernel.c`` once (cached as a shared object under ``build/ntt`` in
the repository root, keyed by a hash of the source) and exposes it via
:mod:`ctypes`.  Everything degrades silently: no compiler, a failed
build, or ``REPRO_NTT_NATIVE=0`` in the environment all yield ``None``
from :func:`load_kernel` and the engine stays on the numpy path.  The two
paths are bit-identical, so which one runs is purely a matter of speed.

Loading a shared object executes its constructors, so cached kernels are
only trusted from directories owned by the current user that other users
cannot write to (the repo build tree, or a per-user 0700 temp dir).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

_KERNEL: ctypes.CDLL | None = None
_TRIED = False
_LOCK = threading.Lock()

#: Environment variable that disables the compiled path when set to 0/false/off.
NATIVE_ENV_VAR = "REPRO_NTT_NATIVE"


def kernel_source_path() -> Path:
    """Location of the C kernel source shipped with the package."""
    return Path(__file__).with_name("_ntt_kernel.c")


def _is_trusted(path: Path) -> bool:
    """Only load artifacts the current user owns and others cannot write."""
    if os.name != "posix":
        return True
    info = os.stat(path)
    return info.st_uid == os.getuid() and not info.st_mode & 0o022


def _build_dir() -> Path:
    """Cache directory for compiled kernels.

    The repo root is only trusted when it actually looks like this
    repository's source layout; for an installed package (site-packages)
    the cache goes to a per-user 0700 temp directory instead of
    littering the interpreter tree or sharing a predictable world-
    writable path.
    """
    try:
        root = Path(__file__).resolve().parents[3]
        if (root / "src" / "repro").is_dir() and (
            (root / ".git").exists() or (root / "ROADMAP.md").exists()
        ):
            candidate = root / "build" / "ntt"
            candidate.mkdir(parents=True, exist_ok=True)
            return candidate
    except OSError:
        pass
    uid = os.getuid() if os.name == "posix" else "user"
    fallback = Path(tempfile.gettempdir()) / f"repro-ntt-build-{uid}"
    fallback.mkdir(mode=0o700, parents=True, exist_ok=True)
    return fallback


def _compile(source: Path, target: Path) -> bool:
    compiler = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if compiler is None:
        return False
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", str(source), "-o", str(tmp)],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, target)
        return True
    except (OSError, subprocess.SubprocessError):
        tmp.unlink(missing_ok=True)
        return False


def load_kernel() -> ctypes.CDLL | None:
    """Compile (if needed) and load the C kernel; None when unavailable."""
    global _KERNEL, _TRIED
    with _LOCK:
        if _TRIED:
            return _KERNEL
        _TRIED = True
        if os.environ.get(NATIVE_ENV_VAR, "1").lower() in ("0", "false", "off"):
            return None
        try:
            source = kernel_source_path()
            if not source.exists():
                return None
            tag = hashlib.sha256(source.read_bytes()).hexdigest()[:16]
            build_dir = _build_dir()
            if not _is_trusted(build_dir):
                return None
            shared_object = build_dir / f"ntt_kernel_{tag}.so"
            if not shared_object.exists() and not _compile(source, shared_object):
                return None
            if not _is_trusted(shared_object):
                return None
            lib = ctypes.CDLL(str(shared_object))
            for fn in (lib.ntt_forward, lib.ntt_inverse):
                fn.restype = None
                fn.argtypes = (
                    [ctypes.c_void_p] * 7 + [ctypes.c_long] * 3 + [ctypes.c_void_p]
                )
            _KERNEL = lib
        except Exception:
            _KERNEL = None
        return _KERNEL


def native_available() -> bool:
    """True when the compiled kernel loaded (or would load) successfully."""
    return load_kernel() is not None
