"""Residue Number System (RNS) basis for the ciphertext modulus q.

The paper's ciphertext modulus q is up to ~180 bits; numpy int64 kernels
require per-limb moduli below 2**30 (:mod:`repro.bfv.ntt`).  We therefore
represent q as a product of NTT-friendly primes and store every ciphertext
polynomial as a stack of residue polynomials, one row per prime.  CRT
composition/decomposition converts between big-integer coefficients and
residue stacks; it is only needed at noise-measurement and ciphertext
decomposition boundaries, exactly where the paper's lane datapath places
its INTT/Decompose/Compose stages (Figure 9c).
"""

from __future__ import annotations

import numpy as np

from .modmath import generate_ntt_primes, invmod


class RnsBasis:
    """An ordered set of coprime NTT-friendly moduli whose product is q."""

    def __init__(self, primes: list[int]):
        if not primes:
            raise ValueError("RNS basis requires at least one prime")
        if len(set(primes)) != len(primes):
            raise ValueError("RNS primes must be distinct")
        self.primes = list(primes)
        self.modulus = 1
        for prime in primes:
            self.modulus *= prime
        #: Cached (k, 1) int64 column for broadcasting residue arithmetic.
        self.primes_column = np.array(self.primes, dtype=np.int64)[:, None]
        # CRT reconstruction constants: q_i = q / p_i, and q_i^{-1} mod p_i,
        # hoisted into object-dtype columns so compose() is one broadcast.
        self._punctured = [self.modulus // p for p in primes]
        self._punctured_inv = [
            invmod(self._punctured[i] % p, p) for i, p in enumerate(primes)
        ]
        self._punctured_col = np.array(self._punctured, dtype=object)[:, None]
        self._punctured_inv_col = np.array(self._punctured_inv, dtype=object)[:, None]
        self._primes_obj_col = np.array(self.primes, dtype=object)[:, None]

    @classmethod
    def for_bit_budget(cls, total_bits: int, n: int, limb_bits: int = 30) -> "RnsBasis":
        """Build a basis whose product has roughly ``total_bits`` bits.

        Limbs are drawn from ``limb_bits``-bit NTT-friendly primes; the last
        limb shrinks to fit the remaining budget (minimum 20 bits so batch
        encoding remains possible).
        """
        if total_bits < 20:
            raise ValueError("coefficient modulus needs at least 20 bits")
        count = max(1, -(-total_bits // limb_bits))
        base, extra = divmod(total_bits, count)
        sizes = [base + 1] * extra + [base] * (count - extra)
        primes: list[int] = []
        for size in sizes:
            candidates = generate_ntt_primes(size, n, len(primes) + 1)
            fresh = [p for p in candidates if p not in primes]
            primes.append(fresh[-1])
        return cls(primes)

    @property
    def count(self) -> int:
        return len(self.primes)

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()

    def decompose(self, coeffs: np.ndarray) -> np.ndarray:
        """Big-integer coefficients -> residue stack of shape (k, n)."""
        coeffs = np.asarray(coeffs, dtype=object) % self.modulus
        rows = [
            (coeffs % prime).astype(np.int64) for prime in self.primes
        ]
        return np.stack(rows)

    def compose(self, residues: np.ndarray) -> np.ndarray:
        """Residue stack (k, n) -> big-integer coefficients in [0, q)."""
        residues = np.asarray(residues)
        if residues.shape[0] != self.count:
            raise ValueError(
                f"expected {self.count} residue rows, got {residues.shape[0]}"
            )
        tail_shape = residues.shape[1:]
        flat = residues.reshape(self.count, -1).astype(object)
        terms = (flat * self._punctured_inv_col) % self._primes_obj_col
        total = (terms * self._punctured_col).sum(axis=0) % self.modulus
        return total.reshape(tail_shape)

    def decompose_stack(self, coeff_arrays) -> np.ndarray:
        """Big-integer coefficient arrays -> residue stack of shape (k, B, n).

        Batched companion to :meth:`decompose`: all B polynomials are
        reduced against each prime in one vectorised pass, ready for a
        single batched NTT (the key-switching digit pipeline).
        """
        stacked = np.stack([np.asarray(c, dtype=object) for c in coeff_arrays])
        rows = [(stacked % prime).astype(np.int64) for prime in self.primes]
        return np.stack(rows)

    def reduce_scalar(self, value: int) -> np.ndarray:
        """Residues of a scalar across the basis, shape (k,)."""
        return np.array([value % p for p in self.primes], dtype=np.int64)

    def __repr__(self) -> str:
        return f"RnsBasis(primes={self.primes}, bits={self.bits})"
