"""Batch (SIMD slot) encoder for BFV plaintexts.

With a prime plaintext modulus t = 1 mod 2n, the ring R_t splits into n
evaluation slots (Section III-B, "Encoding (Packing) Data to Polynomial").
Following SEAL's convention, the n slots form a 2 x (n/2) matrix: Galois
automorphisms x -> x^(3^k) rotate each row cyclically by k positions and
x -> x^(2n-1) swaps the rows.  The schedulers in :mod:`repro.scheduling`
pack activations within a single row so only row rotations are needed.
"""

from __future__ import annotations

import numpy as np

from .modmath import centered
from .ntt_batch import get_engine
from .params import BfvParameters


class Plaintext:
    """A plaintext polynomial: coefficients mod t, length n."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: np.ndarray):
        self.coeffs = np.asarray(coeffs, dtype=np.int64)

    def __repr__(self) -> str:
        return f"Plaintext(n={self.coeffs.shape[0]})"


class BatchEncoder:
    """Encode integer vectors into plaintext slots and back."""

    def __init__(self, params: BfvParameters):
        self.params = params
        # Single-limb engine over the plaintext modulus (memoized, so all
        # encoders for one parameter set share twiddle tables).
        self.engine = get_engine(params.n, (params.plain_modulus,))
        self.context = self.engine.contexts[0]
        self._slot_to_eval = self._build_index_map(params.n)
        self._eval_to_slot = np.argsort(self._slot_to_eval)

    @staticmethod
    def _build_index_map(n: int) -> np.ndarray:
        """Map slot s to the NTT evaluation index of its root.

        Row 0 slot j uses the root psi^(3^j mod 2n); row 1 slot j uses
        psi^(-3^j mod 2n).  NTT index i holds the evaluation at
        psi^(2i+1), so the exponent e maps to index (e - 1) / 2.
        """
        row = n // 2
        mapping = np.empty(n, dtype=np.int64)
        exponent = 1
        for j in range(row):
            mapping[j] = (exponent - 1) // 2
            mapping[row + j] = (2 * n - exponent - 1) // 2
            exponent = exponent * 3 % (2 * n)
        return mapping

    @property
    def slot_count(self) -> int:
        return self.params.n

    @property
    def row_size(self) -> int:
        return self.params.n // 2

    def encode(self, values: np.ndarray) -> Plaintext:
        """Encode up to n integers (signed ok) into a plaintext.

        Slot value i lands at evaluation point i of the t-NTT; the
        returned plaintext holds *coefficients* mod t (one inverse NTT
        from the slot values), which is the representation every scheme
        operation consumes.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1 or values.shape[0] > self.slot_count:
            raise ValueError(f"expected <= {self.slot_count} values, got {values.shape}")
        t = self.params.plain_modulus
        slots = np.zeros(self.slot_count, dtype=np.int64)
        slots[: values.shape[0]] = values % t
        evals = np.zeros(self.slot_count, dtype=np.int64)
        evals[self._slot_to_eval] = slots
        coeffs = self.engine.inverse(evals[None, :], count_ops=False)[0]
        return Plaintext(coeffs)

    def decode(self, plaintext: Plaintext, signed: bool = True) -> np.ndarray:
        """Decode a plaintext back to its n slot values.

        ``signed=True`` centers values into ``(-t/2, t/2]`` (fixed-point
        convention); ``signed=False`` returns raw residues in ``[0, t)``
        -- what the protocol uses for masked values, where wraparound mod
        t is meaningful.
        """
        evals = self.engine.forward(plaintext.coeffs[None, :], count_ops=False)[0]
        slots = evals[self._slot_to_eval]
        if signed:
            return centered(slots, self.params.plain_modulus).astype(np.int64)
        return slots

    def encode_row(self, values: np.ndarray, row: int = 0) -> Plaintext:
        """Encode up to n/2 values into one row of the 2 x (n/2) slot matrix
        (zeros elsewhere), so row rotations cover the whole payload."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape[0] > self.row_size:
            raise ValueError(f"row holds {self.row_size} slots, got {values.shape[0]}")
        slots = np.zeros(self.slot_count, dtype=np.int64)
        slots[row * self.row_size : row * self.row_size + values.shape[0]] = values
        return self.encode(slots)

    def encode_rows(self, rows: np.ndarray, row: int = 0) -> np.ndarray:
        """Batch :meth:`encode_row`: (T, <=row_size) values -> (T, n) coefficients.

        One inverse NTT over the whole batch; row i of the result is
        bit-identical to ``encode_row(rows[i], row).coeffs``.  Used by the
        offline weight-encoding pass of :mod:`repro.scheduling.plan`, so
        ops are not counted.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 2 or rows.shape[1] > self.row_size:
            raise ValueError(
                f"expected (T, <={self.row_size}) row values, got {rows.shape}"
            )
        t = self.params.plain_modulus
        slots = np.zeros((rows.shape[0], self.slot_count), dtype=np.int64)
        slots[:, row * self.row_size : row * self.row_size + rows.shape[1]] = rows % t
        evals = np.zeros_like(slots)
        evals[:, self._slot_to_eval] = slots
        return self.engine.inverse(evals[None, :, :], count_ops=False)[0]

    def decode_row(self, plaintext: Plaintext, row: int = 0, signed: bool = True) -> np.ndarray:
        """Decode one row (n/2 values) of the slot matrix; see :meth:`decode`."""
        return self.decode(plaintext, signed=signed)[
            row * self.row_size : (row + 1) * self.row_size
        ]
