"""RNS polynomial container and ring operations.

An ``RnsPolynomial`` stores one residue row per coefficient-modulus prime
(shape ``(k, n)`` int64) together with its representation domain.  Cheetah
keeps ciphertext polynomials in the evaluation domain by default and only
converts to the coefficient domain for decomposition (Section III-B of
the paper); the container enforces that discipline by refusing mixed-
domain arithmetic.

Domain conversions and pointwise products route through a batched
:class:`~repro.bfv.ntt_batch.RnsNttEngine`, which transforms the whole
``(k, n)`` residue stack in one pass instead of looping limbs in Python
(the per-limb :class:`~repro.bfv.ntt.NttContext` remains as the reference
implementation the engine is cross-checked against).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .ntt_batch import RnsNttEngine
from .rns import RnsBasis


class Domain(Enum):
    COEFF = "coeff"
    EVAL = "eval"


class RnsPolynomial:
    """A polynomial in R_q, stored as residues across an RNS basis."""

    __slots__ = ("basis", "data", "domain")

    def __init__(self, basis: RnsBasis, data: np.ndarray, domain: Domain):
        data = np.asarray(data, dtype=np.int64)
        if data.ndim != 2 or data.shape[0] != basis.count:
            raise ValueError(
                f"expected residue stack of shape ({basis.count}, n), got {data.shape}"
            )
        self.basis = basis
        self.data = data
        self.domain = domain

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls, basis: RnsBasis, n: int, domain: Domain = Domain.EVAL) -> "RnsPolynomial":
        return cls(basis, np.zeros((basis.count, n), dtype=np.int64), domain)

    @classmethod
    def from_bigint_coeffs(cls, basis: RnsBasis, coeffs: np.ndarray) -> "RnsPolynomial":
        """Build a coefficient-domain polynomial from big-integer coefficients."""
        return cls(basis, basis.decompose(coeffs), Domain.COEFF)

    @classmethod
    def from_small_coeffs(cls, basis: RnsBasis, coeffs: np.ndarray) -> "RnsPolynomial":
        """Build from signed small coefficients (e.g. error/secret samples)."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        return cls(basis, coeffs[None, :] % basis.primes_column, Domain.COEFF)

    # -- domain conversion -------------------------------------------------

    def to_eval(self, engine: RnsNttEngine) -> "RnsPolynomial":
        if self.domain is Domain.EVAL:
            return self
        return RnsPolynomial(self.basis, engine.forward(self.data), Domain.EVAL)

    def to_coeff(self, engine: RnsNttEngine) -> "RnsPolynomial":
        if self.domain is Domain.COEFF:
            return self
        return RnsPolynomial(self.basis, engine.inverse(self.data), Domain.COEFF)

    def bigint_coeffs(self, engine: RnsNttEngine | None = None) -> np.ndarray:
        """CRT-composed big-integer coefficients in [0, q)."""
        if self.domain is Domain.COEFF:
            poly = self
        elif engine is None:
            raise ValueError("eval-domain polynomial needs an engine to invert")
        else:
            poly = self.to_coeff(engine)
        return poly.basis.compose(poly.data)

    # -- arithmetic ---------------------------------------------------------

    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.basis is not other.basis and self.basis.primes != other.basis.primes:
            raise ValueError("polynomials belong to different RNS bases")
        if self.domain is not other.domain:
            raise ValueError(
                f"domain mismatch: {self.domain.value} vs {other.domain.value}"
            )

    def add(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        primes = self.basis.primes_column
        return RnsPolynomial(self.basis, (self.data + other.data) % primes, self.domain)

    def sub(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        primes = self.basis.primes_column
        return RnsPolynomial(self.basis, (self.data - other.data) % primes, self.domain)

    def neg(self) -> "RnsPolynomial":
        primes = self.basis.primes_column
        return RnsPolynomial(self.basis, (-self.data) % primes, self.domain)

    def pointwise(self, other: "RnsPolynomial", engine: RnsNttEngine) -> "RnsPolynomial":
        """Element-wise product; both operands must be in the eval domain."""
        self._check_compatible(other)
        if self.domain is not Domain.EVAL:
            raise ValueError("pointwise products require the evaluation domain")
        return RnsPolynomial(
            self.basis, engine.pointwise(self.data, other.data), Domain.EVAL
        )

    def scalar_multiply(self, scalar: int) -> "RnsPolynomial":
        """Multiply by a big-integer scalar (reduced per prime)."""
        primes = self.basis.primes_column
        residues = self.basis.reduce_scalar(scalar)[:, None]
        return RnsPolynomial(self.basis, self.data * residues % primes, self.domain)

    def permute(self, index_map: np.ndarray) -> "RnsPolynomial":
        """Apply a slot permutation (eval domain Galois automorphism)."""
        if self.domain is not Domain.EVAL:
            raise ValueError("permutation applies to the evaluation domain")
        return RnsPolynomial(self.basis, self.data[:, index_map], Domain.EVAL)

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.basis, self.data.copy(), self.domain)

    def __repr__(self) -> str:
        return (
            f"RnsPolynomial(k={self.basis.count}, n={self.data.shape[1]}, "
            f"domain={self.domain.value})"
        )


def galois_automorphism_coeffs(coeffs: np.ndarray, galois_elt: int, modulus: int) -> np.ndarray:
    """Apply x -> x^g to big-integer coefficients mod (x^n + 1).

    Coefficient i moves to exponent ``i * g mod 2n``; exponents at or above
    n wrap with a sign flip because x^n = -1 in the negacyclic ring.
    """
    coeffs = np.asarray(coeffs, dtype=object)
    n = coeffs.shape[0]
    indices = (np.arange(n, dtype=np.int64) * galois_elt) % (2 * n)
    result = np.zeros(n, dtype=object)
    wrap = indices >= n
    result[indices[~wrap]] = coeffs[~wrap]
    result[indices[wrap] - n] = (-coeffs[wrap]) % modulus
    return result % modulus


def eval_domain_galois_map(n: int, galois_elt: int) -> np.ndarray:
    """Permutation applying x -> x^g directly on natural-order evaluations.

    The forward NTT places ``a(psi^(2j+1))`` at index j.  Under the
    automorphism, the value at point psi^(2j+1) becomes the original
    polynomial evaluated at psi^((2j+1) * g), so the new index j reads from
    the old index ((2j+1) * g mod 2n - 1) / 2.
    """
    points = (2 * np.arange(n, dtype=np.int64) + 1) * galois_elt % (2 * n)
    return (points - 1) // 2
