"""Negacyclic Number Theoretic Transform over Z_p[x]/(x^n + 1).

The NTT is the dominant kernel of HE inference (55.2% of ResNet50 run time
in Figure 7 of the paper).  This module implements the psi-twisted radix-2
transform: for psi a primitive 2n-th root of unity mod p, the forward
transform returns the evaluations ``a(psi^(2j+1))`` in natural order j,
which is the property the batch encoder (:mod:`repro.bfv.encoder`) relies
on to map slots to evaluation points.

Kernels are vectorised with numpy int64; all coefficient moduli are kept
below 2**30 so that products fit in 63 bits without overflow.  Butterfly
counts are recorded on the global counters using the paper's accounting
(n/2 * log2 n butterflies per transform, 3 integer multiplications per
Harvey butterfly).

:class:`NttContext` is the single-limb *reference* implementation: the
hot path now runs through the batched, lazily-reduced
:class:`~repro.bfv.ntt_batch.RnsNttEngine`, which is cross-checked
bit-exactly against this module in ``tests/test_ntt_batch.py``.
"""

from __future__ import annotations

import numpy as np

from .counters import GLOBAL_COUNTERS
from .modmath import invmod, root_of_unity

#: Moduli must stay below this bound so int64 products cannot overflow.
MAX_NTT_MODULUS_BITS = 30


def bit_reverse_indices(n: int) -> np.ndarray:
    """Return the bit-reversal permutation of range(n); n a power of two."""
    bits = n.bit_length() - 1
    if bits == 0:
        return np.zeros(n, dtype=np.int64)
    indices = np.arange(n, dtype=np.int64)
    shifts = np.arange(bits, dtype=np.int64)
    table = ((indices[:, None] >> shifts) & 1) << (bits - 1 - shifts)
    return table.sum(axis=1)


class NttContext:
    """Precomputed tables for negacyclic NTTs of length n modulo p."""

    def __init__(self, n: int, modulus: int):
        if n & (n - 1) or n < 2:
            raise ValueError(f"n must be a power of two >= 2, got {n}")
        if modulus.bit_length() > MAX_NTT_MODULUS_BITS:
            raise ValueError(
                f"modulus {modulus} exceeds {MAX_NTT_MODULUS_BITS} bits; "
                "int64 NTT kernels would overflow"
            )
        if (modulus - 1) % (2 * n):
            raise ValueError(f"modulus must satisfy p = 1 mod 2n for n={n}")
        self.n = n
        self.modulus = modulus
        self.psi = root_of_unity(2 * n, modulus)
        self.omega = self.psi * self.psi % modulus
        self._bitrev = bit_reverse_indices(n)
        self._psi_powers = self._powers(self.psi, n)
        self._ipsi_powers = self._powers(invmod(self.psi, modulus), n)
        self._n_inv = invmod(n, modulus)
        stages = n.bit_length() - 1
        self._stage_twiddles = []
        self._stage_itwiddles = []
        omega_inv = invmod(self.omega, modulus)
        for stage in range(stages):
            length = 2 << stage
            stride = n // length
            exponents = np.arange(length // 2, dtype=np.int64) * stride
            self._stage_twiddles.append(self._power_array(self.omega, exponents))
            self._stage_itwiddles.append(self._power_array(omega_inv, exponents))

    def _powers(self, base: int, count: int) -> np.ndarray:
        powers = np.empty(count, dtype=np.int64)
        value = 1
        for i in range(count):
            powers[i] = value
            value = value * base % self.modulus
        return powers

    def _power_array(self, base: int, exponents: np.ndarray) -> np.ndarray:
        return np.array(
            [pow(base, int(e), self.modulus) for e in exponents], dtype=np.int64
        )

    def forward(self, coeffs: np.ndarray, count_ops: bool = True) -> np.ndarray:
        """Negacyclic forward transform: coefficients -> evaluations.

        Output index j holds ``a(psi^(2j+1))``.  Accepts shape (..., n).
        """
        values = np.asarray(coeffs, dtype=np.int64) % self.modulus
        values = values * self._psi_powers % self.modulus
        result = self._transform(values, self._stage_twiddles)
        if count_ops:
            GLOBAL_COUNTERS.add_ntt(self.n, count=int(np.prod(values.shape[:-1], initial=1)))
        return result

    def inverse(self, evals: np.ndarray, count_ops: bool = True) -> np.ndarray:
        """Negacyclic inverse transform: evaluations -> coefficients."""
        values = np.asarray(evals, dtype=np.int64) % self.modulus
        result = self._transform(values, self._stage_itwiddles)
        result = result * self._n_inv % self.modulus
        result = result * self._ipsi_powers % self.modulus
        if count_ops:
            GLOBAL_COUNTERS.add_ntt(self.n, count=int(np.prod(values.shape[:-1], initial=1)))
        return result

    def _transform(self, values: np.ndarray, twiddles: list[np.ndarray]) -> np.ndarray:
        n = self.n
        modulus = self.modulus
        batch_shape = values.shape[:-1]
        work = values.reshape(-1, n)[:, self._bitrev].copy()
        for stage, stage_twiddle in enumerate(twiddles):
            length = 2 << stage
            half = length // 2
            blocks = work.reshape(work.shape[0], n // length, length)
            even = blocks[:, :, :half].copy()
            odd = blocks[:, :, half:] * stage_twiddle % modulus
            blocks[:, :, :half] = (even + odd) % modulus
            blocks[:, :, half:] = (even - odd) % modulus
            work = blocks.reshape(work.shape[0], n)
        return work.reshape(*batch_shape, n)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply two coefficient-domain polynomials mod (x^n + 1, p)."""
        a_eval = self.forward(a)
        b_eval = self.forward(b)
        product = a_eval * b_eval % self.modulus
        GLOBAL_COUNTERS.add_modmuls(self.n)
        return self.inverse(product)

    def pointwise(self, a_eval: np.ndarray, b_eval: np.ndarray) -> np.ndarray:
        """Element-wise modular product of evaluation-domain polynomials."""
        elements = int(np.prod(np.broadcast_shapes(a_eval.shape, b_eval.shape), initial=1))
        GLOBAL_COUNTERS.add_modmuls(elements)
        return a_eval * b_eval % self.modulus


def naive_negacyclic_multiply(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Schoolbook negacyclic product; O(n^2) reference for tests."""
    a = [int(x) for x in a]
    b = [int(x) for x in b]
    n = len(a)
    result = [0] * n
    for i in range(n):
        for j in range(n):
            index = i + j
            term = a[i] * b[j]
            if index >= n:
                result[index - n] = (result[index - n] - term) % modulus
            else:
                result[index] = (result[index] + term) % modulus
    return np.array(result, dtype=np.int64)
