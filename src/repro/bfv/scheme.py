"""The BFV scheme: keygen, encryption, and the three HE operators.

Implements the complete operator set the paper builds on (Section III):

* ``HE_Add`` -- element-wise ciphertext addition (additive noise).
* ``HE_Mult`` -- plaintext-ciphertext multiplication in the evaluation
  domain (multiplicative noise), with optional Gazelle-style plaintext
  windowing for the Sched-IA baseline.
* ``HE_Rotate`` -- slot rotation via Galois automorphism plus key
  switching with base-``Adcmp`` ciphertext decomposition (additive noise,
  2*l_ct polynomial products and l_ct + 1 NTTs per invocation, exactly
  the operation census HE-PTune's performance model assumes).

Ciphertext polynomials live in the evaluation domain by default; only the
key-switching digit decomposition round-trips through the coefficient
domain, mirroring Cheetah's pipeline (Figure 9c: Swap -> INTT ->
Decompose -> NTT -> SIMDmult -> Compose).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .counters import GLOBAL_COUNTERS
from .decompose import digit_decompose, digit_count
from .encoder import BatchEncoder, Plaintext
from .keys import GaloisKeys, KeySwitchKey, PublicKey, SecretKey
from .ntt_batch import get_engine
from .params import BfvParameters
from .polynomial import (
    Domain,
    RnsPolynomial,
    eval_domain_galois_map,
    galois_automorphism_coeffs,
)


@dataclass
class Ciphertext:
    """A BFV ciphertext (c0, c1), evaluation domain."""

    c0: RnsPolynomial
    c1: RnsPolynomial

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy())


@dataclass
class HoistedCiphertext:
    """A ciphertext with its key-switching decomposition precomputed.

    Produced by :meth:`BfvScheme.hoist`; consumed by
    :meth:`BfvScheme.rotate_rows_hoisted`.
    """

    c0: RnsPolynomial
    digit_polys: list[RnsPolynomial]
    #: Cached ``(k, l_ct, n)`` digit stack (every rotation reads it).
    _stack: np.ndarray | None = None

    def digit_stack(self) -> np.ndarray:
        if self._stack is None:
            self._stack = np.stack(
                [poly.data for poly in self.digit_polys], axis=1
            )
        return self._stack


@dataclass
class HoistedGroup:
    """A batch of hoisted ciphertexts with one shared digit stack.

    Produced by :meth:`BfvScheme.hoist_group`; ``digits`` has shape
    ``(k, B, l_ct, n)`` so a whole batch rotates through one permutation
    pass per step (:meth:`BfvScheme.rotate_rows_group`).
    """

    c0_list: list[RnsPolynomial]
    digits: np.ndarray


class EvalPlaintext:
    """A plaintext pre-lifted to the evaluation domain of every q prime.

    Pre-encoding weights this way is how Cheetah avoids NTTs inside
    HE_Mult (Section III-B: "Cheetah keeps polynomials in the evaluation
    space").
    """

    __slots__ = ("poly",)

    def __init__(self, poly: RnsPolynomial):
        self.poly = poly


class BfvScheme:
    """A fully usable BFV context bound to one parameter set."""

    def __init__(self, params: BfvParameters, seed: int | None = None):
        self.params = params
        self.rng = np.random.default_rng(seed)
        #: Batched RNS-NTT engine shared (memoized) across schemes with the
        #: same parameters; transforms all limbs of a polynomial in one pass.
        self.engine = get_engine(params.n, params.coeff_basis.primes)
        #: Per-limb reference contexts (kept for cross-checks and tooling).
        self.contexts = self.engine.contexts
        self.encoder = BatchEncoder(params)
        self._galois_eval_maps: dict[int, np.ndarray] = {}
        # delta mod p_i per limb: lets Delta * m scaling run in int64 limb
        # arithmetic (see _delta_residues).  Products need plain bits +
        # limb bits < 63; parameter sets outside that fall back to object.
        primes = params.coeff_basis.primes
        self._delta_mod_primes = np.array(
            [params.delta % p for p in primes], dtype=np.int64
        )
        self._delta_needs_object = (
            params.plain_modulus.bit_length() + max(p.bit_length() for p in primes)
            >= 63
        )

    # -- sampling ----------------------------------------------------------

    def _sample_ternary(self) -> np.ndarray:
        return self.rng.integers(-1, 2, self.params.n, dtype=np.int64)

    def _sample_error(self) -> np.ndarray:
        sigma = self.params.sigma
        samples = np.rint(self.rng.normal(0.0, sigma, self.params.n)).astype(np.int64)
        bound = int(np.ceil(6 * sigma))
        return np.clip(samples, -bound, bound)

    def _sample_uniform_eval(self) -> RnsPolynomial:
        rows = [
            self.rng.integers(0, prime, self.params.n, dtype=np.int64)
            for prime in self.params.coeff_basis.primes
        ]
        return RnsPolynomial(self.params.coeff_basis, np.stack(rows), Domain.EVAL)

    def _small_to_eval(self, coeffs: np.ndarray) -> RnsPolynomial:
        poly = RnsPolynomial.from_small_coeffs(self.params.coeff_basis, coeffs)
        return poly.to_eval(self.engine)

    # -- key generation ------------------------------------------------------

    def keygen(self) -> tuple[SecretKey, PublicKey]:
        """Sample a ternary secret and its public encryption key.

        Both keys hold evaluation-domain ``(k, n)`` residue stacks (the
        secret additionally keeps its signed coefficients for noise
        measurement and Galois-key generation).
        """
        s_coeffs = self._sample_ternary()
        s_eval = self._small_to_eval(s_coeffs)
        secret = SecretKey(coeffs=s_coeffs, eval_poly=s_eval)

        a = self._sample_uniform_eval()
        e = self._small_to_eval(self._sample_error())
        p0 = a.pointwise(s_eval, self.engine).add(e).neg()
        public = PublicKey(p0=p0, p1=a)
        return secret, public

    def generate_galois_keys(self, secret: SecretKey, steps: list[int]) -> GaloisKeys:
        """Generate rotation keys for the given row-rotation step sizes."""
        keys = GaloisKeys()
        for step in steps:
            elt = self.galois_elt_for_step(step)
            if elt not in keys.keys:
                keys.keys[elt] = self._make_keyswitch_key(secret, elt)
        return keys

    def generate_column_key(self, secret: SecretKey) -> GaloisKeys:
        elt = 2 * self.params.n - 1
        keys = GaloisKeys()
        keys.keys[elt] = self._make_keyswitch_key(secret, elt)
        return keys

    def galois_elt_for_step(self, step: int) -> int:
        """Galois element implementing a left row-rotation by ``step``."""
        row = self.params.n // 2
        return pow(3, step % row, 2 * self.params.n)

    def _make_keyswitch_key(self, secret: SecretKey, galois_elt: int) -> KeySwitchKey:
        params = self.params
        q = params.coeff_modulus
        rotated_secret = galois_automorphism_coeffs(
            secret.coeffs.astype(object) % q, galois_elt, q
        )
        rotated_poly = RnsPolynomial.from_bigint_coeffs(
            params.coeff_basis, rotated_secret
        ).to_eval(self.engine)
        pairs = []
        base_power = 1
        for _ in range(params.l_ct):
            a = self._sample_uniform_eval()
            e = self._small_to_eval(self._sample_error())
            body = (
                a.pointwise(secret.eval_poly, self.engine)
                .add(e)
                .neg()
                .add(rotated_poly.scalar_multiply(base_power))
            )
            pairs.append((body, a))
            base_power = base_power * params.a_dcmp % q
        return KeySwitchKey(pairs=pairs, base_bits=params.a_dcmp_bits)

    # -- encryption / decryption ---------------------------------------------

    def encrypt(self, plaintext: Plaintext, public: PublicKey) -> Ciphertext:
        """Encrypt a plaintext (coefficients mod t) under the public key.

        Returns an evaluation-domain ciphertext carrying fresh noise of
        magnitude ``~2 n sigma`` (Table III's v_fresh); all subsequent
        operator noise compounds from there until :meth:`decrypt`.
        """
        params = self.params
        u = self._small_to_eval(self._sample_ternary())
        e0 = self._sample_error()
        e1 = self._sample_error()
        delta_m = self._delta_times_message(plaintext)
        c0 = (
            public.p0.pointwise(u, self.engine)
            .add(self._small_to_eval(e0))
            .add(delta_m)
        )
        c1 = public.p1.pointwise(u, self.engine).add(self._small_to_eval(e1))
        return Ciphertext(c0, c1)

    def _delta_times_message(self, plaintext: Plaintext) -> RnsPolynomial:
        return RnsPolynomial(
            self.params.coeff_basis,
            self.engine.forward(self._delta_residues(plaintext.coeffs[None, :])[:, 0]),
            Domain.EVAL,
        )

    def _delta_residues(self, coeffs: np.ndarray) -> np.ndarray:
        """Residues of ``delta * (coeffs mod t)`` for a ``(B, n)`` int64 stack.

        ``delta * m < q`` for every message coefficient ``m < t`` (delta is
        ``floor(q/t)``), so the product never wraps mod q and each residue
        is just ``m * (delta mod p_i) mod p_i`` -- pure int64 limb
        arithmetic, no big-integer CRT.  Results are bit-identical to
        composing ``delta * m`` and decomposing it across the basis.
        """
        params = self.params
        reduced = np.asarray(coeffs, dtype=np.int64) % params.plain_modulus
        delta_residues = self._delta_mod_primes
        # (k, B, n) <- (1, B, n) * (k, 1, 1): products stay below 2^63 only
        # for ~30-bit primes and ~20-bit t; object math would be the
        # fallback, but parameter creation bounds both (see BfvParameters).
        stack = reduced[None, :, :].astype(object) if self._delta_needs_object else reduced[None, :, :]
        residues = (
            stack * delta_residues[:, None, None]
        ) % params.coeff_basis.primes_column[:, :, None]
        if self._delta_needs_object:
            residues = residues.astype(np.int64)
        return residues

    def encrypt_windowed(
        self, values: np.ndarray, public: PublicKey, num_windows: int
    ) -> list[Ciphertext]:
        """Gazelle input windowing: encryptions of x * Wdcmp**i mod t.

        The Sched-IA baseline consumes these so each weight window
        multiplication only injects ``Wdcmp``-bounded noise.
        """
        t = self.params.plain_modulus
        w_base = self.params.w_dcmp
        values = np.asarray(values, dtype=np.int64)
        ciphertexts = []
        scale = 1
        for _ in range(num_windows):
            scaled = (values.astype(object) * scale) % t
            pt = self.encoder.encode(scaled.astype(np.int64))
            ciphertexts.append(self.encrypt(pt, public))
            scale = scale * w_base % t
        return ciphertexts

    def decrypt(self, ct: Ciphertext, secret: SecretKey) -> Plaintext:
        """Decrypt to a plaintext of coefficients mod t.

        Rounds ``(c0 + c1 s) * t / q``; the result is the encrypted
        message exactly as long as the invariant noise stays below 1/2
        (equivalently :func:`~repro.bfv.noise.invariant_noise_budget`
        is positive) -- beyond that, decryption corrupts silently, which
        is what HE-PTune's Table III bounds guard against.
        """
        w = self._raw_decrypt(ct, secret)
        params = self.params
        t, q = params.plain_modulus, params.coeff_modulus
        message = ((w * t * 2 + q) // (2 * q)) % t
        return Plaintext(message.astype(np.int64))

    def _raw_decrypt(self, ct: Ciphertext, secret: SecretKey) -> np.ndarray:
        """Return (c0 + c1 * s) mod q as big-integer coefficients."""
        combined = ct.c0.add(ct.c1.pointwise(secret.eval_poly, self.engine))
        return combined.bigint_coeffs(self.engine)

    # -- HE operators ---------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """HE_Add: slot-wise sum; noise adds (v_a + v_b, Table III)."""
        GLOBAL_COUNTERS.he_add += 1
        return Ciphertext(a.c0.add(b.c0), a.c1.add(b.c1))

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Slot-wise difference; same additive noise behaviour as :meth:`add`."""
        GLOBAL_COUNTERS.he_add += 1
        return Ciphertext(a.c0.sub(b.c0), a.c1.sub(b.c1))

    def add_plain(self, ct: Ciphertext, plaintext: Plaintext) -> Ciphertext:
        """Add a plaintext into the slots (ct + Delta*m on c0; noise unchanged
        up to the scaling's rounding term -- the cloud's blinding step)."""
        GLOBAL_COUNTERS.he_add += 1
        return Ciphertext(ct.c0.add(self._delta_times_message(plaintext)), ct.c1.copy())

    def encode_for_mul(self, plaintext: Plaintext) -> EvalPlaintext:
        """Lift a plaintext into the q-prime evaluation domain (offline)."""
        return self.encode_coeffs_for_mul(plaintext.coeffs)

    def mul_plain(self, ct: Ciphertext, plain: EvalPlaintext) -> Ciphertext:
        """HE_Mult (pt-ct): element-wise products, no NTTs (Section III-B1).

        Both operands must already be in the evaluation domain (weights
        via :meth:`encode_for_mul`, offline).  Noise is multiplicative:
        ``n * t * v / 2`` against a full-range plaintext (Table III),
        which is why Sched-PA's mask plaintexts and Gazelle's windowing
        exist.
        """
        GLOBAL_COUNTERS.he_mult += 1
        c0 = ct.c0.pointwise(plain.poly, self.engine)
        c1 = ct.c1.pointwise(plain.poly, self.engine)
        return Ciphertext(c0, c1)

    def encode_coeffs_for_mul(self, coeffs: np.ndarray) -> EvalPlaintext:
        """Lift raw polynomial coefficients (mod t digits) to the eval domain."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        basis = self.params.coeff_basis
        stack = coeffs[None, :] % basis.primes_column
        poly = RnsPolynomial(
            basis, self.engine.forward(stack, count_ops=False), Domain.EVAL
        )
        return EvalPlaintext(poly)

    def encode_coeffs_stack_for_mul(self, coeffs: np.ndarray) -> np.ndarray:
        """Batch :meth:`encode_coeffs_for_mul`: (T, n) coeffs -> (k, T, n) evals.

        One forward NTT over the whole stack; slice ``[:, i]`` is
        bit-identical to ``encode_coeffs_for_mul(coeffs[i]).poly.data``.
        Offline (weight-compilation) path, so ops are not counted.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        basis = self.params.coeff_basis
        stack = coeffs[None, :, :] % basis.primes_column[:, :, None]
        return self.engine.forward(stack, count_ops=False)

    def mul_plain_accumulate(
        self, cts: list[Ciphertext], plain_stack: np.ndarray
    ) -> Ciphertext:
        """Fused ``sum_i cts[i] * plain_i`` over a stacked eval-domain weight array.

        ``plain_stack`` has shape ``(k, T, n)`` with ``T == len(cts)``: one
        pre-lifted plaintext per ciphertext (the offline-encoded weight
        stacks that :mod:`repro.scheduling.plan` compiles).  Semantically
        identical to T calls of :meth:`mul_plain` folded with
        :meth:`add` -- and accounted as such -- but executed as two
        :meth:`~repro.bfv.ntt_batch.RnsNttEngine.pointwise_accumulate`
        calls over the whole stack.
        """
        c0_stack = np.stack([ct.c0.data for ct in cts], axis=1)
        c1_stack = np.stack([ct.c1.data for ct in cts], axis=1)
        return self.mul_plain_accumulate_stacked(c0_stack, c1_stack, plain_stack)

    def mul_plain_accumulate_stacked(
        self, c0_stack: np.ndarray, c1_stack: np.ndarray, plain_stack: np.ndarray
    ) -> Ciphertext:
        """:meth:`mul_plain_accumulate` on pre-stacked ``(k, T, n)`` arrays.

        Compiled plans keep their ciphertext components stacked across
        terms, so the per-call re-stacking of the list API would be pure
        overhead on the hot path.
        """
        terms = c0_stack.shape[1]
        if plain_stack.shape != c0_stack.shape or c1_stack.shape != c0_stack.shape:
            raise ValueError(
                f"stack shapes differ: c0 {c0_stack.shape}, c1 {c1_stack.shape}, "
                f"weights {plain_stack.shape}"
            )
        GLOBAL_COUNTERS.he_mult += terms
        GLOBAL_COUNTERS.he_add += max(0, terms - 1)
        basis = self.params.coeff_basis
        acc0 = self.engine.pointwise_accumulate(c0_stack, plain_stack)
        acc1 = self.engine.pointwise_accumulate(c1_stack, plain_stack)
        return Ciphertext(
            RnsPolynomial(basis, acc0, Domain.EVAL),
            RnsPolynomial(basis, acc1, Domain.EVAL),
        )

    def mul_plain_windowed(
        self, ct_windows: list[Ciphertext], plaintext: Plaintext
    ) -> Ciphertext:
        """Gazelle's windowed pt-ct multiplication (Section III-B2).

        The plaintext polynomial's coefficients are digit-decomposed in
        base Wdcmp into l_pt small-coefficient windows; window i multiplies
        the client-supplied encryption of ``Wdcmp**i * x``.  Noise per
        window is bounded by n * Wdcmp * v / 2 instead of n * t * v / 2
        (Table III), at the cost of l_pt polynomial products.
        """
        params = self.params
        if len(ct_windows) != params.l_pt:
            raise ValueError(
                f"expected {params.l_pt} windowed ciphertexts, got {len(ct_windows)}"
            )
        coeffs = np.asarray(plaintext.coeffs, dtype=object) % params.plain_modulus
        digits = digit_decompose(coeffs, params.w_dcmp_bits, params.l_pt)
        result: Ciphertext | None = None
        for digit, window_ct in zip(digits, ct_windows):
            plain = self.encode_coeffs_for_mul(digit.astype(np.int64))
            term = self.mul_plain(window_ct, plain)
            result = term if result is None else self.add(result, term)
        return result

    def rotate_rows(self, ct: Ciphertext, step: int, galois_keys: GaloisKeys) -> Ciphertext:
        """HE_Rotate: cyclic left rotation of each slot row by ``step``.

        A step that is a multiple of the row size is the identity Galois
        element 1; it short-circuits to a copy without key switching and
        without counting an HE_Rotate.  Key switching adds noise bounded
        by ``n * Adcmp * l_ct * v_fresh / 2`` (Table III) and costs
        ``l_ct + 1`` NTTs plus ``2 l_ct`` SIMD products -- the operation
        census HE-PTune's performance model assumes.
        """
        if step % self.params.row_size == 0:
            return ct.copy()
        return self.apply_galois(ct, self.galois_elt_for_step(step), galois_keys)

    def rotate_columns(self, ct: Ciphertext, galois_keys: GaloisKeys) -> Ciphertext:
        return self.apply_galois(ct, 2 * self.params.n - 1, galois_keys)

    def apply_galois(
        self, ct: Ciphertext, galois_elt: int, galois_keys: GaloisKeys
    ) -> Ciphertext:
        GLOBAL_COUNTERS.he_rotate += 1
        params = self.params
        ksk = galois_keys.key_for(galois_elt)
        eval_map = self._galois_eval_maps.get(galois_elt)
        if eval_map is None:
            eval_map = eval_domain_galois_map(params.n, galois_elt)
            self._galois_eval_maps[galois_elt] = eval_map

        # c0 transforms by a pure slot permutation in the evaluation domain.
        c0_rotated = ct.c0.permute(eval_map)

        # c1 requires key switching: INTT -> automorphism -> digit
        # decomposition -> one batched NTT over all digits -> fused SIMD
        # multiply-accumulate against the key-switch key pairs.
        c1_coeffs = ct.c1.bigint_coeffs(self.engine)
        c1_rotated = galois_automorphism_coeffs(
            c1_coeffs, galois_elt, params.coeff_modulus
        )
        digits = digit_decompose(c1_rotated, params.a_dcmp_bits, params.l_ct)
        digit_evals = self.engine.forward(
            params.coeff_basis.decompose_stack(digits)
        )
        acc0, acc1 = self._keyswitch_accumulate(digit_evals, ksk)
        return Ciphertext(c0_rotated.add(acc0), acc1)

    def _keyswitch_accumulate(
        self, digit_evals: np.ndarray, ksk: KeySwitchKey
    ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """Fused sum over digits of digit * (body, a), shape (k, B, n) -> (k, n)."""
        basis = self.params.coeff_basis
        depth = min(digit_evals.shape[1], len(ksk.pairs))
        digit_evals = digit_evals[:, :depth]
        body_stack, a_stack = ksk.stacks(depth)
        acc0 = self.engine.pointwise_accumulate(digit_evals, body_stack)
        acc1 = self.engine.pointwise_accumulate(digit_evals, a_stack)
        return (
            RnsPolynomial(basis, acc0, Domain.EVAL),
            RnsPolynomial(basis, acc1, Domain.EVAL),
        )

    # -- hoisted rotations -------------------------------------------------------

    def hoist(self, ct: Ciphertext) -> "HoistedCiphertext":
        """Precompute the key-switching digit decomposition of a ciphertext.

        Gazelle's hoisting optimization: when the same ciphertext is
        rotated by many steps (every dot-product schedule does this), the
        expensive INTT + digit decomposition + per-digit NTT pipeline can
        run once and be shared, because the Galois automorphism is a ring
        automorphism and therefore commutes with the base-B gadget:
        ``sigma_g(sum_i d_i B^i) = sum_i sigma_g(d_i) B^i`` with
        ``sigma_g(d_i)`` still B-bounded.  Each subsequent rotation is
        then only slot permutations plus 2*l_ct SIMD multiplies.
        """
        params = self.params
        c1_coeffs = ct.c1.bigint_coeffs(self.engine)
        digits = digit_decompose(c1_coeffs, params.a_dcmp_bits, params.l_ct)
        digit_evals = self.engine.forward(
            params.coeff_basis.decompose_stack(digits)
        )
        digit_polys = [
            RnsPolynomial(params.coeff_basis, digit_evals[:, b], Domain.EVAL)
            for b in range(digit_evals.shape[1])
        ]
        return HoistedCiphertext(
            c0=ct.c0.copy(), digit_polys=digit_polys, _stack=digit_evals
        )

    def rotate_rows_hoisted(
        self, hoisted: "HoistedCiphertext", step: int, galois_keys: GaloisKeys
    ) -> Ciphertext:
        """Rotate using a precomputed decomposition (no NTTs on this path)."""
        return self._apply_galois_hoisted(
            hoisted, self.galois_elt_for_step(step), galois_keys
        )

    def _apply_galois_hoisted(
        self, hoisted: "HoistedCiphertext", galois_elt: int, galois_keys: GaloisKeys
    ) -> Ciphertext:
        GLOBAL_COUNTERS.he_rotate += 1
        params = self.params
        ksk = galois_keys.key_for(galois_elt)
        eval_map = self._galois_eval_maps.get(galois_elt)
        if eval_map is None:
            eval_map = eval_domain_galois_map(params.n, galois_elt)
            self._galois_eval_maps[galois_elt] = eval_map
        c0_rotated = hoisted.c0.permute(eval_map)
        digit_evals = hoisted.digit_stack()[:, :, eval_map]
        acc0, acc1 = self._keyswitch_accumulate(digit_evals, ksk)
        return Ciphertext(c0_rotated.add(acc0), acc1)

    # -- cross-request batched operators ---------------------------------------
    #
    # The serving runtime (:mod:`repro.serving`) executes one layer for many
    # concurrent clients at once.  These variants stack the per-client work
    # into single ``(k, B, n)`` / ``(k, B*T, n)`` engine calls so the whole
    # batch rides the batched-NTT path; op accounting is identical to running
    # the serial methods once per client.

    def hoist_group(self, cts: list[Ciphertext]) -> "HoistedGroup":
        """Batched :meth:`hoist`: one INTT, CRT compose, digit decomposition,
        and forward NTT over all ``B`` ciphertexts at once.

        The per-client digit decompositions are independent, so the
        ``(k, B, n)`` inverse transform, the ``(B, n)`` big-integer
        compose, and the ``(k, B * l_ct, n)`` forward transform each run
        as a single engine/numpy call instead of ``B``.  The result keeps
        the whole batch's digits in one ``(k, B, l_ct, n)`` stack, so
        every subsequent :meth:`rotate_rows_group` call permutes the
        batch in a single pass.
        """
        params = self.params
        basis = params.coeff_basis
        batch = len(cts)
        if not batch:
            return HoistedGroup(c0_list=[], digits=np.empty((0, 0, 0, 0)))
        c1_coeff = self.engine.inverse(
            np.stack([ct.c1.data for ct in cts], axis=1)
        )
        # (B, n) big-integer coefficients, composed in one vectorised pass.
        coeffs = basis.compose(c1_coeff)
        digits = digit_decompose(coeffs, params.a_dcmp_bits, params.l_ct)
        # Digit-major per client: stack to (B, l_ct, n) then flatten so
        # client i's digit b lands at row i * l_ct + b.
        flat = np.stack(digits, axis=1).reshape(batch * params.l_ct, params.n)
        digit_evals = self.engine.forward(basis.decompose_stack(flat))
        return HoistedGroup(
            c0_list=[ct.c0.copy() for ct in cts],
            digits=digit_evals.reshape(
                basis.count, batch, params.l_ct, params.n
            ),
        )

    def hoist_batch(self, cts: list[Ciphertext]) -> list["HoistedCiphertext"]:
        """Batched :meth:`hoist` returning per-ciphertext views.

        Same pipeline as :meth:`hoist_group`; use the group form when the
        whole batch rotates together (it avoids re-stacking digits per
        rotation).
        """
        group = self.hoist_group(cts)
        basis = self.params.coeff_basis
        return [
            HoistedCiphertext(
                c0=c0,
                digit_polys=[
                    RnsPolynomial(basis, group.digits[:, i, b], Domain.EVAL)
                    for b in range(group.digits.shape[2])
                ],
                _stack=group.digits[:, i],
            )
            for i, c0 in enumerate(group.c0_list)
        ]

    def rotate_rows_group(
        self, group: "HoistedGroup", step: int, galois_keys: list[GaloisKeys]
    ) -> list[Ciphertext]:
        """Rotate a hoisted batch by one ``step``, each member under its own keys.

        The batch's digit stack is permuted in one pass; the key
        multiply-accumulate runs per client against its cached key stacks
        (keys are per-client, so there is no shared operand to batch
        there).  Member ``i`` decrypts identically to
        ``rotate_rows_hoisted(hoist(cts[i]), step, galois_keys[i])``.
        """
        return self._apply_galois_group(
            group, self.galois_elt_for_step(step), galois_keys
        )

    def _apply_galois_group(
        self, group: "HoistedGroup", galois_elt: int, galois_keys: list[GaloisKeys]
    ) -> list[Ciphertext]:
        batch = len(group.c0_list)
        if not batch:
            return []
        GLOBAL_COUNTERS.he_rotate += batch
        params = self.params
        basis = params.coeff_basis
        eval_map = self._galois_eval_maps.get(galois_elt)
        if eval_map is None:
            eval_map = eval_domain_galois_map(params.n, galois_elt)
            self._galois_eval_maps[galois_elt] = eval_map
        ksks = [keys.key_for(galois_elt) for keys in galois_keys]
        depth = min(group.digits.shape[2], min(len(k.pairs) for k in ksks))
        outputs = []
        for i, (c0, ksk) in enumerate(zip(group.c0_list, ksks)):
            # Per-client permute keeps the MAC operands contiguous (a
            # whole-batch fancy index would leave strided views).  Two
            # indexing steps: combining the scalar i with the eval_map
            # array would trigger numpy's advanced-index axis reordering.
            permuted = group.digits[:, i][:, :depth, eval_map]
            body_stack, a_stack = ksk.stacks(depth)
            acc0 = self.engine.pointwise_accumulate(permuted, body_stack)
            acc1 = self.engine.pointwise_accumulate(permuted, a_stack)
            outputs.append(
                Ciphertext(
                    c0.permute(eval_map).add(
                        RnsPolynomial(basis, acc0, Domain.EVAL)
                    ),
                    RnsPolynomial(basis, acc1, Domain.EVAL),
                )
            )
        return outputs

    def rotate_rows_batch(
        self, cts: list[Ciphertext], step: int, galois_keys: list[GaloisKeys]
    ) -> list[Ciphertext]:
        """HE_Rotate over ``B`` ciphertexts, each under its own client's keys.

        Runs the key-switching pipeline once over the stacked batch
        (batched INTT, digit decomposition, one forward NTT over all
        ``B * l_ct`` digits).  Counts ``B`` HE_Rotates and the same NTT
        census as ``B`` serial :meth:`rotate_rows` calls; decrypted
        outputs are identical.
        """
        if step % self.params.row_size == 0:
            return [ct.copy() for ct in cts]
        return self._apply_galois_group(
            self.hoist_group(cts), self.galois_elt_for_step(step), galois_keys
        )

    def mul_plain_accumulate_grouped(
        self,
        c0_stack: np.ndarray,
        c1_stack: np.ndarray,
        plain_stack: np.ndarray,
    ) -> list[Ciphertext]:
        """Per-client :meth:`mul_plain_accumulate_stacked` over a ``(k, B, T, n)`` batch.

        ``plain_stack`` is the shared offline-encoded weight stack
        (``(k, T, n)``, broadcast to every client); client ``i`` of the
        result equals ``mul_plain_accumulate_stacked(c0_stack[:, i],
        c1_stack[:, i], plain_stack)`` bit-for-bit.
        """
        if c0_stack.ndim != 4 or c1_stack.shape != c0_stack.shape:
            raise ValueError(
                f"expected matching (k, B, T, n) stacks, got c0 {c0_stack.shape}, "
                f"c1 {c1_stack.shape}"
            )
        batch, terms = c0_stack.shape[1], c0_stack.shape[2]
        GLOBAL_COUNTERS.he_mult += batch * terms
        GLOBAL_COUNTERS.he_add += batch * max(0, terms - 1)
        basis = self.params.coeff_basis
        acc0 = self.engine.pointwise_accumulate_grouped(c0_stack, plain_stack)
        acc1 = self.engine.pointwise_accumulate_grouped(c1_stack, plain_stack)
        return [
            Ciphertext(
                RnsPolynomial(basis, acc0[:, i], Domain.EVAL),
                RnsPolynomial(basis, acc1[:, i], Domain.EVAL),
            )
            for i in range(batch)
        ]

    # -- convenience -----------------------------------------------------------

    def encrypt_values(self, values: np.ndarray, public: PublicKey) -> Ciphertext:
        """Encode up to n integers into slots and encrypt in one step."""
        return self.encrypt(self.encoder.encode(values), public)

    def decrypt_values(
        self, ct: Ciphertext, secret: SecretKey, signed: bool = True
    ) -> np.ndarray:
        """Decrypt and decode back to the n slot values (centered if signed)."""
        return self.encoder.decode(self.decrypt(ct, secret), signed=signed)


def expected_digit_count(params: BfvParameters) -> int:
    """l_ct as derived from the live modulus (sanity cross-check)."""
    return digit_count(params.coeff_modulus, params.a_dcmp_bits)
