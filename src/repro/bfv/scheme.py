"""The BFV scheme: keygen, encryption, and the three HE operators.

Implements the complete operator set the paper builds on (Section III):

* ``HE_Add`` -- element-wise ciphertext addition (additive noise).
* ``HE_Mult`` -- plaintext-ciphertext multiplication in the evaluation
  domain (multiplicative noise), with optional Gazelle-style plaintext
  windowing for the Sched-IA baseline.
* ``HE_Rotate`` -- slot rotation via Galois automorphism plus key
  switching with base-``Adcmp`` ciphertext decomposition (additive noise,
  2*l_ct polynomial products and l_ct + 1 NTTs per invocation, exactly
  the operation census HE-PTune's performance model assumes).

Ciphertext polynomials live in the evaluation domain by default; only the
key-switching digit decomposition round-trips through the coefficient
domain, mirroring Cheetah's pipeline (Figure 9c: Swap -> INTT ->
Decompose -> NTT -> SIMDmult -> Compose).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .counters import GLOBAL_COUNTERS
from .decompose import digit_decompose, digit_count
from .encoder import BatchEncoder, Plaintext
from .keys import GaloisKeys, KeySwitchKey, PublicKey, SecretKey
from .ntt_batch import get_engine
from .params import BfvParameters
from .polynomial import (
    Domain,
    RnsPolynomial,
    eval_domain_galois_map,
    galois_automorphism_coeffs,
)


@dataclass
class Ciphertext:
    """A BFV ciphertext (c0, c1), evaluation domain."""

    c0: RnsPolynomial
    c1: RnsPolynomial

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy())


@dataclass
class HoistedCiphertext:
    """A ciphertext with its key-switching decomposition precomputed.

    Produced by :meth:`BfvScheme.hoist`; consumed by
    :meth:`BfvScheme.rotate_rows_hoisted`.
    """

    c0: RnsPolynomial
    digit_polys: list[RnsPolynomial]


class EvalPlaintext:
    """A plaintext pre-lifted to the evaluation domain of every q prime.

    Pre-encoding weights this way is how Cheetah avoids NTTs inside
    HE_Mult (Section III-B: "Cheetah keeps polynomials in the evaluation
    space").
    """

    __slots__ = ("poly",)

    def __init__(self, poly: RnsPolynomial):
        self.poly = poly


class BfvScheme:
    """A fully usable BFV context bound to one parameter set."""

    def __init__(self, params: BfvParameters, seed: int | None = None):
        self.params = params
        self.rng = np.random.default_rng(seed)
        #: Batched RNS-NTT engine shared (memoized) across schemes with the
        #: same parameters; transforms all limbs of a polynomial in one pass.
        self.engine = get_engine(params.n, params.coeff_basis.primes)
        #: Per-limb reference contexts (kept for cross-checks and tooling).
        self.contexts = self.engine.contexts
        self.encoder = BatchEncoder(params)
        self._galois_eval_maps: dict[int, np.ndarray] = {}

    # -- sampling ----------------------------------------------------------

    def _sample_ternary(self) -> np.ndarray:
        return self.rng.integers(-1, 2, self.params.n, dtype=np.int64)

    def _sample_error(self) -> np.ndarray:
        sigma = self.params.sigma
        samples = np.rint(self.rng.normal(0.0, sigma, self.params.n)).astype(np.int64)
        bound = int(np.ceil(6 * sigma))
        return np.clip(samples, -bound, bound)

    def _sample_uniform_eval(self) -> RnsPolynomial:
        rows = [
            self.rng.integers(0, prime, self.params.n, dtype=np.int64)
            for prime in self.params.coeff_basis.primes
        ]
        return RnsPolynomial(self.params.coeff_basis, np.stack(rows), Domain.EVAL)

    def _small_to_eval(self, coeffs: np.ndarray) -> RnsPolynomial:
        poly = RnsPolynomial.from_small_coeffs(self.params.coeff_basis, coeffs)
        return poly.to_eval(self.engine)

    # -- key generation ------------------------------------------------------

    def keygen(self) -> tuple[SecretKey, PublicKey]:
        s_coeffs = self._sample_ternary()
        s_eval = self._small_to_eval(s_coeffs)
        secret = SecretKey(coeffs=s_coeffs, eval_poly=s_eval)

        a = self._sample_uniform_eval()
        e = self._small_to_eval(self._sample_error())
        p0 = a.pointwise(s_eval, self.engine).add(e).neg()
        public = PublicKey(p0=p0, p1=a)
        return secret, public

    def generate_galois_keys(self, secret: SecretKey, steps: list[int]) -> GaloisKeys:
        """Generate rotation keys for the given row-rotation step sizes."""
        keys = GaloisKeys()
        for step in steps:
            elt = self.galois_elt_for_step(step)
            if elt not in keys.keys:
                keys.keys[elt] = self._make_keyswitch_key(secret, elt)
        return keys

    def generate_column_key(self, secret: SecretKey) -> GaloisKeys:
        elt = 2 * self.params.n - 1
        keys = GaloisKeys()
        keys.keys[elt] = self._make_keyswitch_key(secret, elt)
        return keys

    def galois_elt_for_step(self, step: int) -> int:
        """Galois element implementing a left row-rotation by ``step``."""
        row = self.params.n // 2
        return pow(3, step % row, 2 * self.params.n)

    def _make_keyswitch_key(self, secret: SecretKey, galois_elt: int) -> KeySwitchKey:
        params = self.params
        q = params.coeff_modulus
        rotated_secret = galois_automorphism_coeffs(
            secret.coeffs.astype(object) % q, galois_elt, q
        )
        rotated_poly = RnsPolynomial.from_bigint_coeffs(
            params.coeff_basis, rotated_secret
        ).to_eval(self.engine)
        pairs = []
        base_power = 1
        for _ in range(params.l_ct):
            a = self._sample_uniform_eval()
            e = self._small_to_eval(self._sample_error())
            body = (
                a.pointwise(secret.eval_poly, self.engine)
                .add(e)
                .neg()
                .add(rotated_poly.scalar_multiply(base_power))
            )
            pairs.append((body, a))
            base_power = base_power * params.a_dcmp % q
        return KeySwitchKey(pairs=pairs, base_bits=params.a_dcmp_bits)

    # -- encryption / decryption ---------------------------------------------

    def encrypt(self, plaintext: Plaintext, public: PublicKey) -> Ciphertext:
        params = self.params
        u = self._small_to_eval(self._sample_ternary())
        e0 = self._sample_error()
        e1 = self._sample_error()
        delta_m = self._delta_times_message(plaintext)
        c0 = (
            public.p0.pointwise(u, self.engine)
            .add(self._small_to_eval(e0))
            .add(delta_m)
        )
        c1 = public.p1.pointwise(u, self.engine).add(self._small_to_eval(e1))
        return Ciphertext(c0, c1)

    def _delta_times_message(self, plaintext: Plaintext) -> RnsPolynomial:
        params = self.params
        coeffs = np.asarray(plaintext.coeffs, dtype=object) % params.plain_modulus
        scaled = (coeffs * params.delta) % params.coeff_modulus
        poly = RnsPolynomial.from_bigint_coeffs(params.coeff_basis, scaled)
        return poly.to_eval(self.engine)

    def encrypt_windowed(
        self, values: np.ndarray, public: PublicKey, num_windows: int
    ) -> list[Ciphertext]:
        """Gazelle input windowing: encryptions of x * Wdcmp**i mod t.

        The Sched-IA baseline consumes these so each weight window
        multiplication only injects ``Wdcmp``-bounded noise.
        """
        t = self.params.plain_modulus
        w_base = self.params.w_dcmp
        values = np.asarray(values, dtype=np.int64)
        ciphertexts = []
        scale = 1
        for _ in range(num_windows):
            scaled = (values.astype(object) * scale) % t
            pt = self.encoder.encode(scaled.astype(np.int64))
            ciphertexts.append(self.encrypt(pt, public))
            scale = scale * w_base % t
        return ciphertexts

    def decrypt(self, ct: Ciphertext, secret: SecretKey) -> Plaintext:
        w = self._raw_decrypt(ct, secret)
        params = self.params
        t, q = params.plain_modulus, params.coeff_modulus
        message = ((w * t * 2 + q) // (2 * q)) % t
        return Plaintext(message.astype(np.int64))

    def _raw_decrypt(self, ct: Ciphertext, secret: SecretKey) -> np.ndarray:
        """Return (c0 + c1 * s) mod q as big-integer coefficients."""
        combined = ct.c0.add(ct.c1.pointwise(secret.eval_poly, self.engine))
        return combined.bigint_coeffs(self.engine)

    # -- HE operators ---------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        GLOBAL_COUNTERS.he_add += 1
        return Ciphertext(a.c0.add(b.c0), a.c1.add(b.c1))

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        GLOBAL_COUNTERS.he_add += 1
        return Ciphertext(a.c0.sub(b.c0), a.c1.sub(b.c1))

    def add_plain(self, ct: Ciphertext, plaintext: Plaintext) -> Ciphertext:
        GLOBAL_COUNTERS.he_add += 1
        return Ciphertext(ct.c0.add(self._delta_times_message(plaintext)), ct.c1.copy())

    def encode_for_mul(self, plaintext: Plaintext) -> EvalPlaintext:
        """Lift a plaintext into the q-prime evaluation domain (offline)."""
        return self.encode_coeffs_for_mul(plaintext.coeffs)

    def mul_plain(self, ct: Ciphertext, plain: EvalPlaintext) -> Ciphertext:
        """HE_Mult (pt-ct): element-wise products, no NTTs (Section III-B1)."""
        GLOBAL_COUNTERS.he_mult += 1
        c0 = ct.c0.pointwise(plain.poly, self.engine)
        c1 = ct.c1.pointwise(plain.poly, self.engine)
        return Ciphertext(c0, c1)

    def encode_coeffs_for_mul(self, coeffs: np.ndarray) -> EvalPlaintext:
        """Lift raw polynomial coefficients (mod t digits) to the eval domain."""
        coeffs = np.asarray(coeffs, dtype=np.int64)
        basis = self.params.coeff_basis
        stack = coeffs[None, :] % basis.primes_column
        poly = RnsPolynomial(
            basis, self.engine.forward(stack, count_ops=False), Domain.EVAL
        )
        return EvalPlaintext(poly)

    def encode_coeffs_stack_for_mul(self, coeffs: np.ndarray) -> np.ndarray:
        """Batch :meth:`encode_coeffs_for_mul`: (T, n) coeffs -> (k, T, n) evals.

        One forward NTT over the whole stack; slice ``[:, i]`` is
        bit-identical to ``encode_coeffs_for_mul(coeffs[i]).poly.data``.
        Offline (weight-compilation) path, so ops are not counted.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        basis = self.params.coeff_basis
        stack = coeffs[None, :, :] % basis.primes_column[:, :, None]
        return self.engine.forward(stack, count_ops=False)

    def mul_plain_accumulate(
        self, cts: list[Ciphertext], plain_stack: np.ndarray
    ) -> Ciphertext:
        """Fused ``sum_i cts[i] * plain_i`` over a stacked eval-domain weight array.

        ``plain_stack`` has shape ``(k, T, n)`` with ``T == len(cts)``: one
        pre-lifted plaintext per ciphertext (the offline-encoded weight
        stacks that :mod:`repro.scheduling.plan` compiles).  Semantically
        identical to T calls of :meth:`mul_plain` folded with
        :meth:`add` -- and accounted as such -- but executed as two
        :meth:`~repro.bfv.ntt_batch.RnsNttEngine.pointwise_accumulate`
        calls over the whole stack.
        """
        c0_stack = np.stack([ct.c0.data for ct in cts], axis=1)
        c1_stack = np.stack([ct.c1.data for ct in cts], axis=1)
        return self.mul_plain_accumulate_stacked(c0_stack, c1_stack, plain_stack)

    def mul_plain_accumulate_stacked(
        self, c0_stack: np.ndarray, c1_stack: np.ndarray, plain_stack: np.ndarray
    ) -> Ciphertext:
        """:meth:`mul_plain_accumulate` on pre-stacked ``(k, T, n)`` arrays.

        Compiled plans keep their ciphertext components stacked across
        terms, so the per-call re-stacking of the list API would be pure
        overhead on the hot path.
        """
        terms = c0_stack.shape[1]
        if plain_stack.shape != c0_stack.shape or c1_stack.shape != c0_stack.shape:
            raise ValueError(
                f"stack shapes differ: c0 {c0_stack.shape}, c1 {c1_stack.shape}, "
                f"weights {plain_stack.shape}"
            )
        GLOBAL_COUNTERS.he_mult += terms
        GLOBAL_COUNTERS.he_add += max(0, terms - 1)
        basis = self.params.coeff_basis
        acc0 = self.engine.pointwise_accumulate(c0_stack, plain_stack)
        acc1 = self.engine.pointwise_accumulate(c1_stack, plain_stack)
        return Ciphertext(
            RnsPolynomial(basis, acc0, Domain.EVAL),
            RnsPolynomial(basis, acc1, Domain.EVAL),
        )

    def mul_plain_windowed(
        self, ct_windows: list[Ciphertext], plaintext: Plaintext
    ) -> Ciphertext:
        """Gazelle's windowed pt-ct multiplication (Section III-B2).

        The plaintext polynomial's coefficients are digit-decomposed in
        base Wdcmp into l_pt small-coefficient windows; window i multiplies
        the client-supplied encryption of ``Wdcmp**i * x``.  Noise per
        window is bounded by n * Wdcmp * v / 2 instead of n * t * v / 2
        (Table III), at the cost of l_pt polynomial products.
        """
        params = self.params
        if len(ct_windows) != params.l_pt:
            raise ValueError(
                f"expected {params.l_pt} windowed ciphertexts, got {len(ct_windows)}"
            )
        coeffs = np.asarray(plaintext.coeffs, dtype=object) % params.plain_modulus
        digits = digit_decompose(coeffs, params.w_dcmp_bits, params.l_pt)
        result: Ciphertext | None = None
        for digit, window_ct in zip(digits, ct_windows):
            plain = self.encode_coeffs_for_mul(digit.astype(np.int64))
            term = self.mul_plain(window_ct, plain)
            result = term if result is None else self.add(result, term)
        return result

    def rotate_rows(self, ct: Ciphertext, step: int, galois_keys: GaloisKeys) -> Ciphertext:
        """HE_Rotate: cyclic left rotation of each slot row by ``step``.

        A step that is a multiple of the row size is the identity Galois
        element 1; it short-circuits to a copy without key switching and
        without counting an HE_Rotate.
        """
        if step % self.params.row_size == 0:
            return ct.copy()
        return self.apply_galois(ct, self.galois_elt_for_step(step), galois_keys)

    def rotate_columns(self, ct: Ciphertext, galois_keys: GaloisKeys) -> Ciphertext:
        return self.apply_galois(ct, 2 * self.params.n - 1, galois_keys)

    def apply_galois(
        self, ct: Ciphertext, galois_elt: int, galois_keys: GaloisKeys
    ) -> Ciphertext:
        GLOBAL_COUNTERS.he_rotate += 1
        params = self.params
        ksk = galois_keys.key_for(galois_elt)
        eval_map = self._galois_eval_maps.get(galois_elt)
        if eval_map is None:
            eval_map = eval_domain_galois_map(params.n, galois_elt)
            self._galois_eval_maps[galois_elt] = eval_map

        # c0 transforms by a pure slot permutation in the evaluation domain.
        c0_rotated = ct.c0.permute(eval_map)

        # c1 requires key switching: INTT -> automorphism -> digit
        # decomposition -> one batched NTT over all digits -> fused SIMD
        # multiply-accumulate against the key-switch key pairs.
        c1_coeffs = ct.c1.bigint_coeffs(self.engine)
        c1_rotated = galois_automorphism_coeffs(
            c1_coeffs, galois_elt, params.coeff_modulus
        )
        digits = digit_decompose(c1_rotated, params.a_dcmp_bits, params.l_ct)
        digit_evals = self.engine.forward(
            params.coeff_basis.decompose_stack(digits)
        )
        acc0, acc1 = self._keyswitch_accumulate(digit_evals, ksk.pairs)
        return Ciphertext(c0_rotated.add(acc0), acc1)

    def _keyswitch_accumulate(
        self, digit_evals: np.ndarray, pairs
    ) -> tuple[RnsPolynomial, RnsPolynomial]:
        """Fused sum over digits of digit * (body, a), shape (k, B, n) -> (k, n)."""
        basis = self.params.coeff_basis
        depth = min(digit_evals.shape[1], len(pairs))
        digit_evals = digit_evals[:, :depth]
        body_stack = np.stack([body.data for body, _ in pairs[:depth]], axis=1)
        a_stack = np.stack([a.data for _, a in pairs[:depth]], axis=1)
        acc0 = self.engine.pointwise_accumulate(digit_evals, body_stack)
        acc1 = self.engine.pointwise_accumulate(digit_evals, a_stack)
        return (
            RnsPolynomial(basis, acc0, Domain.EVAL),
            RnsPolynomial(basis, acc1, Domain.EVAL),
        )

    # -- hoisted rotations -------------------------------------------------------

    def hoist(self, ct: Ciphertext) -> "HoistedCiphertext":
        """Precompute the key-switching digit decomposition of a ciphertext.

        Gazelle's hoisting optimization: when the same ciphertext is
        rotated by many steps (every dot-product schedule does this), the
        expensive INTT + digit decomposition + per-digit NTT pipeline can
        run once and be shared, because the Galois automorphism is a ring
        automorphism and therefore commutes with the base-B gadget:
        ``sigma_g(sum_i d_i B^i) = sum_i sigma_g(d_i) B^i`` with
        ``sigma_g(d_i)`` still B-bounded.  Each subsequent rotation is
        then only slot permutations plus 2*l_ct SIMD multiplies.
        """
        params = self.params
        c1_coeffs = ct.c1.bigint_coeffs(self.engine)
        digits = digit_decompose(c1_coeffs, params.a_dcmp_bits, params.l_ct)
        digit_evals = self.engine.forward(
            params.coeff_basis.decompose_stack(digits)
        )
        digit_polys = [
            RnsPolynomial(params.coeff_basis, digit_evals[:, b], Domain.EVAL)
            for b in range(digit_evals.shape[1])
        ]
        return HoistedCiphertext(c0=ct.c0.copy(), digit_polys=digit_polys)

    def rotate_rows_hoisted(
        self, hoisted: "HoistedCiphertext", step: int, galois_keys: GaloisKeys
    ) -> Ciphertext:
        """Rotate using a precomputed decomposition (no NTTs on this path)."""
        return self._apply_galois_hoisted(
            hoisted, self.galois_elt_for_step(step), galois_keys
        )

    def _apply_galois_hoisted(
        self, hoisted: "HoistedCiphertext", galois_elt: int, galois_keys: GaloisKeys
    ) -> Ciphertext:
        GLOBAL_COUNTERS.he_rotate += 1
        params = self.params
        ksk = galois_keys.key_for(galois_elt)
        eval_map = self._galois_eval_maps.get(galois_elt)
        if eval_map is None:
            eval_map = eval_domain_galois_map(params.n, galois_elt)
            self._galois_eval_maps[galois_elt] = eval_map
        c0_rotated = hoisted.c0.permute(eval_map)
        digit_evals = np.stack(
            [poly.data for poly in hoisted.digit_polys], axis=1
        )[:, :, eval_map]
        acc0, acc1 = self._keyswitch_accumulate(digit_evals, ksk.pairs)
        return Ciphertext(c0_rotated.add(acc0), acc1)

    # -- convenience -----------------------------------------------------------

    def encrypt_values(self, values: np.ndarray, public: PublicKey) -> Ciphertext:
        return self.encrypt(self.encoder.encode(values), public)

    def decrypt_values(
        self, ct: Ciphertext, secret: SecretKey, signed: bool = True
    ) -> np.ndarray:
        return self.encoder.decode(self.decrypt(ct, secret), signed=signed)


def expected_digit_count(params: BfvParameters) -> int:
    """l_ct as derived from the live modulus (sanity cross-check)."""
    return digit_count(params.coeff_modulus, params.a_dcmp_bits)
