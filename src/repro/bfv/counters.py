"""Global operation accounting for HE kernels.

The Cheetah paper reports performance as the total number of underlying
integer multiplications (Section IV-A): every HE operator is reduced to
modular multiplications (5 integer multiplications each under Barrett
reduction) and NTT butterflies (3 integer multiplications each under
Harvey's butterfly).  This module provides the single counter object that
every kernel in :mod:`repro.bfv` increments, so measured op counts can be
validated against HE-PTune's analytical model (Table IV).

The counters are profiling aids, not synchronised state: increments are
plain ``+=`` with no lock, so censuses are only exact for
single-threaded workloads.  Under the concurrent serving runtime
(:mod:`repro.serving`) interleaved read-modify-writes can drop
increments -- do not assert on counter values around multi-threaded
runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Integer multiplications per modular multiplication (Barrett reduction).
BARRETT_INT_MULTS = 5

#: Integer multiplications per NTT butterfly (Harvey's butterfly).
HARVEY_INT_MULTS = 3


@dataclass
class OpCounters:
    """Mutable tally of HE-level and integer-level operations.

    Attributes mirror the hot kernels profiled in Figure 7 of the paper:
    ``HE_Mult``, ``HE_Add``, ``HE_Rotate`` and ``NTT``.
    """

    he_mult: int = 0
    he_add: int = 0
    he_rotate: int = 0
    ntt: int = 0
    modmuls: int = 0
    butterflies: int = 0
    kernel_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def int_mults(self) -> int:
        """Total integer multiplications per the paper's accounting."""
        return self.modmuls * BARRETT_INT_MULTS + self.butterflies * HARVEY_INT_MULTS

    def add_modmuls(self, count: int) -> None:
        self.modmuls += count

    def add_ntt(self, n: int, count: int = 1) -> None:
        """Record ``count`` n-point NTTs (n/2 * log2(n) butterflies each)."""
        self.ntt += count
        self.butterflies += count * (n // 2) * (n.bit_length() - 1)

    def add_time(self, kernel: str, seconds: float) -> None:
        self.kernel_seconds[kernel] = self.kernel_seconds.get(kernel, 0.0) + seconds

    def reset(self) -> None:
        self.he_mult = 0
        self.he_add = 0
        self.he_rotate = 0
        self.ntt = 0
        self.modmuls = 0
        self.butterflies = 0
        self.kernel_seconds = {}

    def snapshot(self) -> "OpCounters":
        """Return an independent copy of the current tallies."""
        copy = OpCounters(
            he_mult=self.he_mult,
            he_add=self.he_add,
            he_rotate=self.he_rotate,
            ntt=self.ntt,
            modmuls=self.modmuls,
            butterflies=self.butterflies,
        )
        copy.kernel_seconds = dict(self.kernel_seconds)
        return copy

    def diff(self, earlier: "OpCounters") -> "OpCounters":
        """Return the delta between this tally and an earlier snapshot."""
        delta = OpCounters(
            he_mult=self.he_mult - earlier.he_mult,
            he_add=self.he_add - earlier.he_add,
            he_rotate=self.he_rotate - earlier.he_rotate,
            ntt=self.ntt - earlier.ntt,
            modmuls=self.modmuls - earlier.modmuls,
            butterflies=self.butterflies - earlier.butterflies,
        )
        delta.kernel_seconds = {
            name: seconds - earlier.kernel_seconds.get(name, 0.0)
            for name, seconds in self.kernel_seconds.items()
        }
        return delta

    @contextmanager
    def timed(self, kernel: str):
        """Context manager accumulating wall-clock time for ``kernel``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(kernel, time.perf_counter() - start)


#: Process-wide counter used by default throughout :mod:`repro.bfv`.
GLOBAL_COUNTERS = OpCounters()


@contextmanager
def counting():
    """Yield a fresh snapshot-diff view over the global counters.

    Example::

        with counting() as delta:
            scheme.rotate_rows(ct, 1, galois_keys)
        print(delta().he_rotate)  # -> 1
    """
    before = GLOBAL_COUNTERS.snapshot()
    yield lambda: GLOBAL_COUNTERS.diff(before)
