"""Batched RNS-NTT engine with Shoup lazy reduction.

The NTT dominates HE inference (55.2% of ResNet50 run time, Figure 7 of
the paper), and the reference :class:`~repro.bfv.ntt.NttContext` pays for
that dominance twice over: every RNS limb is transformed through its own
Python-level call, and every butterfly stage reduces mod p with three
integer divisions.  :class:`RnsNttEngine` removes both costs by
transforming an entire ``(k, batch, n)`` residue stack in one pass:

* **Limb batching** — per-stage twiddle tables are stacked across all k
  limbs as ``(k, half)`` arrays and butterflies broadcast over the whole
  ``(k, batch, n)`` work buffer, so one numpy call (or one C call) covers
  every limb of every polynomial in flight.
* **Shoup lazy reduction** — each twiddle ``w`` carries a precomputed
  high-word quotient (the ``floor(w * 2^64 / p)`` trick; the numpy path
  uses the ``floor(w << 32) // p`` analogue so 64-bit products never
  overflow).  A modular product then costs three multiplies and no
  division, and butterfly outputs stay lazily in ``[0, 2p)`` (numpy path)
  or ``[0, 4p)`` (C path) between stages; only one final reduction into
  ``[0, p)`` is paid per transform.
* **In-place schedules** — the bit-reverse permutation is fused into the
  initial gather (no separate reorder copy), the early small-stride
  stages run on a transposed tile layout so every numpy op sees long
  contiguous runs, and per-stage scratch is preallocated, eliminating the
  per-stage ``even.copy()`` of the reference transform.

Both compute paths produce residues bit-identical to ``NttContext``:
laziness only changes intermediate representatives, never the final
fully-reduced value.  When a C compiler is available the engine
additionally routes through the compiled kernel in ``_ntt_kernel.c``
(see :mod:`repro.bfv.native`), which is another ~5x on top of the numpy
path; tests cross-check all three implementations.

Engines are memoized by ``(n, moduli)`` via :func:`get_engine`, so the
scheme, encoder, and profiler share one set of twiddle tables.
"""

from __future__ import annotations

import threading
from functools import lru_cache

import numpy as np

from . import native
from .counters import GLOBAL_COUNTERS
from .ntt import NttContext, bit_reverse_indices

#: Shift of the numpy-path Shoup quotient tables (beta = 2^32 in uint64).
SHOUP_SHIFT = np.uint64(32)

_U2 = np.uint64(2)


def _shoup(table: np.ndarray, modulus: int, shift: int) -> np.ndarray:
    """Precomputed high-word quotients floor(w << shift / p) as uint64."""
    widened = table.astype(object) << shift
    return np.array([q // modulus for q in widened], dtype=np.uint64)


@lru_cache(maxsize=None)
def get_context(n: int, modulus: int) -> NttContext:
    """Memoized single-limb reference context (shared twiddle tables)."""
    return NttContext(n, modulus)


@lru_cache(maxsize=None)
def _get_engine_cached(n: int, moduli: tuple[int, ...]) -> "RnsNttEngine":
    return RnsNttEngine(n, moduli)


def get_engine(n: int, moduli) -> "RnsNttEngine":
    """Memoized engine keyed by ``(n, tuple(moduli))``.

    ``BfvScheme``, ``BatchEncoder``, and the profiler all resolve their
    engines through this function so identical parameter sets never
    rebuild twiddle tables.
    """
    return _get_engine_cached(int(n), tuple(int(m) for m in moduli))


class RnsNttEngine:
    """Negacyclic NTTs over a whole RNS basis in one batched pass.

    Transforms accept residue stacks of shape ``(k, n)`` (one polynomial)
    or ``(k, batch, n)`` (a batch, e.g. every key-switching digit at
    once), limb-major, and return the same shape.  Outputs are always
    fully reduced into ``[0, p_i)`` per limb and bit-identical to running
    the reference :class:`NttContext` limb by limb.
    """

    def __init__(self, n: int, moduli, use_native: bool | None = None):
        moduli = tuple(int(m) for m in moduli)
        if not moduli:
            raise ValueError("engine needs at least one modulus")
        self.n = n
        self.moduli = moduli
        self.count = len(moduli)
        #: Per-limb reference contexts; also the source of all twiddles.
        self.contexts = [get_context(n, m) for m in moduli]
        k = self.count
        p = np.array(moduli, dtype=np.uint64)
        self._p_col = p[:, None]
        self._min_modulus = int(p.min())
        self._primes_i64 = np.array(moduli, dtype=np.int64)

        stages = n.bit_length() - 1
        # Early stages (length <= 2^s_lo) run on a transposed tile layout so
        # numpy ops see contiguous runs of n/m instead of runs of `half`.
        self._s_lo = (stages + 1) // 2
        self._m = 1 << self._s_lo
        self._nm = n // self._m
        bitrev = bit_reverse_indices(n)
        perm = bitrev.reshape(self._nm, self._m).T.copy().reshape(-1)
        self._perm = perm
        # n^-1 * psi^-j fused inverse scale (products < 2^60, int64-safe).
        self._iscale_raw = np.stack(
            [c._ipsi_powers * c._n_inv % m for c, m in zip(self.contexts, moduli)]
        )

        # Numpy-path transforms run on shared per-engine work buffers
        # (engines are globally memoized), so that path is serialised by
        # this lock; the native path uses per-call buffers and runs
        # lock-free (concurrent serving threads transform in parallel).
        self._lock = threading.Lock()
        # Numpy-path Shoup tables are built lazily: when the native kernel
        # is live they would be dead weight (the quotient precomputation
        # is the expensive part of engine construction).
        self._numpy_tables: dict | None = None
        self._plans: dict[int, dict] = {}

        self._kernel = None
        if use_native is None or use_native:
            self._kernel = native.load_kernel()
        if self._kernel is not None:
            self._init_native(bitrev)

    # -- table construction -------------------------------------------------

    def _stack_stage_tables(self, per_limb: list[list[np.ndarray]]):
        tables = []
        for s in range(self.n.bit_length() - 1):
            w = np.stack([tw[s] for tw in per_limb])
            wsh = np.stack(
                [_shoup(tw[s], m, 32) for tw, m in zip(per_limb, self.moduli)]
            )
            tables.append((w.astype(np.uint64), wsh))
        return tables

    def _init_native(self, bitrev: np.ndarray) -> None:
        moduli = self.moduli
        ctxs = self.contexts
        psi_br = np.stack([c._psi_powers[bitrev] for c in ctxs])
        self._nat = {
            "perm": np.ascontiguousarray(bitrev),
            "psi": psi_br.astype(np.uint64),
            "psi_sh": np.stack(
                [_shoup(psi_br[i], m, 64) for i, m in enumerate(moduli)]
            ),
            "tw": np.stack(
                [np.concatenate(c._stage_twiddles) for c in ctxs]
            ).astype(np.uint64),
            "tw_sh": np.stack(
                [
                    np.concatenate(
                        [_shoup(t, m, 64) for t in c._stage_twiddles]
                    )
                    for c, m in zip(ctxs, moduli)
                ]
            ),
            "itw": np.stack(
                [np.concatenate(c._stage_itwiddles) for c in ctxs]
            ).astype(np.uint64),
            "itw_sh": np.stack(
                [
                    np.concatenate(
                        [_shoup(t, m, 64) for t in c._stage_itwiddles]
                    )
                    for c, m in zip(ctxs, moduli)
                ]
            ),
            "iscale": self._iscale_raw.astype(np.uint64),
            "iscale_sh": np.stack(
                [_shoup(self._iscale_raw[i], m, 64) for i, m in enumerate(moduli)]
            ),
            "p": np.array(moduli, dtype=np.uint64),
        }

    @property
    def uses_native_kernel(self) -> bool:
        return self._kernel is not None

    # -- numpy execution plan -----------------------------------------------

    def _ensure_numpy_tables(self) -> dict:
        """Build the numpy-path Shoup tables on first fallback use."""
        tables = self._numpy_tables
        if tables is None:
            k, moduli = self.count, self.moduli
            psi = np.stack([c._psi_powers[self._perm] for c in self.contexts])
            tables = {
                "psi_t": psi.astype(np.uint64),
                "psi_t_sh": np.stack(
                    [_shoup(psi[i], moduli[i], 32) for i in range(k)]
                ),
                "fwd": self._stack_stage_tables(
                    [c._stage_twiddles for c in self.contexts]
                ),
                "inv": self._stack_stage_tables(
                    [c._stage_itwiddles for c in self.contexts]
                ),
                "iscale": self._iscale_raw.astype(np.uint64),
                "iscale_sh": np.stack(
                    [_shoup(self._iscale_raw[i], moduli[i], 32) for i in range(k)]
                ),
            }
            self._numpy_tables = tables
        return tables

    #: Work-buffer sets kept per engine; plans are per batch size and engines
    #: live for the process, so the cache is bounded (oldest evicted first).
    _MAX_PLANS = 4

    def _plan(self, batch: int) -> dict:
        plan = self._plans.get(batch)
        if plan is not None:
            return plan
        if len(self._plans) >= self._MAX_PLANS:
            self._plans.pop(next(iter(self._plans)))
        stage_tables = self._ensure_numpy_tables()
        k, n, m, nm = self.count, self.n, self._m, self._nm
        work = np.empty((k, batch, n), dtype=np.uint64)
        tiles = np.empty((k, batch, m, nm), dtype=np.uint64)
        scratch_q = np.empty(k * batch * n // 2, dtype=np.uint64)
        scratch_t = np.empty(k * batch * n // 2, dtype=np.uint64)
        scratch_f = np.empty((k, batch, n), dtype=np.uint64)

        def views(buf, length, tiled):
            half = length // 2
            if tiled:
                v = buf.reshape(k, batch * (m // length), length, nm)
                even, odd = v[:, :, :half, :], v[:, :, half:, :]
                wshape = (k, 1, half, 1)
            else:
                v = buf.reshape(k, batch * (n // length), length)
                even, odd = v[:, :, :half], v[:, :, half:]
                wshape = (k, 1, half)
            nd = even.ndim
            return (
                even,
                odd,
                scratch_q[: even.size].reshape(even.shape),
                scratch_t[: even.size].reshape(even.shape),
                wshape,
                self._p_col.reshape((k,) + (1,) * (nd - 1)),
                (self._p_col * _U2).reshape((k,) + (1,) * (nd - 1)),
                (self._p_col * _U2).reshape((k,) + (1,) * (buf.ndim - 1)),
                buf,
                scratch_f.reshape(buf.shape),
            )

        plan = {
            "work": work,
            "tiles": tiles,
            "f": scratch_f,
            "lo": [views(tiles, 2 << s, True) for s in range(self._s_lo)],
            "hi": [
                views(work, 2 << s, False)
                for s in range(self._s_lo, n.bit_length() - 1)
            ],
            "psi_t": stage_tables["psi_t"].reshape(k, 1, m, nm),
            "psi_t_sh": stage_tables["psi_t_sh"].reshape(k, 1, m, nm),
            "p3": self._p_col.reshape(k, 1, 1),
            "p4": self._p_col.reshape(k, 1, 1, 1),
            "iscale": stage_tables["iscale"].reshape(k, 1, n),
            "iscale_sh": stage_tables["iscale_sh"].reshape(k, 1, n),
        }
        self._plans[batch] = plan
        return plan

    @staticmethod
    def _stage(stage_views, w, wsh, skip_multiply=False):
        (even, odd, q, t, wshape, p, twop, twop_buf, buf, f) = stage_views
        if skip_multiply:
            # Twiddle is identically 1 (stage 0): butterfly without Shoup.
            np.add(even, odd, out=q)
            np.add(even, twop, out=t)
            np.subtract(t, odd, out=odd)
            np.copyto(even, q)
        else:
            # t = odd * w mod p, lazily in [0, 2p) via the Shoup quotient.
            np.multiply(odd, wsh.reshape(wshape), out=q)
            q >>= SHOUP_SHIFT
            np.multiply(odd, w.reshape(wshape), out=t)
            q *= p
            t -= q
            np.subtract(twop, t, out=q)
            np.add(even, q, out=odd)  # odd' = even + 2p - t
            even += t                 # even' = even + t
        # Correct [0, 4p) back to [0, 2p): uint64 wraparound makes
        # min(x, x - 2p) a branch-free conditional subtraction.
        np.subtract(buf, twop_buf, out=f)
        np.minimum(buf, f, out=buf)

    def _numpy_transform(self, arr: np.ndarray, forward: bool) -> np.ndarray:
        k, batch, n = arr.shape
        plan = self._plan(batch)
        tables = self._ensure_numpy_tables()["fwd" if forward else "inv"]
        tiles, work, f = plan["tiles"], plan["work"], plan["f"]
        np.take(arr, self._perm, axis=-1, out=tiles.view(np.int64).reshape(k, batch, n))
        if forward:
            ft = f.reshape(tiles.shape)
            np.multiply(tiles, plan["psi_t_sh"], out=ft)
            ft >>= SHOUP_SHIFT
            tiles *= plan["psi_t"]
            ft *= plan["p4"]
            tiles -= ft
        for s, stage_views in enumerate(plan["lo"]):
            w, wsh = tables[s]
            self._stage(stage_views, w, wsh, skip_multiply=s == 0)
        np.copyto(work.reshape(k, batch, self._nm, self._m), tiles.transpose(0, 1, 3, 2))
        for s, stage_views in enumerate(plan["hi"]):
            w, wsh = tables[self._s_lo + s]
            self._stage(stage_views, w, wsh)
        out = np.empty((k, batch, n), dtype=np.uint64)
        if forward:
            np.subtract(work, plan["p3"], out=f)
            np.minimum(work, f, out=out)
        else:
            np.multiply(work, plan["iscale_sh"], out=f)
            f >>= SHOUP_SHIFT
            np.multiply(work, plan["iscale"], out=out)
            f *= plan["p3"]
            out -= f
            np.subtract(out, plan["p3"], out=f)
            np.minimum(out, f, out=out)
        return out.view(np.int64)

    def _native_transform(self, arr: np.ndarray, forward: bool) -> np.ndarray:
        import ctypes

        k, batch, n = arr.shape
        nat = self._nat
        buf = np.ascontiguousarray(arr).astype(np.uint64)
        # Per-call scratch keeps this path lock-free: the tables are
        # read-only and ctypes releases the GIL during the C call, so
        # concurrent serving threads transform without convoying on a
        # shared-engine lock.
        scratch = np.empty(n, dtype=np.uint64)

        def ptr(a):
            return a.ctypes.data_as(ctypes.c_void_p)

        if forward:
            self._kernel.ntt_forward(
                ptr(buf), ptr(nat["perm"]), ptr(nat["psi"]), ptr(nat["psi_sh"]),
                ptr(nat["tw"]), ptr(nat["tw_sh"]), ptr(nat["p"]),
                k, batch, n, ptr(scratch),
            )
        else:
            self._kernel.ntt_inverse(
                ptr(buf), ptr(nat["perm"]), ptr(nat["iscale"]), ptr(nat["iscale_sh"]),
                ptr(nat["itw"]), ptr(nat["itw_sh"]), ptr(nat["p"]),
                k, batch, n, ptr(scratch),
            )
        return buf.view(np.int64)

    # -- public transforms ---------------------------------------------------

    def _prepare(self, stack) -> tuple[np.ndarray, bool]:
        arr = np.asarray(stack)
        if arr.dtype != np.int64:
            arr = arr.astype(np.int64)
        squeeze = arr.ndim == 2
        if squeeze:
            arr = arr[:, None, :]
        if arr.ndim != 3 or arr.shape[0] != self.count or arr.shape[2] != self.n:
            raise ValueError(
                f"expected residue stack of shape ({self.count}, batch, {self.n}), "
                f"got {np.asarray(stack).shape}"
            )
        if arr.size:
            # Cheap global scan first; residues of a large-prime limb can
            # legitimately exceed the smallest modulus, so confirm with a
            # per-limb comparison before paying a full reduction.
            primes_col = self._primes_i64[:, None, None]
            if int(arr.min()) < 0 or (
                int(arr.max()) >= self._min_modulus and bool((arr >= primes_col).any())
            ):
                arr = arr % primes_col
        return arr, squeeze

    def _transform(self, stack, forward: bool, count_ops: bool) -> np.ndarray:
        arr, squeeze = self._prepare(stack)
        if self._kernel is not None:
            # Lock-free: the native path uses per-call buffers only.
            out = self._native_transform(arr, forward)
        else:
            # The numpy path runs on shared per-engine plan buffers, and
            # engines are memoized across schemes -- serialise it.
            with self._lock:
                out = self._numpy_transform(arr, forward)
        if count_ops:
            GLOBAL_COUNTERS.add_ntt(self.n, count=arr.shape[0] * arr.shape[1])
        return out[:, 0, :] if squeeze else out

    def forward(self, stack, count_ops: bool = True) -> np.ndarray:
        """Coefficients -> evaluations for a (k, n) or (k, batch, n) stack.

        Row ``(i, ..., j)`` of the output holds ``a_i(psi_i^(2j+1))`` in
        natural order j, matching :meth:`NttContext.forward` bit-exactly.
        """
        return self._transform(stack, forward=True, count_ops=count_ops)

    def inverse(self, stack, count_ops: bool = True) -> np.ndarray:
        """Evaluations -> coefficients; inverse of :meth:`forward`."""
        return self._transform(stack, forward=False, count_ops=count_ops)

    # -- evaluation-domain arithmetic ----------------------------------------

    def pointwise(self, a: np.ndarray, b: np.ndarray, count_ops: bool = True) -> np.ndarray:
        """Element-wise modular product of evaluation-domain stacks."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        col = self._primes_i64.reshape((-1,) + (1,) * (max(a.ndim, b.ndim) - 1))
        result = a * b % col
        if count_ops:
            GLOBAL_COUNTERS.add_modmuls(result.size)
        return result

    def pointwise_accumulate(
        self, a: np.ndarray, b: np.ndarray, count_ops: bool = True
    ) -> np.ndarray:
        """Sum over the batch axis of element-wise products: (k, B, n) -> (k, n).

        This is the key-switching inner loop (digit x key pairs) fused
        into one call; per-product modmul accounting matches running
        :meth:`pointwise` B times.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        products = a * b
        products %= self._primes_i64[:, None, None]
        if count_ops:
            GLOBAL_COUNTERS.add_modmuls(products.size)
        acc = products.sum(axis=1)
        acc %= self._primes_i64[:, None]
        return acc

    def pointwise_accumulate_grouped(
        self, a: np.ndarray, b: np.ndarray, count_ops: bool = True
    ) -> np.ndarray:
        """Per-group :meth:`pointwise_accumulate`: (k, B, T, n) -> (k, B, n).

        The cross-client batching primitive: ``B`` independent ``T``-term
        multiply-accumulate reductions (one per in-flight request) run as
        a single broadcasted modmul plus one grouped sum, instead of ``B``
        separate :meth:`pointwise_accumulate` calls.  ``b`` may be
        ``(k, T, n)`` (weights shared across the batch, the common case)
        or ``(k, B, T, n)`` (per-request operands, e.g. per-client
        key-switch key stacks).  Slice ``[:, i]`` of the result is
        bit-identical to ``pointwise_accumulate(a[:, i], b)`` /
        ``pointwise_accumulate(a[:, i], b[:, i])``.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.ndim != 4:
            raise ValueError(f"expected (k, B, T, n) stack, got {a.shape}")
        if b.ndim == 3:
            b = b[:, None]
        products = a * b
        products %= self._primes_i64[:, None, None, None]
        if count_ops:
            GLOBAL_COUNTERS.add_modmuls(products.size)
        acc = products.sum(axis=2)
        acc %= self._primes_i64[:, None, None]
        return acc

    def negacyclic_multiply(self, a, b) -> np.ndarray:
        """Full negacyclic product of coefficient-domain stacks."""
        a_eval = self.forward(a)
        b_eval = self.forward(b)
        product = self.pointwise(a_eval, b_eval)
        return self.inverse(product)

    def __repr__(self) -> str:
        path = "native" if self.uses_native_kernel else "numpy"
        return f"RnsNttEngine(n={self.n}, k={self.count}, path={path})"
