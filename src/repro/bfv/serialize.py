"""Serialization for parameters, plaintexts and ciphertexts.

The Gazelle protocol ships ciphertexts over the network every layer;
this module provides the wire format: a small JSON header (so the peer
can validate parameter compatibility) followed by little-endian int64
residue data.  Sizes match :func:`repro.protocol.messages.ciphertext_bytes`
up to the header.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from .encoder import Plaintext
from .params import BfvParameters
from .polynomial import Domain, RnsPolynomial
from .rns import RnsBasis
from .scheme import Ciphertext

_MAGIC = b"RPRO"


def params_to_dict(params: BfvParameters) -> dict:
    """JSON-safe description sufficient to reconstruct the parameters."""
    return {
        "n": params.n,
        "plain_modulus": params.plain_modulus,
        "coeff_primes": list(params.coeff_basis.primes),
        "w_dcmp_bits": params.w_dcmp_bits,
        "a_dcmp_bits": params.a_dcmp_bits,
        "sigma": params.sigma,
    }


def params_from_dict(data: dict, require_security: bool = False) -> BfvParameters:
    return BfvParameters(
        n=int(data["n"]),
        plain_modulus=int(data["plain_modulus"]),
        coeff_basis=RnsBasis([int(p) for p in data["coeff_primes"]]),
        w_dcmp_bits=int(data["w_dcmp_bits"]),
        a_dcmp_bits=int(data["a_dcmp_bits"]),
        sigma=float(data["sigma"]),
        require_security=require_security,
    )


def _pack(header: dict, arrays: list[np.ndarray]) -> bytes:
    header_bytes = json.dumps(header, sort_keys=True).encode()
    chunks = [_MAGIC, struct.pack("<I", len(header_bytes)), header_bytes]
    for array in arrays:
        chunks.append(np.ascontiguousarray(array, dtype="<i8").tobytes())
    return b"".join(chunks)


def _unpack(blob: bytes) -> tuple[dict, memoryview]:
    if blob[:4] != _MAGIC:
        raise ValueError("not a repro-serialized object")
    (header_len,) = struct.unpack_from("<I", blob, 4)
    header = json.loads(blob[8 : 8 + header_len].decode())
    return header, memoryview(blob)[8 + header_len :]


def serialize_plaintext(plaintext: Plaintext) -> bytes:
    header = {"kind": "plaintext", "n": int(plaintext.coeffs.shape[0])}
    return _pack(header, [plaintext.coeffs])


def deserialize_plaintext(blob: bytes) -> Plaintext:
    header, body = _unpack(blob)
    if header["kind"] != "plaintext":
        raise ValueError(f"expected plaintext, got {header['kind']!r}")
    coeffs = np.frombuffer(body, dtype="<i8", count=header["n"])
    return Plaintext(coeffs.copy())


def serialize_ciphertext(ct: Ciphertext, params: BfvParameters) -> bytes:
    header = {
        "kind": "ciphertext",
        "n": params.n,
        "limbs": params.coeff_basis.count,
        "params": params_to_dict(params),
    }
    return _pack(header, [ct.c0.data, ct.c1.data])


def deserialize_ciphertext(blob: bytes, params: BfvParameters) -> Ciphertext:
    header, body = _unpack(blob)
    if header["kind"] != "ciphertext":
        raise ValueError(f"expected ciphertext, got {header['kind']!r}")
    if header["params"]["coeff_primes"] != list(params.coeff_basis.primes):
        raise ValueError("ciphertext was produced under different parameters")
    limbs, n = header["limbs"], header["n"]
    count = limbs * n
    c0 = np.frombuffer(body, dtype="<i8", count=count).reshape(limbs, n)
    c1 = np.frombuffer(body[count * 8 :], dtype="<i8", count=count).reshape(limbs, n)
    return Ciphertext(
        RnsPolynomial(params.coeff_basis, c0.copy(), Domain.EVAL),
        RnsPolynomial(params.coeff_basis, c1.copy(), Domain.EVAL),
    )


def ciphertext_wire_bytes(params: BfvParameters) -> int:
    """Exact serialized ciphertext size (data only, excluding header)."""
    return 2 * params.coeff_basis.count * params.n * 8


def serialize_galois_keys(keys, params: BfvParameters) -> bytes:
    """Serialize Galois keys (the client ships these to the cloud once)."""
    from .keys import GaloisKeys

    if not isinstance(keys, GaloisKeys):
        raise TypeError("expected GaloisKeys")
    elements = sorted(keys.keys)
    header = {
        "kind": "galois_keys",
        "n": params.n,
        "limbs": params.coeff_basis.count,
        "elements": elements,
        "pairs_per_key": params.l_ct,
        "base_bits": params.a_dcmp_bits,
        "params": params_to_dict(params),
    }
    arrays = []
    for element in elements:
        for body, a in keys.keys[element].pairs:
            arrays.append(body.data)
            arrays.append(a.data)
    return _pack(header, arrays)


def deserialize_galois_keys(blob: bytes, params: BfvParameters):
    from .keys import GaloisKeys, KeySwitchKey

    header, body = _unpack(blob)
    if header["kind"] != "galois_keys":
        raise ValueError(f"expected galois keys, got {header['kind']!r}")
    if header["params"]["coeff_primes"] != list(params.coeff_basis.primes):
        raise ValueError("keys were produced under different parameters")
    limbs, n = header["limbs"], header["n"]
    count = limbs * n
    offset = 0

    def next_poly() -> RnsPolynomial:
        nonlocal offset
        data = np.frombuffer(body[offset * 8 :], dtype="<i8", count=count)
        offset += count
        return RnsPolynomial(
            params.coeff_basis, data.reshape(limbs, n).copy(), Domain.EVAL
        )

    keys = GaloisKeys()
    for element in header["elements"]:
        pairs = [
            (next_poly(), next_poly()) for _ in range(header["pairs_per_key"])
        ]
        keys.keys[element] = KeySwitchKey(pairs=pairs, base_bits=header["base_bits"])
    return keys
