"""Serialization for parameters, plaintexts, ciphertexts, and Galois keys.

The Gazelle protocol ships ciphertexts over the network every layer; this
module provides the wire format: a small JSON header (so the peer can
validate parameter compatibility) followed by little-endian int64 residue
data.  Sizes match :func:`repro.protocol.messages.ciphertext_bytes` up to
the header.

Deserialization is strict: every header field is validated against the
local parameter set, body lengths are checked before any array is built,
and residues are range-checked against the RNS primes -- a malformed or
truncated blob raises :class:`ValueError` with a reason instead of
silently corrupting polynomials.  (Residue data is read as explicit
little-endian ``<i8``, so blobs are portable across host endianness.)
The header additionally seals the binary body with a CRC-32, so a
bit-flip *inside* an in-range residue -- which every structural check
would wave through and which would therefore decrypt to a different
polynomial -- is rejected too (the property pinned by
``tests/test_serialize_properties.py``).

A round trip through the wire format preserves ciphertexts exactly:

>>> import numpy as np
>>> from repro.bfv import BfvParameters, BfvScheme
>>> params = BfvParameters.create(
...     n=256, plain_bits=18, coeff_bits=60, a_dcmp_bits=12,
...     require_security=False,
... )
>>> scheme = BfvScheme(params, seed=0)
>>> secret, public = scheme.keygen()
>>> ct = scheme.encrypt_values(np.arange(8), public)
>>> restored = deserialize_ciphertext(serialize_ciphertext(ct, params), params)
>>> scheme.decrypt_values(restored, secret, signed=False)[:8].tolist()
[0, 1, 2, 3, 4, 5, 6, 7]

while malformed input fails loudly:

>>> deserialize_ciphertext(b"garbage", params)
Traceback (most recent call last):
    ...
ValueError: not a repro-serialized object
>>> blob = serialize_ciphertext(ct, params)
>>> deserialize_ciphertext(blob[: len(blob) // 2], params)  # doctest: +ELLIPSIS
Traceback (most recent call last):
    ...
ValueError: ciphertext body has ... bytes, expected 8192
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np

from .encoder import Plaintext
from .params import BfvParameters
from .polynomial import Domain, RnsPolynomial
from .rns import RnsBasis
from .scheme import Ciphertext

_MAGIC = b"RPRO"


def params_to_dict(params: BfvParameters) -> dict:
    """JSON-safe description sufficient to reconstruct the parameters."""
    return {
        "n": params.n,
        "plain_modulus": params.plain_modulus,
        "coeff_primes": list(params.coeff_basis.primes),
        "w_dcmp_bits": params.w_dcmp_bits,
        "a_dcmp_bits": params.a_dcmp_bits,
        "sigma": params.sigma,
    }


def params_from_dict(data: dict, require_security: bool = False) -> BfvParameters:
    """Inverse of :func:`params_to_dict`."""
    return BfvParameters(
        n=int(data["n"]),
        plain_modulus=int(data["plain_modulus"]),
        coeff_basis=RnsBasis([int(p) for p in data["coeff_primes"]]),
        w_dcmp_bits=int(data["w_dcmp_bits"]),
        a_dcmp_bits=int(data["a_dcmp_bits"]),
        sigma=float(data["sigma"]),
        require_security=require_security,
    )


def _pack(header: dict, arrays: list[np.ndarray]) -> bytes:
    body = b"".join(
        np.ascontiguousarray(array, dtype="<i8").tobytes() for array in arrays
    )
    # Seal the body: length + CRC-32 travel inside the (JSON-validated)
    # header, so any single-byte body corruption fails the checksum and
    # any truncation/extension fails the length comparison downstream.
    header = {**header, "body_bytes": len(body), "crc32": zlib.crc32(body)}
    header_bytes = json.dumps(header, sort_keys=True).encode()
    return b"".join(
        [_MAGIC, struct.pack("<I", len(header_bytes)), header_bytes, body]
    )


def _unpack(blob: bytes) -> tuple[dict, memoryview]:
    if len(blob) < 8 or blob[:4] != _MAGIC:
        raise ValueError("not a repro-serialized object")
    (header_len,) = struct.unpack_from("<I", blob, 4)
    if 8 + header_len > len(blob):
        raise ValueError(
            f"truncated blob: header claims {header_len} bytes, "
            f"{len(blob) - 8} available"
        )
    try:
        header = json.loads(blob[8 : 8 + header_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed serialization header: {exc}") from exc
    if not isinstance(header, dict) or "kind" not in header:
        raise ValueError("serialization header missing 'kind'")
    body = memoryview(blob)[8 + header_len :]
    declared, crc = header.get("body_bytes"), header.get("crc32")
    if not isinstance(declared, int) or not isinstance(crc, int):
        raise ValueError("serialization header missing integrity fields")
    # A size mismatch is left to the kind-specific body checks (their
    # errors name the expected size); when sizes agree, the checksum is
    # what catches in-range residue corruption.
    if len(body) == declared and zlib.crc32(body) != crc:
        raise ValueError(
            f"{header['kind']} body fails its CRC-32 (corrupted blob)"
        )
    return header, body


def _expect_kind(header: dict, kind: str) -> None:
    if header["kind"] != kind:
        raise ValueError(f"expected {kind}, got {header['kind']!r}")


def _check_body_size(body: memoryview, count: int, what: str) -> None:
    """Require the binary body to hold exactly ``count`` int64 values."""
    if len(body) != count * 8:
        raise ValueError(
            f"{what} body has {len(body)} bytes, expected {count * 8}"
        )


def _read_residues(
    body: memoryview, offset_values: int, params: BfvParameters, what: str
) -> np.ndarray:
    """Read one (limbs, n) residue stack, validating the value ranges.

    Out-of-range residues would be silently reduced by the NTT engine's
    input normalisation -- i.e. a corrupt blob would *decrypt to garbage*
    rather than fail -- so range violations are rejected here.
    """
    limbs, n = params.coeff_basis.count, params.n
    count = limbs * n
    data = np.frombuffer(
        body, dtype="<i8", count=count, offset=offset_values * 8
    ).reshape(limbs, n)
    if (data < 0).any() or (data >= params.coeff_basis.primes_column).any():
        raise ValueError(f"{what} contains residues outside [0, p_i)")
    return data.astype(np.int64, copy=True)


def _header_matches_params(header: dict, params: BfvParameters, what: str) -> None:
    if header.get("params", {}).get("coeff_primes") != list(params.coeff_basis.primes):
        raise ValueError(f"{what} was produced under different parameters")
    if int(header.get("n", -1)) != params.n:
        raise ValueError(
            f"{what} header n={header.get('n')} does not match params n={params.n}"
        )
    if int(header.get("limbs", -1)) != params.coeff_basis.count:
        raise ValueError(
            f"{what} header limbs={header.get('limbs')} does not match "
            f"params limbs={params.coeff_basis.count}"
        )


def serialize_plaintext(plaintext: Plaintext) -> bytes:
    header = {"kind": "plaintext", "n": int(plaintext.coeffs.shape[0])}
    return _pack(header, [plaintext.coeffs])


def deserialize_plaintext(blob: bytes) -> Plaintext:
    header, body = _unpack(blob)
    _expect_kind(header, "plaintext")
    n = int(header["n"])
    if n <= 0:
        raise ValueError(f"plaintext header has invalid n={n}")
    _check_body_size(body, n, "plaintext")
    coeffs = np.frombuffer(body, dtype="<i8", count=n)
    return Plaintext(coeffs.copy())


def serialize_ciphertext(ct: Ciphertext, params: BfvParameters) -> bytes:
    header = {
        "kind": "ciphertext",
        "n": params.n,
        "limbs": params.coeff_basis.count,
        "params": params_to_dict(params),
    }
    return _pack(header, [ct.c0.data, ct.c1.data])


def deserialize_ciphertext(blob: bytes, params: BfvParameters) -> Ciphertext:
    header, body = _unpack(blob)
    _expect_kind(header, "ciphertext")
    _header_matches_params(header, params, "ciphertext")
    count = params.coeff_basis.count * params.n
    _check_body_size(body, 2 * count, "ciphertext")
    c0 = _read_residues(body, 0, params, "ciphertext c0")
    c1 = _read_residues(body, count, params, "ciphertext c1")
    return Ciphertext(
        RnsPolynomial(params.coeff_basis, c0, Domain.EVAL),
        RnsPolynomial(params.coeff_basis, c1, Domain.EVAL),
    )


def ciphertext_wire_bytes(params: BfvParameters) -> int:
    """Exact serialized ciphertext size (data only, excluding header)."""
    return 2 * params.coeff_basis.count * params.n * 8


def serialize_galois_keys(keys, params: BfvParameters) -> bytes:
    """Serialize Galois keys (the client ships these to the cloud once)."""
    from .keys import GaloisKeys

    if not isinstance(keys, GaloisKeys):
        raise TypeError("expected GaloisKeys")
    elements = sorted(keys.keys)
    header = {
        "kind": "galois_keys",
        "n": params.n,
        "limbs": params.coeff_basis.count,
        "elements": elements,
        "pairs_per_key": params.l_ct,
        "base_bits": params.a_dcmp_bits,
        "params": params_to_dict(params),
    }
    arrays = []
    for element in elements:
        pairs = keys.keys[element].pairs
        if len(pairs) != params.l_ct:
            raise ValueError(
                f"key for element {element} has {len(pairs)} pairs, "
                f"expected l_ct={params.l_ct}"
            )
        for body, a in pairs:
            arrays.append(body.data)
            arrays.append(a.data)
    return _pack(header, arrays)


def deserialize_galois_keys(blob: bytes, params: BfvParameters):
    from .keys import GaloisKeys, KeySwitchKey

    header, body = _unpack(blob)
    _expect_kind(header, "galois_keys")
    _header_matches_params(header, params, "galois keys")
    if int(header.get("base_bits", -1)) != params.a_dcmp_bits:
        raise ValueError(
            f"galois keys use decomposition base 2^{header.get('base_bits')}, "
            f"params expect 2^{params.a_dcmp_bits}"
        )
    pairs_per_key = int(header.get("pairs_per_key", 0))
    if pairs_per_key != params.l_ct:
        raise ValueError(
            f"galois keys carry {pairs_per_key} pairs per key, "
            f"params expect l_ct={params.l_ct}"
        )
    elements = [int(element) for element in header["elements"]]
    two_n = 2 * params.n
    for element in elements:
        if not (0 < element < two_n) or element % 2 == 0:
            raise ValueError(f"invalid Galois element {element} (n={params.n})")
    count = params.coeff_basis.count * params.n
    _check_body_size(body, len(elements) * pairs_per_key * 2 * count, "galois keys")
    offset = 0

    def next_poly(what: str) -> RnsPolynomial:
        nonlocal offset
        data = _read_residues(body, offset, params, what)
        offset += count
        return RnsPolynomial(params.coeff_basis, data, Domain.EVAL)

    keys = GaloisKeys()
    for element in elements:
        pairs = [
            (
                next_poly(f"galois key {element} body"),
                next_poly(f"galois key {element} a"),
            )
            for _ in range(pairs_per_key)
        ]
        keys.keys[element] = KeySwitchKey(pairs=pairs, base_bits=header["base_bits"])
    return keys
