"""Key material for the BFV scheme: secret, public, and Galois keys.

Galois (rotation) keys are key-switching keys with base-``Adcmp`` digit
decomposition: one pair of polynomials per digit.  The decomposition base
is the ``Adcmp`` parameter HE-PTune tunes (Table II); larger bases mean
fewer digits (cheaper HE_Rotate) but more additive noise per rotation
(Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .polynomial import RnsPolynomial


@dataclass
class SecretKey:
    """Ternary secret polynomial, kept in both domains."""

    coeffs: np.ndarray  # signed small coefficients, shape (n,)
    eval_poly: RnsPolynomial  # evaluation-domain residues


@dataclass
class PublicKey:
    """Encryption key pair (p0, p1) = (-(a s + e), a), evaluation domain."""

    p0: RnsPolynomial
    p1: RnsPolynomial


@dataclass
class KeySwitchKey:
    """Key switching key from a foreign secret s' to the canonical s.

    ``pairs[i]`` encrypts ``Adcmp**i * s'`` under s:
    ``(-(a_i s + e_i) + Adcmp**i s', a_i)``.
    """

    pairs: list[tuple[RnsPolynomial, RnsPolynomial]]
    base_bits: int
    _stacks: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    def stacks(self, depth: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(body, a)`` digit stacks of shape ``(k, depth, n)``.

        The key-switch inner loop multiplies every ciphertext digit
        against these same pairs on every rotation; stacking them once
        per key (instead of per rotation) keeps the hot path free of
        repeated small-array copies.
        """
        if self._stacks is None or self._stacks[0].shape[1] < depth:
            body = np.stack([body.data for body, _ in self.pairs], axis=1)
            a = np.stack([a.data for _, a in self.pairs], axis=1)
            self._stacks = (body, a)
        body, a = self._stacks
        return body[:, :depth], a[:, :depth]


@dataclass
class GaloisKeys:
    """Key-switching keys per Galois element, for HE_Rotate."""

    keys: dict[int, KeySwitchKey] = field(default_factory=dict)

    def key_for(self, galois_elt: int) -> KeySwitchKey:
        try:
            return self.keys[galois_elt]
        except KeyError:
            raise KeyError(
                f"no Galois key for element {galois_elt}; generate it with "
                "BfvScheme.generate_galois_keys"
            ) from None

    def __contains__(self, galois_elt: int) -> bool:
        return galois_elt in self.keys
