"""BFV parameter set (Table II of the paper).

``BfvParameters`` bundles the five tunable parameters HE-PTune explores --
ring dimension n, plaintext modulus t, ciphertext modulus q, plaintext
(weight) decomposition base Wdcmp and ciphertext (activation)
decomposition base Adcmp -- plus the fixed encryption noise deviation
sigma.  Derived quantities (delta = floor(q/t), digit counts l_pt and
l_ct, noise-budget capacity) are computed here so every other module
shares one definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .modmath import generate_plain_modulus
from .rns import RnsBasis
from .security import estimated_security_level, is_secure

#: Standard deviation of the encryption noise (fixed per Table II).
DEFAULT_SIGMA = 3.19

#: Noise bound B = 6 * sigma used throughout the paper's noise models.
def noise_bound(sigma: float = DEFAULT_SIGMA) -> float:
    return 6.0 * sigma


@dataclass(frozen=True)
class BfvParameters:
    """A concrete, instantiable BFV parameter set.

    Parameters
    ----------
    n:
        Polynomial degree / ciphertext slot count (power of two).
    plain_modulus:
        Prime t with t = 1 mod 2n (enables batching).
    coeff_basis:
        RNS basis whose product is the ciphertext modulus q.
    w_dcmp_bits:
        log2 of the plaintext (weight) decomposition base Wdcmp.  The
        Gazelle baseline windows weights; Cheetah's Sched-PA avoids
        plaintext decomposition entirely (l_pt = 1).
    a_dcmp_bits:
        log2 of the ciphertext (activation) decomposition base Adcmp used
        by HE_Rotate key switching.
    sigma:
        Encryption noise standard deviation.
    """

    n: int
    plain_modulus: int
    coeff_basis: RnsBasis
    w_dcmp_bits: int = 20
    a_dcmp_bits: int = 10
    sigma: float = DEFAULT_SIGMA
    require_security: bool = field(default=True)

    def __post_init__(self):
        if self.n & (self.n - 1):
            raise ValueError(f"n must be a power of two, got {self.n}")
        if (self.plain_modulus - 1) % (2 * self.n):
            raise ValueError("plain modulus must satisfy t = 1 mod 2n")
        if self.w_dcmp_bits < 1 or self.a_dcmp_bits < 1:
            raise ValueError("decomposition bases must be at least 2 (1 bit)")
        if self.require_security and not is_secure(self.n, self.coeff_bits):
            raise ValueError(
                f"(n={self.n}, log q={self.coeff_bits}) fails 128-bit security"
            )

    @classmethod
    def create(
        cls,
        n: int,
        plain_bits: int = 20,
        coeff_bits: int = 54,
        w_dcmp_bits: int = 20,
        a_dcmp_bits: int = 10,
        require_security: bool = True,
    ) -> "BfvParameters":
        """Convenience constructor from bit sizes."""
        plain_modulus = generate_plain_modulus(plain_bits, n)
        basis = RnsBasis.for_bit_budget(coeff_bits, n)
        return cls(
            n=n,
            plain_modulus=plain_modulus,
            coeff_basis=basis,
            w_dcmp_bits=w_dcmp_bits,
            a_dcmp_bits=a_dcmp_bits,
            require_security=require_security,
        )

    @property
    def coeff_modulus(self) -> int:
        """Ciphertext modulus q."""
        return self.coeff_basis.modulus

    @property
    def coeff_bits(self) -> int:
        return self.coeff_basis.bits

    @property
    def delta(self) -> int:
        """Plaintext scaling factor floor(q / t)."""
        return self.coeff_modulus // self.plain_modulus

    @property
    def w_dcmp(self) -> int:
        """Plaintext decomposition base Wdcmp."""
        return 1 << self.w_dcmp_bits

    @property
    def a_dcmp(self) -> int:
        """Ciphertext decomposition base Adcmp."""
        return 1 << self.a_dcmp_bits

    @property
    def l_pt(self) -> int:
        """Number of plaintext digits: ceil(log_Wdcmp t)."""
        return max(1, math.ceil(self.plain_modulus.bit_length() / self.w_dcmp_bits))

    @property
    def l_ct(self) -> int:
        """Number of ciphertext digits: ceil(log_Adcmp q)."""
        return max(1, math.ceil(self.coeff_bits / self.a_dcmp_bits))

    @property
    def slot_count(self) -> int:
        return self.n

    @property
    def row_size(self) -> int:
        """Slots per batching row (SEAL-style 2 x n/2 slot matrix)."""
        return self.n // 2

    @property
    def noise_capacity_bits(self) -> float:
        """log2(q / 2t): the total noise budget of a noiseless ciphertext."""
        return math.log2(self.coeff_modulus / (2 * self.plain_modulus))

    @property
    def security_level(self) -> int:
        return estimated_security_level(self.n, self.coeff_bits)

    def describe(self) -> str:
        return (
            f"BFV(n={self.n}, log t={self.plain_modulus.bit_length()}, "
            f"log q={self.coeff_bits}, Wdcmp=2^{self.w_dcmp_bits}, "
            f"Adcmp=2^{self.a_dcmp_bits}, l_pt={self.l_pt}, l_ct={self.l_ct}, "
            f"sec={self.security_level})"
        )
