"""Modular arithmetic primitives for the BFV substrate.

Provides deterministic Miller-Rabin primality testing, generation of
NTT-friendly primes (p = 1 mod 2n, required for negacyclic NTTs and for
batch encoding), primitive roots of unity, and a scalar Barrett reducer
mirroring the reduction strategy the paper assumes (five integer
multiplications per modular multiplication, Section IV-A).

Vectorised kernels in :mod:`repro.bfv.ntt` use numpy's native ``%`` for
speed; the Barrett reducer here documents and tests the exact algorithm
the op-count accounting is based on.
"""

from __future__ import annotations

import numpy as np

# Witnesses sufficient for deterministic Miller-Rabin below 3.3e24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(candidate: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit integers."""
    if candidate < 2:
        return False
    for small in _MR_WITNESSES:
        if candidate == small:
            return True
        if candidate % small == 0:
            return False
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MR_WITNESSES:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = x * x % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_ntt_primes(bit_size: int, n: int, count: int) -> list[int]:
    """Return ``count`` distinct primes of ``bit_size`` bits with p = 1 mod 2n.

    Primes are searched downward from 2**bit_size so the largest candidates
    (maximal noise budget for the bit size) are preferred, matching how HE
    libraries provision coefficient moduli.
    """
    if n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    modulus_step = 2 * n
    candidate = (1 << bit_size) - modulus_step + 1
    candidate -= (candidate - 1) % modulus_step
    primes: list[int] = []
    while len(primes) < count:
        if candidate < (1 << (bit_size - 1)):
            raise ValueError(
                f"exhausted {bit_size}-bit primes with p = 1 mod {modulus_step}"
            )
        if is_prime(candidate):
            primes.append(candidate)
        candidate -= modulus_step
    return primes


def generate_plain_modulus(bit_size: int, n: int) -> int:
    """Return the largest ``bit_size``-bit prime t with t = 1 mod 2n.

    The congruence enables batch (SIMD slot) encoding, Section III-B of the
    paper.
    """
    return generate_ntt_primes(bit_size, n, 1)[0]


def primitive_root(modulus: int) -> int:
    """Find the smallest primitive root of a prime modulus."""
    if not is_prime(modulus):
        raise ValueError(f"{modulus} is not prime")
    order = modulus - 1
    factors = _prime_factors(order)
    for generator in range(2, modulus):
        if all(pow(generator, order // f, modulus) != 1 for f in factors):
            return generator
    raise ValueError(f"no primitive root found for {modulus}")


def root_of_unity(order: int, modulus: int) -> int:
    """Return a primitive ``order``-th root of unity modulo a prime."""
    if (modulus - 1) % order:
        raise ValueError(f"{modulus} has no {order}-th root of unity")
    generator = primitive_root(modulus)
    root = pow(generator, (modulus - 1) // order, modulus)
    # The construction guarantees root**order == 1; primitivity follows from
    # the generator having full order, but verify the half-order to be safe.
    if pow(root, order // 2, modulus) == 1:
        raise ValueError("root is not primitive")
    return root


def _prime_factors(value: int) -> list[int]:
    factors = []
    divisor = 2
    while divisor * divisor <= value:
        if value % divisor == 0:
            factors.append(divisor)
            while value % divisor == 0:
                value //= divisor
        divisor += 1
    if value > 1:
        factors.append(value)
    return factors


def invmod(value: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended-gcd pow."""
    return pow(value, -1, modulus)


def centered(values: np.ndarray, modulus: int) -> np.ndarray:
    """Map residues in [0, modulus) to the centered range (-m/2, m/2]."""
    values = np.asarray(values, dtype=object)
    half = modulus // 2
    return np.where(values > half, values - modulus, values)


class BarrettReducer:
    """Scalar Barrett reduction for a fixed modulus.

    Computes ``x mod m`` without division, using the precomputed factor
    ``mu = floor(2**(2k) / m)``.  A modular multiplication through this
    reducer costs five integer multiplications (the product itself plus the
    reduction), which is exactly the constant HE-PTune's performance model
    charges per modular multiplication (Section IV-A).
    """

    def __init__(self, modulus: int):
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        self.modulus = modulus
        self.shift = 2 * modulus.bit_length()
        self.mu = (1 << self.shift) // modulus

    def reduce(self, value: int) -> int:
        """Reduce ``value`` (< modulus**2) modulo the modulus."""
        quotient = (value * self.mu) >> self.shift
        remainder = value - quotient * self.modulus
        if remainder >= self.modulus:
            remainder -= self.modulus
        return remainder

    def mulmod(self, a: int, b: int) -> int:
        """Modular multiplication: 1 product + Barrett reduction."""
        return self.reduce(a * b)
