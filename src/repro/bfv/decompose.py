"""Polynomial decomposition (Section III-B2 of the paper).

Two decompositions appear in Cheetah:

* **Ciphertext (activation) decomposition**, base ``Adcmp``: HE_Rotate's
  key switching splits the big-integer coefficients of a ciphertext
  polynomial into ``l_ct = ceil(log_Adcmp q)`` small digit polynomials so
  the keyswitch noise grows additively in ``Adcmp`` instead of ``q``.
* **Plaintext (weight) windowing**, base ``Wdcmp``: the Gazelle baseline
  splits weights into ``l_pt = ceil(log_Wdcmp t)`` windows (the client
  supplies matching scaled ciphertexts) so HE_Mult noise grows with
  ``Wdcmp`` instead of ``t``.  Sched-PA eliminates this entirely.
"""

from __future__ import annotations

import math

import numpy as np


def digit_count(modulus: int, base_bits: int) -> int:
    """Number of base-2**base_bits digits covering values below modulus."""
    return max(1, math.ceil(modulus.bit_length() / base_bits))


def digit_decompose(coeffs: np.ndarray, base_bits: int, num_digits: int) -> list[np.ndarray]:
    """Split nonnegative big-integer coefficients into base-B digits.

    Returns ``num_digits`` arrays with entries in [0, 2**base_bits), least
    significant digit first, satisfying ``sum_i digits[i] << (i*base_bits)
    == coeffs``.
    """
    coeffs = np.asarray(coeffs, dtype=object)
    mask = (1 << base_bits) - 1
    digits = []
    remaining = coeffs.copy()
    for _ in range(num_digits):
        digits.append(remaining & mask)
        remaining = remaining >> base_bits
    if np.any(remaining != 0):
        raise ValueError("coefficients exceed the representable digit range")
    return digits


def digit_compose(digits: list[np.ndarray], base_bits: int) -> np.ndarray:
    """Inverse of :func:`digit_decompose`."""
    total = np.zeros_like(np.asarray(digits[0], dtype=object))
    for i, digit in enumerate(digits):
        total = total + (np.asarray(digit, dtype=object) << (i * base_bits))
    return total


def window_weights(values: np.ndarray, base_bits: int, num_windows: int, modulus: int) -> list[np.ndarray]:
    """Gazelle-style plaintext windowing of weight values mod t.

    Splits each weight ``w`` into windows ``w_i < Wdcmp`` with
    ``w = sum_i w_i * Wdcmp^i (mod t)``; the homomorphic product is then
    reassembled as ``sum_i w_i * Enc(x * Wdcmp^i)``.
    """
    values = np.asarray(values, dtype=object) % modulus
    return [digit.astype(object) for digit in
            (np.asarray(d, dtype=object) for d in digit_decompose_windows(values, base_bits, num_windows))]


def digit_decompose_windows(values: np.ndarray, base_bits: int, num_windows: int) -> list[np.ndarray]:
    """Digit split that tolerates leftover high bits in the final window.

    Unlike :func:`digit_decompose` this never raises: the most significant
    window absorbs any residual bits (the residual is below Wdcmp whenever
    ``num_windows >= digit_count(t, base_bits)``, which callers ensure).
    """
    values = np.asarray(values, dtype=object)
    mask = (1 << base_bits) - 1
    windows = []
    remaining = values.copy()
    for index in range(num_windows):
        if index == num_windows - 1:
            windows.append(remaining)
        else:
            windows.append(remaining & mask)
            remaining = remaining >> base_bits
    return windows
