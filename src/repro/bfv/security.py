"""RLWE security estimation for BFV parameter selection.

HE-PTune's design-space exploration must reject parameter sets that are
fast but insecure.  We use the homomorphic-encryption-standard table of
maximum coefficient-modulus bits per ring dimension at fixed security
levels (ternary secret, sigma = 3.2), the same reference SEAL and Gazelle
provision from.  Between table entries the maximum log q scales linearly
in n, which is the first-order behaviour of lattice-estimator output.
"""

from __future__ import annotations

# HE standard (2018): max log2(q) for ternary-secret RLWE at each ring
# dimension and classical security level.
_MAX_LOGQ = {
    128: {1024: 27, 2048: 54, 4096: 109, 8192: 218, 16384: 438, 32768: 881},
    192: {1024: 19, 2048: 37, 4096: 75, 8192: 152, 16384: 305, 32768: 611},
    256: {1024: 14, 2048: 29, 4096: 58, 8192: 118, 16384: 237, 32768: 476},
}

SUPPORTED_SECURITY_LEVELS = tuple(sorted(_MAX_LOGQ))


def max_coeff_modulus_bits(n: int, security_level: int = 128) -> int:
    """Maximum total log2(q) for ring dimension n at a security level."""
    try:
        table = _MAX_LOGQ[security_level]
    except KeyError:
        raise ValueError(
            f"security level must be one of {SUPPORTED_SECURITY_LEVELS}"
        ) from None
    if n in table:
        return table[n]
    if n < min(table) or n > max(table):
        raise ValueError(f"ring dimension {n} outside supported range")
    # log q budget is linear in n to first order; interpolate between the
    # bracketing powers of two.
    lower = max(size for size in table if size < n)
    upper = min(size for size in table if size > n)
    fraction = (n - lower) / (upper - lower)
    return int(table[lower] + fraction * (table[upper] - table[lower]))


def is_secure(n: int, coeff_modulus_bits: int, security_level: int = 128) -> bool:
    """True if (n, log q) meets the requested classical security level."""
    return coeff_modulus_bits <= max_coeff_modulus_bits(n, security_level)


def estimated_security_level(n: int, coeff_modulus_bits: int) -> int:
    """Best standard security level met by (n, log q); 0 if below 128.

    Dimensions outside the standard's table (e.g. toy test rings) are
    reported as insecure rather than raising.
    """
    for level in sorted(_MAX_LOGQ, reverse=True):
        try:
            if is_secure(n, coeff_modulus_bits, level):
                return level
        except ValueError:
            return 0
    return 0
