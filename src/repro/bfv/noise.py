"""Invariant noise budget measurement (SEAL-compatible semantics).

The paper's entire tuning story revolves around the *remaining noise
budget* of a ciphertext: ``log2(q / 2t) - log2(|v|)`` where v is the noise
term in ``c0 + c1 s = Delta m + v (mod q)``.  SEAL exposes this as the
invariant noise budget; HE-PTune validates its analytical noise model
against it (Section IV-B).  We reproduce the same measurement over our
own scheme so model-vs-measured comparisons are apples to apples.
"""

from __future__ import annotations

import math

import numpy as np

from .keys import SecretKey
from .scheme import BfvScheme, Ciphertext


def invariant_noise_budget(
    scheme: BfvScheme, ct: Ciphertext, secret: SecretKey
) -> float:
    """Remaining noise budget in bits; <= 0 means decryption may fail.

    Computes ``w = c0 + c1 s mod q``, scales by t, and measures how far
    ``t w`` sits from the nearest multiple of q.  The budget is
    ``log2(q) - log2(2 |t w mod q|_centered)``, identical to SEAL's
    ``invariant_noise_budget``.
    """
    magnitude = noise_magnitude(scheme, ct, secret)
    q = scheme.params.coeff_modulus
    if magnitude == 0:
        return scheme.params.noise_capacity_bits
    return math.log2(q) - math.log2(2 * magnitude)


def noise_magnitude(scheme: BfvScheme, ct: Ciphertext, secret: SecretKey) -> int:
    """Infinity norm of the scaled invariant noise ``t (c0 + c1 s) mod q``."""
    w = scheme._raw_decrypt(ct, secret)
    q = scheme.params.coeff_modulus
    t = scheme.params.plain_modulus
    tw = (w * t) % q
    half = q // 2
    centered = np.where(tw > half, q - tw, tw)
    return int(max(int(v) for v in centered))


def noise_bits(scheme: BfvScheme, ct: Ciphertext, secret: SecretKey) -> float:
    """log2 of the (unscaled) noise magnitude |v| where w = Delta m + v."""
    magnitude = noise_magnitude(scheme, ct, secret)
    t = scheme.params.plain_modulus
    if magnitude == 0:
        return 0.0
    # tw mod q = t*v + rounding skew; |v| ~ magnitude / t.
    return max(0.0, math.log2(magnitude) - math.log2(t))


def decryption_correct(
    scheme: BfvScheme,
    ct: Ciphertext,
    secret: SecretKey,
    expected_slots: np.ndarray,
) -> bool:
    """True if the ciphertext decrypts to the expected slot values."""
    decoded = scheme.decrypt_values(ct, secret)
    expected = np.asarray(expected_slots, dtype=np.int64)
    t = scheme.params.plain_modulus
    return bool(np.all(decoded[: expected.shape[0]] % t == expected % t))
