"""From-scratch BFV homomorphic encryption substrate.

This package implements everything Cheetah's experiments need from an HE
library (the paper used Microsoft SEAL 2.3.1): RNS modular arithmetic,
negacyclic NTTs, batch encoding, pt-ct multiplication, rotations with
base-decomposed key switching, and invariant noise budget measurement.
"""

from .counters import GLOBAL_COUNTERS, OpCounters, counting
from .encoder import BatchEncoder, Plaintext
from .keys import GaloisKeys, KeySwitchKey, PublicKey, SecretKey
from .modmath import generate_ntt_primes, generate_plain_modulus, is_prime
from .noise import decryption_correct, invariant_noise_budget, noise_bits
from .ntt import NttContext
from .ntt_batch import RnsNttEngine, get_context, get_engine
from .params import BfvParameters, DEFAULT_SIGMA, noise_bound
from .polynomial import Domain, RnsPolynomial
from .rns import RnsBasis
from .scheme import (
    BfvScheme,
    Ciphertext,
    EvalPlaintext,
    HoistedCiphertext,
    HoistedGroup,
)
from .security import is_secure, max_coeff_modulus_bits

__all__ = [
    "GLOBAL_COUNTERS",
    "OpCounters",
    "counting",
    "BatchEncoder",
    "Plaintext",
    "GaloisKeys",
    "KeySwitchKey",
    "PublicKey",
    "SecretKey",
    "generate_ntt_primes",
    "generate_plain_modulus",
    "is_prime",
    "decryption_correct",
    "invariant_noise_budget",
    "noise_bits",
    "NttContext",
    "RnsNttEngine",
    "get_context",
    "get_engine",
    "BfvParameters",
    "DEFAULT_SIGMA",
    "noise_bound",
    "Domain",
    "RnsPolynomial",
    "RnsBasis",
    "BfvScheme",
    "Ciphertext",
    "EvalPlaintext",
    "HoistedCiphertext",
    "HoistedGroup",
    "is_secure",
    "max_coeff_modulus_bits",
]
