/* Batched negacyclic NTT kernel: radix-2 DIT with 64-bit Shoup lazy reduction.
 *
 * Compiled on demand by repro.bfv.native (plain `cc -O3 -shared -fPIC`);
 * the engine in repro.bfv.ntt_batch falls back to its vectorised numpy
 * kernels whenever no C compiler is available.  Both paths compute
 * bit-identical results: values are kept lazily in [0, 4p) between
 * butterfly stages (Harvey's bound) and fully reduced into [0, p) once at
 * the end, so the final residues match the reference NttContext exactly.
 */
#include <stdint.h>
#include <string.h>

typedef unsigned __int128 u128;

static inline uint64_t mulhi64(uint64_t a, uint64_t b) {
    return (uint64_t)(((u128)a * b) >> 64);
}

/* Shoup lazy product: x*w mod p in [0, 2p), with wsh = floor(w * 2^64 / p). */
static inline uint64_t shoup_mul(uint64_t x, uint64_t w, uint64_t wsh, uint64_t p) {
    uint64_t q = mulhi64(x, wsh);
    return x * w - q * p;
}

/* Forward transform of a (k, B, n) residue stack, in place.
 *
 * perm:        bit-reversal permutation, length n
 * psi/psi_sh:  (k, n) psi-power premultiply tables, stored in perm order
 * tw/tw_sh:    (k, n-1) stage twiddles, stage s at offset 2^s - 1
 * p_arr:       (k) moduli (< 2^30 so the lazy bound 4p stays far from 2^64)
 * scratch:     (n) workspace shared across rows
 */
void ntt_forward(uint64_t *data, const int64_t *perm,
                 const uint64_t *psi, const uint64_t *psi_sh,
                 const uint64_t *tw, const uint64_t *tw_sh,
                 const uint64_t *p_arr, long k, long B, long n,
                 uint64_t *scratch) {
    for (long i = 0; i < k; ++i) {
        const uint64_t p = p_arr[i];
        const uint64_t twop = 2 * p;
        const uint64_t *psi_i = psi + i * n;
        const uint64_t *psi_sh_i = psi_sh + i * n;
        const uint64_t *tw_i = tw + i * (n - 1);
        const uint64_t *tw_sh_i = tw_sh + i * (n - 1);
        for (long b = 0; b < B; ++b) {
            uint64_t *row = data + (i * B + b) * n;
            memcpy(scratch, row, n * sizeof(uint64_t));
            /* bit-reverse gather fused with the psi premultiply -> [0, 2p) */
            for (long j = 0; j < n; ++j)
                row[j] = shoup_mul(scratch[perm[j]], psi_i[j], psi_sh_i[j], p);
            /* DIT stages, Harvey lazy: values stay in [0, 4p) */
            for (long half = 1; half < n; half <<= 1) {
                const uint64_t *w = tw_i + (half - 1);
                const uint64_t *wsh = tw_sh_i + (half - 1);
                for (long block = 0; block < n; block += 2 * half) {
                    uint64_t *even = row + block;
                    uint64_t *odd = even + half;
                    for (long j = 0; j < half; ++j) {
                        uint64_t x = even[j];
                        if (x >= twop) x -= twop;
                        uint64_t t = shoup_mul(odd[j], w[j], wsh[j], p);
                        even[j] = x + t;
                        odd[j] = x + twop - t;
                    }
                }
            }
            /* single deferred reduction into [0, p) */
            for (long j = 0; j < n; ++j) {
                uint64_t x = row[j];
                if (x >= twop) x -= twop;
                if (x >= p) x -= p;
                row[j] = x;
            }
        }
    }
}

/* Inverse transform: DIT stages with inverse twiddles, then one fused
 * multiply by n^-1 * psi^-j (iscale tables), natural order output. */
void ntt_inverse(uint64_t *data, const int64_t *perm,
                 const uint64_t *iscale, const uint64_t *iscale_sh,
                 const uint64_t *tw, const uint64_t *tw_sh,
                 const uint64_t *p_arr, long k, long B, long n,
                 uint64_t *scratch) {
    for (long i = 0; i < k; ++i) {
        const uint64_t p = p_arr[i];
        const uint64_t twop = 2 * p;
        const uint64_t *sc_i = iscale + i * n;
        const uint64_t *sc_sh_i = iscale_sh + i * n;
        const uint64_t *tw_i = tw + i * (n - 1);
        const uint64_t *tw_sh_i = tw_sh + i * (n - 1);
        for (long b = 0; b < B; ++b) {
            uint64_t *row = data + (i * B + b) * n;
            memcpy(scratch, row, n * sizeof(uint64_t));
            for (long j = 0; j < n; ++j)
                row[j] = scratch[perm[j]];
            for (long half = 1; half < n; half <<= 1) {
                const uint64_t *w = tw_i + (half - 1);
                const uint64_t *wsh = tw_sh_i + (half - 1);
                for (long block = 0; block < n; block += 2 * half) {
                    uint64_t *even = row + block;
                    uint64_t *odd = even + half;
                    for (long j = 0; j < half; ++j) {
                        uint64_t x = even[j];
                        if (x >= twop) x -= twop;
                        uint64_t t = shoup_mul(odd[j], w[j], wsh[j], p);
                        even[j] = x + t;
                        odd[j] = x + twop - t;
                    }
                }
            }
            for (long j = 0; j < n; ++j) {
                uint64_t x = shoup_mul(row[j] >= twop ? row[j] - twop : row[j],
                                       sc_i[j], sc_sh_i[j], p);
                if (x >= p) x -= p;
                row[j] = x;
            }
        }
    }
}
