"""Mapping DNN layers onto the accelerator (Section VIII-A).

"Each layer is represented as the number of input/output ciphertexts and
partials per output ciphertext.  The simulator then maps and multiplexes
the number of output neuron ciphertexts to available PEs and partials to
lanes."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.perf_model import layer_op_counts
from ..core.ptune import ModelParams
from ..nn.layers import ConvLayer, FCLayer, LinearLayer


@dataclass(frozen=True)
class LayerMapping:
    """Ciphertext-level workload of one layer on the accelerator."""

    layer_name: str
    in_cts: int
    out_cts: int
    partials_per_ct: int

    @property
    def total_partials(self) -> int:
        return self.out_cts * self.partials_per_ct


def map_layer(layer: LinearLayer, params: ModelParams, l_pt: int = 1) -> LayerMapping:
    """Derive (input CTs, output CTs, partials per output CT) for a layer."""
    n = params.n
    ops = layer_op_counts(layer, params, l_pt)
    if isinstance(layer, ConvLayer):
        w2 = layer.he_w * layer.he_w
        in_cts = max(1, math.ceil(layer.ci * w2 / n))
        out_cts = max(1, math.ceil(layer.co * w2 / n))
    elif isinstance(layer, FCLayer):
        in_cts = max(1, math.ceil(layer.ni / n))
        out_cts = max(1, math.ceil(layer.no / n))
    else:
        raise TypeError(f"not a linear layer: {layer!r}")
    partials_per_ct = max(1, math.ceil(ops.he_mult / out_cts))
    return LayerMapping(
        layer_name=layer.name,
        in_cts=in_cts,
        out_cts=out_cts,
        partials_per_ct=partials_per_ct,
    )


def map_network(
    layers: list[LinearLayer], params_per_layer: list[ModelParams], l_pt: int = 1
) -> list[LayerMapping]:
    if len(layers) != len(params_per_layer):
        raise ValueError("one parameter set per layer required")
    return [
        map_layer(layer, params, l_pt)
        for layer, params in zip(layers, params_per_layer)
    ]


def mean_out_cts(mappings: list[LayerMapping]) -> float:
    """Average output ciphertexts per layer (Table VI 'Out CT' column)."""
    return sum(m.out_cts for m in mappings) / len(mappings)


def mean_partials(mappings: list[LayerMapping]) -> float:
    """Average partials per output ciphertext (Table VI 'Prt' column)."""
    return sum(m.partials_per_ct for m in mappings) / len(mappings)
