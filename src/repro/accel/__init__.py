"""Cheetah accelerator architecture model: kernel cost models + DSE
(Fig. 10), lane/PE architecture (Fig. 9), whole-accelerator simulation
and design space exploration (Fig. 11, Table VI), technology scaling."""

from . import tech
from .dse import (
    DseResult,
    GeneralityRow,
    LANE_SWEEP,
    PE_SWEEP,
    accelerator_dse,
    generality_study,
)
from .kernels import (
    KERNEL_NAMES,
    KernelCost,
    KernelDesign,
    evaluate_kernel,
    kernel_design_space,
    kernel_dse,
    kernel_work,
    speedup_over_cpu,
)
from .mapper import LayerMapping, map_layer, map_network, mean_out_cts, mean_partials
from .pareto import pareto_front, sort_by
from .pe import LaneCost, LaneDesign, PeCost, PeDesign, evaluate_lane, evaluate_pe
from .simulator import AcceleratorConfig, AcceleratorReport, simulate

__all__ = [
    "tech",
    "DseResult",
    "GeneralityRow",
    "LANE_SWEEP",
    "PE_SWEEP",
    "accelerator_dse",
    "generality_study",
    "KERNEL_NAMES",
    "KernelCost",
    "KernelDesign",
    "evaluate_kernel",
    "kernel_design_space",
    "kernel_dse",
    "kernel_work",
    "speedup_over_cpu",
    "LayerMapping",
    "map_layer",
    "map_network",
    "mean_out_cts",
    "mean_partials",
    "pareto_front",
    "sort_by",
    "LaneCost",
    "LaneDesign",
    "PeCost",
    "PeDesign",
    "evaluate_lane",
    "evaluate_pe",
    "AcceleratorConfig",
    "AcceleratorReport",
    "simulate",
]
