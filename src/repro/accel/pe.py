"""Lane and PE cost models (Figure 9 of the paper).

A **Lane** is the partial-product engine: SIMD multipliers for the two
ciphertext polynomials, then the HE_Rotate pipeline (Swap, INTT,
Decompose, parallel NTTs, key SIMD multiplies, Compose).  Lanes within a
PE run in lockstep sharing twiddle SRAMs; a **PE** owns a set of lanes, a
partial-reduction network of SIMD adders, and input/weight/output
ciphertext SRAMs, operating output-stationary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from . import tech
from .kernels import KernelCost, KernelDesign, evaluate_kernel


@dataclass(frozen=True)
class LaneDesign:
    """Microarchitecture of one partial-processing lane.

    ``ntt_parallel`` instantiates that many NTT units for the
    decomposed-digit transforms ("the NTT activation decomposition factor
    Adcmp introduces a parameterizable degree of inter-NTT parallelism",
    Section VII-A2).
    """

    n: int
    l_ct: int
    ntt_unroll: int = 4
    simd_unroll: int = 4
    ntt_parallel: int = 1

    def kernel_designs(self) -> dict[str, KernelDesign]:
        return {
            "simd_mult": KernelDesign("simd_mult", self.simd_unroll),
            "simd_add": KernelDesign("simd_add", self.simd_unroll),
            "swap": KernelDesign("swap", self.simd_unroll),
            "intt": KernelDesign("intt", self.ntt_unroll),
            "ntt": KernelDesign("ntt", self.ntt_unroll),
            "decompose": KernelDesign("decompose", self.simd_unroll),
            "compose": KernelDesign("compose", self.simd_unroll),
        }


@dataclass
class LaneCost:
    """Evaluated per-partial cost of a lane (40 nm)."""

    design: LaneDesign
    stage_latencies: dict[str, float]
    energy_per_partial: float
    area_mm2: float
    area_breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def fill_latency(self) -> float:
        """Time for one partial to traverse the whole lane."""
        return sum(self.stage_latencies.values())

    @property
    def interval(self) -> float:
        """Steady-state time between partial completions (bottleneck stage)."""
        return max(self.stage_latencies.values())

    def time_breakdown_per_partial(self) -> dict[str, float]:
        return dict(self.stage_latencies)


def evaluate_lane(design: LaneDesign) -> LaneCost:
    """Cost one lane: stage latencies, energy per partial, silicon area."""
    n, l_ct = design.n, design.l_ct
    kd = design.kernel_designs()
    costs: dict[str, KernelCost] = {
        name: evaluate_kernel(d, n, l_ct) for name, d in kd.items()
    }

    ntt_rounds = math.ceil(l_ct / design.ntt_parallel)
    stage_latencies = {
        # Both ciphertext polynomials multiply the weight plaintext.
        "weight_mult": 2 * costs["simd_mult"].latency_s,
        "swap": costs["swap"].latency_s,
        "intt": costs["intt"].latency_s,
        "decompose": costs["decompose"].latency_s,
        "ntt": ntt_rounds * costs["ntt"].latency_s,
        # Each digit multiplies both key-switching key polynomials.
        "key_mult": 2 * l_ct * costs["simd_mult"].latency_s / max(1, design.ntt_parallel),
        "compose": costs["compose"].latency_s,
        "reduce_add": costs["simd_add"].latency_s,
    }

    energy = (
        2 * costs["simd_mult"].energy_j  # weight multiplies
        + costs["swap"].energy_j
        + costs["intt"].energy_j
        + costs["decompose"].energy_j
        + l_ct * costs["ntt"].energy_j
        + 2 * l_ct * costs["simd_mult"].energy_j  # key multiplies
        + costs["compose"].energy_j
        + costs["simd_add"].energy_j
    )

    ntt_area = costs["intt"].area_mm2 + design.ntt_parallel * costs["ntt"].area_mm2
    simd_area = (
        costs["simd_mult"].area_mm2 * (1 + design.ntt_parallel)
        + costs["swap"].area_mm2
        + costs["decompose"].area_mm2
        + costs["compose"].area_mm2
        + costs["simd_add"].area_mm2
    )
    # Inter-stage streaming buffers: partial polys between the 4 SRAM-backed
    # stage boundaries of Figure 9c.
    buffer_area = tech.sram_area_mm2(4 * n, banks=design.simd_unroll * 2)
    area_breakdown = {
        "ntt": ntt_area,
        "compute": simd_area,
        "lane_sram": buffer_area,
    }
    return LaneCost(
        design=design,
        stage_latencies=stage_latencies,
        energy_per_partial=energy,
        area_mm2=ntt_area + simd_area + buffer_area,
        area_breakdown=area_breakdown,
    )


@dataclass(frozen=True)
class PeDesign:
    """A processing engine: lanes plus local ciphertext storage."""

    lane: LaneDesign
    lanes: int
    input_ct_words: int  # capacity to hold all input ciphertexts locally


@dataclass
class PeCost:
    """Evaluated cost of one PE (40 nm)."""

    design: PeDesign
    lane_cost: LaneCost
    area_mm2: float
    area_breakdown: dict[str, float]

    @property
    def lanes(self) -> int:
        return self.design.lanes


def evaluate_pe(design: PeDesign) -> PeCost:
    lane_cost = evaluate_lane(design.lane)
    n = design.lane.n
    lanes_area = design.lanes * lane_cost.area_mm2
    # Input CT SRAM needs bandwidth for every lane; weight and output CT
    # SRAMs are small ("a relatively small SRAM for weights").
    input_sram = tech.sram_area_mm2(design.input_ct_words, banks=design.lanes)
    weight_sram = tech.sram_area_mm2(n, banks=max(1, design.lanes // 4))
    output_sram = tech.sram_area_mm2(4 * n, banks=4)
    # Partial reduction network: one SIMD adder per lane pair.
    reduction_area = (
        max(1, design.lanes - 1)
        * design.lane.simd_unroll
        * tech.MODADD_AREA_MM2
    )
    breakdown = {
        "ntt": design.lanes * lane_cost.area_breakdown["ntt"],
        "compute": design.lanes * lane_cost.area_breakdown["compute"] + reduction_area,
        "lane_sram": design.lanes * lane_cost.area_breakdown["lane_sram"],
        "pe_sram": input_sram + weight_sram + output_sram,
    }
    total = sum(breakdown.values())
    return PeCost(
        design=design, lane_cost=lane_cost, area_mm2=total, area_breakdown=breakdown
    )
