"""Accelerator-level design space exploration (Figures 10 and 11, Table VI).

Sweeps PEs (2-1024) and lanes per PE (4-8192) over a tuned network,
extracts the power-latency Pareto frontier, selects the design meeting a
target latency (the paper's 100 ms plaintext-equivalent point), and
evaluates cross-model generality by running other networks on a fixed
design.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.baselines import cheetah_configuration
from ..nn.models import Network
from .mapper import map_layer, mean_out_cts, mean_partials
from .pareto import pareto_front, sort_by
from .simulator import AcceleratorConfig, AcceleratorReport, simulate

#: The paper's sweep bounds (Section VIII-A).
PE_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
LANE_SWEEP = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Cap on total lanes to keep sweeps tractable (beyond this, designs are
#: deep in the diminishing-returns regime the paper labels impractical).
MAX_TOTAL_LANES = 1 << 16


@dataclass
class DseResult:
    """All evaluated designs plus the power-latency Pareto frontier."""

    reports: list[AcceleratorReport]
    pareto: list[AcceleratorReport]

    def select_for_latency(self, target_s: float) -> AcceleratorReport:
        """Cheapest Pareto design meeting the latency target.

        Falls back to the fastest design when nothing meets the target.
        """
        meeting = [r for r in self.pareto if r.latency_s <= target_s]
        if meeting:
            return min(meeting, key=lambda r: r.power_w_40nm)
        return min(self.pareto, key=lambda r: r.latency_s)


def accelerator_dse(
    tuned_layers,
    pe_sweep=PE_SWEEP,
    lane_sweep=LANE_SWEEP,
    ntt_unroll: int = 4,
) -> DseResult:
    """Sweep (PEs, lanes) and return all points plus the Pareto frontier."""
    reports = []
    for pes in pe_sweep:
        for lanes in lane_sweep:
            if pes * lanes > MAX_TOTAL_LANES:
                continue
            config = AcceleratorConfig(
                num_pes=pes, lanes_per_pe=lanes, ntt_unroll=ntt_unroll
            )
            reports.append(simulate(tuned_layers, config))
    front = pareto_front(
        reports, objectives=lambda r: (r.latency_s, r.power_w_40nm)
    )
    return DseResult(reports=reports, pareto=sort_by(front, lambda r: r.latency_s))


@dataclass
class GeneralityRow:
    """One row of Table VI."""

    model: str
    latency_ms: float
    increase_pct: float
    pes: int
    lanes: int
    mean_out_cts_thousands: float
    mean_partials: float


def generality_study(
    networks: list[Network],
    host_network: Network,
    target_latency_s: float = 0.1,
) -> list[GeneralityRow]:
    """Table VI: run each model on the host model's optimal accelerator.

    The host network's Pareto design (selected for the latency target) is
    fixed; every other model runs on it and is compared against its own
    ideal design at equal PE*lane budget.
    """
    host_tuned = cheetah_configuration(host_network).tuned_layers
    host_dse = accelerator_dse(host_tuned)
    host_design = host_dse.select_for_latency(target_latency_s)
    budget = host_design.config.num_pes * host_design.config.lanes_per_pe

    rows = []
    for network in networks:
        tuned = cheetah_configuration(network).tuned_layers
        on_host = simulate(tuned, host_design.config)
        ideal = _best_config_at_budget(tuned, budget)
        increase = 100.0 * (on_host.latency_s - ideal.latency_s) / ideal.latency_s
        mappings = [map_layer(t.layer, t.params) for t in tuned]
        rows.append(
            GeneralityRow(
                model=network.name,
                latency_ms=on_host.latency_ms,
                increase_pct=max(0.0, increase),
                pes=ideal.config.num_pes,
                lanes=ideal.config.lanes_per_pe,
                mean_out_cts_thousands=mean_out_cts(mappings) / 1e3,
                mean_partials=mean_partials(mappings),
            )
        )
    return rows


def _best_config_at_budget(tuned_layers, budget: int) -> AcceleratorReport:
    """Fastest (PEs, lanes) split of a fixed total-lane budget."""
    best: AcceleratorReport | None = None
    for pes in PE_SWEEP:
        lanes = budget // pes
        if lanes < 4 or lanes > max(LANE_SWEEP):
            continue
        report = simulate(
            tuned_layers, AcceleratorConfig(num_pes=pes, lanes_per_pe=lanes)
        )
        if best is None or report.latency_s < best.latency_s:
            best = report
    if best is None:
        raise ValueError(f"no feasible split of budget {budget}")
    return best
