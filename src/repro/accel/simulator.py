"""Whole-accelerator performance / power / area simulator (Section VIII).

Takes a tuned network (per-layer HE parameters from HE-PTune), an
accelerator configuration (PE count, lanes per PE, lane microarchitecture)
and produces latency, power and area with the run-time and area
breakdowns of Figure 11.  Output ciphertexts multiplex over PEs; partials
multiplex over lanes; per-layer latencies accumulate because activations
round-trip to the client between layers (Section VIII-A: "the overall
performance of a full inference is modeled on a per-layer granularity").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.ptune import TunedLayer
from . import tech
from .mapper import LayerMapping, map_layer
from .pe import LaneCost, LaneDesign, PeCost, PeDesign, evaluate_lane, evaluate_pe


@dataclass(frozen=True)
class AcceleratorConfig:
    """One point of the PE/lane design space."""

    num_pes: int
    lanes_per_pe: int
    ntt_unroll: int = 4
    simd_unroll: int = 4
    ntt_parallel: int = 1


@dataclass
class LayerSimResult:
    mapping: LayerMapping
    latency_s: float
    energy_j: float
    lane_utilization: float
    pe_utilization: float
    io_seconds: float
    time_breakdown: dict[str, float] = field(default_factory=dict)


@dataclass
class AcceleratorReport:
    """Aggregate simulation result for one accelerator configuration."""

    config: AcceleratorConfig
    latency_s: float
    energy_j: float
    area_mm2_40nm: float
    area_breakdown_40nm: dict[str, float]
    time_breakdown: dict[str, float]
    io_seconds: float
    layer_results: list[LayerSimResult]
    batch: int = 1

    @property
    def throughput_per_s(self) -> float:
        """Inferences per second (batching amortizes pipeline fills)."""
        return self.batch / self.latency_s

    @property
    def power_w_40nm(self) -> float:
        dynamic = self.energy_j / self.latency_s
        leakage = tech.LEAKAGE_W_PER_MM2 * self.area_mm2_40nm
        return dynamic + leakage

    @property
    def power_w_5nm(self) -> float:
        return tech.scale_power_to_5nm(self.power_w_40nm)

    @property
    def area_mm2_5nm(self) -> float:
        return tech.scale_area_to_5nm(self.area_mm2_40nm)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def io_utilization(self) -> float:
        return self.io_seconds / self.latency_s if self.latency_s else 0.0

    def area_breakdown_5nm(self) -> dict[str, float]:
        return {
            key: tech.scale_area_to_5nm(value)
            for key, value in self.area_breakdown_40nm.items()
        }


def _representative_lane(tuned_layers: list[TunedLayer], config: AcceleratorConfig) -> LaneDesign:
    """Size the lane for the largest (n, l_ct) any layer requires.

    Hardware is provisioned once; smaller layers underutilise it, which
    is exactly the generality effect Table VI quantifies.
    """
    n = max(t.params.n for t in tuned_layers)
    l_ct = max(t.params.l_ct for t in tuned_layers)
    return LaneDesign(
        n=n,
        l_ct=l_ct,
        ntt_unroll=config.ntt_unroll,
        simd_unroll=config.simd_unroll,
        ntt_parallel=config.ntt_parallel,
    )


def simulate(
    tuned_layers: list[TunedLayer], config: AcceleratorConfig, batch: int = 1
) -> AcceleratorReport:
    """Simulate one accelerator configuration over a tuned network.

    Silicon is provisioned for the largest (n, l_ct) any layer uses;
    layers with smaller polynomials stream through the same datapath in
    proportionally fewer cycles, so per-layer timing and energy use a
    lane cost evaluated at that layer's own parameters.

    ``batch > 1`` processes several inferences back to back through each
    layer wave, amortizing the lane pipeline fill (throughput mode for
    datacenter serving).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    lane_design = _representative_lane(tuned_layers, config)
    max_in_words = max(
        map_layer(t.layer, t.params).in_cts * 2 * t.params.n for t in tuned_layers
    )
    pe_cost: PeCost = evaluate_pe(
        PeDesign(lane=lane_design, lanes=config.lanes_per_pe, input_ct_words=max_in_words)
    )
    # Global streaming IO buffer (small; communication only).
    io_buffer_area = tech.sram_area_mm2(8 * lane_design.n, banks=8)

    lane_cache: dict[tuple[int, int], LaneCost] = {}
    total_latency = 0.0
    total_energy = 0.0
    total_io = 0.0
    time_breakdown: dict[str, float] = {}
    layer_results = []
    for tuned in tuned_layers:
        key = (tuned.params.n, tuned.params.l_ct)
        lane_cost = lane_cache.get(key)
        if lane_cost is None:
            lane_cost = evaluate_lane(
                LaneDesign(
                    n=tuned.params.n,
                    l_ct=tuned.params.l_ct,
                    ntt_unroll=config.ntt_unroll,
                    simd_unroll=config.simd_unroll,
                    ntt_parallel=config.ntt_parallel,
                )
            )
            lane_cache[key] = lane_cost
        result = _simulate_layer(tuned, config, lane_cost, batch)
        layer_results.append(result)
        total_latency += result.latency_s
        total_energy += result.energy_j
        total_io += result.io_seconds
        for stage, seconds in result.time_breakdown.items():
            time_breakdown[stage] = time_breakdown.get(stage, 0.0) + seconds

    area_breakdown = {
        key: config.num_pes * value for key, value in pe_cost.area_breakdown.items()
    }
    area_breakdown["io"] = io_buffer_area
    return AcceleratorReport(
        config=config,
        latency_s=total_latency,
        energy_j=total_energy,
        area_mm2_40nm=sum(area_breakdown.values()),
        area_breakdown_40nm=area_breakdown,
        time_breakdown=time_breakdown,
        io_seconds=total_io,
        layer_results=layer_results,
        batch=batch,
    )


def _simulate_layer(
    tuned: TunedLayer, config: AcceleratorConfig, lane: LaneCost, batch: int = 1
) -> LayerSimResult:
    mapping = map_layer(tuned.layer, tuned.params)
    lanes = config.lanes_per_pe
    pes = config.num_pes

    waves = math.ceil(mapping.out_cts / pes)
    chunk = batch * math.ceil(mapping.partials_per_ct / lanes)
    # One wave: fill the lane pipeline once, then one partial per interval
    # per lane; the reduction tree drains in log2(lanes) add steps.
    reduction = math.ceil(math.log2(max(2, lanes))) * lane.stage_latencies["reduce_add"]
    wave_latency = lane.fill_latency + max(0, chunk - 1) * lane.interval + reduction
    latency = waves * wave_latency

    total_partials = batch * mapping.total_partials
    energy = total_partials * lane.energy_per_partial

    # Streaming IO: input and output ciphertexts cross the PCIe-like link.
    ct_bytes = 2 * tuned.params.n * tech.WORD_BITS / 8
    io_seconds = (
        batch * (mapping.in_cts + mapping.out_cts) * ct_bytes / tech.IO_BANDWIDTH_BYTES
    )

    lane_util = batch * mapping.partials_per_ct / (chunk * lanes)
    pe_util = mapping.out_cts / (waves * pes)

    share = {}
    per_partial = lane.time_breakdown_per_partial()
    partial_total = sum(per_partial.values())
    for stage, seconds in per_partial.items():
        share[stage] = latency * (seconds / partial_total)
    return LayerSimResult(
        mapping=mapping,
        latency_s=latency,
        energy_j=energy,
        lane_utilization=lane_util,
        pe_utilization=pe_util,
        io_seconds=io_seconds,
        time_breakdown=share,
    )
