"""Pareto-frontier extraction for design-space exploration results."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Sequence[T],
    objectives: Callable[[T], tuple[float, ...]],
) -> list[T]:
    """Return the subset of ``points`` not dominated on any objective.

    All objectives are minimised.  A point dominates another if it is no
    worse on every objective and strictly better on at least one.
    """
    evaluated = [(objectives(p), p) for p in points]
    front = []
    for values, point in evaluated:
        dominated = False
        for other_values, _ in evaluated:
            if other_values == values:
                continue
            if all(o <= v for o, v in zip(other_values, values)) and any(
                o < v for o, v in zip(other_values, values)
            ):
                dominated = True
                break
        if not dominated:
            front.append(point)
    return front


def sort_by(points: list[T], key: Callable[[T], float]) -> list[T]:
    return sorted(points, key=key)
