"""Technology constants and scaling (Section VIII-A).

Datapath and SRAM constants are calibrated to 40 nm standard-cell
characteristics at the paper's 400 MHz synthesis target; whole-chip
results scale to 5 nm with the paper's own published factors (0.056x
power, 0.038x area, combined from 40->16 nm [42,43,61,63] and
16->5 nm [56,65]).

The SRAM bit-density model captures the paper's key observation that the
128x60-bit SRAMs required for extreme NTT bandwidth have ~2.5x worse bit
density than 1024x60 arrays, which is what blows up area at the extreme
low-latency Pareto points (Figure 11c).
"""

from __future__ import annotations

#: Combined power scaling factor 40 nm -> 5 nm (paper Section VIII-A).
POWER_SCALE_40_TO_5 = 0.056

#: Combined area scaling factor 40 nm -> 5 nm.
AREA_SCALE_40_TO_5 = 0.038

#: Synthesis clock target (the paper's Catapult runs).
CLOCK_MHZ = 400.0

# -- 40 nm datapath unit costs (calibrated) -----------------------------------

#: Area of one 60-bit Barrett modular-multiplier datapath, mm^2 (40 nm).
MODMUL_AREA_MM2 = 0.024

#: Energy per 60-bit modular multiplication, joules (40 nm).
MODMUL_ENERGY_J = 32.0e-12

#: Area of one 60-bit modular adder, mm^2 (40 nm).
MODADD_AREA_MM2 = 0.0024

#: Energy per 60-bit modular addition, joules (40 nm).
MODADD_ENERGY_J = 2.2e-12

#: A Harvey butterfly unit: 3 modular multipliers + 2 modular adders.
BUTTERFLY_AREA_MM2 = 3 * MODMUL_AREA_MM2 + 2 * MODADD_AREA_MM2
BUTTERFLY_ENERGY_J = 3 * MODMUL_ENERGY_J + 2 * MODADD_ENERGY_J

#: Leakage power density at 40 nm, watts per mm^2.
LEAKAGE_W_PER_MM2 = 0.015

# -- 40 nm SRAM model ----------------------------------------------------------

#: Bit area of a large (>= 1024-word) SRAM array, mm^2 per bit (40 nm).
SRAM_MM2_PER_BIT_LARGE = 0.5e-6

#: Density penalty of tiny, highly banked arrays (paper: ~2.5x at 128 words).
SRAM_SMALL_ARRAY_PENALTY = 2.5

#: Energy per 60-bit SRAM word access, joules (40 nm).
SRAM_ACCESS_ENERGY_J = 11.0e-12

#: Machine word width of the accelerator datapath.
WORD_BITS = 60

#: Streaming interface bandwidth (PCIe-like), bytes per second.
IO_BANDWIDTH_BYTES = 32.0e9


def sram_area_mm2(words: int, banks: int = 1, word_bits: int = WORD_BITS) -> float:
    """Area of an SRAM of ``words`` words split across ``banks`` banks.

    Splitting into more banks buys bandwidth but shrinks each array; the
    density penalty interpolates from 1.0x (>=1024 words per bank) to
    ~2.5x (<=128 words per bank), matching the paper's observation.
    """
    if words <= 0:
        return 0.0
    banks = max(1, banks)
    words_per_bank = max(1, words // banks)
    if words_per_bank >= 1024:
        penalty = 1.0
    elif words_per_bank <= 128:
        penalty = SRAM_SMALL_ARRAY_PENALTY
    else:
        # Linear interpolation in log2(words per bank) between 128 and 1024.
        span = (10 - _log2(words_per_bank)) / 3.0  # 10=log2(1024), 7=log2(128)
        penalty = 1.0 + (SRAM_SMALL_ARRAY_PENALTY - 1.0) * span
    return words * word_bits * SRAM_MM2_PER_BIT_LARGE * penalty


def _log2(value: int) -> float:
    import math

    return math.log2(value)


def scale_power_to_5nm(power_w_40nm: float) -> float:
    return power_w_40nm * POWER_SCALE_40_TO_5


def scale_area_to_5nm(area_mm2_40nm: float) -> float:
    return area_mm2_40nm * AREA_SCALE_40_TO_5
