"""Per-kernel microarchitecture cost models and design-space exploration.

Each HE kernel (HE_Mult's SIMD multiplier, HE_Add, and HE_Rotate's Swap /
INTT / Decompose / NTT / SIMDMult / Compose stages, Section VIII-A) is
modelled as a parameterised datapath: ``unroll`` parallel functional
units at a given initiation interval, fed by banked SRAM.  Latency, power
and area follow from unit constants in :mod:`repro.accel.tech`; sweeping
the parameters reproduces the kernel Pareto frontiers of Figure 10, which
the accelerator-level DSE consumes as its cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from . import tech

#: Kernel identifiers (HE_Rotate decomposes into its pipeline stages).
KERNEL_NAMES = (
    "ntt",
    "intt",
    "simd_mult",
    "simd_add",
    "swap",
    "decompose",
    "compose",
)


@dataclass(frozen=True)
class KernelWork:
    """Work content of one kernel invocation on an n-word polynomial."""

    primary_ops: int  # butterflies (NTT) or element ops (others)
    sram_words: int  # working-set words buffered inside the kernel
    sram_accesses: int  # word reads+writes per invocation


def kernel_work(kernel: str, n: int, l_ct: int = 1) -> KernelWork:
    """Operation census per kernel invocation (Section IV-A accounting)."""
    log_n = max(1, n.bit_length() - 1)
    if kernel in ("ntt", "intt"):
        butterflies = (n // 2) * log_n
        # Data + twiddle accesses per butterfly: 2 reads, 2 writes, 1 twiddle.
        return KernelWork(butterflies, sram_words=2 * n, sram_accesses=5 * butterflies)
    if kernel == "simd_mult":
        return KernelWork(n, sram_words=0, sram_accesses=2 * n)
    if kernel == "simd_add":
        return KernelWork(n, sram_words=0, sram_accesses=2 * n)
    if kernel == "swap":
        return KernelWork(n, sram_words=n, sram_accesses=2 * n)
    if kernel == "decompose":
        return KernelWork(n * l_ct, sram_words=n, sram_accesses=n * (l_ct + 1))
    if kernel == "compose":
        return KernelWork(n * l_ct, sram_words=n, sram_accesses=n * (l_ct + 1))
    raise ValueError(f"unknown kernel {kernel!r}")


def _unit_costs(kernel: str) -> tuple[float, float]:
    """(area mm^2, energy J) of one functional unit of this kernel."""
    if kernel in ("ntt", "intt"):
        return tech.BUTTERFLY_AREA_MM2, tech.BUTTERFLY_ENERGY_J
    if kernel == "simd_mult":
        return tech.MODMUL_AREA_MM2, tech.MODMUL_ENERGY_J
    if kernel in ("simd_add", "compose"):
        return tech.MODADD_AREA_MM2, tech.MODADD_ENERGY_J
    if kernel in ("swap", "decompose"):
        # Shifts, masks and routing: adder-class logic.
        return tech.MODADD_AREA_MM2, tech.MODADD_ENERGY_J
    raise ValueError(f"unknown kernel {kernel!r}")


@dataclass(frozen=True)
class KernelDesign:
    """One microarchitectural configuration of a kernel."""

    kernel: str
    unroll: int
    ii: int = 1  # initiation interval (cycles between issues per unit)
    clock_mhz: float = tech.CLOCK_MHZ


@dataclass(frozen=True)
class KernelCost:
    """Evaluated 40 nm cost of a kernel design for a given n."""

    design: KernelDesign
    latency_s: float
    area_mm2: float
    energy_j: float  # per invocation

    @property
    def power_w(self) -> float:
        """Average power while streaming back-to-back invocations."""
        dynamic = self.energy_j / self.latency_s
        return dynamic + tech.LEAKAGE_W_PER_MM2 * self.area_mm2


def evaluate_kernel(design: KernelDesign, n: int, l_ct: int = 1) -> KernelCost:
    """Latency / power / area of one kernel design (40 nm)."""
    work = kernel_work(design.kernel, n, l_ct)
    unit_area, unit_energy = _unit_costs(design.kernel)
    cycles = math.ceil(work.primary_ops / design.unroll) * design.ii
    # Pipeline fill: one extra pass of the unit pipeline depth.
    cycles += 8
    latency = cycles / (design.clock_mhz * 1e6)
    # Banked SRAM must feed `unroll` units each cycle.
    bandwidth_words = 5 if design.kernel in ("ntt", "intt") else 2
    banks = max(1, design.unroll * bandwidth_words)
    sram_area = tech.sram_area_mm2(work.sram_words, banks=banks)
    area = design.unroll * unit_area + sram_area
    energy = (
        work.primary_ops * unit_energy
        + work.sram_accesses * tech.SRAM_ACCESS_ENERGY_J
    )
    return KernelCost(design=design, latency_s=latency, area_mm2=area, energy_j=energy)


def kernel_design_space(
    kernel: str, max_unroll: int = 1024, iis: tuple[int, ...] = (1, 2, 4)
) -> list[KernelDesign]:
    """The sweep grid: unroll in powers of two, a few initiation intervals."""
    designs = []
    unroll = 1
    while unroll <= max_unroll:
        for ii in iis:
            designs.append(KernelDesign(kernel=kernel, unroll=unroll, ii=ii))
        unroll *= 2
    return designs


def kernel_dse(kernel: str, n: int, l_ct: int = 1, max_unroll: int = 1024) -> list[KernelCost]:
    """Evaluate the full design space of one kernel (hundreds of points)."""
    return [
        evaluate_kernel(design, n, l_ct)
        for design in kernel_design_space(kernel, max_unroll)
    ]


def speedup_over_cpu(cost: KernelCost, n: int, cpu_seconds_per_op: float) -> float:
    """Kernel speedup vs a software baseline (the Figure 10 y-axis)."""
    work = kernel_work(cost.design.kernel, n)
    cpu_seconds = work.primary_ops * cpu_seconds_per_op
    return cpu_seconds / cost.latency_s
