"""Shape hiding: padded dimensions and null layers (Section II-B).

The Gazelle protocol leaks the number and shape of layers to the client
(it evaluates the nonlinearities).  The paper notes "it is possible to
obscure this information (e.g., pad tensor dimensions and add null
layers), but they are not considered here and left as future work."
This module implements that future work:

* :func:`pad_network` rounds channel/feature counts up to buckets so
  distinct architectures become indistinguishable within a bucket class,
  zero-padding weights so the computed function is unchanged.
* :func:`insert_null_layers` appends identity convolutions (scaled by
  the rescale factor so truncation cancels them) to hide depth.
* :func:`hiding_overhead` quantifies the cost with HE-PTune's
  performance model, so the privacy/performance trade-off is measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.ptune import HePTune
from ..nn.layers import ActivationLayer, ConvLayer, FCLayer
from ..nn.models import Network


def _round_up(value: int, bucket: int) -> int:
    return bucket * math.ceil(value / bucket)


def pad_network(
    network: Network, channel_bucket: int = 16, feature_bucket: int = 128
) -> Network:
    """Round every channel / feature count up to the bucket size.

    The input channel count of the first layer and the final output
    count are preserved (they are inherently public: the client supplies
    the input and reads the output).
    """
    layers: list = []
    linear = network.linear_layers
    previous: ConvLayer | FCLayer | None = None
    previous_padded: ConvLayer | FCLayer | None = None
    for layer in network.layers:
        if isinstance(layer, ConvLayer):
            position = linear.index(layer)
            if position == 0:
                ci = layer.ci  # the client supplies the input; ci is public
            else:
                ci = _round_up(layer.ci, channel_bucket)
            last = position == len(linear) - 1
            co = layer.co if last else _round_up(layer.co, channel_bucket)
            padded_layer = ConvLayer(
                layer.name, w=layer.w, fw=layer.fw, ci=ci, co=co,
                stride=layer.stride, padding=layer.padding,
            )
        elif isinstance(layer, FCLayer):
            position = linear.index(layer)
            if position == 0:
                ni = layer.ni
            elif isinstance(previous, ConvLayer):
                # The flattened input tracks the padded upstream channels.
                pixels = layer.ni // previous.co
                ni = previous_padded.co * pixels
            else:
                ni = _round_up(layer.ni, feature_bucket)
            last = position == len(linear) - 1
            no = layer.no if last else _round_up(layer.no, feature_bucket)
            padded_layer = FCLayer(layer.name, ni=ni, no=no)
        else:
            layers.append(layer)
            continue
        layers.append(padded_layer)
        previous = layer
        previous_padded = padded_layer
    return Network(network.name + "+padded", layers)


def pad_weights(
    network: Network, padded: Network, weights: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Zero-pad a weight dictionary to match a padded network.

    Padded input channels/features multiply zeros contributed by padded
    upstream outputs; padded output channels carry all-zero filters, so
    the computed function restricted to the original outputs is
    unchanged.
    """
    new_weights: dict[str, np.ndarray] = {}
    for original, enlarged in zip(network.linear_layers, padded.linear_layers):
        weight = np.asarray(weights[original.name])
        if isinstance(original, ConvLayer):
            block = np.zeros(
                (enlarged.co, enlarged.ci, enlarged.fw, enlarged.fw), dtype=np.int64
            )
            block[: original.co, : original.ci] = weight
        else:
            block = np.zeros((enlarged.no, enlarged.ni), dtype=np.int64)
            block[: original.no, : original.ni] = weight
        new_weights[original.name] = block
    return new_weights


def insert_null_layers(network: Network, count: int) -> Network:
    """Append identity convolutions that survive fixed-point truncation.

    A null layer is a 1x1 convolution with weight ``2**rescale_bits`` on
    the diagonal: after the protocol's truncation the activations pass
    through unchanged, so depth is hidden at pure compute cost.  Null
    layers are inserted after the last convolutional layer.
    """
    if count < 0:
        raise ValueError("count must be nonnegative")
    convs = network.conv_layers
    if not convs:
        raise ValueError("null layers require at least one convolution")
    last_conv = convs[-1]
    insertion = network.layers.index(last_conv) + 1
    layers = list(network.layers)
    null_layers = []
    for index in range(count):
        null = ConvLayer(
            f"null{index}", w=last_conv.out_w, fw=1,
            ci=last_conv.co, co=last_conv.co,
        )
        null_layers.append(null)
    layers[insertion:insertion] = null_layers
    return Network(network.name + f"+{count}null", layers)


def null_layer_weights(network: Network, rescale_bits: int) -> dict[str, np.ndarray]:
    """Identity (scaled) filters for every null layer in a network."""
    weights = {}
    scale = 1 << rescale_bits
    for layer in network.conv_layers:
        if not layer.name.startswith("null"):
            continue
        block = np.zeros((layer.co, layer.ci, 1, 1), dtype=np.int64)
        for channel in range(layer.co):
            block[channel, channel, 0, 0] = scale
        weights[layer.name] = block
    return weights


@dataclass(frozen=True)
class HidingOverhead:
    """Cost of shape hiding in HE-PTune's integer-mult currency."""

    original_int_mults: int
    hidden_int_mults: int

    @property
    def slowdown(self) -> float:
        return self.hidden_int_mults / self.original_int_mults


def hiding_overhead(network: Network, hidden: Network) -> HidingOverhead:
    """Quantify the hiding cost with per-layer Cheetah tuning."""
    tuner = HePTune()
    original = sum(t.int_mults for t in tuner.tune_network(network))
    padded = sum(t.int_mults for t in tuner.tune_network(hidden))
    return HidingOverhead(original_int_mults=original, hidden_int_mults=padded)
