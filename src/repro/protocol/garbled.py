"""Garbled-circuit simulation for client-side nonlinearities.

In the Gazelle protocol (Section II-A), ReLU and pooling run on the
client inside Yao garbled circuits.  GCs are cheap in compute but cost
communication; since Cheetah "assumes the same communication overheads as
Gazelle", we implement the nonlinearities *functionally* (operating on
masked shares exactly as the real circuit would) and account gates and
transfer bytes with standard half-gates costs, so protocol-level benches
can report the communication the paper holds constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Bits transferred per AND gate under half-gates garbling (2 labels).
HALF_GATES_BITS_PER_AND = 2 * 128

#: Label bits per circuit input wire.
LABEL_BITS = 128


@dataclass
class GcCost:
    """Gate and traffic accounting for one garbled-circuit evaluation."""

    and_gates: int = 0
    input_wires: int = 0

    @property
    def communication_bits(self) -> int:
        return (
            self.and_gates * HALF_GATES_BITS_PER_AND
            + self.input_wires * LABEL_BITS
        )

    @property
    def communication_bytes(self) -> int:
        return (self.communication_bits + 7) // 8

    def __add__(self, other: "GcCost") -> "GcCost":
        return GcCost(
            self.and_gates + other.and_gates,
            self.input_wires + other.input_wires,
        )


def relu_circuit_cost(elements: int, bit_width: int) -> GcCost:
    """Gate census of the masked-ReLU circuit per Section II-A.

    Per element the circuit performs: subtraction of the cloud's additive
    mask (bit_width AND gates for the ripple borrow), the sign comparison
    (bit_width), the zero-mux (bit_width), and re-masking addition
    (bit_width): ~4 * bit_width AND gates.
    """
    per_element = 4 * bit_width
    return GcCost(
        and_gates=elements * per_element,
        input_wires=2 * elements * bit_width,  # masked value + mask share
    )


def maxpool_circuit_cost(elements: int, pool_size: int, bit_width: int) -> GcCost:
    """Max-pool over pool_size^2 windows: comparator tree per output."""
    comparators = pool_size * pool_size - 1
    per_element = comparators * 3 * bit_width + 2 * bit_width  # cmps + un/re-mask
    return GcCost(
        and_gates=elements * per_element,
        input_wires=elements * pool_size * pool_size * bit_width,
    )


class GarbledEvaluator:
    """Functional stand-in for the client's GC evaluation.

    Operates on additively masked values in Z_t exactly as the garbled
    circuit would: unmask with the cloud's r, apply the nonlinearity over
    the *signed* representative, re-mask with the cloud's s.
    """

    def __init__(self, plain_modulus: int, bit_width: int):
        self.plain_modulus = plain_modulus
        self.bit_width = bit_width
        self.total_cost = GcCost()

    def _signed(self, values: np.ndarray) -> np.ndarray:
        t = self.plain_modulus
        values = np.asarray(values, dtype=object) % t
        return np.where(values > t // 2, values - t, values)

    def masked_relu(
        self, masked: np.ndarray, unmask: np.ndarray, remask: np.ndarray
    ) -> np.ndarray:
        """relu(masked - unmask) + remask, all mod t."""
        t = self.plain_modulus
        masked = np.asarray(masked, dtype=object)
        actual = self._signed((masked - unmask) % t)
        activated = np.where(actual > 0, actual, 0)
        self.total_cost = self.total_cost + relu_circuit_cost(
            int(np.asarray(masked).size), self.bit_width
        )
        return ((activated + remask) % t).astype(object)

    def masked_maxpool(
        self,
        masked: np.ndarray,
        unmask: np.ndarray,
        remask: np.ndarray,
        pool_size: int,
    ) -> np.ndarray:
        """Channel-wise max pool on masked (ci, w, w) tensors, mod t."""
        t = self.plain_modulus
        actual = self._signed((np.asarray(masked, dtype=object) - unmask) % t)
        ci, w, _ = actual.shape
        out_w = w // pool_size
        trimmed = actual[:, : out_w * pool_size, : out_w * pool_size]
        blocks = trimmed.reshape(ci, out_w, pool_size, out_w, pool_size)
        pooled = np.maximum.reduce(
            [
                blocks[:, :, i, :, j]
                for i in range(pool_size)
                for j in range(pool_size)
            ]
        )
        self.total_cost = self.total_cost + maxpool_circuit_cost(
            ci * out_w * out_w, pool_size, self.bit_width
        )
        return (pooled + remask) % t
