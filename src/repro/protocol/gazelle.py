"""The Gazelle HE-GC hybrid inference protocol (Section II-A).

Functional two-party simulation over the live BFV substrate:

1. The client encrypts its activations and sends them to the cloud.
2. The cloud evaluates one linear layer homomorphically (Sched-PA or
   Sched-IA), adds a uniform random mask r to every output, and returns
   the masked ciphertexts.
3. The client decrypts masked pre-activations; the garbled circuit
   (functionally simulated, gates accounted) removes r, applies
   ReLU/pooling and fixed-point truncation, and re-masks with the
   cloud's s.
4. The client re-encrypts the masked activations; the cloud subtracts s
   homomorphically and proceeds with the next linear layer.

Decryption at each layer boundary resets the HE noise budget, which is
how Gazelle (and Cheetah) sidestep deep-network noise accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bfv.noise import invariant_noise_budget
from ..bfv.params import BfvParameters
from ..bfv.scheme import BfvScheme
from ..core.noise_model import Schedule
from ..nn.layers import ActivationLayer, ConvLayer, FCLayer
from ..nn.models import Network
from ..scheduling.fc import pack_fc_input
from ..scheduling.layouts import pack_image, unpack_image
from ..scheduling.plan import compile_linear_plan
from .garbled import GarbledEvaluator, GcCost
from .messages import TrafficLog, ciphertext_bytes


@dataclass
class ProtocolResult:
    """Output and cost accounting of one private inference."""

    logits: np.ndarray
    traffic: TrafficLog
    gc_cost: GcCost
    min_noise_budget: float


class GazelleProtocol:
    """Run private inference for a small network end to end.

    Supports strided and padded convolutions (padding is applied
    client-side before packing, strides are lowered by subsampling the
    dense output), ReLU, max/avg pooling, and FC layers -- enough to
    express LeNet-style models at live-HE scale.  The client and cloud
    roles share this process but interact only through ciphertexts,
    masked tensors, and the (simulated) garbled circuit.

    Every linear layer is compiled once at construction into a
    :class:`~repro.scheduling.plan.ConvPlan` / ``FcPlan`` (offline weight
    encoding, hoisted/grouped rotations), so repeated ``run`` calls reuse
    the encoded weights and the Galois key set is exactly the union of
    the plans' rotation steps.
    """

    def __init__(
        self,
        network: Network,
        weights: dict[str, np.ndarray],
        params: BfvParameters,
        schedule: Schedule = Schedule.PARTIAL_ALIGNED,
        rescale_bits: int = 6,
        seed: int = 0,
    ):
        self.network = network
        self.weights = weights
        self.schedule = schedule
        self.rescale_bits = rescale_bits
        self.scheme = BfvScheme(params, seed=seed)
        self.secret, self.public = self.scheme.keygen()
        self.rng = np.random.default_rng(seed + 1)
        self.plans = {
            layer.name: compile_linear_plan(
                self.scheme, layer, weights[layer.name], schedule
            )
            for layer in network.linear_layers
        }
        steps: set[int] = set()
        for plan in self.plans.values():
            steps.update(plan.rotation_steps)
        self.galois_keys = self.scheme.generate_galois_keys(
            self.secret, sorted(steps)
        )

    # -- protocol run -------------------------------------------------------

    def run(self, image: np.ndarray) -> ProtocolResult:
        """Private inference on a (ci, w, w) integer input tensor."""
        t = self.scheme.params.plain_modulus
        traffic = TrafficLog()
        evaluator = GarbledEvaluator(t, bit_width=t.bit_length())
        min_budget = float(self.scheme.params.noise_capacity_bits)

        current = np.asarray(image, dtype=np.int64)
        layers = list(self.network.layers)
        index = 0
        while index < len(layers):
            layer = layers[index]
            if isinstance(layer, (ConvLayer, FCLayer)):
                # Cloud: homomorphic linear layer on freshly encrypted input.
                masked, mask, budget = self._cloud_linear_layer(
                    layer, current, traffic
                )
                min_budget = min(min_budget, budget)
                # Client + GC: unmask, nonlinearities, truncate, re-mask.
                index += 1
                post_ops: list[ActivationLayer] = []
                while index < len(layers) and isinstance(layers[index], ActivationLayer):
                    post_ops.append(layers[index])
                    index += 1
                current = self._client_gc_stage(masked, mask, post_ops, evaluator)
            else:
                raise TypeError(
                    f"activation layer {layer.name!r} without preceding linear layer"
                )
        return ProtocolResult(
            logits=current,
            traffic=traffic,
            gc_cost=evaluator.total_cost,
            min_noise_budget=min_budget,
        )

    # -- cloud side ----------------------------------------------------------

    def _cloud_linear_layer(self, layer, activations, traffic):
        scheme = self.scheme
        params = scheme.params
        t = params.plain_modulus
        if isinstance(layer, ConvLayer):
            plan = self.plans[layer.name]
            grid_w = plan.grid_w
            # Client-side padding before packing, exactly as conv2d_he_small:
            # the HE schedule always computes the dense valid convolution of
            # the (padded) image; strides are lowered by masking/subsampling
            # only every stride-th output slot below.
            if layer.padding:
                pad = layer.padding
                activations = np.pad(
                    activations, ((0, 0), (pad, pad), (pad, pad))
                )
            ci, w, _ = activations.shape
            if w > grid_w:
                raise ValueError(
                    f"{layer.name}: padded {w}x{w} image exceeds the "
                    f"{grid_w}x{grid_w} packing grid"
                )
            grids = np.zeros((ci, grid_w, grid_w), dtype=np.int64)
            grids[:, :w, :w] = activations
            cts = [
                scheme.encrypt(
                    scheme.encoder.encode_row(pack_image(grid)), self.public
                )
                for grid in grids
            ]
            traffic.send_to_cloud(len(cts) * ciphertext_bytes(params), layer.name)
            out_cts = plan.execute(cts, self.galois_keys)
            # Blind the whole slot row before anything leaves the cloud:
            # the schedule computes valid outputs across the entire packing
            # grid (not just the image's dense block), and a stride > 1
            # discards positions after decryption -- any slot left unmasked
            # would hand the client a clean linear equation in the model
            # weights.  The client then reads the dense block and
            # subsamples it by the stride.
            dense_w = w - layer.fw + 1
            masked_cts, mask, budget = self._mask_outputs_conv(
                out_cts, grid_w, dense_w
            )
            traffic.send_to_client(
                len(masked_cts) * ciphertext_bytes(params), layer.name + "+mask"
            )
            traffic.end_round()
            masked = self._client_decrypt_conv(masked_cts, grid_w, dense_w)
            if layer.stride > 1:
                masked = masked[:, :: layer.stride, :: layer.stride]
                mask = mask[:, :: layer.stride, :: layer.stride]
            return masked, mask, budget
        # FC layer
        flat = activations.reshape(-1)
        packed = pack_fc_input(flat % t, params.row_size)
        ct = scheme.encrypt(scheme.encoder.encode_row(packed), self.public)
        traffic.send_to_cloud(ciphertext_bytes(params), layer.name)
        out_ct = self.plans[layer.name].execute(ct, self.galois_keys)
        masked_ct, mask, budget = self._mask_output_fc(out_ct, layer.no)
        traffic.send_to_client(ciphertext_bytes(params), layer.name + "+mask")
        traffic.end_round()
        slots = scheme.encoder.decode_row(
            scheme.decrypt(masked_ct, self.secret), signed=False
        )
        return slots[: layer.no], mask, budget

    def _mask_outputs_conv(self, out_cts, grid_w, dense_w):
        """Blind every slot of each output row; return the dense mask block.

        The whole row is masked (the schedule leaves partial sums in
        grid-edge and fold positions too, and all computation stays within
        slot row 0); only the dense_w x dense_w block the client will read
        needs its mask values returned.
        """
        scheme = self.scheme
        t = scheme.params.plain_modulus
        budget = float("inf")
        masked_cts = []
        masks = np.empty((len(out_cts), dense_w, dense_w), dtype=np.int64)
        for oc, ct in enumerate(out_cts):
            mask_row = self.rng.integers(0, t, scheme.params.row_size)
            masked = scheme.add_plain(ct, scheme.encoder.encode_row(mask_row))
            budget = min(budget, invariant_noise_budget(scheme, masked, self.secret))
            masked_cts.append(masked)
            masks[oc] = unpack_image(mask_row, grid_w)[:dense_w, :dense_w]
        return masked_cts, masks, budget

    def _mask_output_fc(self, out_ct, no):
        """Blind every slot of an FC output row (the extended-diagonal fold
        leaves partial weight sums beyond slot ``no``); return the mask for
        the ``no`` slots the client will read."""
        scheme = self.scheme
        t = scheme.params.plain_modulus
        mask_row = self.rng.integers(0, t, scheme.params.row_size)
        masked_ct = scheme.add_plain(out_ct, scheme.encoder.encode_row(mask_row))
        budget = invariant_noise_budget(scheme, masked_ct, self.secret)
        return masked_ct, mask_row[:no], budget

    # -- client side -----------------------------------------------------------

    def _client_decrypt_conv(self, masked_cts, grid_w, dense_w):
        scheme = self.scheme
        outputs = np.zeros((len(masked_cts), dense_w, dense_w), dtype=object)
        for oc, ct in enumerate(masked_cts):
            slots = scheme.encoder.decode_row(scheme.decrypt(ct, self.secret), signed=False)
            grid = unpack_image(slots, grid_w)
            outputs[oc] = grid[:dense_w, :dense_w].astype(object)
        return outputs

    def _client_gc_stage(self, masked, mask, post_ops, evaluator):
        """Unmask, truncate, apply nonlinearities; return signed integers.

        Runs what the garbled circuit computes (unmask -> truncate ->
        nonlinearities) and charges its gate/traffic costs on the
        evaluator.  The re-masking exchange is value-elided: the next
        linear layer encrypts the recovered activations directly, which
        is equivalent to re-encrypting masked values and removing the
        mask homomorphically, with identical traffic (accounted in the
        next round's send).
        """
        from .garbled import maxpool_circuit_cost, relu_circuit_cost

        t = self.scheme.params.plain_modulus
        actual = (
            np.asarray(masked, dtype=object) - np.asarray(mask, dtype=object)
        ) % t
        signed = np.where(actual > t // 2, actual - t, actual)
        signed = np.asarray(signed.tolist(), dtype=np.int64) >> self.rescale_bits
        # Unmask + truncate circuit cost (same structure as masked ReLU).
        evaluator.total_cost = evaluator.total_cost + relu_circuit_cost(
            int(signed.size), evaluator.bit_width
        )
        for op in post_ops:
            if op.kind == "relu":
                signed = np.maximum(signed, 0)
            elif op.kind == "maxpool":
                signed = _maxpool(signed, op.pool_size)
                evaluator.total_cost = evaluator.total_cost + maxpool_circuit_cost(
                    int(signed.size), op.pool_size, evaluator.bit_width
                )
            elif op.kind == "avgpool":
                signed = _avgpool(signed, op.pool_size)
            else:
                raise ValueError(f"unsupported activation {op.kind!r}")
        return signed


def _maxpool(values: np.ndarray, size: int) -> np.ndarray:
    ci, w, _ = values.shape
    out_w = w // size
    trimmed = values[:, : out_w * size, : out_w * size]
    blocks = trimmed.reshape(ci, out_w, size, out_w, size)
    return blocks.max(axis=(2, 4))


def _avgpool(values: np.ndarray, size: int) -> np.ndarray:
    ci, w, _ = values.shape
    out_w = w // size
    trimmed = values[:, : out_w * size, : out_w * size]
    blocks = trimmed.reshape(ci, out_w, size, out_w, size)
    return blocks.sum(axis=(2, 4)) // (size * size)
