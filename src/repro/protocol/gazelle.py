"""The Gazelle HE-GC hybrid inference protocol (Section II-A).

Functional two-party simulation over the live BFV substrate:

1. The client encrypts its activations and sends them to the cloud.
2. The cloud evaluates one linear layer homomorphically (Sched-PA or
   Sched-IA), adds a uniform random mask r to every output, and returns
   the masked ciphertexts.
3. The client decrypts masked pre-activations; the garbled circuit
   (functionally simulated, gates accounted) removes r, applies
   ReLU/pooling and fixed-point truncation, and re-masks with the
   cloud's s.
4. The client re-encrypts the masked activations; the cloud subtracts s
   homomorphically and proceeds with the next linear layer.

Decryption at each layer boundary resets the HE noise budget, which is
how Gazelle (and Cheetah) sidestep deep-network noise accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bfv.noise import invariant_noise_budget
from ..bfv.params import BfvParameters
from ..bfv.scheme import BfvScheme, Ciphertext
from ..core.noise_model import Schedule
from ..nn.layers import ActivationLayer, ConvLayer, FCLayer
from ..nn.models import Network
from ..scheduling.fc import pack_fc_input
from ..scheduling.layouts import pack_image, unpack_image
from ..scheduling.plan import compile_linear_plan
from .garbled import GarbledEvaluator, GcCost
from .messages import TrafficLog, ciphertext_bytes


@dataclass
class ProtocolResult:
    """Output and cost accounting of one private inference."""

    logits: np.ndarray
    traffic: TrafficLog
    gc_cost: GcCost
    min_noise_budget: float


# -- shared client/cloud building blocks -------------------------------------
#
# The in-process :class:`GazelleProtocol` below and the networked serving
# runtime (:mod:`repro.serving`) run the same per-layer math; these helpers
# hold the pieces both sides share so the wire-split protocol cannot drift
# from the reference simulation.


def pad_and_grid_conv_input(layer, activations: np.ndarray, grid_w: int):
    """Client-side conv input prep: zero-pad, then embed into the packing grid.

    The HE schedule always computes the dense valid convolution of the
    (padded) image; strides are lowered later by subsampling the dense
    output.  Returns ``(grids, w)``: the ``(ci, grid_w, grid_w)`` int64
    grids ready for :func:`~repro.scheduling.layouts.pack_image`, and the
    padded image width ``w`` (which determines the dense output width
    ``w - fw + 1``).
    """
    activations = np.asarray(activations, dtype=np.int64)
    if layer.padding:
        pad = layer.padding
        activations = np.pad(activations, ((0, 0), (pad, pad), (pad, pad)))
    ci, w, _ = activations.shape
    if w > grid_w:
        raise ValueError(
            f"{layer.name}: padded {w}x{w} image exceeds the "
            f"{grid_w}x{grid_w} packing grid"
        )
    grids = np.zeros((ci, grid_w, grid_w), dtype=np.int64)
    grids[:, :w, :w] = activations
    return grids, w


def blind_ciphertext_rows(scheme, rng, cts):
    """Cloud-side blinding: add a fresh uniform mask row to every ciphertext.

    Every slot of each output row must be masked before anything leaves
    the cloud -- the schedules leave partial sums in grid-edge and fold
    positions, and any slot left unmasked would hand the client a clean
    linear equation in the model weights.  All masks are encoded and
    lifted to the evaluation domain in one ``(k, B, n)`` batched NTT;
    output ``i`` is bit-identical to
    ``scheme.add_plain(cts[i], scheme.encoder.encode_row(mask_rows[i]))``.

    Returns ``(masked_cts, mask_rows)`` with ``mask_rows`` of shape
    ``(len(cts), row_size)``.
    """
    from ..bfv.counters import GLOBAL_COUNTERS
    from ..bfv.polynomial import Domain, RnsPolynomial

    params = scheme.params
    basis = params.coeff_basis
    mask_rows = rng.integers(0, params.plain_modulus, (len(cts), params.row_size))
    coeffs = scheme.encoder.encode_rows(mask_rows)
    evals = scheme.engine.forward(scheme._delta_residues(coeffs))
    GLOBAL_COUNTERS.he_add += len(cts)
    masked = [
        Ciphertext(
            RnsPolynomial(
                basis,
                (ct.c0.data + evals[:, i]) % basis.primes_column,
                Domain.EVAL,
            ),
            ct.c1.copy(),
        )
        for i, ct in enumerate(cts)
    ]
    return masked, mask_rows


def decrypt_conv_outputs(scheme, secret, masked_cts, grid_w: int, dense_w: int):
    """Client-side conv decrypt: read the dense ``dense_w x dense_w`` block.

    Returns an object-dtype ``(co, dense_w, dense_w)`` array of masked
    slot values (still blinded mod t; see :func:`gc_postprocess`).
    """
    outputs = np.zeros((len(masked_cts), dense_w, dense_w), dtype=object)
    for oc, ct in enumerate(masked_cts):
        slots = scheme.encoder.decode_row(scheme.decrypt(ct, secret), signed=False)
        grid = unpack_image(slots, grid_w)
        outputs[oc] = grid[:dense_w, :dense_w].astype(object)
    return outputs


def gc_postprocess(masked, mask, post_ops, evaluator, plain_modulus, rescale_bits):
    """Unmask, truncate, apply nonlinearities; return signed integers.

    Runs what the garbled circuit computes (unmask -> truncate ->
    nonlinearities) and charges its gate/traffic costs on the evaluator.
    The re-masking exchange is value-elided: the next linear layer
    encrypts the recovered activations directly, which is equivalent to
    re-encrypting masked values and removing the mask homomorphically,
    with identical traffic (accounted in the next round's send).
    """
    from .garbled import maxpool_circuit_cost, relu_circuit_cost

    t = plain_modulus
    actual = (
        np.asarray(masked, dtype=object) - np.asarray(mask, dtype=object)
    ) % t
    signed = np.where(actual > t // 2, actual - t, actual)
    signed = np.asarray(signed.tolist(), dtype=np.int64) >> rescale_bits
    # Unmask + truncate circuit cost (same structure as masked ReLU).
    evaluator.total_cost = evaluator.total_cost + relu_circuit_cost(
        int(signed.size), evaluator.bit_width
    )
    for op in post_ops:
        if op.kind == "relu":
            signed = np.maximum(signed, 0)
        elif op.kind == "maxpool":
            signed = _maxpool(signed, op.pool_size)
            evaluator.total_cost = evaluator.total_cost + maxpool_circuit_cost(
                int(signed.size), op.pool_size, evaluator.bit_width
            )
        elif op.kind == "avgpool":
            signed = _avgpool(signed, op.pool_size)
        else:
            raise ValueError(f"unsupported activation {op.kind!r}")
    return signed


class GazelleProtocol:
    """Run private inference for a small network end to end.

    Supports strided and padded convolutions (padding is applied
    client-side before packing, strides are lowered by subsampling the
    dense output), ReLU, max/avg pooling, and FC layers -- enough to
    express LeNet-style models at live-HE scale.  The client and cloud
    roles share this process but interact only through ciphertexts,
    masked tensors, and the (simulated) garbled circuit.

    Every linear layer is compiled once at construction into a
    :class:`~repro.scheduling.plan.ConvPlan` / ``FcPlan`` (offline weight
    encoding, hoisted/grouped rotations), so repeated ``run`` calls reuse
    the encoded weights and the Galois key set is exactly the union of
    the plans' rotation steps.

    This class is the *in-process reference*: client and cloud share one
    object and one key set.  The deployable split of the same protocol --
    separate key ownership, serialized messages, concurrent sessions --
    lives in :mod:`repro.serving`, which reuses this module's helpers so
    the two cannot drift.
    """

    def __init__(
        self,
        network: Network,
        weights: dict[str, np.ndarray],
        params: BfvParameters,
        schedule: Schedule = Schedule.PARTIAL_ALIGNED,
        rescale_bits: int = 6,
        seed: int = 0,
    ):
        self.network = network
        self.weights = weights
        self.schedule = schedule
        self.rescale_bits = rescale_bits
        self.scheme = BfvScheme(params, seed=seed)
        self.secret, self.public = self.scheme.keygen()
        self.rng = np.random.default_rng(seed + 1)
        self.plans = {
            layer.name: compile_linear_plan(
                self.scheme, layer, weights[layer.name], schedule
            )
            for layer in network.linear_layers
        }
        steps: set[int] = set()
        for plan in self.plans.values():
            steps.update(plan.rotation_steps)
        self.galois_keys = self.scheme.generate_galois_keys(
            self.secret, sorted(steps)
        )

    # -- protocol run -------------------------------------------------------

    def run(self, image: np.ndarray) -> ProtocolResult:
        """Private inference on a (ci, w, w) integer input tensor."""
        t = self.scheme.params.plain_modulus
        traffic = TrafficLog()
        evaluator = GarbledEvaluator(t, bit_width=t.bit_length())
        min_budget = float(self.scheme.params.noise_capacity_bits)

        current = np.asarray(image, dtype=np.int64)
        layers = list(self.network.layers)
        index = 0
        while index < len(layers):
            layer = layers[index]
            if isinstance(layer, (ConvLayer, FCLayer)):
                # Cloud: homomorphic linear layer on freshly encrypted input.
                masked, mask, budget = self._cloud_linear_layer(
                    layer, current, traffic
                )
                min_budget = min(min_budget, budget)
                # Client + GC: unmask, nonlinearities, truncate, re-mask.
                index += 1
                post_ops: list[ActivationLayer] = []
                while index < len(layers) and isinstance(layers[index], ActivationLayer):
                    post_ops.append(layers[index])
                    index += 1
                current = self._client_gc_stage(masked, mask, post_ops, evaluator)
            else:
                raise TypeError(
                    f"activation layer {layer.name!r} without preceding linear layer"
                )
        return ProtocolResult(
            logits=current,
            traffic=traffic,
            gc_cost=evaluator.total_cost,
            min_noise_budget=min_budget,
        )

    # -- cloud side ----------------------------------------------------------

    def _cloud_linear_layer(self, layer, activations, traffic):
        scheme = self.scheme
        params = scheme.params
        t = params.plain_modulus
        if isinstance(layer, ConvLayer):
            plan = self.plans[layer.name]
            grid_w = plan.grid_w
            grids, w = pad_and_grid_conv_input(layer, activations, grid_w)
            cts = [
                scheme.encrypt(
                    scheme.encoder.encode_row(pack_image(grid)), self.public
                )
                for grid in grids
            ]
            traffic.send_to_cloud(len(cts) * ciphertext_bytes(params), layer.name)
            out_cts = plan.execute(cts, self.galois_keys)
            # Blind the whole slot row before anything leaves the cloud:
            # the schedule computes valid outputs across the entire packing
            # grid (not just the image's dense block), and a stride > 1
            # discards positions after decryption -- any slot left unmasked
            # would hand the client a clean linear equation in the model
            # weights.  The client then reads the dense block and
            # subsamples it by the stride.
            dense_w = w - layer.fw + 1
            masked_cts, mask, budget = self._mask_outputs_conv(
                out_cts, grid_w, dense_w
            )
            traffic.send_to_client(
                len(masked_cts) * ciphertext_bytes(params), layer.name + "+mask"
            )
            traffic.end_round()
            masked = self._client_decrypt_conv(masked_cts, grid_w, dense_w)
            if layer.stride > 1:
                masked = masked[:, :: layer.stride, :: layer.stride]
                mask = mask[:, :: layer.stride, :: layer.stride]
            return masked, mask, budget
        # FC layer
        flat = activations.reshape(-1)
        packed = pack_fc_input(flat % t, params.row_size)
        ct = scheme.encrypt(scheme.encoder.encode_row(packed), self.public)
        traffic.send_to_cloud(ciphertext_bytes(params), layer.name)
        out_ct = self.plans[layer.name].execute(ct, self.galois_keys)
        masked_ct, mask, budget = self._mask_output_fc(out_ct, layer.no)
        traffic.send_to_client(ciphertext_bytes(params), layer.name + "+mask")
        traffic.end_round()
        slots = scheme.encoder.decode_row(
            scheme.decrypt(masked_ct, self.secret), signed=False
        )
        return slots[: layer.no], mask, budget

    def _mask_outputs_conv(self, out_cts, grid_w, dense_w):
        """Blind every slot of each output row; return the dense mask block.

        The whole row is masked (the schedule leaves partial sums in
        grid-edge and fold positions too, and all computation stays within
        slot row 0); only the dense_w x dense_w block the client will read
        needs its mask values returned.
        """
        masked_cts, mask_rows = blind_ciphertext_rows(self.scheme, self.rng, out_cts)
        budget = min(
            invariant_noise_budget(self.scheme, ct, self.secret) for ct in masked_cts
        )
        masks = np.stack(
            [unpack_image(row, grid_w)[:dense_w, :dense_w] for row in mask_rows]
        )
        return masked_cts, masks, budget

    def _mask_output_fc(self, out_ct, no):
        """Blind every slot of an FC output row (the extended-diagonal fold
        leaves partial weight sums beyond slot ``no``); return the mask for
        the ``no`` slots the client will read."""
        masked_cts, mask_rows = blind_ciphertext_rows(self.scheme, self.rng, [out_ct])
        budget = invariant_noise_budget(self.scheme, masked_cts[0], self.secret)
        return masked_cts[0], mask_rows[0, :no], budget

    # -- client side -----------------------------------------------------------

    def _client_decrypt_conv(self, masked_cts, grid_w, dense_w):
        return decrypt_conv_outputs(self.scheme, self.secret, masked_cts, grid_w, dense_w)

    def _client_gc_stage(self, masked, mask, post_ops, evaluator):
        """Unmask, truncate, apply nonlinearities (see :func:`gc_postprocess`)."""
        return gc_postprocess(
            masked,
            mask,
            post_ops,
            evaluator,
            self.scheme.params.plain_modulus,
            self.rescale_bits,
        )


def _maxpool(values: np.ndarray, size: int) -> np.ndarray:
    ci, w, _ = values.shape
    out_w = w // size
    trimmed = values[:, : out_w * size, : out_w * size]
    blocks = trimmed.reshape(ci, out_w, size, out_w, size)
    return blocks.max(axis=(2, 4))


def _avgpool(values: np.ndarray, size: int) -> np.ndarray:
    ci, w, _ = values.shape
    out_w = w // size
    trimmed = values[:, : out_w * size, : out_w * size]
    blocks = trimmed.reshape(ci, out_w, size, out_w, size)
    return blocks.sum(axis=(2, 4)) // (size * size)
