"""Gazelle client-cloud private-inference protocol (the system Cheetah
accelerates server-side): HE linear layers, GC nonlinearities, additive
masking, and communication accounting."""

from .garbled import (
    GarbledEvaluator,
    GcCost,
    maxpool_circuit_cost,
    relu_circuit_cost,
)
from .gazelle import (
    GazelleProtocol,
    ProtocolResult,
    blind_ciphertext_rows,
    decrypt_conv_outputs,
    gc_postprocess,
    pad_and_grid_conv_input,
)
from .messages import TrafficLog, ciphertext_bytes, plaintext_bytes
from .shape_hiding import (
    HidingOverhead,
    hiding_overhead,
    insert_null_layers,
    null_layer_weights,
    pad_network,
    pad_weights,
)

__all__ = [
    "GarbledEvaluator",
    "GcCost",
    "maxpool_circuit_cost",
    "relu_circuit_cost",
    "GazelleProtocol",
    "ProtocolResult",
    "blind_ciphertext_rows",
    "decrypt_conv_outputs",
    "gc_postprocess",
    "pad_and_grid_conv_input",
    "TrafficLog",
    "ciphertext_bytes",
    "plaintext_bytes",
    "HidingOverhead",
    "hiding_overhead",
    "insert_null_layers",
    "null_layer_weights",
    "pad_network",
    "pad_weights",
]
