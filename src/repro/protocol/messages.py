"""Wire-level accounting for the Gazelle protocol.

Cheetah assumes Gazelle's communication costs unchanged (Section II-A);
these helpers size ciphertexts and tally per-round traffic so protocol
benches can report what the paper holds constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bfv.params import BfvParameters


def ciphertext_bytes(params: BfvParameters) -> int:
    """Serialized size of one ciphertext: 2 polynomials of n log2(q)-bit
    coefficients."""
    return 2 * params.n * params.coeff_bits // 8


def plaintext_bytes(params: BfvParameters) -> int:
    return params.n * params.plain_modulus.bit_length() // 8


@dataclass
class TrafficLog:
    """Bytes and rounds exchanged between client and cloud."""

    client_to_cloud_bytes: int = 0
    cloud_to_client_bytes: int = 0
    rounds: int = 0
    events: list = field(default_factory=list)

    def send_to_cloud(self, num_bytes: int, label: str) -> None:
        self.client_to_cloud_bytes += num_bytes
        self.events.append(("client->cloud", label, num_bytes))

    def send_to_client(self, num_bytes: int, label: str) -> None:
        self.cloud_to_client_bytes += num_bytes
        self.events.append(("cloud->client", label, num_bytes))

    def end_round(self) -> None:
        self.rounds += 1

    @property
    def total_bytes(self) -> int:
        return self.client_to_cloud_bytes + self.cloud_to_client_bytes
