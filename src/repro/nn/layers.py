"""Layer descriptors for the DNN workloads Cheetah evaluates.

HE-PTune parameterises CNN layers as ``(w, fw, ci, co)`` -- input image
width, filter width, input channels, output channels -- and FC layers as
``(ni, no)`` (Section IV-A).  Strided convolutions are folded into the
effective image width the HE schedule sees (the number of output pixels
drives packing and rotation counts), which is how Gazelle lowers strides
as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ConvLayer:
    """A convolutional layer as seen by the HE scheduler."""

    name: str
    w: int  # input spatial width (square images)
    fw: int  # filter width (square filters)
    ci: int  # input channels
    co: int  # output channels
    stride: int = 1
    padding: int = 0

    @property
    def out_w(self) -> int:
        return (self.w + 2 * self.padding - self.fw) // self.stride + 1

    @property
    def he_w(self) -> int:
        """Effective image width for HE packing (output pixels per channel)."""
        return self.out_w

    @property
    def macs(self) -> int:
        """Plaintext multiply-accumulates (for plaintext-speed comparisons)."""
        return self.out_w * self.out_w * self.fw * self.fw * self.ci * self.co

    @property
    def output_elements(self) -> int:
        return self.out_w * self.out_w * self.co

    @property
    def accumulation_depth(self) -> int:
        """Values summed per output neuron; drives plaintext-bit requirements."""
        return self.fw * self.fw * self.ci


@dataclass(frozen=True)
class FCLayer:
    """A fully connected layer: ni inputs, no outputs."""

    name: str
    ni: int
    no: int

    @property
    def macs(self) -> int:
        return self.ni * self.no

    @property
    def output_elements(self) -> int:
        return self.no

    @property
    def accumulation_depth(self) -> int:
        return self.ni


@dataclass(frozen=True)
class ActivationLayer:
    """A client-side nonlinearity (evaluated under garbled circuits)."""

    name: str
    kind: str  # "relu" | "maxpool" | "avgpool"
    elements: int
    pool_size: int = 1


LinearLayer = ConvLayer | FCLayer


def required_plain_bits(
    layer: LinearLayer, weight_bits: int, activation_bits: int
) -> int:
    """Plaintext-modulus bits needed for a correct (overflow-free) layer.

    Accumulating ``d`` products of ``weight_bits x activation_bits``
    signed fixed-point values needs ``weight_bits + activation_bits +
    ceil(log2 d)`` bits; profiling t this way is the "setting t requires
    profiling the application" step of Section III-B.
    """
    depth_bits = max(1, math.ceil(math.log2(layer.accumulation_depth)))
    return weight_bits + activation_bits + depth_bits
