"""DNN substrate: layer shapes, the paper's model zoo, quantization, and
plaintext reference inference."""

from .layers import ActivationLayer, ConvLayer, FCLayer, LinearLayer, required_plain_bits
from .models import (
    IMAGENET_MODELS,
    MNIST_MODELS,
    MODEL_BUILDERS,
    Network,
    alexnet,
    all_models,
    build_model,
    lenet5,
    lenet_300_100,
    resnet50,
    vgg16,
)
from .plaintext import (
    PlaintextRunner,
    conv2d,
    fully_connected,
    maxpool2d,
    meanpool2d,
    relu,
    rescale,
)
from .quantize import (
    DEFAULT_ACTIVATION_BITS,
    DEFAULT_WEIGHT_BITS,
    dequantize,
    quantize,
    synthetic_activations,
    synthetic_conv_weights,
    synthetic_fc_weights,
)

__all__ = [
    "ActivationLayer",
    "ConvLayer",
    "FCLayer",
    "LinearLayer",
    "required_plain_bits",
    "IMAGENET_MODELS",
    "MNIST_MODELS",
    "MODEL_BUILDERS",
    "Network",
    "alexnet",
    "all_models",
    "build_model",
    "lenet5",
    "lenet_300_100",
    "resnet50",
    "vgg16",
    "PlaintextRunner",
    "conv2d",
    "fully_connected",
    "maxpool2d",
    "meanpool2d",
    "relu",
    "rescale",
    "quantize",
    "dequantize",
    "synthetic_activations",
    "synthetic_conv_weights",
    "synthetic_fc_weights",
    "DEFAULT_ACTIVATION_BITS",
    "DEFAULT_WEIGHT_BITS",
]
