"""Plaintext (unencrypted) reference inference in numpy.

Serves two roles: (1) the correctness oracle every homomorphic layer is
checked against, and (2) the "plaintext inference" side of the paper's
performance comparisons (the paper's 100 ms Keras ResNet50 target).
"""

from __future__ import annotations

import numpy as np

from .layers import ActivationLayer, ConvLayer, FCLayer
from .models import Network


def conv2d(activations: np.ndarray, weights: np.ndarray, stride: int = 1, padding: int = 0) -> np.ndarray:
    """Integer 2D convolution; activations (ci, w, w), weights (co, ci, fw, fw)."""
    ci, w, _ = activations.shape
    co, wci, fw, _ = weights.shape
    if wci != ci:
        raise ValueError(f"channel mismatch: activations {ci}, weights {wci}")
    if padding:
        activations = np.pad(
            activations, ((0, 0), (padding, padding), (padding, padding))
        )
        w = w + 2 * padding
    out_w = (w - fw) // stride + 1
    output = np.zeros((co, out_w, out_w), dtype=np.int64)
    for dy in range(fw):
        for dx in range(fw):
            patch = activations[
                :, dy : dy + stride * out_w : stride, dx : dx + stride * out_w : stride
            ]
            # (co, ci) x (ci, out_w, out_w) contraction per filter tap.
            output += np.tensordot(weights[:, :, dy, dx], patch, axes=(1, 0))
    return output


def fully_connected(activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Integer matrix-vector product; weights (no, ni)."""
    return weights @ np.asarray(activations, dtype=np.int64)


def relu(values: np.ndarray) -> np.ndarray:
    return np.maximum(values, 0)


def maxpool2d(activations: np.ndarray, size: int = 2) -> np.ndarray:
    ci, w, _ = activations.shape
    out_w = w // size
    trimmed = activations[:, : out_w * size, : out_w * size]
    blocks = trimmed.reshape(ci, out_w, size, out_w, size)
    return blocks.max(axis=(2, 4))


def meanpool2d(activations: np.ndarray, size: int = 2) -> np.ndarray:
    ci, w, _ = activations.shape
    out_w = w // size
    trimmed = activations[:, : out_w * size, : out_w * size]
    blocks = trimmed.reshape(ci, out_w, size, out_w, size)
    return blocks.sum(axis=(2, 4)) // (size * size)


def rescale(values: np.ndarray, bits: int) -> np.ndarray:
    """Arithmetic right-shift requantisation after a linear layer."""
    return values >> bits


class PlaintextRunner:
    """Run a :class:`Network` end to end on integer inputs.

    Weights are supplied as ``{layer_name: array}``; activations are
    rescaled after each linear layer so magnitudes match what the HE
    pipeline (and Gazelle's protocol) would carry.
    """

    def __init__(self, network: Network, weights: dict[str, np.ndarray], rescale_bits: int = 9):
        self.network = network
        self.weights = weights
        self.rescale_bits = rescale_bits

    def run(self, inputs: np.ndarray, record: bool = False):
        current = np.asarray(inputs, dtype=np.int64)
        trace = []
        for layer in self.network.layers:
            if isinstance(layer, ConvLayer):
                current = conv2d(
                    current, self.weights[layer.name], layer.stride, layer.padding
                )
                current = rescale(current, self.rescale_bits)
            elif isinstance(layer, FCLayer):
                current = fully_connected(current.reshape(-1), self.weights[layer.name])
                current = rescale(current, self.rescale_bits)
            elif isinstance(layer, ActivationLayer):
                if layer.kind == "relu":
                    current = relu(current)
                elif layer.kind == "maxpool":
                    current = maxpool2d(current, layer.pool_size)
                elif layer.kind == "avgpool":
                    current = meanpool2d(current, layer.pool_size)
                else:
                    raise ValueError(f"unknown activation kind {layer.kind!r}")
            else:
                raise TypeError(f"unsupported layer {layer!r}")
            if record:
                trace.append((layer.name, current.copy()))
        if record:
            return current, trace
        return current
