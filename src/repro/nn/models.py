"""The five-model zoo used throughout the paper's evaluation.

LeNet-300-100 and LeNet5 (MNIST), AlexNet, VGG16 and ResNet50 (ImageNet)
-- the exact set of Figure 6.  Only layer *shapes* matter to every
experiment (op counts, noise, accelerator mapping); weights are synthetic
(:mod:`repro.nn.quantize`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .layers import ActivationLayer, ConvLayer, FCLayer, LinearLayer


@dataclass
class Network:
    """An ordered stack of layers; linear layers run on the cloud in HE."""

    name: str
    layers: list = field(default_factory=list)

    @property
    def linear_layers(self) -> list[LinearLayer]:
        return [l for l in self.layers if isinstance(l, (ConvLayer, FCLayer))]

    @property
    def conv_layers(self) -> list[ConvLayer]:
        return [l for l in self.layers if isinstance(l, ConvLayer)]

    @property
    def fc_layers(self) -> list[FCLayer]:
        return [l for l in self.layers if isinstance(l, FCLayer)]

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.linear_layers)


def lenet_300_100() -> Network:
    """LeCun's MNIST MLP: 784-300-100-10."""
    return Network(
        "LeNet300100",
        [
            FCLayer("fc1", 784, 300),
            ActivationLayer("relu1", "relu", 300),
            FCLayer("fc2", 300, 100),
            ActivationLayer("relu2", "relu", 100),
            FCLayer("fc3", 100, 10),
        ],
    )


def lenet5() -> Network:
    """Classic LeNet-5 for 28x28 MNIST."""
    return Network(
        "LeNet5",
        [
            ConvLayer("conv1", w=28, fw=5, ci=1, co=6, padding=2),
            ActivationLayer("relu1", "relu", 28 * 28 * 6),
            ActivationLayer("pool1", "maxpool", 14 * 14 * 6, pool_size=2),
            ConvLayer("conv2", w=14, fw=5, ci=6, co=16),
            ActivationLayer("relu2", "relu", 10 * 10 * 16),
            ActivationLayer("pool2", "maxpool", 5 * 5 * 16, pool_size=2),
            FCLayer("fc1", 400, 120),
            ActivationLayer("relu3", "relu", 120),
            FCLayer("fc2", 120, 84),
            ActivationLayer("relu4", "relu", 84),
            FCLayer("fc3", 84, 10),
        ],
    )


def alexnet() -> Network:
    """AlexNet for 227x227 ImageNet (Figure 3 layers CNN_0..4, FC_5..7)."""
    return Network(
        "AlexNet",
        [
            ConvLayer("conv0", w=227, fw=11, ci=3, co=96, stride=4),
            ActivationLayer("relu0", "relu", 55 * 55 * 96),
            ActivationLayer("pool0", "maxpool", 27 * 27 * 96, pool_size=2),
            ConvLayer("conv1", w=27, fw=5, ci=96, co=256, padding=2),
            ActivationLayer("relu1", "relu", 27 * 27 * 256),
            ActivationLayer("pool1", "maxpool", 13 * 13 * 256, pool_size=2),
            ConvLayer("conv2", w=13, fw=3, ci=256, co=384, padding=1),
            ActivationLayer("relu2", "relu", 13 * 13 * 384),
            ConvLayer("conv3", w=13, fw=3, ci=384, co=384, padding=1),
            ActivationLayer("relu3", "relu", 13 * 13 * 384),
            ConvLayer("conv4", w=13, fw=3, ci=384, co=256, padding=1),
            ActivationLayer("relu4", "relu", 13 * 13 * 256),
            ActivationLayer("pool4", "maxpool", 6 * 6 * 256, pool_size=2),
            FCLayer("fc5", 9216, 4096),
            ActivationLayer("relu5", "relu", 4096),
            FCLayer("fc6", 4096, 4096),
            ActivationLayer("relu6", "relu", 4096),
            FCLayer("fc7", 4096, 1000),
        ],
    )


def vgg16() -> Network:
    """VGG16 for 224x224 ImageNet: 13 convs + 3 FCs."""
    cfg = [
        (224, 64), (224, 64),
        (112, 128), (112, 128),
        (56, 256), (56, 256), (56, 256),
        (28, 512), (28, 512), (28, 512),
        (14, 512), (14, 512), (14, 512),
    ]
    layers: list = []
    ci = 3
    for index, (w, co) in enumerate(cfg):
        layers.append(ConvLayer(f"conv{index}", w=w, fw=3, ci=ci, co=co, padding=1))
        layers.append(ActivationLayer(f"relu{index}", "relu", w * w * co))
        ci = co
    for index, (ni, no) in enumerate([(25088, 4096), (4096, 4096), (4096, 1000)]):
        layers.append(FCLayer(f"fc{index}", ni, no))
    return Network("VGG16", layers)


def resnet50() -> Network:
    """ResNet50: 53 convolutions (bottleneck blocks) + the final FC."""
    layers: list = [ConvLayer("conv1", w=224, fw=7, ci=3, co=64, stride=2, padding=3)]
    stage_specs = [
        # (width, mid channels, out channels, blocks)
        (56, 64, 256, 3),
        (28, 128, 512, 4),
        (14, 256, 1024, 6),
        (7, 512, 2048, 3),
    ]
    ci = 64
    for stage_index, (w, mid, out, blocks) in enumerate(stage_specs, start=2):
        for block in range(blocks):
            prefix = f"conv{stage_index}_{block}"
            layers.append(ConvLayer(f"{prefix}_a", w=w, fw=1, ci=ci, co=mid))
            layers.append(ConvLayer(f"{prefix}_b", w=w, fw=3, ci=mid, co=mid, padding=1))
            layers.append(ConvLayer(f"{prefix}_c", w=w, fw=1, ci=mid, co=out))
            if block == 0:
                layers.append(ConvLayer(f"{prefix}_down", w=w, fw=1, ci=ci, co=out))
            ci = out
            layers.append(ActivationLayer(f"{prefix}_relu", "relu", w * w * out))
    layers.append(FCLayer("fc", 2048, 1000))
    return Network("ResNet50", layers)


def network_to_dict(network: Network) -> dict:
    """JSON-safe description of a network's architecture.

    Model artifacts (:mod:`repro.artifacts`) persist this alongside the
    compiled weight stacks so a server can reconstruct the exact layer
    stack without shipping Python objects; :func:`network_from_dict` is
    the inverse.
    """
    layers = []
    for layer in network.layers:
        if isinstance(layer, ConvLayer):
            layers.append(
                {
                    "type": "conv",
                    "name": layer.name,
                    "w": layer.w,
                    "fw": layer.fw,
                    "ci": layer.ci,
                    "co": layer.co,
                    "stride": layer.stride,
                    "padding": layer.padding,
                }
            )
        elif isinstance(layer, FCLayer):
            layers.append(
                {"type": "fc", "name": layer.name, "ni": layer.ni, "no": layer.no}
            )
        elif isinstance(layer, ActivationLayer):
            layers.append(
                {
                    "type": "activation",
                    "name": layer.name,
                    "kind": layer.kind,
                    "elements": layer.elements,
                    "pool_size": layer.pool_size,
                }
            )
        else:
            raise TypeError(f"cannot serialize layer {layer!r}")
    return {"name": network.name, "layers": layers}


def network_from_dict(data: dict) -> Network:
    """Inverse of :func:`network_to_dict`."""
    layers: list = []
    for spec in data["layers"]:
        kind = spec.get("type")
        if kind == "conv":
            layers.append(
                ConvLayer(
                    name=str(spec["name"]),
                    w=int(spec["w"]),
                    fw=int(spec["fw"]),
                    ci=int(spec["ci"]),
                    co=int(spec["co"]),
                    stride=int(spec.get("stride", 1)),
                    padding=int(spec.get("padding", 0)),
                )
            )
        elif kind == "fc":
            layers.append(
                FCLayer(name=str(spec["name"]), ni=int(spec["ni"]), no=int(spec["no"]))
            )
        elif kind == "activation":
            layers.append(
                ActivationLayer(
                    name=str(spec["name"]),
                    kind=str(spec["kind"]),
                    elements=int(spec["elements"]),
                    pool_size=int(spec.get("pool_size", 1)),
                )
            )
        else:
            raise ValueError(f"unknown layer type {kind!r} in network description")
    return Network(str(data["name"]), layers)


MODEL_BUILDERS = {
    "LeNet300100": lenet_300_100,
    "LeNet5": lenet5,
    "AlexNet": alexnet,
    "VGG16": vgg16,
    "ResNet50": resnet50,
}

#: MNIST-scale models (used for the "ignoring MNIST" harmonic means).
MNIST_MODELS = ("LeNet300100", "LeNet5")

#: ImageNet-scale models.
IMAGENET_MODELS = ("AlexNet", "VGG16", "ResNet50")


def build_model(name: str) -> Network:
    try:
        return MODEL_BUILDERS[name]()
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}"
        ) from None


def all_models() -> list[Network]:
    return [builder() for builder in MODEL_BUILDERS.values()]
