"""Fixed-point quantization into the plaintext ring Z_t.

BFV computes over integers mod t, so weights and activations are
symmetric fixed-point integers.  The paper sets t per layer by profiling
the bits needed for overflow-free accumulation (Section III-B:
"Setting t requires profiling the application...").  Synthetic weights
here stand in for trained weights: every experiment depends only on
magnitudes and shapes, not accuracy.
"""

from __future__ import annotations

import numpy as np

#: Default precision mirroring Gazelle's fixed-point setting.
DEFAULT_WEIGHT_BITS = 9
DEFAULT_ACTIVATION_BITS = 8


def quantize(values: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric uniform quantization of floats in [-1, 1] to signed ints."""
    values = np.asarray(values, dtype=np.float64)
    scale = (1 << (bits - 1)) - 1
    return np.clip(np.rint(values * scale), -scale, scale).astype(np.int64)


def dequantize(values: np.ndarray, bits: int) -> np.ndarray:
    scale = (1 << (bits - 1)) - 1
    return np.asarray(values, dtype=np.float64) / scale


def synthetic_conv_weights(
    fw: int, ci: int, co: int, bits: int = DEFAULT_WEIGHT_BITS, seed: int = 0
) -> np.ndarray:
    """Deterministic quantized filters of shape (co, ci, fw, fw)."""
    rng = np.random.default_rng(seed)
    return quantize(rng.uniform(-1.0, 1.0, (co, ci, fw, fw)), bits)


def synthetic_fc_weights(
    ni: int, no: int, bits: int = DEFAULT_WEIGHT_BITS, seed: int = 0
) -> np.ndarray:
    """Deterministic quantized weight matrix of shape (no, ni)."""
    rng = np.random.default_rng(seed)
    return quantize(rng.uniform(-1.0, 1.0, (no, ni)), bits)


def synthetic_activations(shape: tuple, bits: int = DEFAULT_ACTIVATION_BITS, seed: int = 1) -> np.ndarray:
    """Deterministic quantized nonnegative activations (post-ReLU range)."""
    rng = np.random.default_rng(seed)
    return quantize(rng.uniform(0.0, 1.0, shape), bits)
