"""Framed request/response messages for the serving runtime.

One :class:`Message` is one protocol step: a ``kind`` tag, a JSON-safe
``meta`` dict, and zero or more opaque binary blobs (serialized
ciphertexts, Galois keys, mask tensors -- all produced by
:mod:`repro.bfv.serialize`).  The encoding is a small JSON header that
records the blob lengths, followed by the blobs verbatim:

.. code-block:: text

    b"RSV1" | <u32 header length> | header JSON | blob 0 | blob 1 | ...

Both transports move these frames: :class:`~repro.serving.transport.
LoopbackTransport` round-trips the encoding in process (so tests exercise
the real wire format), and the socket transport length-prefixes each
frame on a TCP stream.  Decoding validates the magic, the header, and
every blob length before any payload is touched, so a truncated or
corrupted frame raises :class:`ValueError` instead of mis-slicing
ciphertext bytes.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

_MAGIC = b"RSV1"
_LEN = struct.Struct("<I")

#: Default frame size cap (bytes) for the socket transport -- a corrupted
#: length prefix must not trigger a multi-GiB allocation.  Servers and
#: transports can tighten it per instance (``max_frame_bytes=``); the cap
#: is always enforced from the length prefix alone, before a single body
#: byte is read or buffered.
MAX_FRAME_BYTES = 1 << 30


@dataclass
class Message:
    """One serving-protocol step.

    ``kind`` selects the handler (``hello``, ``galois_keys``, ``linear``,
    ``close`` and their ``*_ok`` / ``error`` replies); ``meta`` carries the
    JSON-safe fields; ``blobs`` carries binary payloads in order.
    """

    kind: str
    meta: dict = field(default_factory=dict)
    blobs: list[bytes] = field(default_factory=list)

    def require(self, *names: str):
        """Fetch required meta fields, raising a clear error when absent."""
        missing = [name for name in names if name not in self.meta]
        if missing:
            raise ValueError(
                f"{self.kind!r} message missing meta field(s) {missing}"
            )
        values = tuple(self.meta[name] for name in names)
        return values[0] if len(values) == 1 else values


def encode_message(message: Message) -> bytes:
    """Serialize a message to one self-describing frame."""
    header = json.dumps(
        {
            "kind": message.kind,
            "meta": message.meta,
            "blob_lengths": [len(blob) for blob in message.blobs],
        },
        sort_keys=True,
    ).encode()
    return b"".join(
        [_MAGIC, _LEN.pack(len(header)), header, *message.blobs]
    )


def decode_message(payload: bytes) -> Message:
    """Parse a frame back into a :class:`Message`, validating every length."""
    if len(payload) < 8 or payload[:4] != _MAGIC:
        raise ValueError("not a serving-protocol frame")
    (header_len,) = _LEN.unpack_from(payload, 4)
    if 8 + header_len > len(payload):
        raise ValueError(
            f"truncated frame: header claims {header_len} bytes, "
            f"{len(payload) - 8} available"
        )
    try:
        header = json.loads(payload[8 : 8 + header_len].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed frame header: {exc}") from exc
    if not isinstance(header, dict) or "kind" not in header:
        raise ValueError("frame header missing 'kind'")
    lengths = header.get("blob_lengths", [])
    offset = 8 + header_len
    blobs = []
    for length in lengths:
        length = int(length)
        if length < 0 or offset + length > len(payload):
            raise ValueError(
                f"truncated frame: blob of {length} bytes exceeds payload"
            )
        blobs.append(bytes(payload[offset : offset + length]))
        offset += length
    if offset != len(payload):
        raise ValueError(
            f"frame has {len(payload) - offset} trailing bytes"
        )
    return Message(
        kind=str(header["kind"]), meta=dict(header.get("meta", {})), blobs=blobs
    )


def attempt_of(message: Message) -> int:
    """The retry attempt a task/claim/result frame belongs to (0-based).

    The shard pool stamps ``meta["attempt"]`` on every dispatched task
    and workers echo it in claims and replies, so the coordinator can
    tell a stale attempt's error from the current one.  Frames predating
    a retry (or external callers that never set it) count as attempt 0.
    """
    return int(message.meta.get("attempt", 0))


def error_message(reason: str) -> Message:
    """The uniform failure reply; ``reason`` is a human-readable sentence."""
    return Message("error", {"reason": reason})


def admin_message(action: str, token: str, **meta) -> Message:
    """Build one authenticated ``admin`` request (``repro admin``).

    ``action`` is one of the engine's admin verbs (``status``,
    ``reload-zoo``, ``drain-worker``, ``evict-session``,
    ``drain-tenant``); ``meta`` carries the action's arguments (worker
    id, session id, tenant, directory, ...).  The token rides in meta
    like any other field -- the admin surface assumes the same trust in
    the transport as Galois-key uploads do.
    """
    return Message("admin", {"action": str(action), "token": str(token), **meta})


def raise_on_error(reply: Message) -> Message:
    """Client-side check: surface a server ``error`` reply as ServingError."""
    if reply.kind == "error":
        raise ServingError(reply.meta.get("reason", "unspecified server error"))
    return reply


class ServingError(RuntimeError):
    """A server-reported protocol failure (handshake rejection, bad state)."""


# -- optional meta extensions --------------------------------------------------

#: Meta key under which a frame carries its distributed-tracing context
#: (``{"trace_id": ..., "span_id": ..., "fe": ...}``).  Optional and
#: backward-compatible by construction: :func:`decode_message` preserves
#: unknown meta keys verbatim, so peers that predate tracing simply
#: ignore it, and frames without it stay untraced.
TRACE_META_KEY = "trace"


# -- shared-memory slab descriptors -------------------------------------------

#: Meta key under which a frame references an out-of-band slab: the
#: frame's binary payloads ride a shared-memory ring instead of the
#: frame itself, and this descriptor is how the consumer finds and
#: validates them.
SLAB_META_KEY = "shm_slab"


def slab_descriptor(offset: int, slab: bytes, blob_lengths) -> dict:
    """Describe one shared-memory slab for a frame's ``meta``.

    The descriptor pins the slab to the frame three ways: the ring
    offset the producer wrote it at, the exact byte count, and a CRC-32
    of the whole slab.  ``blob_lengths`` records how the slab splits
    back into the frame's ordered blobs (mirroring ``blob_lengths`` in
    the in-band encoding).
    """
    return {
        "offset": int(offset),
        "bytes": len(slab),
        "crc": zlib.crc32(slab) & 0xFFFFFFFF,
        "blob_lengths": [int(length) for length in blob_lengths],
    }


def split_slab(descriptor: dict, offset: int, slab: bytes) -> list[bytes]:
    """Validate a slab against its descriptor and split it into blobs.

    Every field is cross-checked -- ring offset, byte count, CRC, and
    the sum of the blob lengths -- so a slab that was torn, reordered,
    or corrupted raises :class:`ValueError` instead of mis-slicing
    ciphertext bytes (same contract as :func:`decode_message`).
    """
    if int(offset) != int(descriptor.get("offset", -1)):
        raise ValueError(
            f"slab offset {offset} does not match descriptor "
            f"{descriptor.get('offset')}"
        )
    if len(slab) != int(descriptor.get("bytes", -1)):
        raise ValueError(
            f"slab of {len(slab)} bytes does not match descriptor "
            f"{descriptor.get('bytes')}"
        )
    if (zlib.crc32(slab) & 0xFFFFFFFF) != int(descriptor.get("crc", -1)):
        raise ValueError("slab CRC mismatch")
    lengths = [int(length) for length in descriptor.get("blob_lengths", [])]
    if any(length < 0 for length in lengths) or sum(lengths) != len(slab):
        raise ValueError(
            f"slab blob lengths {lengths} do not cover {len(slab)} bytes"
        )
    blobs, cursor = [], 0
    for length in lengths:
        blobs.append(bytes(slab[cursor : cursor + length]))
        cursor += length
    return blobs


# -- stream framing (socket transport) ---------------------------------------


def send_frame(sock, payload: bytes) -> None:
    """Write one length-prefixed frame to a connected socket."""
    sock.sendall(_LEN.pack(len(payload)) + payload)


def recv_frame(sock, max_frame_bytes: int | None = None) -> bytes | None:
    """Read one length-prefixed frame; ``None`` on a clean peer close.

    The size cap (``max_frame_bytes``, defaulting to
    :data:`MAX_FRAME_BYTES`) is checked against the length prefix before
    the body is read, so an oversized claim is rejected without
    allocating or buffering anything.
    """
    cap = MAX_FRAME_BYTES if max_frame_bytes is None else int(max_frame_bytes)
    prefix = _recv_exact(sock, 4)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > cap:
        raise ValueError(f"frame of {length} bytes exceeds cap of {cap}")
    return _recv_exact(sock, length, partial_ok=False)


def _recv_exact(sock, count: int, partial_ok: bool = True) -> bytes | None:
    """Read exactly ``count`` bytes.

    A clean close before the first byte returns ``None`` only when
    ``partial_ok`` (i.e. between frames); a close mid-read always raises.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if partial_ok and remaining == count:
                return None
            raise ValueError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
