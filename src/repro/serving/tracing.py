"""End-to-end request tracing for the serving stack.

One request produces one *trace*: a tree of timed spans covering the
front-end accept, engine handling (admission, deserialize, batch wait,
execute, blind, serialize) and — when a :class:`ShardExecutor` is in
play — per-shard dispatch envelopes with the worker-side spans
(deserialize / compute / serialize) stitched underneath them.

Design constraints, in order:

* **Off-by-default cheap.** A disabled :class:`Tracer` hands out the
  shared :data:`NOOP_SPAN` and touches no locks; the per-request cost is
  a couple of attribute loads (gated in ``bench_serving.py``).
* **Monotonic clocks only.** Span timestamps are ``time.monotonic()``
  offsets from the tracer's epoch; nothing here depends on wall time.
* **Skew-free stitching.** Worker spans cross the wire as *offsets*
  from the worker's own first timestamp. The coordinator re-anchors
  them inside its dispatch→receive envelope (centering the slack), so
  remote-host clock skew can never produce a child span outside its
  parent.
* **Wire-compatible.** The trace context rides ``Message.meta`` under
  :data:`~repro.serving.wire.TRACE_META_KEY`; peers that predate it
  ignore the key (decode preserves unknown meta) and peers that never
  send it get untraced requests — no version negotiation.

Span dictionaries use ``start_s``/``end_s`` relative to the tracer
epoch.  Export paths: :meth:`Tracer.chrome_trace` (Chrome
``trace_event`` JSON, loadable in Perfetto / ``chrome://tracing``),
per-span structured log lines on ``repro.serving.trace``, and per-stage
latency fold into :meth:`MetricsRegistry.record_stage`.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
import uuid
from collections import OrderedDict

from .wire import TRACE_META_KEY

__all__ = [
    "NOOP_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "Tracer",
    "WorkerSpanLog",
]

_log = logging.getLogger("repro.serving.trace")

#: Counter fields copied into ``he_ops`` span attributes (matches the
#: per-task counter dict the shard protocol already ships).
HE_OP_FIELDS = ("he_mult", "he_add", "he_rotate", "ntt", "modmuls", "butterflies")


class SpanContext:
    """Immutable (trace_id, span_id) pair used for parenting.

    Crosses thread boundaries inside a process (batch items, executor
    trace lists) and — flattened to a meta dict — process boundaries.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_meta(self, fe: bool = False) -> dict:
        ctx = {"trace_id": self.trace_id, "span_id": self.span_id}
        if fe:
            ctx["fe"] = True
        return ctx

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"SpanContext({self.trace_id}, {self.span_id})"


class _NoopSpan:
    """Shared do-nothing span handed out by disabled tracers.

    Every method is a cheap no-op returning something safe, so call
    sites never branch on "is tracing on".
    """

    __slots__ = ()

    trace_id = None
    span_id = None
    context = None

    def set(self, **attrs):
        return self

    def finish(self, end=None):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __bool__(self):
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """A single timed operation inside a trace.

    Usable as a context manager (pushes itself on the tracer's
    thread-local stack so nested :meth:`Tracer.span` calls parent
    implicitly) or detached via :meth:`Tracer.begin` + :meth:`finish`
    when start and end happen on different threads (batch waits).
    """

    __slots__ = (
        "_tracer", "trace_id", "span_id", "parent_id", "name",
        "start", "end", "attrs", "root", "_attached",
    )

    def __init__(self, tracer, trace_id, span_id, parent_id, name,
                 start, root=False, attrs=None):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = None
        self.attrs = dict(attrs) if attrs else {}
        self.root = root
        self._attached = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, end=None) -> "Span":
        if self.end is None:
            self.end = self._tracer._clock() if end is None else end
            self._tracer._finish(self)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._attached = True
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._attached:
            self._tracer._pop(self)
            self._attached = False
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self.finish()
        return False

    def __bool__(self):
        return True


class WorkerSpanLog:
    """Worker-side span accumulator, serialized into result meta.

    Records offsets relative to the log's creation time — never
    absolute clocks — so the coordinator can anchor the whole bundle
    inside its own dispatch→receive envelope regardless of clock skew
    (the remote-TCP case) or scheduling delay (the forked case).
    """

    __slots__ = ("t0", "spans")

    def __init__(self):
        self.t0 = time.monotonic()
        self.spans = []

    def add(self, name: str, start: float, **attrs) -> None:
        """Record a span that started at monotonic ``start`` and ends now."""
        now = time.monotonic()
        self.spans.append({
            "name": name,
            "off_s": round(start - self.t0, 9),
            "dur_s": round(now - start, 9),
            "attrs": attrs,
        })

    def dump(self) -> list:
        return self.spans


class Tracer:
    """Mints, collects and exports request traces.

    Parameters
    ----------
    enabled:
        When ``False`` every entry point returns :data:`NOOP_SPAN`
        immediately; the instance holds no state and takes no locks.
    metrics:
        Optional :class:`MetricsRegistry`; every finished span folds its
        duration into ``record_stage(name)`` so ``/metrics`` answers
        "queue-wait vs compute" without a captured trace.
    trace_dir:
        When set, each completed trace is written as Chrome
        ``trace_event`` JSON (``trace-<seq>-<id>.json``); at most
        ``max_trace_files`` files are retained (oldest pruned).
    max_traces:
        In-memory ring of completed traces (oldest evicted).
    log_spans:
        Emit one structured log line per finished span at INFO on
        ``repro.serving.trace`` (always emitted at DEBUG regardless).
    """

    def __init__(self, enabled: bool = True, metrics=None, trace_dir=None,
                 max_traces: int = 256, max_trace_files: int = 64,
                 log_spans: bool = False, clock=time.monotonic):
        self.enabled = bool(enabled)
        self._metrics = metrics
        self.trace_dir = None if trace_dir is None else str(trace_dir)
        self.max_traces = int(max_traces)
        self.max_trace_files = int(max_trace_files)
        self.log_spans = bool(log_spans)
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._live: dict[str, list] = {}
        self._finished: "OrderedDict[str, list]" = OrderedDict()
        self._seq = itertools.count()
        self.spans_total = 0
        self.traces_total = 0
        self.dropped_traces = 0
        if self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)

    # -- id minting ---------------------------------------------------------

    @staticmethod
    def _new_trace_id() -> str:
        return uuid.uuid4().hex[:16]

    @staticmethod
    def _new_span_id() -> str:
        return uuid.uuid4().hex[:8]

    # -- thread-local span stack -------------------------------------------

    def _stack(self):
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _push(self, span):
        self._stack().append(span)

    def _pop(self, span):
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit
            stack.remove(span)

    def current(self):
        """The innermost active span on this thread, or ``None``."""
        if not self.enabled:
            return None
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def current_context(self):
        span = self.current()
        return span.context if span is not None else None

    # -- span creation ------------------------------------------------------

    def accept(self, name: str, meta: dict, **attrs):
        """Front-end entry point: mint (or adopt) the request's root span.

        Rewrites ``meta[TRACE_META_KEY]`` to the root's context with the
        ``fe`` flag set, so the engine knows a front end owns the root
        and creates a child rather than a second root.
        """
        if not self.enabled:
            return NOOP_SPAN
        ctx = meta.get(TRACE_META_KEY)
        parent_id = None
        if isinstance(ctx, dict) and ctx.get("trace_id"):
            trace_id = str(ctx["trace_id"])
            parent_id = ctx.get("span_id")
        else:
            trace_id = self._new_trace_id()
        span = Span(self, trace_id, self._new_span_id(), parent_id, name,
                    self._clock(), root=True, attrs=attrs)
        meta[TRACE_META_KEY] = span.context.to_meta(fe=True)
        return span

    def server_span(self, name: str, meta: dict, **attrs):
        """Engine entry point: child of the front-end root, or its own root.

        Requests arriving without a trace context stay untraced (the
        backward-compat path); requests carrying a client-minted
        ``trace_id`` but no front-end root (loopback transports) get a
        root span adopting that id.
        """
        if not self.enabled:
            return NOOP_SPAN
        ctx = meta.get(TRACE_META_KEY)
        if not isinstance(ctx, dict) or not ctx.get("trace_id"):
            return NOOP_SPAN
        trace_id = str(ctx["trace_id"])
        root = not ctx.get("fe")
        return Span(self, trace_id, self._new_span_id(), ctx.get("span_id"),
                    name, self._clock(), root=root, attrs=attrs)

    def root_span(self, name: str, **attrs):
        """An unconditional root span for server-initiated work.

        Admin actions and other operator-triggered maintenance have no
        client trace context to adopt, but must still be visible in the
        span stream (and the per-stage latency series): this mints a
        fresh trace unconditionally, unlike :meth:`server_span` which
        stays no-op without a request context.
        """
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, self._new_trace_id(), self._new_span_id(), None,
                    name, self._clock(), root=True, attrs=attrs)

    def span(self, name: str, parent=None, **attrs):
        """Context-managed child of ``parent`` (default: current span)."""
        if not self.enabled:
            return NOOP_SPAN
        if parent is None:
            parent = self.current()
        if parent is None or parent.trace_id is None:
            return NOOP_SPAN
        return Span(self, parent.trace_id, self._new_span_id(),
                    parent.span_id, name, self._clock(), attrs=attrs)

    def begin(self, name: str, parent, **attrs):
        """Detached child span: started now, finished manually.

        For operations whose start and end live on different threads
        (batch waits, executor spans); never touches the thread-local
        stack. ``parent`` may be a :class:`Span` or :class:`SpanContext`.
        """
        if not self.enabled or parent is None or parent.trace_id is None:
            return NOOP_SPAN
        return Span(self, parent.trace_id, self._new_span_id(),
                    parent.span_id, name, self._clock(), attrs=attrs)

    def record(self, trace_id: str, name: str, start: float, end: float,
               parent_id=None, **attrs) -> str:
        """Record an already-timed span (coordinator envelopes)."""
        span_id = self._new_span_id()
        self._store({
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "start_s": start - self._epoch,
            "end_s": end - self._epoch,
            "attrs": dict(attrs),
        })
        return span_id

    def ingest(self, trace_id: str, parent_id: str, worker_spans,
               anchor_start: float, anchor_end: float, **extra) -> None:
        """Stitch worker-offset spans under a coordinator envelope.

        ``worker_spans`` carry offsets from the worker's own t0; the
        coordinator knows only that the work happened somewhere inside
        ``[anchor_start, anchor_end]`` on *its* clock. We center the
        bundle in that envelope (splitting the transport slack evenly)
        and clamp so skew can never push a child outside its parent.
        """
        if not worker_spans:
            return
        total = 0.0
        for ws in worker_spans:
            try:
                total = max(total, float(ws["off_s"]) + float(ws["dur_s"]))
            except (KeyError, TypeError, ValueError):
                return
        envelope = max(0.0, anchor_end - anchor_start)
        base = anchor_start + max(0.0, (envelope - total) / 2.0)
        for ws in worker_spans:
            start = base + float(ws["off_s"])
            end = start + float(ws["dur_s"])
            start = min(max(start, anchor_start), anchor_end)
            end = min(max(end, start), anchor_end)
            attrs = dict(ws.get("attrs") or {})
            attrs.update(extra)
            self.record(trace_id, str(ws.get("name", "worker")), start, end,
                        parent_id=parent_id, **attrs)

    # -- collection ---------------------------------------------------------

    def _finish(self, span: Span) -> None:
        self._store({
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "start_s": span.start - self._epoch,
            "end_s": span.end - self._epoch,
            "attrs": span.attrs,
        }, finalize=span.root)

    def _store(self, record: dict, finalize: bool = False) -> None:
        duration = max(0.0, record["end_s"] - record["start_s"])
        if self._metrics is not None:
            try:
                self._metrics.record_stage(record["name"], duration)
            except AttributeError:  # pragma: no cover - older registry
                pass
        level = logging.INFO if self.log_spans else logging.DEBUG
        if _log.isEnabledFor(level):
            _log.log(level, "span %s %.3fms trace=%s", record["name"],
                     duration * 1e3, record["trace_id"],
                     extra={"span": record})
        done = None
        with self._lock:
            self.spans_total += 1
            self._live.setdefault(record["trace_id"], []).append(record)
            if finalize:
                done = self._finalize_locked(record["trace_id"])
        if done is not None and self.trace_dir is not None:
            self._write_trace_file(*done)

    def _finalize_locked(self, trace_id: str):
        spans = self._live.pop(trace_id, [])
        if trace_id in self._finished:
            # A retried request reused its trace id; merge rather than
            # clobber the earlier attempt's spans.
            self._finished[trace_id].extend(spans)
            self._finished.move_to_end(trace_id)
        else:
            self._finished[trace_id] = spans
            self.traces_total += 1
        while len(self._finished) > self.max_traces:
            self._finished.popitem(last=False)
            self.dropped_traces += 1
        return trace_id, list(self._finished[trace_id])

    # -- export -------------------------------------------------------------

    def trace_ids(self) -> list:
        with self._lock:
            return list(self._finished.keys())

    def spans_of(self, trace_id: str) -> list:
        with self._lock:
            return list(self._finished.get(trace_id, []))

    def last_trace_id(self):
        with self._lock:
            return next(reversed(self._finished), None)

    def chrome_trace(self, trace_id: str) -> dict:
        """One trace as a Chrome ``trace_event`` JSON object."""
        spans = self.spans_of(trace_id)
        return chrome_trace_events(spans)

    def _write_trace_file(self, trace_id: str, spans: list) -> None:
        seq = next(self._seq)
        path = os.path.join(self.trace_dir, f"trace-{seq:06d}-{trace_id}.json")
        try:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(chrome_trace_events(spans), fh)
        except OSError as exc:  # pragma: no cover - disk trouble
            _log.warning("could not write trace file %s: %s", path, exc)
            return
        try:
            names = sorted(
                name for name in os.listdir(self.trace_dir)
                if name.startswith("trace-") and name.endswith(".json")
            )
            for name in names[:-self.max_trace_files or None]:
                os.unlink(os.path.join(self.trace_dir, name))
        except OSError:  # pragma: no cover - concurrent pruning
            pass


def chrome_trace_events(spans: list) -> dict:
    """Convert span dicts to the Chrome ``trace_event`` format.

    Complete (``ph: "X"``) events with microsecond timestamps relative
    to the trace's first span.  Each shard worker renders on its own
    ``tid`` lane so concurrent shard tasks do not stack ambiguously.
    """
    if spans:
        origin = min(s["start_s"] for s in spans)
    else:
        origin = 0.0
    events = []
    for s in spans:
        attrs = s.get("attrs") or {}
        worker = attrs.get("worker")
        tid = 2 + int(worker) if isinstance(worker, int) and worker >= 0 else 1
        args = dict(attrs)
        args["span_id"] = s["span_id"]
        if s.get("parent_id"):
            args["parent_id"] = s["parent_id"]
        events.append({
            "name": s["name"],
            "cat": "serving",
            "ph": "X",
            "ts": round((s["start_s"] - origin) * 1e6, 3),
            "dur": round(max(0.0, s["end_s"] - s["start_s"]) * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    events.sort(key=lambda ev: ev["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


#: Shared disabled tracer: the default wherever tracing is optional.
NULL_TRACER = Tracer(enabled=False)
