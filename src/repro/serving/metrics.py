"""Serving observability: one registry, every layer reports into it.

The gateway, the engine, and the batcher all share a single
:class:`MetricsRegistry`.  Each records what only it can see -- the
gateway its queue depth and connection count, the engine per-request and
per-layer latencies, the batcher how full each flushed batch was -- and
``snapshot()`` folds everything into one JSON-safe dict that is served
three ways: over HTTP (``GET /metrics`` on the gateway port), as a wire
``Message("metrics")`` round, and periodically on stdout via
``repro serve --stats-interval``.

Percentiles come from bounded ring buffers (the last ``reservoir_size``
observations per series), req/s from a timestamp deque over a sliding
window -- both O(1) per observation, so recording is cheap enough to sit
on the request path.  HE-op counters are read straight from
:data:`repro.bfv.counters.GLOBAL_COUNTERS`; they are process-wide
totals, exact when the engine runs serially and a close running tally
under concurrency (the counters are deliberately unlocked).

Noise headroom is *analytic*, not measured: the server never sees a
secret key, so it cannot measure invariant noise.  Instead
:func:`noise_floor_bits` re-derives the Table III worst-case budget
floor for each registered model (same proxy convention as the
conformance suite) -- the number of bits of budget a client is
guaranteed to have left after the deepest layer, i.e. how much margin
the deployment has before decryption failures.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

from ..bfv.counters import GLOBAL_COUNTERS

__all__ = [
    "MetricsRegistry",
    "health_payload",
    "noise_floor_bits",
    "prometheus_text",
    "render_http",
]


def noise_floor_bits(entry) -> float:
    """Worst-case Table III noise-budget floor for one registered model.

    Mirrors the conformance suite's ``_table3_min_budget_bound``: the
    analytic minimum over the model's linear layers of the budget left
    after a worst-case evaluation (slot-encoded weight plaintexts with
    coefficients bounded by t: one window of base Wdcmp = t, l_pt = 1).
    Cached on the entry -- the bound is a pure function of (params,
    network, schedule), all frozen after registration.
    """
    cached = getattr(entry, "_noise_floor_bits", None)
    if cached is not None:
        return cached
    from ..core.noise_model import (
        NoiseMode,
        Schedule,
        eta_mult,
        eta_rotate,
        fresh_noise,
    )
    from ..core.ptune import ModelParams
    from ..nn.layers import ConvLayer

    params = entry.params
    t_bits = params.plain_modulus.bit_length()
    proxy = ModelParams(
        n=params.n, plain_bits=t_bits, coeff_bits=params.coeff_bits,
        w_dcmp_bits=t_bits, a_dcmp_bits=params.a_dcmp_bits,
    )
    v0 = fresh_noise(proxy, NoiseMode.WORST)
    eta_m = eta_mult(proxy, NoiseMode.WORST, l_pt=1)
    eta_a = eta_rotate(proxy, NoiseMode.WORST)
    bounds = []
    for layer in entry.network.linear_layers:
        if isinstance(layer, ConvLayer):
            mult_terms = layer.ci * layer.fw**2
            rot_terms = layer.ci * (layer.fw**2 - 1)
        else:
            mult_terms = layer.ni
            rot_terms = layer.ni - 1
        if entry.schedule is Schedule.PARTIAL_ALIGNED:
            noise = mult_terms * eta_m * v0 + rot_terms * eta_a
        else:
            noise = mult_terms * eta_m * (v0 + eta_a) + rot_terms * eta_a
        bounds.append(params.noise_capacity_bits - math.log2(noise))
    floor = round(min(bounds), 3)
    entry._noise_floor_bits = floor
    return floor


class _Series:
    """Bounded latency series: count/total plus a percentile ring buffer."""

    __slots__ = ("count", "total_s", "samples")

    def __init__(self, reservoir_size: int):
        self.count = 0
        self.total_s = 0.0
        self.samples: deque[float] = deque(maxlen=reservoir_size)

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        self.samples.append(seconds)

    def summary(self) -> dict:
        samples = sorted(self.samples)
        out = {"count": self.count}
        if samples:
            def pct(q: float) -> float:
                idx = min(len(samples) - 1, int(round(q * (len(samples) - 1))))
                return round(samples[idx] * 1e3, 3)

            out["p50_ms"] = pct(0.50)
            out["p95_ms"] = pct(0.95)
            out["mean_ms"] = round(self.total_s / self.count * 1e3, 3)
        return out


class MetricsRegistry:
    """Thread-safe sink for serving metrics; ``snapshot()`` is JSON-safe.

    All mutation paths take one short lock; gauges are pull-based
    callables evaluated only at snapshot time, so a gauge can close over
    live server state (queue depth, session count) without the server
    pushing updates.
    """

    def __init__(self, window_s: float = 60.0, reservoir_size: int = 512):
        self.window_s = float(window_s)
        self.reservoir_size = int(reservoir_size)
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests = _Series(self.reservoir_size)
        self._by_kind: dict[str, int] = {}
        self._outcomes = {"ok": 0, "error": 0, "busy": 0}
        self._completions: deque[float] = deque()
        self._layers: dict[str, _Series] = {}
        self._batch_fill: dict[int, int] = {}
        self._batch_requests = 0
        self._stages: dict[str, _Series] = {}
        self._gauges: dict[str, object] = {}

    # -- recording -----------------------------------------------------

    def record_request(self, kind: str, seconds: float, reply_kind: str) -> None:
        """One protocol round completed: ``reply_kind`` decides the outcome."""
        if reply_kind == "busy":
            outcome = "busy"
        elif reply_kind == "error":
            outcome = "error"
        else:
            outcome = "ok"
        now = time.monotonic()
        with self._lock:
            self._requests.record(seconds)
            self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
            self._outcomes[outcome] += 1
            self._completions.append(now)
            horizon = now - self.window_s
            while self._completions and self._completions[0] < horizon:
                self._completions.popleft()

    def record_layer(self, layer: str, seconds: float) -> None:
        """One linear layer evaluated (HE compute + masking, per request)."""
        with self._lock:
            series = self._layers.get(layer)
            if series is None:
                series = self._layers[layer] = _Series(self.reservoir_size)
            series.record(seconds)

    def record_batch(self, size: int) -> None:
        """One batch flushed through the executor with ``size`` requests."""
        with self._lock:
            self._batch_fill[size] = self._batch_fill.get(size, 0) + 1
            self._batch_requests += size

    def record_stage(self, stage: str, seconds: float) -> None:
        """One trace span finished: per-stage latency histogram.

        Fed by the :class:`~repro.serving.tracing.Tracer` for every
        span (``handle``, ``batch_wait``, ``execute``, ``worker.compute``,
        ...), so ``/metrics`` can answer "queue-wait vs compute" without
        anyone capturing a trace.
        """
        with self._lock:
            series = self._stages.get(stage)
            if series is None:
                series = self._stages[stage] = _Series(self.reservoir_size)
            series.record(seconds)

    def add_gauge(self, name: str, fn) -> None:
        """Register a pull-based gauge; ``fn()`` runs at snapshot time."""
        with self._lock:
            self._gauges[name] = fn

    # -- reporting -----------------------------------------------------

    def requests_per_second(self) -> float:
        now = time.monotonic()
        with self._lock:
            horizon = now - self.window_s
            while self._completions and self._completions[0] < horizon:
                self._completions.popleft()
            window = min(self.window_s, max(now - self._started, 1e-9))
            return len(self._completions) / window

    def snapshot(self) -> dict:
        """Everything, as one JSON-serialisable dict."""
        rps = self.requests_per_second()
        he = GLOBAL_COUNTERS.snapshot()
        with self._lock:
            fills = dict(self._batch_fill)
            batches = sum(fills.values())
            batch = {
                "histogram": {str(k): v for k, v in sorted(fills.items())},
                "batches": batches,
                "requests": self._batch_requests,
                "mean_fill": round(self._batch_requests / batches, 3) if batches else 0.0,
            }
            out = {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests": {
                    **self._requests.summary(),
                    "per_second": round(rps, 3),
                    "window_s": self.window_s,
                    "by_kind": dict(self._by_kind),
                    **{k: v for k, v in self._outcomes.items()},
                },
                "layers": {
                    name: series.summary()
                    for name, series in sorted(self._layers.items())
                },
                "batch_fill": batch,
                "stages": {
                    name: series.summary()
                    for name, series in sorted(self._stages.items())
                },
                "he_ops": {
                    "he_mult": he.he_mult,
                    "he_add": he.he_add,
                    "he_rotate": he.he_rotate,
                    "ntt": he.ntt,
                    "modmuls": he.modmuls,
                    "butterflies": he.butterflies,
                },
                "gauges": {},
            }
            gauges = dict(self._gauges)
        # Gauges run unlocked: they may touch other subsystems' locks.
        for name, fn in sorted(gauges.items()):
            try:
                out["gauges"][name] = fn()
            except Exception as exc:  # pragma: no cover - defensive
                out["gauges"][name] = f"error: {exc}"
        return out


# -- HTTP endpoints (shared by both front ends) --------------------------------


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_text(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text format.

    Version 0.0.4 exposition: ``# TYPE`` lines, one sample per line,
    seconds as the base unit for latencies.  Series summaries map to a
    gauge triple (p50/p95/mean) rather than native histograms -- the
    registry keeps percentile reservoirs, not cumulative buckets.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, samples, help_text: str = "") -> None:
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, (int, float)):
                continue
            label_s = ""
            if labels:
                inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
                label_s = "{" + inner + "}"
            lines.append(f"{name}{label_s} {value}")

    req = snapshot.get("requests", {})
    emit("repro_uptime_seconds", "gauge",
         [({}, snapshot.get("uptime_s", 0.0))])
    emit("repro_requests_total", "counter",
         [({"outcome": o}, req.get(o, 0)) for o in ("ok", "error", "busy")],
         "Protocol rounds handled, by outcome.")
    emit("repro_requests_by_kind_total", "counter",
         [({"kind": k}, v) for k, v in sorted(req.get("by_kind", {}).items())])
    emit("repro_requests_per_second", "gauge",
         [({}, req.get("per_second", 0.0))])
    latency = [({"q": q}, req[key] / 1e3)
               for q, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"))
               if key in req]
    emit("repro_request_latency_seconds", "gauge", latency,
         "Request latency quantiles over the reservoir window.")

    for section, metric in (("layers", "repro_layer_seconds"),
                            ("stages", "repro_stage_seconds")):
        entries = snapshot.get(section, {})
        samples = []
        counts = []
        for name, summary in sorted(entries.items()):
            counts.append(({section[:-1]: name}, summary.get("count", 0)))
            for q, key in (("0.5", "p50_ms"), ("0.95", "p95_ms")):
                if key in summary:
                    samples.append(({section[:-1]: name, "q": q},
                                    summary[key] / 1e3))
        if counts:
            emit(metric + "_count", "counter", counts)
        if samples:
            emit(metric, "gauge", samples)

    batch = snapshot.get("batch_fill", {})
    emit("repro_batches_total", "counter", [({}, batch.get("batches", 0))])
    emit("repro_batch_mean_fill", "gauge", [({}, batch.get("mean_fill", 0.0))])
    emit("repro_batch_fill_total", "counter",
         [({"size": k}, v)
          for k, v in sorted(batch.get("histogram", {}).items())])

    emit("repro_he_ops_total", "counter",
         [({"op": k}, v) for k, v in sorted(snapshot.get("he_ops", {}).items())],
         "Process-wide HE operation counters.")
    emit("repro_gauge", "gauge",
         [({"name": k}, v) for k, v in sorted(snapshot.get("gauges", {}).items())
          if isinstance(v, (int, float)) and not isinstance(v, bool)])
    return "\n".join(lines) + "\n"


def health_payload(engine, frontend: str | None = None) -> dict:
    """Liveness + worker-quorum status for ``GET /healthz``.

    ``status`` is ``"ok"`` while the engine can serve at full strength
    and ``"degraded"`` once the shard pool is below the executor's
    quorum (requests then fall back to local execution or fail,
    depending on ``fallback_local``).
    """
    payload: dict = {"status": "ok"}
    if frontend:
        payload["frontend"] = frontend
    if engine is None:
        return payload
    registry = getattr(engine, "registry", None)
    if registry is not None:
        payload["models"] = sorted(registry.names())
        payload["zoo_generation"] = getattr(registry, "zoo_generation", 0)
    sessions = getattr(engine, "_sessions", None)
    if sessions is not None:
        payload["sessions"] = len(sessions)
    payload["degraded_calls"] = getattr(engine, "degraded_calls", 0)
    payload["backend_failures"] = getattr(engine, "backend_failures", 0)
    executor = getattr(engine, "executor", None)
    pool = getattr(executor, "pool", None)
    if pool is not None:
        available = pool.available_workers()
        quorum = int(getattr(executor, "quorum", 1))
        pool_status = {
            "workers": pool.workers,
            "available_workers": available,
            "quorum": quorum,
            "quorum_ok": available >= quorum,
            "respawns_total": getattr(pool, "respawns_total", 0),
            "retries_total": getattr(pool, "retries_total", 0),
            "upgrading_slots": getattr(pool, "upgrading_slots", 0),
            "upgrades_total": getattr(pool, "upgrades_total", 0),
        }
        payload["pool"] = pool_status
        if not pool_status["quorum_ok"]:
            payload["status"] = "degraded"
    return payload


def render_http(target: str, engine, metrics) -> tuple:
    """Route one HTTP target to ``(status_line, content_type, body_bytes)``.

    The single router behind both front ends' ``GET`` handling, so
    ``/metrics`` (JSON), ``/metrics?format=prometheus`` (text
    exposition) and ``/healthz`` behave identically over the async
    gateway and the threaded socket server.
    """
    import json as _json
    from urllib.parse import parse_qs, urlsplit

    parts = urlsplit(target)
    path = parts.path or "/"
    query = parse_qs(parts.query)
    if path in ("/metrics", "/metrics/"):
        if metrics is None:
            body = _json.dumps({"error": "metrics not enabled"}).encode()
            return "404 Not Found", "application/json", body
        snapshot = metrics.snapshot()
        if query.get("format", [""])[0] == "prometheus":
            return ("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                    prometheus_text(snapshot).encode())
        return "200 OK", "application/json", _json.dumps(snapshot).encode()
    if path in ("/healthz", "/healthz/"):
        payload = health_payload(engine)
        status = "200 OK" if payload["status"] == "ok" \
            else "503 Service Unavailable"
        return status, "application/json", _json.dumps(payload).encode()
    body = _json.dumps({"error": f"no such endpoint {path}"}).encode()
    return "404 Not Found", "application/json", body
