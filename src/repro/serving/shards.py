"""Multi-process sharded execution backend for the serving engine.

One Python process cannot use more than one core for the plan math, so
the lock-free native NTT and the memmapped ``.rpa`` artifacts (whose
weight pages N processes share through the OS page cache) are scaling
enablers the single-process :class:`~repro.serving.engine.ServingEngine`
never cashes in.  This module adds the missing piece:

* :class:`ShardPool` forks ``N`` worker processes.  Each worker
  ``load_zoo``'s the same artifact directory -- memmapped weight stacks,
  zero plan recompilation, shared pages -- reports readiness, then pulls
  work from its own task queue.  The coordinator dispatches each task to
  the least-loaded live worker, so idle workers still balance the load
  -- but no IPC queue ever has two consumer processes.  That queue
  topology is a *fault-tolerance* decision: a ``multiprocessing.Queue``
  reader holds a shared lock while blocked, so a worker SIGKILLed
  mid-``get`` on a shared queue would wedge every sibling forever.
  With per-worker queues a corpse corrupts only its own channels, which
  are discarded and rebuilt on respawn.
* :class:`ShardExecutor` plugs into the engine's execution-backend seam
  (:class:`~repro.serving.engine.LocalExecutor` documents the contract).
  A batched ``(k, B, n)`` layer call is split into per-shard sub-batches
  by request rows -- and, when a single request meets a wide convolution,
  by output-channel ranges (``ConvPlan.execute(..., oc_range=...)``) --
  shipped over the worker channels, and the partial outputs are merged
  back in order.  Every ciphertext crosses the process boundary through
  :mod:`repro.bfv.serialize` inside a :mod:`repro.serving.wire` frame,
  so the IPC path is the *same* validated wire format the network uses.

Worker channels are pluggable per worker; the pool speaks three:

``queue`` (default)
    Frames (headers *and* ciphertext blobs) are pickled through
    per-worker ``multiprocessing.Queue`` pairs.
``shm`` (``channels="shm"``)
    Zero-copy local IPC: each forked worker's channel pair carries its
    ciphertext slabs through a :class:`~repro.serving.shm_ring.ShmRing`
    (raw page-aligned int64 bytes in ``multiprocessing.shared_memory``),
    while the mp queues carry only small control frames holding a
    :data:`~repro.serving.wire.SLAB_META_KEY` descriptor (ring offset,
    byte count, CRC).  A slab that cannot fit the ring degrades that
    one task to the in-band queue encoding, so ring capacity is a
    performance knob, never a correctness constraint.
``tcp://host:port`` (``remote_endpoints=[...]``)
    Remote workers: each endpoint is a :class:`ShardWorkerServer`
    (``repro shard-worker``) on any host that memmaps the same ``.rpa``
    artifacts; the coordinator speaks the identical task/keys/result
    frames over a framed TCP stream (:func:`~repro.serving.wire
    .send_frame`).  Supervision extends to the network: connection
    loss or a corrupt frame marks the worker dead, its in-flight tasks
    requeue exactly once onto survivors, and the slot reconnects with
    backoff, replaying every live Galois-key blob before new work is
    dispatched.

Bit-identity is the invariant that makes the split safe: plan execution
is deterministic and independent per request and per output channel, so
any partition of the batch produces ciphertexts byte-identical to a
single-process run (pinned by ``tests/test_conformance.py``).  Blinding
stays in the coordinator -- workers never see masks -- and each worker
ships back its HE op-counter delta, which the executor folds into the
coordinator's :data:`~repro.bfv.counters.GLOBAL_COUNTERS` so accounting
matches single-process execution exactly.

Galois keys are too large to ship per task: the executor broadcasts each
session's key blob once to every worker (workers cache them, dropping
them on session close/eviction), so a task only references a ``key_id``.
Ids are scoped per executor and per upload -- multiprocessing queue
feeders give no cross-queue ordering guarantee, so correctness rests on
"cache hit implies exactly the right keys": a worker that sees an
unknown id blocks draining its own (FIFO) key channel until the
broadcast lands; it can never *mistake* stale keys for current ones.

Fault tolerance
---------------

The pool is *supervised*: a monitor thread watches worker liveness and
pending-task progress, and a crashed or stalled worker costs a retry,
not the request.

* Every task is dispatched to exactly one worker incarnation, and the
  worker announces it with a ``claimed`` frame before executing, so the
  coordinator knows both where every in-flight task lives and whether
  execution started.  When a worker dies, everything assigned to the
  dead incarnation is requeued onto the survivors immediately; a task
  making no progress for ``attempt_timeout_s`` (hung worker, lost
  reply) is requeued by the stall check.
* Each requeue bumps the task's ``attempt`` counter; after
  ``max_attempts`` the task fails with a :class:`ShardError` and the
  engine degrades to its in-process executor rather than failing the
  session.
* Dead workers are respawned (fresh ``load_zoo`` from the same
  memmapped artifact dir) with exponential backoff; the coordinator
  keeps every live key blob and replays it into the fresh worker's key
  channel, so respawned workers serve existing sessions without client
  involvement.  After ``max_respawns`` deaths a slot is abandoned and
  the survivors carry the load; when every slot is abandoned the pool
  fails all pending and future work fast (the engine's local fallback
  takes over).
* Exactly-once accounting holds under retries because op-counter deltas
  travel inside result frames and are folded only from the single
  *accepted* reply per task (first ``ok`` wins; duplicates from
  spurious requeues and stale attempts are dropped on the floor).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue
import socket
import threading
import time
import uuid
from dataclasses import dataclass

from ..bfv.counters import GLOBAL_COUNTERS
from ..bfv.serialize import deserialize_ciphertext, serialize_ciphertext
from ..nn.layers import ConvLayer
from .engine import ExecutionBackendError
from .faults import WorkerFaults
from .metrics import noise_floor_bits
from .tracing import WorkerSpanLog
from .transport import bind_listener
from .shm_ring import (
    RingCorruption,
    ShmRing,
    pack_into_ring,
    retire_ring,
    unpack_from_ring,
)
from .wire import (
    TRACE_META_KEY,
    Message,
    attempt_of,
    decode_message,
    encode_message,
    recv_frame,
    send_frame,
)

logger = logging.getLogger(__name__)


class ShardError(ExecutionBackendError):
    """A shard pool failure: dead worker, startup error, or task failure."""


def _retire_queue(q) -> None:
    """Release a coordinator-owned queue that may never be drained.

    A ``multiprocessing.Queue`` write is asynchronous: a feeder thread
    moves buffered items into the pipe.  When the consumer is gone (a
    dead or stopped worker) and the pipe is full -- easy with multi-MB
    Galois key blobs -- that feeder blocks forever, and the interpreter's
    multiprocessing atexit hook would then hang *process shutdown*
    joining it.  ``cancel_join_thread`` forfeits the undelivered items
    (they have no reader anyway) so exit never blocks on a corpse's
    queue.
    """
    if q is not None:
        try:
            q.cancel_join_thread()
        except (AttributeError, OSError):  # pragma: no cover - defensive
            pass


# -- worker process -----------------------------------------------------------


def _force_ntt_backend(native: bool) -> None:
    """Pin this worker's NTT backend regardless of what the parent chose.

    A forked child inherits the parent's already-loaded kernel state and
    memoized engines, so forcing a backend means resetting both and
    letting ``load_zoo`` rebuild engines lazily.  The two backends are
    bit-identical, so mixed coordinator/worker backends stay correct --
    this hook exists so the conformance suite can pin each side.
    """
    from ..bfv import native as native_mod
    from ..bfv import ntt_batch

    os.environ[native_mod.NATIVE_ENV_VAR] = "1" if native else "0"
    with native_mod._LOCK:
        native_mod._KERNEL = None
        native_mod._TRIED = False
    ntt_batch._get_engine_cached.cache_clear()


def _drain_key_queue(key_queue, key_cache, params_by_model, block_for=None,
                     timeout_s: float = 30.0):
    """Apply pending key broadcasts; optionally block until one arrives.

    ``block_for`` is a key id the caller needs *now* (its task references
    it); because broadcasts are enqueued before any task that uses them
    -- and replayed into a respawned worker's fresh channel before it is
    handed tasks -- a bounded blocking drain is guaranteed to find it
    unless the coordinator died.
    """
    from ..bfv.serialize import deserialize_galois_keys

    deadline = time.monotonic() + timeout_s
    while True:
        try:
            if block_for is not None and block_for not in key_cache:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardError(
                        f"timed out waiting for Galois keys {block_for!r}"
                    )
                payload = key_queue.get(timeout=remaining)
            else:
                payload = key_queue.get_nowait()
        except queue.Empty:
            if block_for is not None and block_for not in key_cache:
                continue
            return
        message = decode_message(payload)
        if message.kind == "keys":
            key_id, model = message.require("key_id", "model")
            key_cache[key_id] = deserialize_galois_keys(
                message.blobs[0], params_by_model[model]
            )
        elif message.kind == "drop_keys":
            key_cache.pop(message.require("key_id"), None)
        if block_for is not None and block_for in key_cache:
            return


def _run_task(registry, key_cache, request: Message) -> Message:
    """Execute one layer sub-batch; reply with outputs + counter delta.

    When the task carries a trace context the worker records its own
    deserialize / compute / serialize spans as *offsets* from a local
    t0 (see :class:`~repro.serving.tracing.WorkerSpanLog`) and ships
    them back in the result meta; the coordinator anchors them inside
    its dispatch envelope, so no cross-process clock comparison ever
    happens.
    """
    model, layer_name, task_id = request.require("model", "layer", "task")
    key_ids = request.require("key_ids")
    counts = [int(c) for c in request.require("cts_per_request")]
    oc_range = request.meta.get("oc_range")
    slog = WorkerSpanLog() if TRACE_META_KEY in request.meta else None
    entry = registry.get(model)
    layer = entry.layer(layer_name)
    plan = entry.plans[layer_name]
    t_stage = time.monotonic()
    batch_inputs, offset = [], 0
    for count in counts:
        batch_inputs.append(
            [
                deserialize_ciphertext(blob, entry.params)
                for blob in request.blobs[offset : offset + count]
            ]
        )
        offset += count
    batch_keys = [key_cache[key_id] for key_id in key_ids]
    if slog is not None:
        slog.add(
            "worker.deserialize", t_stage,
            bytes=sum(len(blob) for blob in request.blobs),
        )
        t_stage = time.monotonic()
    before = GLOBAL_COUNTERS.snapshot()
    if isinstance(layer, ConvLayer):
        outputs = plan.execute_batch(
            batch_inputs,
            batch_keys,
            oc_range=tuple(int(v) for v in oc_range) if oc_range else None,
        )
    else:
        outputs = [
            [ct]
            for ct in plan.execute_batch(
                [cts[0] for cts in batch_inputs], batch_keys
            )
        ]
    delta = GLOBAL_COUNTERS.diff(before)
    counters = {
        "he_mult": delta.he_mult,
        "he_add": delta.he_add,
        "he_rotate": delta.he_rotate,
        "ntt": delta.ntt,
        "modmuls": delta.modmuls,
        "butterflies": delta.butterflies,
    }
    if slog is not None:
        slog.add(
            "worker.compute", t_stage,
            he_ops=counters,
            noise_headroom_bits=noise_floor_bits(entry),
        )
        t_stage = time.monotonic()
    blobs = [
        serialize_ciphertext(ct, entry.params)
        for request_cts in outputs
        for ct in request_cts
    ]
    meta = {
        "task": task_id,
        "status": "ok",
        "attempt": attempt_of(request),
        "outputs_per_request": [len(cts) for cts in outputs],
        "counters": counters,
    }
    if slog is not None:
        slog.add(
            "worker.serialize", t_stage,
            bytes=sum(len(blob) for blob in blobs),
        )
        meta["spans"] = slog.dump()
    return Message("result", meta, blobs)


def _worker_main(
    worker_id, incarnation, artifact_dir, verify, ntt_native, task_queue,
    key_queue, result_queue, ready_queue, fault_plan, task_ring=None,
    result_ring=None,
):
    """Worker entry point: warm-start from artifacts, then serve tasks."""
    try:
        if fault_plan is not None:
            fault_plan.on_worker_start(worker_id, incarnation)
        if ntt_native is not None:
            _force_ntt_backend(bool(ntt_native))
        from ..artifacts.zoo import load_zoo

        registry = load_zoo(artifact_dir, verify=verify)
        params_by_model = {
            name: registry.get(name).params for name in registry.names()
        }
    except BaseException as exc:
        ready_queue.put(("error", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    ready_queue.put(("ready", worker_id, registry.names()))
    key_cache: dict[str, object] = {}
    tasks_claimed = 0
    while True:
        payload = task_queue.get()
        if payload is None:  # stop sentinel from ShardPool.stop()
            return
        task_id = None
        try:
            # Control frames decode before their slab is touched, so a
            # claim can go out (and the task id is known for error
            # replies) even when the slab turns out to be bad.
            try:
                request, _ = unpack_from_ring(payload, task_ring)
            except RingCorruption as exc:
                # The task ring is no longer trustworthy (torn slab,
                # desynced descriptor).  Crash-only recovery: exit so
                # the supervisor requeues this incarnation's tasks and
                # respawns the slot with fresh channels.
                logger.error(
                    "shard worker %d: task ring corrupted (%s); exiting",
                    worker_id, exc,
                )
                return
            attempt = attempt_of(request)
            task_id = request.meta.get("task")
            # Claim before executing: claims tell the coordinator that
            # execution started (refreshing the stall clock) and carry
            # this incarnation, pinning the task to this process.
            result_queue.put(
                encode_message(
                    Message(
                        "claimed",
                        {
                            "task": task_id,
                            "attempt": attempt,
                            "worker": worker_id,
                            "incarnation": incarnation,
                        },
                    )
                )
            )
            # Opportunistically apply key broadcasts/drops queued since
            # the last task (drops must not wait for a blocking need).
            _drain_key_queue(key_queue, key_cache, params_by_model)
            if request.kind == "ping":
                reply = Message(
                    "result",
                    {
                        "task": request.require("task"),
                        "status": "ok",
                        "attempt": attempt,
                        "worker": worker_id,
                        "incarnation": incarnation,
                        "models": registry.names(),
                        "cached_keys": sorted(key_cache),
                        "pid": os.getpid(),
                    },
                )
            elif request.kind == "task":
                tasks_claimed += 1
                if fault_plan is not None:
                    fault_plan.on_task(worker_id, incarnation, tasks_claimed)
                deadline_mono = request.meta.get("deadline_mono")
                if (
                    deadline_mono is not None
                    and time.monotonic() > float(deadline_mono)
                ):
                    raise ShardError(
                        "request deadline exceeded before execution"
                    )
                task_id = request.require("task")
                for key_id in request.require("key_ids"):
                    if key_id not in key_cache:
                        _drain_key_queue(
                            key_queue, key_cache, params_by_model,
                            block_for=key_id,
                        )
                reply = _run_task(registry, key_cache, request)
            else:
                reply = Message(
                    "result",
                    {
                        "task": request.meta.get("task", "?"),
                        "status": "error",
                        "attempt": attempt,
                        "reason": f"unknown shard request {request.kind!r}",
                    },
                )
        except Exception as exc:  # keep the worker alive for the next task
            reply = Message(
                "result",
                {
                    "task": task_id if task_id is not None else "?",
                    "status": "error",
                    "attempt": attempt_of(request) if task_id is not None else 0,
                    "reason": f"worker {worker_id}: {type(exc).__name__}: {exc}",
                },
            )
        # Result blobs ride the result ring when the channel has one (a
        # slab the ring cannot take degrades to the in-band encoding).
        frame, _ = pack_into_ring(reply, result_ring)
        result_queue.put(frame)


# -- coordinator --------------------------------------------------------------


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """Parse ``tcp://host:port`` (or bare ``host:port``) -> ``(host, port)``."""
    spec = str(endpoint).strip()
    if spec.startswith("tcp://"):
        spec = spec[len("tcp://") :]
    host, sep, port = spec.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"malformed shard-worker endpoint {endpoint!r} "
            "(expected tcp://host:port)"
        )
    return host, int(port)


class _RemoteConn:
    """One live connection to a remote shard worker.

    Quacks enough like a ``multiprocessing.Process`` (``is_alive`` /
    ``terminate`` / ``join``) that the pool's supervision loop treats a
    lost connection exactly like a dead fork: requeue, backoff,
    respawn -- where "respawn" is a fresh connection plus a Galois-key
    replay.  Sends are serialized under a lock (dispatch, broadcasts
    and the supervisor all write); any send or receive failure marks
    the connection dead, and the mark is sticky until the slot
    reconnects.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._send_lock = threading.Lock()
        self._dead = threading.Event()

    def is_alive(self) -> bool:
        return not self._dead.is_set()

    def mark_dead(self) -> None:
        self._dead.set()
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    # Process-shaped aliases for the supervisor.
    def terminate(self) -> None:
        self.mark_dead()

    def join(self, timeout=None) -> None:
        return None

    def send(self, payload: bytes) -> None:
        if self._dead.is_set():
            raise OSError("remote shard worker connection is closed")
        try:
            with self._send_lock:
                send_frame(self.sock, payload)
        except OSError:
            self.mark_dead()
            raise


class _PendingTask:
    """Coordinator-side state for one in-flight task (guarded by pool lock).

    The un-encoded request :class:`~repro.serving.wire.Message` is kept
    so a retry can re-dispatch it with a bumped ``attempt`` -- tasks are
    deterministic, so a replay is bit-identical.
    """

    __slots__ = (
        "request", "event", "reply", "attempt", "assigned", "claimed_at",
        "dispatched_at", "first_dispatched_at",
    )

    def __init__(self, request: Message):
        self.request = request
        self.event = threading.Event()
        self.reply: Message | None = None
        self.attempt = 0
        #: ``(worker_id, incarnation)`` this attempt was dispatched to,
        #: or ``None`` while parked waiting for a live worker.
        self.assigned: tuple[int, int] | None = None
        self.claimed_at: float | None = None
        self.dispatched_at: float | None = None
        #: When attempt 0 left the coordinator -- the start of the task's
        #: trace envelope, surviving requeues (``dispatched_at`` resets).
        self.first_dispatched_at: float | None = None


@dataclass
class _Slot:
    """One supervised worker position in the pool.

    ``endpoint`` selects the channel kind: ``None`` is a forked local
    worker (queues, optionally with shm rings), a ``tcp://`` endpoint
    is a remote worker whose ``process`` is a :class:`_RemoteConn`.
    """

    worker_id: int
    process: object = None
    task_queue: object = None
    result_queue: object = None
    key_queue: object = None
    task_ring: object = None
    result_ring: object = None
    endpoint: str | None = None
    incarnation: int = 0
    ready: bool = False
    abandoned: bool = False
    respawn_at: float | None = None
    deaths: int = 0
    last_error: str = ""
    #: Excluded from new dispatch (admin drain, or the drain phase of a
    #: rolling upgrade); in-flight tasks finish normally.
    draining: bool = False
    #: The rolling-upgrade swap window: :meth:`ShardPool.rolling_upgrade`
    #: owns this slot's lifecycle, so the supervisor must not treat the
    #: deliberate kill/reconnect as a death.
    upgrading: bool = False

    @property
    def remote(self) -> bool:
        return self.endpoint is not None


class ShardPool:
    """A supervised pool of local and/or remote workers executing plan layers.

    Local workers fork and warm-start by ``load_zoo``-ing
    ``artifact_dir`` (memmapped stacks -> the weight pages of all
    workers are shared through the OS page cache); ``channels`` picks
    their IPC flavor (``"queue"`` pickles whole frames, ``"shm"`` moves
    ciphertext slabs through per-channel shared-memory rings of
    ``ring_bytes`` each).  ``remote_endpoints`` adds ``tcp://host:port``
    workers (:class:`ShardWorkerServer` instances memmapping the same
    artifacts on any host); ``artifact_dir`` may be ``None`` for an
    all-remote pool.  The coordinator dispatches each
    :class:`~repro.serving.wire.Message` task to the least-loaded live
    worker's private channel.  ``ntt_native`` optionally pins the local
    workers' NTT backend (``None`` inherits the parent's); backends are
    bit-identical either way.

    A monitor thread supervises the pool (see the module docstring):
    dead workers have their in-flight tasks requeued (at most
    ``max_attempts`` attempts per task, ``attempt_timeout_s`` per
    attempt before a stalled attempt is retried) and are respawned with
    backoff up to ``max_respawns`` times before their slot is abandoned.
    ``fault_plan`` injects deterministic worker faults for tests
    (defaults to :meth:`WorkerFaults.from_env`, so ``REPRO_FAULT_*``
    environment hooks reach unmodified servers).

    The pool is transport-agnostic -- :class:`ShardExecutor` adapts it to
    the serving engine, and tests/benchmarks drive :meth:`execute`
    directly.
    """

    def __init__(
        self,
        artifact_dir,
        workers: int = 2,
        verify: bool | str = True,
        ntt_native: bool | None = None,
        start_timeout_s: float = 120.0,
        task_timeout_s: float = 300.0,
        max_attempts: int = 3,
        attempt_timeout_s: float = 60.0,
        max_respawns: int = 3,
        respawn_backoff_s: float = 0.2,
        fault_plan: WorkerFaults | None = None,
        channels: str = "queue",
        ring_bytes: int = 32 << 20,
        remote_endpoints=None,
        remote_connect_timeout_s: float = 10.0,
        remote_socket_factory=None,
    ):
        self.remote_endpoints = [
            str(endpoint) for endpoint in (remote_endpoints or [])
        ]
        for endpoint in self.remote_endpoints:
            parse_endpoint(endpoint)  # fail fast on malformed specs
        if workers < 0 or workers + len(self.remote_endpoints) < 1:
            raise ValueError(
                f"need at least one worker, got {workers} local + "
                f"{len(self.remote_endpoints)} remote"
            )
        if max_attempts < 1:
            raise ValueError(f"need at least one attempt, got {max_attempts}")
        if channels not in ("queue", "shm"):
            raise ValueError(f"unknown channel kind {channels!r}")
        if artifact_dir is None and workers > 0:
            raise ValueError("local shard workers need an artifact_dir")
        self.artifact_dir = None if artifact_dir is None else str(artifact_dir)
        #: Local (forked) worker count; ``workers`` is the total slot
        #: count the executor splits over.
        self.local_workers = int(workers)
        self.workers = self.local_workers + len(self.remote_endpoints)
        self.channels = channels
        self.ring_bytes = int(ring_bytes)
        self.remote_connect_timeout_s = float(remote_connect_timeout_s)
        self._remote_factory = (
            socket.create_connection if remote_socket_factory is None
            else remote_socket_factory
        )
        self.verify = verify
        self.ntt_native = ntt_native
        self.start_timeout_s = start_timeout_s
        self.task_timeout_s = task_timeout_s
        self.max_attempts = int(max_attempts)
        self.attempt_timeout_s = float(attempt_timeout_s)
        self.max_respawns = int(max_respawns)
        self.respawn_backoff_s = float(respawn_backoff_s)
        self.fault_plan = (
            WorkerFaults.from_env() if fault_plan is None else fault_plan
        )
        # fork keeps startup cheap (no re-import of numpy per worker) and
        # lets children inherit the already-built twiddle tables; workers
        # still load_zoo their own registry, per the artifact discipline.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._slots: list[_Slot] = []
        self._ready_queue = None
        self.model_names: list[str] = []
        self._pending: dict[str, _PendingTask] = {}
        self._lock = threading.Lock()
        self._next_task = 0
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()
        # Live key blobs (key_id -> encoded broadcast frame), replayed
        # into the fresh key channel of every respawned worker.
        self._key_lock = threading.Lock()
        self._key_blobs: dict[str, bytes] = {}
        self._fatal: str | None = None
        self.retries_total = 0
        self.respawns_total = 0
        #: Slots currently inside a rolling-upgrade drain/swap window
        #: (exported as the ``upgrading_slots`` gauge) and how many
        #: whole-pool upgrades have completed.
        self.upgrading_slots = 0
        self.upgrades_total = 0
        #: Serialises rolling upgrades: one at a time, pool-wide, so the
        #: one-slot-out-at-a-time quorum argument holds.
        self._upgrade_lock = threading.Lock()
        # IPC accounting (coordinator side), for BENCH_sharding.json:
        # bytes that crossed a pickling mp queue vs bytes that rode a
        # shared-memory ring or the remote TCP stream, and how many
        # task/ping dispatches they amortize over.
        self.ipc_pickled_bytes = 0
        self.ipc_slab_bytes = 0
        self.ipc_remote_bytes = 0
        self.tasks_dispatched = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ShardPool":
        """Fork the workers and block until every one reports ready.

        A worker that dies *during* startup (before readiness) is
        detected via its dead sentinel immediately: all sibling
        processes are terminated and :class:`ShardError` raised at once
        rather than waiting out ``start_timeout_s``.
        """
        if self._ready_queue is not None:
            raise ShardError("shard pool already started")
        self._ready_queue = self._ctx.Queue()
        for worker_id in range(self.local_workers):
            self._slots.append(_Slot(worker_id=worker_id))
        for index, endpoint in enumerate(self.remote_endpoints):
            self._slots.append(
                _Slot(worker_id=self.local_workers + index, endpoint=endpoint)
            )
        for slot in self._slots:
            self._spawn(slot)
        deadline = time.monotonic() + self.start_timeout_s
        ready = 0
        while ready < self.workers:
            try:
                status, worker_id, detail = self._ready_queue.get(timeout=0.1)
            except queue.Empty:
                dead = [
                    slot for slot in self._slots
                    if not slot.ready
                    and slot.process is not None
                    and not slot.process.is_alive()
                ]
                # A dead worker may have reported before dying; only
                # abort once its sentinel is dead AND its message is not
                # waiting in the (just-polled) ready queue.
                if dead:
                    try:
                        status, worker_id, detail = self._ready_queue.get(
                            timeout=0.25
                        )
                    except queue.Empty:
                        self._abort_start()
                        raise ShardError(
                            f"shard worker {dead[0].worker_id} died during "
                            f"startup (before readiness)"
                        ) from None
                elif time.monotonic() >= deadline:
                    self._abort_start()
                    raise ShardError(
                        f"shard worker(s) did not report ready within "
                        f"{self.start_timeout_s:.0f}s"
                    ) from None
                else:
                    continue
            if status != "ready":
                self._abort_start()
                raise ShardError(f"shard worker {worker_id} failed: {detail}")
            self.model_names = list(detail)
            self._slots[worker_id].ready = True
            ready += 1
        self._monitor = threading.Thread(
            target=self._supervise, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, slot: _Slot) -> None:
        """Bring up one worker in ``slot`` (first start or respawn).

        Local workers fork; remote slots connect.  Every incarnation
        gets fresh channels -- queues, shm rings, or a TCP connection
        -- because a SIGKILLed process (or a cut link) can leave its
        old channels mid-write, so they are never reused.  A collector
        thread per incarnation drains its result channel (and any
        leftover replies after a respawn supersedes it).
        """
        if slot.remote:
            self._connect_remote(slot)
            return
        ctx = self._ctx
        for old in (slot.task_queue, slot.result_queue, slot.key_queue):
            _retire_queue(old)
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        key_queue = ctx.Queue()
        task_ring = result_ring = None
        if self.channels == "shm":
            retire_ring(slot.task_ring)
            retire_ring(slot.result_ring)
            task_ring = ShmRing.create(self.ring_bytes)
            result_ring = ShmRing.create(self.ring_bytes)
        # Replay every live key blob into the fresh channel *before* the
        # queue becomes visible to broadcast_keys, so the new worker's
        # FIFO key channel is complete: replayed history, then whatever
        # is broadcast from now on.
        with self._key_lock:
            for payload in self._key_blobs.values():
                key_queue.put(payload)
            slot.key_queue = key_queue
        process = ctx.Process(
            target=_worker_main,
            args=(
                slot.worker_id, slot.incarnation, self.artifact_dir,
                self.verify, self.ntt_native, task_queue, key_queue,
                result_queue, self._ready_queue, self.fault_plan,
                task_ring, result_ring,
            ),
            name=f"repro-shard-{slot.worker_id}",
            daemon=True,
        )
        process.start()
        with self._lock:
            slot.task_queue = task_queue
            slot.result_queue = result_queue
            slot.task_ring = task_ring
            slot.result_ring = result_ring
            slot.process = process
            slot.ready = False
            slot.respawn_at = None
        threading.Thread(
            target=self._collect_slot,
            args=(slot, result_queue, result_ring),
            name=f"repro-shard-collect-{slot.worker_id}.{slot.incarnation}",
            daemon=True,
        ).start()

    def _connect_remote(self, slot: _Slot) -> None:
        """Connect (or reconnect) a remote worker slot and replay its keys.

        The handshake doubles as the readiness event: ``shard_hello``
        out, ``shard_ready`` (with the worker's model names) back,
        bounded by ``remote_connect_timeout_s``.  Live Galois-key blobs
        are replayed *before* the connection becomes visible to
        dispatch and broadcasts, so a reconnected worker serves
        existing sessions immediately (same FIFO-completeness argument
        as the local key channels).  A failed attempt counts like a
        death: backoff, retry, and eventually slot abandonment.
        """
        host, port = parse_endpoint(slot.endpoint)
        try:
            sock = self._remote_factory(
                (host, port), timeout=self.remote_connect_timeout_s
            )
            conn = _RemoteConn(sock)
            try:
                sock.settimeout(self.remote_connect_timeout_s)
                conn.send(encode_message(Message("shard_hello", {})))
                payload = recv_frame(sock)
                if payload is None:
                    raise OSError("worker closed during handshake")
                ready = decode_message(payload)
                if ready.kind != "shard_ready":
                    raise OSError(
                        f"unexpected handshake reply {ready.kind!r}"
                    )
                models = list(ready.require("models"))
                sock.settimeout(None)
                with self._key_lock:
                    for payload in self._key_blobs.values():
                        conn.send(payload)
                    with self._lock:
                        slot.process = conn
                        slot.ready = True
                        slot.respawn_at = None
            except BaseException:
                conn.mark_dead()
                raise
        except (OSError, ValueError) as exc:
            slot.last_error = f"{type(exc).__name__}: {exc}"
            if self._monitor is None:
                # Initial start(): fail the whole pool fast, like a
                # local worker dying before readiness.
                self._ready_queue.put(
                    ("error", slot.worker_id, slot.last_error)
                )
                return
            # Reconnect attempt under supervision: treat like a death.
            with self._lock:
                slot.process = None
                slot.deaths += 1
                if slot.deaths > self.max_respawns:
                    slot.abandoned = True
                else:
                    slot.incarnation += 1
                    slot.respawn_at = time.monotonic() + (
                        self.respawn_backoff_s * (2 ** (slot.deaths - 1))
                    )
            if slot.abandoned:
                logger.error(
                    "abandoning remote shard worker %s after %d failures "
                    "(%s)", slot.endpoint, slot.deaths, slot.last_error,
                )
            else:
                logger.warning(
                    "reconnect to shard worker %s failed (%s); retrying",
                    slot.endpoint, slot.last_error,
                )
            return
        self._ready_queue.put(("ready", slot.worker_id, models))
        threading.Thread(
            target=self._collect_remote,
            args=(slot, conn),
            name=f"repro-shard-remote-{slot.worker_id}.{slot.incarnation}",
            daemon=True,
        ).start()

    def _abort_start(self) -> None:
        """Kill every process immediately (startup failed; no drain)."""
        self._stopping.set()
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.process.terminate()
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=5.0)
            for q in (slot.task_queue, slot.result_queue, slot.key_queue):
                _retire_queue(q)
            retire_ring(slot.task_ring)
            retire_ring(slot.result_ring)

    def stop(self, timeout_s: float = 10.0) -> None:
        """Drain-stop the pool: workers finish their current task and exit."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        for slot in self._slots:
            if slot.process is not None and slot.task_queue is not None:
                slot.task_queue.put(None)
        deadline = time.monotonic() + timeout_s
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(
                    timeout=max(0.1, deadline - time.monotonic())
                )
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=1.0)
            # Undrained queue contents (e.g. key broadcasts a quorum-
            # starved worker never consumed) must not hang interpreter
            # shutdown on their feeder threads.
            for q in (slot.task_queue, slot.result_queue, slot.key_queue):
                _retire_queue(q)
            retire_ring(slot.task_ring)
            retire_ring(slot.result_ring)
        # Fail anything still pending so no submitter blocks forever.
        with self._lock:
            pending, self._pending = self._pending, {}
        for task in pending.values():
            task.event.set()

    def __enter__(self) -> "ShardPool":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def alive_workers(self) -> int:
        return sum(
            1
            for slot in self._slots
            if slot.process is not None and slot.process.is_alive()
        )

    def available_workers(self) -> int:
        """Worker slots still in service (alive or pending respawn)."""
        return sum(1 for slot in self._slots if not slot.abandoned)

    def draining_workers(self) -> list[int]:
        """Worker ids currently excluded from dispatch by a drain."""
        return [slot.worker_id for slot in self._slots if slot.draining]

    # -- live upgrades ------------------------------------------------------

    def _slot_by_id(self, worker_id: int) -> _Slot:
        for slot in self._slots:
            if slot.worker_id == int(worker_id):
                return slot
        raise ShardError(f"no shard worker slot {worker_id}")

    def _slot_inflight(self, slot: _Slot) -> int:
        """In-flight tasks assigned to ``slot`` (any incarnation)."""
        with self._lock:
            return sum(
                1
                for pending in self._pending.values()
                if pending.assigned is not None
                and pending.assigned[0] == slot.worker_id
                and not pending.event.is_set()
            )

    def drain_worker(self, worker_id: int, wait_s: float = 30.0) -> dict:
        """Stop dispatching to one worker and wait out its in-flight tasks.

        The admin surface for taking a worker out of rotation without
        killing it (inspect it, let the host drain, ...).  The slot keeps
        its process, channels, and cached keys; :meth:`resume_worker`
        puts it back into dispatch.  Returns the drain outcome, including
        how many tasks were still in flight when ``wait_s`` ran out.
        """
        slot = self._slot_by_id(worker_id)
        if slot.abandoned:
            raise ShardError(f"shard worker slot {worker_id} is abandoned")
        with self._lock:
            slot.draining = True
        deadline = time.monotonic() + max(0.0, float(wait_s))
        inflight = self._slot_inflight(slot)
        while inflight and time.monotonic() < deadline:
            time.sleep(0.01)
            inflight = self._slot_inflight(slot)
        return {
            "worker": slot.worker_id,
            "draining": True,
            "inflight": inflight,
        }

    def resume_worker(self, worker_id: int) -> dict:
        """Put a drained worker back into dispatch rotation."""
        slot = self._slot_by_id(worker_id)
        with self._lock:
            slot.draining = False
        return {"worker": slot.worker_id, "draining": False}

    def rolling_upgrade(
        self,
        artifact_dir=None,
        drain_timeout_s: float = 60.0,
        ready_timeout_s: float | None = None,
    ) -> dict:
        """Swap every worker onto a new artifact zoo with no serving gap.

        One slot at a time: stop dispatching to it (``draining``), wait
        out its in-flight tasks, stop the old worker, warm-respawn it
        against ``artifact_dir`` (local slots fork and ``load_zoo`` the
        new directory; remote slots reconnect, which makes the
        :class:`ShardWorkerServer` re-read its own zoo when the manifest
        generation on disk changed), replay every live Galois-key blob
        into the fresh channel (:meth:`_spawn`'s standard key replay),
        and wait for readiness before touching the next slot -- so at
        most one slot is ever out of rotation and
        :meth:`available_workers` (the executor's quorum input) never
        drops.

        ``artifact_dir=None`` re-rolls onto the current directory (the
        regenerated-in-place case).  Upgrades are serialised pool-wide;
        a worker that dies mid-drain or crashes right after its swap is
        handled by the normal supervision path (requeue onto siblings,
        respawn with backoff), and the upgrade waits for the slot to
        come back before proceeding.  Raises :class:`ShardError` when a
        slot cannot rejoin (it is then abandoned, like any other
        permanent failure).
        """
        if self._ready_queue is None or self._monitor is None:
            raise ShardError("shard pool is not running")
        if self._stopping.is_set():
            raise ShardError("shard pool is stopping")
        if self._fatal is not None:
            raise ShardError(self._fatal)
        if artifact_dir is not None and self.local_workers > 0:
            from ..artifacts.zoo import zoo_files

            # Validate the new zoo before any slot is touched: a broken
            # directory must fail the upgrade, not strand the fleet.
            if not zoo_files(artifact_dir):
                raise ShardError(f"no artifacts found in {artifact_dir}")
        ready_timeout = (
            self.start_timeout_s if ready_timeout_s is None
            else float(ready_timeout_s)
        )
        with self._upgrade_lock:
            if artifact_dir is not None and self.local_workers > 0:
                self.artifact_dir = str(artifact_dir)
            upgraded, skipped = [], []
            for slot in list(self._slots):
                if slot.abandoned:
                    skipped.append(slot.worker_id)
                    continue
                logger.info(
                    "rolling upgrade: draining shard worker %d",
                    slot.worker_id,
                )
                self._upgrade_slot(slot, drain_timeout_s, ready_timeout)
                upgraded.append(slot.worker_id)
            self.upgrades_total += 1
        return {
            "upgraded": upgraded,
            "skipped": skipped,
            "artifact_dir": self.artifact_dir,
        }

    def _upgrade_slot(
        self, slot: _Slot, drain_timeout_s: float, ready_timeout_s: float
    ) -> None:
        """Drain, swap, and rejoin one slot (the rolling-upgrade unit)."""
        with self._lock:
            slot.draining = True
            self.upgrading_slots += 1
        try:
            # Phase 1 -- drain: dispatch already avoids this slot; wait
            # for its in-flight tasks.  A worker that dies mid-drain is
            # the supervisor's business as usual (requeue onto siblings,
            # schedule a respawn); the drain just observes the in-flight
            # count reach zero either way.
            deadline = time.monotonic() + max(0.0, float(drain_timeout_s))
            while self._slot_inflight(slot) and time.monotonic() < deadline:
                if self._stopping.is_set():
                    raise ShardError("shard pool stopped during upgrade")
                time.sleep(0.01)
            # Phase 2 -- swap, with the supervisor hands-off so the
            # deliberate stop is not mistaken for a death.
            slot.upgrading = True
            try:
                with self._lock:
                    process = slot.process
                    slot.process = None
                    slot.ready = False
                    slot.respawn_at = None
                    stragglers = [
                        pending
                        for pending in self._pending.values()
                        if pending.assigned is not None
                        and pending.assigned[0] == slot.worker_id
                        and not pending.event.is_set()
                    ]
                # A drain that timed out still upgrades: whatever was
                # left on the old incarnation replays onto siblings
                # (replays are bit-identical; the first ok reply wins).
                for pending in stragglers:
                    self._retry(
                        pending,
                        f"worker {slot.worker_id} drained for upgrade",
                    )
                if slot.remote:
                    if process is not None:
                        process.mark_dead()
                elif process is not None:
                    if process.is_alive():
                        # Drain-stop: the sentinel lets the worker exit
                        # its loop cleanly; terminate is the backstop.
                        try:
                            slot.task_queue.put(None)
                        except (OSError, ValueError):
                            pass
                        process.join(timeout=5.0)
                        if process.is_alive():
                            process.terminate()
                    process.join(timeout=5.0)
                with self._lock:
                    slot.incarnation += 1
                self._spawn(slot)
            finally:
                slot.upgrading = False
        finally:
            with self._lock:
                slot.draining = False
                self.upgrading_slots -= 1
        # Phase 3 -- rejoin: the supervisor collects readiness (and
        # supervises a fresh worker that crashes during warm-up: requeue,
        # backoff, respawn); wait for it before the caller touches the
        # next slot, so at most one slot is ever out of rotation.
        deadline = time.monotonic() + max(0.0, float(ready_timeout_s))
        while time.monotonic() < deadline:
            if self._stopping.is_set():
                raise ShardError("shard pool stopped during upgrade")
            if slot.abandoned:
                raise ShardError(
                    f"worker {slot.worker_id} failed during upgrade"
                    + (f": {slot.last_error}" if slot.last_error else "")
                )
            if slot.ready:
                return
            time.sleep(0.01)
        raise ShardError(
            f"worker {slot.worker_id} did not rejoin within "
            f"{ready_timeout_s:.0f}s after its upgrade swap"
        )

    # -- supervision --------------------------------------------------------

    def _supervise(self) -> None:
        """Monitor loop: detect deaths, requeue work, respawn, un-stall."""
        while not self._stopping.is_set():
            self._drain_ready()
            now = time.monotonic()
            for slot in self._slots:
                if slot.abandoned or slot.upgrading:
                    # An upgrading slot's kill/respawn is owned by
                    # rolling_upgrade; treating it as a death here would
                    # double-spawn the slot.
                    continue
                if slot.process is not None and not slot.process.is_alive():
                    self._handle_death(slot, now)
                elif (
                    slot.process is None
                    and slot.respawn_at is not None
                    and now >= slot.respawn_at
                ):
                    self.respawns_total += 1
                    logger.warning(
                        "respawning shard worker %d (incarnation %d)",
                        slot.worker_id, slot.incarnation,
                    )
                    self._spawn(slot)
            self._check_stalls(now)
            self._dispatch_parked()
            if self._fatal is None and all(
                slot.abandoned for slot in self._slots
            ):
                self._fatal = (
                    "all shard workers failed permanently "
                    f"(each died > {self.max_respawns} times)"
                )
                logger.error("%s", self._fatal)
            if self._fatal is not None:
                self._fail_all_pending(self._fatal)
            self._stopping.wait(0.05)

    def _drain_ready(self) -> None:
        """Consume readiness/error reports from respawned workers."""
        while True:
            try:
                status, worker_id, detail = self._ready_queue.get_nowait()
            except queue.Empty:
                return
            slot = self._slots[worker_id]
            if status == "ready":
                slot.ready = True
                # A respawned worker reports the zoo it actually loaded;
                # after a rolling upgrade that is the new generation's
                # model list, which prepare_keys validates against.
                if detail:
                    self.model_names = list(detail)
            else:
                # Startup failure of a respawn: the process exits right
                # after reporting; _handle_death picks up the corpse.
                slot.last_error = str(detail)

    def _handle_death(self, slot: _Slot, now: float) -> None:
        """A worker died: requeue its assigned tasks, schedule a respawn."""
        slot.process.join(timeout=0)
        dead = (slot.worker_id, slot.incarnation)
        with self._lock:
            slot.process = None
            slot.deaths += 1
            orphans = [
                pending
                for pending in self._pending.values()
                if pending.assigned == dead and not pending.event.is_set()
            ]
        logger.warning(
            "shard worker %d (incarnation %d) died%s; requeueing %d task(s)",
            slot.worker_id, slot.incarnation,
            f": {slot.last_error}" if slot.last_error else "",
            len(orphans),
        )
        for pending in orphans:
            self._retry(pending, f"worker {slot.worker_id} died mid-task")
        if slot.deaths > self.max_respawns:
            with self._lock:
                slot.abandoned = True
            for q in (slot.task_queue, slot.result_queue, slot.key_queue):
                _retire_queue(q)
            retire_ring(slot.task_ring)
            retire_ring(slot.result_ring)
            logger.error(
                "abandoning shard worker slot %d after %d deaths",
                slot.worker_id, slot.deaths,
            )
            return
        with self._lock:
            slot.incarnation += 1
            slot.respawn_at = now + self.respawn_backoff_s * (
                2 ** (slot.deaths - 1)
            )

    def _check_stalls(self, now: float) -> None:
        """Retry attempts that have made no progress for attempt_timeout_s.

        Covers the claim-gap race (a worker killed between dequeue and
        claim), hung workers, and replies lost to a corpse's result
        queue.  A spurious retry is safe: replays are bit-identical, the
        first ``ok`` reply wins, and later duplicates are dropped
        without folding their counters.
        """
        with self._lock:
            stalled = [
                pending
                for pending in self._pending.values()
                if not pending.event.is_set()
                and (pending.claimed_at or pending.dispatched_at) is not None
                and now - (pending.claimed_at or pending.dispatched_at)
                > self.attempt_timeout_s
            ]
        for pending in stalled:
            self._retry(pending, "attempt stalled")

    def _eligible_slot(self) -> _Slot | None:
        """The least-loaded live worker slot (requires ``self._lock``)."""
        counts: dict[tuple[int, int], int] = {}
        for pending in self._pending.values():
            if pending.assigned is not None and not pending.event.is_set():
                key = pending.assigned
                counts[key] = counts.get(key, 0) + 1
        best = None
        best_count = None
        for slot in self._slots:
            if (
                slot.abandoned
                or slot.draining
                or slot.upgrading
                or slot.process is None
                or not slot.process.is_alive()
            ):
                continue
            count = counts.get((slot.worker_id, slot.incarnation), 0)
            if best is None or count < best_count:
                best, best_count = slot, count
        return best

    def _dispatch_locked(self, pending: _PendingTask) -> bool:
        """Dispatch (requires ``self._lock``); parks when no worker is live."""
        pending.claimed_at = None
        pending.dispatched_at = time.monotonic()
        if pending.first_dispatched_at is None:
            pending.first_dispatched_at = pending.dispatched_at
        slot = self._eligible_slot()
        if slot is None:
            pending.assigned = None  # parked; the supervisor re-dispatches
            return False
        pending.assigned = (slot.worker_id, slot.incarnation)
        pending.request.meta["attempt"] = pending.attempt
        self.tasks_dispatched += 1
        self._send_task(slot, pending.request)
        return True

    def _send_task(self, slot: _Slot, request: Message) -> None:
        """Ship one task over the slot's channel, tallying IPC bytes.

        A remote send that fails mid-write leaves the task assigned to
        the now-dead incarnation; death handling requeues it -- same
        recovery as a local worker SIGKILLed with the frame in its
        queue.
        """
        if slot.remote:
            frame = encode_message(request)
            self.ipc_remote_bytes += len(frame)
            try:
                slot.process.send(frame)
            except OSError:
                pass
            return
        frame, slab_bytes = pack_into_ring(request, slot.task_ring)
        self.ipc_pickled_bytes += len(frame)
        self.ipc_slab_bytes += slab_bytes
        slot.task_queue.put(frame)

    def _dispatch_parked(self) -> None:
        with self._lock:
            for pending in self._pending.values():
                if pending.assigned is None and not pending.event.is_set():
                    self._dispatch_locked(pending)

    def _retry(self, pending: _PendingTask, reason: str) -> None:
        """Requeue one task with a bumped attempt, or fail it out."""
        with self._lock:
            if pending.event.is_set():
                return
            pending.attempt += 1
            if pending.attempt >= self.max_attempts:
                task_id = pending.request.meta.get("task", "?")
                self._pending.pop(str(task_id), None)
                pending.reply = Message(
                    "result",
                    {
                        "task": task_id,
                        "status": "error",
                        "reason": (
                            f"shard task {task_id} exhausted "
                            f"{self.max_attempts} attempts ({reason})"
                        ),
                    },
                )
                pending.event.set()
                return
            self.retries_total += 1
            logger.warning(
                "requeueing shard task %s (attempt %d/%d): %s",
                pending.request.meta.get("task"), pending.attempt + 1,
                self.max_attempts, reason,
            )
            self._dispatch_locked(pending)

    def _fail_all_pending(self, reason: str) -> None:
        with self._lock:
            pending, self._pending = self._pending, {}
        for task in pending.values():
            if task.event.is_set():
                continue
            task.reply = Message(
                "result",
                {
                    "task": task.request.meta.get("task", "?"),
                    "status": "error",
                    "reason": reason,
                },
            )
            task.event.set()

    # -- key distribution ---------------------------------------------------

    def broadcast_keys(self, key_id: str, model: str, blob: bytes) -> None:
        """Ship one session's Galois keys to every worker (cached there).

        The blob is retained coordinator-side until :meth:`drop_keys` so
        it can be replayed to respawned workers.
        """
        payload = encode_message(
            Message("keys", {"key_id": key_id, "model": model}, [blob])
        )
        with self._key_lock:
            self._key_blobs[key_id] = payload
            self._broadcast_locked(payload)

    def drop_keys(self, key_id: str) -> None:
        """Tell every worker to forget a session's keys (close/eviction)."""
        payload = encode_message(Message("drop_keys", {"key_id": key_id}))
        with self._key_lock:
            self._key_blobs.pop(key_id, None)
            self._broadcast_locked(payload)

    def _broadcast_locked(self, payload: bytes) -> None:
        """Fan one key frame out to every in-service slot (key lock held).

        A remote send failure is swallowed: the connection is then dead,
        and the reconnect replays every live blob anyway.
        """
        for slot in self._slots:
            if slot.abandoned:
                continue
            if slot.remote:
                conn = slot.process
                if conn is not None and conn.is_alive():
                    try:
                        conn.send(payload)
                    except OSError:
                        pass
            elif slot.key_queue is not None:
                slot.key_queue.put(payload)

    # -- task execution -----------------------------------------------------

    def _collect_slot(self, slot: _Slot, result_queue, result_ring) -> None:
        """Drain one incarnation's result queue (one thread per incarnation).

        After a respawn supersedes this queue, the thread drains any
        leftover replies (a worker may have answered right before a
        different task killed it) and exits.  Replies whose blobs ride
        the incarnation's result ring are resolved here, in queue
        order (the ring is FIFO and this is its only consumer).
        """
        while not self._stopping.is_set():
            try:
                payload = result_queue.get(timeout=0.2)
            except queue.Empty:
                if slot.result_queue is not result_queue:
                    return  # superseded by a respawn, leftovers drained
                continue
            try:
                reply, slab_bytes = unpack_from_ring(
                    payload, result_ring, timeout_s=1.0
                )
                self.ipc_pickled_bytes += len(payload)
                self.ipc_slab_bytes += slab_bytes
                self._handle_reply(reply)
            except Exception:  # never let a bad frame kill collection
                logger.exception("discarding malformed shard reply")

    def _collect_remote(self, slot: _Slot, conn: _RemoteConn) -> None:
        """Read reply frames from one remote connection until it dies.

        Any stream failure -- EOF, reset, or a frame that fails
        validation -- poisons the whole connection (stream framing can
        no longer be trusted), which the supervisor then treats as a
        worker death: requeue and reconnect.
        """
        sock = conn.sock
        while not self._stopping.is_set():
            try:
                payload = recv_frame(sock)
                if payload is None:
                    raise OSError("remote shard worker closed the connection")
                reply = decode_message(payload)
            except (OSError, ValueError) as exc:
                if conn.is_alive() and not self._stopping.is_set():
                    logger.warning(
                        "remote shard worker %s connection failed: %s",
                        slot.endpoint, exc,
                    )
                conn.mark_dead()
                return
            if slot.process is not conn:
                return  # superseded by a reconnect
            self.ipc_remote_bytes += len(payload)
            try:
                self._handle_reply(reply)
            except Exception:  # pragma: no cover - defensive
                logger.exception("discarding malformed shard reply")

    def _handle_reply(self, reply: Message) -> None:
        task_id = str(reply.meta.get("task"))
        if reply.kind == "claimed":
            with self._lock:
                pending = self._pending.get(task_id)
                if pending is not None and attempt_of(reply) == pending.attempt:
                    pending.claimed_at = time.monotonic()
            return
        with self._lock:
            pending = self._pending.get(task_id)
            if pending is None:
                # Duplicate of an already-accepted task (spurious
                # requeue) or a reply to an abandoned one: dropped, its
                # counters never folded twice.
                return
            if reply.meta.get("status") == "ok":
                # First ok reply wins, whatever attempt produced it --
                # replays are bit-identical by construction.
                self._pending.pop(task_id, None)
                if TRACE_META_KEY in pending.request.meta:
                    # Coordinator-clock envelope for the trace: first
                    # dispatch -> this receive (plus which attempt and
                    # worker won), so the executor can record the shard
                    # span and anchor the worker's offset spans inside it.
                    reply.meta["env"] = {
                        "first_dispatch": pending.first_dispatched_at,
                        "dispatch": pending.dispatched_at,
                        "recv": time.monotonic(),
                        "attempt": pending.attempt,
                        "worker": (
                            pending.assigned[0]
                            if pending.assigned is not None else None
                        ),
                    }
                pending.reply = reply
                pending.event.set()
                return
            if attempt_of(reply) != pending.attempt:
                # A stale attempt failing is not news: its replacement
                # is already dispatched.
                return
            self._pending.pop(task_id, None)
            pending.reply = reply
            pending.event.set()

    def execute(
        self, requests: list[Message], deadline: float | None = None
    ) -> list[Message]:
        """Run task messages on the pool; blocks until all replies arrive.

        Thread-safe (the engine calls this from many transport threads).
        Task ids are assigned here; replies are returned in request
        order.  ``deadline`` is an absolute ``time.monotonic()`` instant
        propagated into task frames (workers skip expired work) and
        enforced here.

        Worker death no longer fails the call: the supervisor requeues
        the dead worker's tasks onto the survivors (or the respawned
        worker) and only a task that exhausts ``max_attempts`` -- or a
        pool whose every slot is abandoned -- raises
        :class:`ShardError`.
        """
        if self._ready_queue is None or self._stopping.is_set():
            raise ShardError("shard pool is not running")
        if self._fatal is not None:
            raise ShardError(self._fatal)
        now = time.monotonic()
        pendings = []
        with self._lock:
            for request in requests:
                task_id = f"t{self._next_task}"
                self._next_task += 1
                request.meta["task"] = task_id
                request.meta["attempt"] = 0
                if deadline is not None:
                    request.meta["deadline_mono"] = float(deadline)
                pending = _PendingTask(request)
                self._pending[task_id] = pending
                pendings.append((task_id, pending))
                self._dispatch_locked(pending)
        hard_deadline = now + self.task_timeout_s
        if deadline is not None:
            hard_deadline = min(hard_deadline, deadline)
        replies = []
        for task_id, pending in pendings:
            while not pending.event.wait(timeout=0.1):
                if time.monotonic() >= hard_deadline:
                    self._abandon(pendings)
                    raise ShardError(
                        f"shard task {task_id} timed out"
                        + (
                            " (request deadline exceeded)"
                            if deadline is not None
                            and hard_deadline == deadline
                            else f" after {self.task_timeout_s:.0f}s"
                        )
                    )
                if self._stopping.is_set():
                    self._abandon(pendings)
                    raise ShardError("shard pool stopped with tasks in flight")
            if pending.reply is None:  # pool stopped under us
                raise ShardError("shard pool stopped with tasks in flight")
            if pending.reply.meta.get("status") != "ok":
                self._abandon(pendings)
                raise ShardError(
                    str(pending.reply.meta.get("reason", "unknown shard error"))
                )
            replies.append(pending.reply)
        return replies

    def _abandon(self, pendings) -> None:
        with self._lock:
            for task_id, _ in pendings:
                self._pending.pop(task_id, None)

    def ping(self, count: int | None = None) -> list[Message]:
        """Round-trip ``count`` no-op tasks (worker/model/key introspection).

        Dispatch is least-loaded, so ``count`` concurrent pings spread
        across ``count`` live workers -- with a single-worker pool this
        is deterministic, which is what the tests use it for.
        """
        count = self.workers if count is None else count
        return self.execute([Message("ping", {}) for _ in range(count)])

    def ipc_stats(self) -> dict:
        """Coordinator-side IPC byte accounting (for BENCH_sharding.json).

        ``pickled_bytes`` crossed a pickling ``mp.Queue`` (whole frames
        on the ``queue`` channel, control frames only on ``shm``);
        ``slab_bytes`` rode shared-memory rings; ``remote_bytes`` rode
        remote TCP streams.  Counts cover both directions (dispatch and
        collection) over ``tasks`` dispatches.
        """
        return {
            "channels": self.channels,
            "pickled_bytes": int(self.ipc_pickled_bytes),
            "slab_bytes": int(self.ipc_slab_bytes),
            "remote_bytes": int(self.ipc_remote_bytes),
            "tasks": int(self.tasks_dispatched),
        }


@dataclass
class _ShardKeyHandle:
    """What a sharded session stores instead of deserialized Galois keys."""

    key_id: str


class ShardExecutor:
    """Adapt a :class:`ShardPool` to the engine's execution-backend seam.

    Splitting policy (always bit-identical, see module docstring):

    * ``B`` batched requests are split into ``min(B, workers)``
      contiguous row chunks -- zero duplicated work.
    * A *single* request hitting a convolution with
      ``co >= oc_split_min_co`` is instead split by output-channel
      ranges across workers.  This cuts latency but duplicates the
      per-input hoist/rotate work in every shard, so it is off for
      narrow layers (and the demo model) by default -- row-split tasks
      keep HE op counters identical to single-process execution, which
      the conformance suite asserts.

    ``quorum`` is the minimum number of in-service worker slots this
    executor requires: when attrition drops the pool below it, every
    ``execute`` raises :class:`ShardError` up front so the engine can
    degrade to its in-process executor instead of queueing onto a husk.
    """

    def __init__(
        self, pool: ShardPool, oc_split_min_co: int = 8, quorum: int = 1
    ):
        self.pool = pool
        self.oc_split_min_co = int(oc_split_min_co)
        self.quorum = int(quorum)
        #: Set by a tracing-enabled engine: shard dispatch envelopes and
        #: piggybacked worker spans are recorded against request traces.
        self.tracer = None
        # Key ids on the wire are scoped per executor *and* per upload:
        # several engines may share one pool, and their session ids all
        # start at "s0".  Scoping makes every broadcast's id unique, so
        # a worker can never serve a task with a stale cache entry -- an
        # id it has not seen yet blocks on its key channel until the
        # broadcast lands (queue feeder threads give no cross-queue
        # ordering guarantee, so "already cached" must imply "exactly
        # the right keys").
        self._scope = uuid.uuid4().hex[:12]
        self._scoped: dict[str, str] = {}
        self._uploads = 0
        self._lock = threading.Lock()

    # -- executor contract --------------------------------------------------

    def prepare_keys(self, entry, key_id, blob, keys):
        if entry.name not in self.pool.model_names:
            raise ShardError(
                f"model {entry.name!r} is not in the shard workers' artifact "
                f"set {self.pool.model_names} -- sharded serving requires the "
                f"registry and the pool to load the same artifact directory"
            )
        with self._lock:
            self._uploads += 1
            scoped = f"{self._scope}:{key_id}:{self._uploads}"
            previous = self._scoped.get(key_id)
            self._scoped[key_id] = scoped
        if previous is not None:
            self.pool.drop_keys(previous)
        self.pool.broadcast_keys(scoped, entry.name, blob)
        return _ShardKeyHandle(scoped)

    def release_keys(self, key_id):
        with self._lock:
            scoped = self._scoped.pop(key_id, None)
        if scoped is not None and not self.pool._stopping.is_set():
            self.pool.drop_keys(scoped)

    def execute(self, entry, layer, batch_inputs, batch_handles, deadline=None,
                trace=None):
        available = self.pool.available_workers()
        if available < self.quorum:
            raise ShardError(
                f"shard pool below quorum: {available} worker slot(s) in "
                f"service, need {self.quorum}"
            )
        batch = len(batch_inputs)
        workers = max(1, self.pool.workers)
        key_ids = [handle.key_id for handle in batch_handles]
        ctxs = list(trace or [])
        ctxs += [None] * (batch - len(ctxs))
        if (
            batch == 1
            and workers > 1
            and isinstance(layer, ConvLayer)
            and layer.co >= self.oc_split_min_co
        ):
            return self._execute_oc_split(
                entry, layer, batch_inputs[0], key_ids[0], workers, deadline,
                ctxs[0],
            )
        return self._execute_row_split(
            entry, layer, batch_inputs, key_ids, workers, deadline, ctxs
        )

    # -- splitting ----------------------------------------------------------

    def _task(self, entry, layer, chunk_inputs, chunk_key_ids, oc_range=None,
              trace_ctxs=None):
        meta = {
            "model": entry.name,
            "layer": layer.name,
            "key_ids": list(chunk_key_ids),
            "cts_per_request": [len(cts) for cts in chunk_inputs],
        }
        if oc_range is not None:
            meta["oc_range"] = [int(oc_range[0]), int(oc_range[1])]
        traced = next(
            (ctx for ctx in (trace_ctxs or []) if ctx is not None), None
        )
        if traced is not None:
            # The task only needs to know *that* it is traced (workers
            # key their span logs off this); parenting happens entirely
            # coordinator-side, per participating request.
            meta[TRACE_META_KEY] = {"trace_id": traced.trace_id}
        blobs = [
            serialize_ciphertext(ct, entry.params)
            for cts in chunk_inputs
            for ct in cts
        ]
        return Message("task", meta, blobs)

    def _execute_row_split(
        self, entry, layer, batch_inputs, key_ids, workers, deadline=None,
        trace_ctxs=None,
    ):
        batch = len(batch_inputs)
        ctxs = list(trace_ctxs or [])
        ctxs += [None] * (batch - len(ctxs))
        shards = min(batch, workers)
        bounds = [round(i * batch / shards) for i in range(shards + 1)]
        spans = [bounds[i : i + 2] for i in range(shards)
                 if bounds[i] < bounds[i + 1]]
        tasks = [
            self._task(
                entry, layer,
                batch_inputs[lo:hi],
                key_ids[lo:hi],
                trace_ctxs=ctxs[lo:hi],
            )
            for lo, hi in spans
        ]
        replies = self.pool.execute(tasks, deadline=deadline)
        outputs = []
        for (lo, hi), reply in zip(spans, replies):
            self._trace_task(ctxs[lo:hi], reply)
            outputs.extend(self._parse_outputs(entry, reply))
        return outputs

    def _execute_oc_split(
        self, entry, layer, cts, key_id, workers, deadline=None, trace_ctx=None
    ):
        shards = min(workers, layer.co)
        bounds = [round(i * layer.co / shards) for i in range(shards + 1)]
        tasks = [
            self._task(
                entry, layer, [cts], [key_id],
                oc_range=(bounds[i], bounds[i + 1]),
                trace_ctxs=[trace_ctx],
            )
            for i in range(shards)
            if bounds[i] < bounds[i + 1]
        ]
        replies = self.pool.execute(tasks, deadline=deadline)
        merged: list = []
        for reply in replies:
            self._trace_task([trace_ctx], reply)
            merged.extend(self._parse_outputs(entry, reply)[0])
        return [merged]

    def _trace_task(self, ctxs, reply: Message) -> None:
        """Record one accepted task's spans into each participating trace.

        The ``shard_task`` span is the coordinator-clock envelope (first
        dispatch of attempt 0 to accepted receive); when the accepted
        reply came from a retry, the lost attempt's window shows up as a
        sibling ``shard_requeue`` span (first dispatch to the winning
        re-dispatch) rather than disappearing.  Worker offset spans are
        anchored inside the envelope by :meth:`Tracer.ingest`.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return
        env = reply.meta.get("env")
        if not isinstance(env, dict):
            return
        first = env.get("first_dispatch")
        dispatch = env.get("dispatch")
        recv = env.get("recv")
        if first is None or dispatch is None or recv is None:
            return
        attempts = int(env.get("attempt") or 0)
        worker = env.get("worker")
        task_id = reply.meta.get("task")
        worker_spans = reply.meta.get("spans") or []
        for ctx in ctxs:
            if ctx is None:
                continue
            span_id = tracer.record(
                ctx.trace_id, "shard_task", first, recv,
                parent_id=ctx.span_id,
                task=task_id, worker=worker, attempts=attempts,
            )
            if attempts > 0:
                tracer.record(
                    ctx.trace_id, "shard_requeue", first, dispatch,
                    parent_id=ctx.span_id, task=task_id, attempts=attempts,
                )
            tracer.ingest(
                ctx.trace_id, span_id, worker_spans, dispatch, recv,
                worker=worker,
            )

    def _parse_outputs(self, entry, reply: Message):
        """Deserialize a reply's ciphertexts and fold in its op counters.

        Only *accepted* replies reach this point (the pool's collectors
        drop duplicates and stale attempts), so each task's counter
        delta is folded exactly once no matter how many attempts ran.
        """
        counters = reply.meta.get("counters", {})
        GLOBAL_COUNTERS.he_mult += int(counters.get("he_mult", 0))
        GLOBAL_COUNTERS.he_add += int(counters.get("he_add", 0))
        GLOBAL_COUNTERS.he_rotate += int(counters.get("he_rotate", 0))
        GLOBAL_COUNTERS.ntt += int(counters.get("ntt", 0))
        GLOBAL_COUNTERS.modmuls += int(counters.get("modmuls", 0))
        GLOBAL_COUNTERS.butterflies += int(counters.get("butterflies", 0))
        outputs, offset = [], 0
        for count in reply.meta.get("outputs_per_request", []):
            count = int(count)
            outputs.append(
                [
                    deserialize_ciphertext(blob, entry.params)
                    for blob in reply.blobs[offset : offset + count]
                ]
            )
            offset += count
        return outputs


# -- remote worker server -----------------------------------------------------


class ShardWorkerServer:
    """A standalone remote shard worker (``repro shard-worker``).

    Runs on any host that can reach the same ``.rpa`` artifact
    directory: the zoo is ``load_zoo``'d eagerly at :meth:`start` (so a
    bad artifact dir fails before the port is announced), then a
    coordinator connects and speaks the exact frames the forked workers
    consume -- ``shard_hello``/``shard_ready`` handshake, then
    ``keys``/``drop_keys`` broadcasts and ``ping``/``task`` requests
    answered with ``claimed`` + ``result`` frames.

    Per-connection state is only the Galois-key cache: a coordinator
    that reconnects replays every live key blob before dispatching (see
    :meth:`ShardPool._connect_remote`), so dropping the cache with the
    connection is exactly right.  ``deadline_mono`` in task frames is
    ignored here -- it is a coordinator-clock ``time.monotonic()``
    instant, which is not comparable across hosts; the coordinator
    still enforces the deadline on its side.

    Binding ``port=0`` picks a free port (``host``/``port``/
    ``endpoint`` report the bound address), which is what tests use to
    avoid port races.
    """

    def __init__(
        self,
        artifact_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        verify: bool | str = True,
        ntt_native: bool | None = None,
        fault_plan: WorkerFaults | None = None,
    ):
        self.artifact_dir = str(artifact_dir)
        self._requested = (str(host), int(port))
        self.verify = verify
        self.ntt_native = ntt_native
        self.fault_plan = (
            WorkerFaults.from_env() if fault_plan is None else fault_plan
        )
        self.registry = None
        self.host: str | None = None
        self.port: int | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self.tasks_served = 0
        #: Serialises zoo reloads triggered by concurrent handshakes.
        self._reload_lock = threading.Lock()
        self.reloads_total = 0

    @property
    def endpoint(self) -> str:
        """The ``tcp://host:port`` spec coordinators pass as an endpoint."""
        if self.host is None:
            raise ShardError("shard worker server is not started")
        return f"tcp://{self.host}:{self.port}"

    def start(self) -> "ShardWorkerServer":
        if self._listener is not None:
            raise ShardError("shard worker server already started")
        if self.ntt_native is not None:
            _force_ntt_backend(bool(self.ntt_native))
        from ..artifacts.zoo import load_zoo

        self.registry = load_zoo(self.artifact_dir, verify=self.verify)
        self._params_by_model = {
            name: self.registry.get(name).params
            for name in self.registry.names()
        }
        self._listener = bind_listener(*self._requested)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-shard-worker-{self.port}",
            daemon=True,
        )
        self._accept_thread.start()
        logger.info("shard worker serving %s on %s",
                    self.registry.names(), self.endpoint)
        return self

    def stop(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._listener is not None:
            try:
                # Poke the accept loop awake so it observes _stopping.
                with socket.create_connection(
                    (self.host, self.port), timeout=1.0
                ):
                    pass
            except OSError:  # pragma: no cover - already closing
                pass
            self._listener.close()
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ShardWorkerServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def _maybe_reload(self) -> None:
        """Pick up a regenerated zoo when the manifest generation moved.

        Called on every new coordinator connection, which is exactly when
        a rolling upgrade reaches this worker: the coordinator drains the
        slot, drops the connection, and reconnects --
        :meth:`ShardPool._connect_remote`'s handshake then serves as the
        upgrade trigger.  In-flight tasks on *other* connections keep
        their already-resolved registry entries (read-copy-update, same
        as :meth:`~repro.serving.registry.ModelRegistry.reload_zoo`).  A
        reload failure is logged and the current generation keeps
        serving: availability beats freshness for a worker.
        """
        from ..artifacts.format import ArtifactError
        from ..artifacts.zoo import manifest_generation, read_manifest

        with self._reload_lock:
            try:
                generation = manifest_generation(
                    read_manifest(self.artifact_dir)
                )
                if generation == self.registry.zoo_generation:
                    return
                summary = self.registry.reload_zoo(
                    self.artifact_dir, verify=self.verify
                )
            except ArtifactError as exc:
                logger.warning(
                    "shard worker keeping zoo generation %d (reload of %s "
                    "failed: %s)",
                    self.registry.zoo_generation, self.artifact_dir, exc,
                )
                return
            if summary["applied"]:
                self.reloads_total += 1
                self._params_by_model = {
                    name: self.registry.get(name).params
                    for name in self.registry.names()
                }
                logger.info(
                    "shard worker reloaded zoo %s: generation %d -> %d",
                    self.artifact_dir, summary["previous_generation"],
                    summary["generation"],
                )

    # -- connection handling ------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            if self._stopping.is_set():
                conn.close()
                return
            with self._conn_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_conn,
                args=(conn, addr),
                name=f"repro-shard-worker-conn-{addr[1]}",
                daemon=True,
            ).start()

    def _serve_conn(self, conn: socket.socket, addr) -> None:
        """One coordinator connection: handshake, then serve frames.

        Any protocol violation or stream failure closes the connection;
        the coordinator's supervision treats that as a worker death and
        reconnects with a full key replay, so there is nothing to
        salvage here (crash-only, like the forked workers).
        """
        key_cache: dict[str, object] = {}
        tasks_claimed = 0
        try:
            payload = recv_frame(conn)
            if payload is None:
                return
            hello = decode_message(payload)
            if hello.kind != "shard_hello":
                raise ValueError(f"expected shard_hello, got {hello.kind!r}")
            self._maybe_reload()
            send_frame(conn, encode_message(Message(
                "shard_ready",
                {"models": self.registry.names(), "pid": os.getpid()},
            )))
            while not self._stopping.is_set():
                payload = recv_frame(conn)
                if payload is None:
                    return  # coordinator closed cleanly
                request = decode_message(payload)
                if request.kind == "keys":
                    from ..bfv.serialize import deserialize_galois_keys

                    key_id, model = request.require("key_id", "model")
                    key_cache[key_id] = deserialize_galois_keys(
                        request.blobs[0], self._params_by_model[model]
                    )
                    continue
                if request.kind == "drop_keys":
                    key_cache.pop(request.require("key_id"), None)
                    continue
                self._serve_request(conn, request, key_cache, tasks_claimed)
                tasks_claimed += 1
        except (OSError, ValueError, KeyError) as exc:
            if not self._stopping.is_set():
                logger.warning(
                    "shard worker connection from %s failed: %s", addr, exc
                )
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def _serve_request(self, conn, request: Message, key_cache,
                       tasks_claimed: int) -> None:
        """Answer one ping/task frame with ``claimed`` + ``result``."""
        attempt = attempt_of(request)
        task_id = request.meta.get("task", "?")
        send_frame(conn, encode_message(Message(
            "claimed",
            {
                "task": task_id,
                "attempt": attempt,
                "worker": -1,
                "incarnation": 0,
            },
        )))
        try:
            if request.kind == "ping":
                reply = Message(
                    "result",
                    {
                        "task": request.require("task"),
                        "status": "ok",
                        "attempt": attempt,
                        "models": self.registry.names(),
                        "cached_keys": sorted(key_cache),
                        "pid": os.getpid(),
                    },
                )
            elif request.kind == "task":
                if self.fault_plan is not None:
                    self.fault_plan.on_task(-1, 0, tasks_claimed + 1)
                # deadline_mono deliberately ignored: not comparable
                # across hosts (see class docstring).
                for key_id in request.require("key_ids"):
                    if key_id not in key_cache:
                        raise ShardError(
                            f"Galois keys {key_id!r} not on this connection "
                            "(coordinator must broadcast before dispatch)"
                        )
                before = GLOBAL_COUNTERS.snapshot()
                reply = _run_task(self.registry, key_cache, request)
                # An in-process server (the test topology) shares
                # GLOBAL_COUNTERS with the coordinator; roll this task's
                # contribution back so the coordinator's fold of the
                # reply delta is the one and only accounting -- exactly
                # the arithmetic a separate-process worker gives.
                delta = GLOBAL_COUNTERS.diff(before)
                GLOBAL_COUNTERS.he_mult -= delta.he_mult
                GLOBAL_COUNTERS.he_add -= delta.he_add
                GLOBAL_COUNTERS.he_rotate -= delta.he_rotate
                GLOBAL_COUNTERS.ntt -= delta.ntt
                GLOBAL_COUNTERS.modmuls -= delta.modmuls
                GLOBAL_COUNTERS.butterflies -= delta.butterflies
                self.tasks_served += 1
            else:
                raise ShardError(f"unknown shard request {request.kind!r}")
        except Exception as exc:  # keep the connection alive for retries
            reply = Message(
                "result",
                {
                    "task": task_id,
                    "status": "error",
                    "attempt": attempt,
                    "reason": (
                        f"remote worker: {type(exc).__name__}: {exc}"
                    ),
                },
            )
        send_frame(conn, encode_message(reply))
