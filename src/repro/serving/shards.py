"""Multi-process sharded execution backend for the serving engine.

One Python process cannot use more than one core for the plan math, so
the lock-free native NTT and the memmapped ``.rpa`` artifacts (whose
weight pages N processes share through the OS page cache) are scaling
enablers the single-process :class:`~repro.serving.engine.ServingEngine`
never cashes in.  This module adds the missing piece:

* :class:`ShardPool` forks ``N`` worker processes.  Each worker
  ``load_zoo``'s the same artifact directory -- memmapped weight stacks,
  zero plan recompilation, shared pages -- reports readiness, then pulls
  work from one shared task queue (idle workers self-balance; there is
  no static request-to-worker pinning).
* :class:`ShardExecutor` plugs into the engine's execution-backend seam
  (:class:`~repro.serving.engine.LocalExecutor` documents the contract).
  A batched ``(k, B, n)`` layer call is split into per-shard sub-batches
  by request rows -- and, when a single request meets a wide convolution,
  by output-channel ranges (``ConvPlan.execute(..., oc_range=...)``) --
  shipped over the IPC queues, and the partial outputs are merged back
  in order.  Every ciphertext crosses the process boundary through
  :mod:`repro.bfv.serialize` inside a :mod:`repro.serving.wire` frame,
  so the IPC path is the *same* validated wire format the network uses.

Bit-identity is the invariant that makes the split safe: plan execution
is deterministic and independent per request and per output channel, so
any partition of the batch produces ciphertexts byte-identical to a
single-process run (pinned by ``tests/test_conformance.py``).  Blinding
stays in the coordinator -- workers never see masks -- and each worker
ships back its HE op-counter delta, which the executor folds into the
coordinator's :data:`~repro.bfv.counters.GLOBAL_COUNTERS` so accounting
matches single-process execution exactly.

Galois keys are too large to ship per task: the executor broadcasts each
session's key blob once to every worker (workers cache them, dropping
them on session close/eviction), so a task only references a ``key_id``.
Ids are scoped per executor and per upload -- multiprocessing queue
feeders give no cross-queue ordering guarantee, so correctness rests on
"cache hit implies exactly the right keys": a worker that sees an
unknown id blocks draining its own (FIFO) key channel until the
broadcast lands; it can never *mistake* stale keys for current ones.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
import uuid
from dataclasses import dataclass

from ..bfv.counters import GLOBAL_COUNTERS
from ..bfv.serialize import deserialize_ciphertext, serialize_ciphertext
from ..nn.layers import ConvLayer
from .engine import ExecutionBackendError
from .wire import Message, decode_message, encode_message


class ShardError(ExecutionBackendError):
    """A shard pool failure: dead worker, startup error, or task failure."""


# -- worker process -----------------------------------------------------------


def _force_ntt_backend(native: bool) -> None:
    """Pin this worker's NTT backend regardless of what the parent chose.

    A forked child inherits the parent's already-loaded kernel state and
    memoized engines, so forcing a backend means resetting both and
    letting ``load_zoo`` rebuild engines lazily.  The two backends are
    bit-identical, so mixed coordinator/worker backends stay correct --
    this hook exists so the conformance suite can pin each side.
    """
    from ..bfv import native as native_mod
    from ..bfv import ntt_batch

    os.environ[native_mod.NATIVE_ENV_VAR] = "1" if native else "0"
    with native_mod._LOCK:
        native_mod._KERNEL = None
        native_mod._TRIED = False
    ntt_batch._get_engine_cached.cache_clear()


def _drain_key_queue(key_queue, key_cache, params_by_model, block_for=None,
                     timeout_s: float = 30.0):
    """Apply pending key broadcasts; optionally block until one arrives.

    ``block_for`` is a key id the caller needs *now* (its task references
    it); because broadcasts are enqueued before any task that uses them,
    a bounded blocking drain is guaranteed to find it unless the
    coordinator died.
    """
    from ..bfv.serialize import deserialize_galois_keys

    deadline = time.monotonic() + timeout_s
    while True:
        try:
            if block_for is not None and block_for not in key_cache:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardError(
                        f"timed out waiting for Galois keys {block_for!r}"
                    )
                payload = key_queue.get(timeout=remaining)
            else:
                payload = key_queue.get_nowait()
        except queue.Empty:
            if block_for is not None and block_for not in key_cache:
                continue
            return
        message = decode_message(payload)
        if message.kind == "keys":
            key_id, model = message.require("key_id", "model")
            key_cache[key_id] = deserialize_galois_keys(
                message.blobs[0], params_by_model[model]
            )
        elif message.kind == "drop_keys":
            key_cache.pop(message.require("key_id"), None)
        if block_for is not None and block_for in key_cache:
            return


def _run_task(registry, key_cache, request: Message) -> Message:
    """Execute one layer sub-batch; reply with outputs + counter delta."""
    model, layer_name, task_id = request.require("model", "layer", "task")
    key_ids = request.require("key_ids")
    counts = [int(c) for c in request.require("cts_per_request")]
    oc_range = request.meta.get("oc_range")
    entry = registry.get(model)
    layer = entry.layer(layer_name)
    plan = entry.plans[layer_name]
    batch_inputs, offset = [], 0
    for count in counts:
        batch_inputs.append(
            [
                deserialize_ciphertext(blob, entry.params)
                for blob in request.blobs[offset : offset + count]
            ]
        )
        offset += count
    batch_keys = [key_cache[key_id] for key_id in key_ids]
    before = GLOBAL_COUNTERS.snapshot()
    if isinstance(layer, ConvLayer):
        outputs = plan.execute_batch(
            batch_inputs,
            batch_keys,
            oc_range=tuple(int(v) for v in oc_range) if oc_range else None,
        )
    else:
        outputs = [
            [ct]
            for ct in plan.execute_batch(
                [cts[0] for cts in batch_inputs], batch_keys
            )
        ]
    delta = GLOBAL_COUNTERS.diff(before)
    blobs = [
        serialize_ciphertext(ct, entry.params)
        for request_cts in outputs
        for ct in request_cts
    ]
    return Message(
        "result",
        {
            "task": task_id,
            "status": "ok",
            "outputs_per_request": [len(cts) for cts in outputs],
            "counters": {
                "he_mult": delta.he_mult,
                "he_add": delta.he_add,
                "he_rotate": delta.he_rotate,
                "ntt": delta.ntt,
                "modmuls": delta.modmuls,
                "butterflies": delta.butterflies,
            },
        },
        blobs,
    )


def _worker_main(
    worker_id, artifact_dir, verify, ntt_native, task_queue, key_queue,
    result_queue, ready_queue,
):
    """Worker entry point: warm-start from artifacts, then serve tasks."""
    try:
        if ntt_native is not None:
            _force_ntt_backend(bool(ntt_native))
        from ..artifacts.zoo import load_zoo

        registry = load_zoo(artifact_dir, verify=verify)
        params_by_model = {
            name: registry.get(name).params for name in registry.names()
        }
    except BaseException as exc:
        ready_queue.put(("error", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    ready_queue.put(("ready", worker_id, registry.names()))
    key_cache: dict[str, object] = {}
    while True:
        payload = task_queue.get()
        if payload is None:  # stop sentinel from ShardPool.stop()
            return
        task_id = None
        try:
            request = decode_message(payload)
            # Opportunistically apply key broadcasts/drops queued since
            # the last task (drops must not wait for a blocking need).
            _drain_key_queue(key_queue, key_cache, params_by_model)
            if request.kind == "ping":
                reply = Message(
                    "result",
                    {
                        "task": request.require("task"),
                        "status": "ok",
                        "worker": worker_id,
                        "models": registry.names(),
                        "cached_keys": sorted(key_cache),
                        "pid": os.getpid(),
                    },
                )
            elif request.kind == "task":
                task_id = request.require("task")
                for key_id in request.require("key_ids"):
                    if key_id not in key_cache:
                        _drain_key_queue(
                            key_queue, key_cache, params_by_model,
                            block_for=key_id,
                        )
                reply = _run_task(registry, key_cache, request)
            else:
                reply = Message(
                    "result",
                    {
                        "task": request.meta.get("task", "?"),
                        "status": "error",
                        "reason": f"unknown shard request {request.kind!r}",
                    },
                )
        except Exception as exc:  # keep the worker alive for the next task
            reply = Message(
                "result",
                {
                    "task": task_id if task_id is not None else "?",
                    "status": "error",
                    "reason": f"worker {worker_id}: {type(exc).__name__}: {exc}",
                },
            )
        result_queue.put(encode_message(reply))


# -- coordinator --------------------------------------------------------------


class _PendingTask:
    __slots__ = ("event", "reply")

    def __init__(self):
        self.event = threading.Event()
        self.reply: Message | None = None


class ShardPool:
    """A pool of forked worker processes executing plan layers.

    Workers warm-start by ``load_zoo``-ing ``artifact_dir`` (memmapped
    stacks -> the weight pages of all workers are shared through the OS
    page cache) and pull :class:`~repro.serving.wire.Message` tasks from
    one shared queue.  ``ntt_native`` optionally pins the workers' NTT
    backend (``None`` inherits the parent's); backends are bit-identical
    either way.

    The pool is transport-agnostic -- :class:`ShardExecutor` adapts it to
    the serving engine, and tests/benchmarks drive :meth:`execute`
    directly.
    """

    def __init__(
        self,
        artifact_dir,
        workers: int = 2,
        verify: bool | str = True,
        ntt_native: bool | None = None,
        start_timeout_s: float = 120.0,
        task_timeout_s: float = 300.0,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.artifact_dir = str(artifact_dir)
        self.workers = int(workers)
        self.verify = verify
        self.ntt_native = ntt_native
        self.start_timeout_s = start_timeout_s
        self.task_timeout_s = task_timeout_s
        # fork keeps startup cheap (no re-import of numpy per worker) and
        # lets children inherit the already-built twiddle tables; workers
        # still load_zoo their own registry, per the artifact discipline.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._processes: list = []
        self._key_queues: list = []
        self._task_queue = None
        self._result_queue = None
        self.model_names: list[str] = []
        self._pending: dict[str, _PendingTask] = {}
        self._lock = threading.Lock()
        self._next_task = 0
        self._collector: threading.Thread | None = None
        self._stopping = threading.Event()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ShardPool":
        """Fork the workers and block until every one reports ready."""
        ctx = self._ctx
        self._task_queue = ctx.Queue()
        self._result_queue = ctx.Queue()
        ready_queue = ctx.Queue()
        for worker_id in range(self.workers):
            key_queue = ctx.Queue()
            process = ctx.Process(
                target=_worker_main,
                args=(
                    worker_id, self.artifact_dir, self.verify, self.ntt_native,
                    self._task_queue, key_queue, self._result_queue, ready_queue,
                ),
                name=f"repro-shard-{worker_id}",
                daemon=True,
            )
            process.start()
            self._processes.append(process)
            self._key_queues.append(key_queue)
        deadline = time.monotonic() + self.start_timeout_s
        for _ in range(self.workers):
            try:
                status, worker_id, detail = ready_queue.get(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            except queue.Empty:
                self.stop()
                raise ShardError(
                    f"shard worker(s) did not report ready within "
                    f"{self.start_timeout_s:.0f}s"
                ) from None
            if status != "ready":
                self.stop()
                raise ShardError(f"shard worker {worker_id} failed: {detail}")
            self.model_names = list(detail)
        self._collector = threading.Thread(
            target=self._collect_results, name="repro-shard-collect", daemon=True
        )
        self._collector.start()
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        """Drain-stop the pool: workers finish their current task and exit."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._task_queue is not None:
            for _ in self._processes:
                self._task_queue.put(None)
        deadline = time.monotonic() + timeout_s
        for process in self._processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        if self._result_queue is not None:
            self._result_queue.put(None)  # unblock the collector
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        # Fail anything still pending so no submitter blocks forever.
        with self._lock:
            pending, self._pending = self._pending, {}
        for task in pending.values():
            task.event.set()

    def __enter__(self) -> "ShardPool":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    def alive_workers(self) -> int:
        return sum(1 for process in self._processes if process.is_alive())

    # -- key distribution ---------------------------------------------------

    def broadcast_keys(self, key_id: str, model: str, blob: bytes) -> None:
        """Ship one session's Galois keys to every worker (cached there)."""
        payload = encode_message(
            Message("keys", {"key_id": key_id, "model": model}, [blob])
        )
        for key_queue in self._key_queues:
            key_queue.put(payload)

    def drop_keys(self, key_id: str) -> None:
        """Tell every worker to forget a session's keys (close/eviction)."""
        payload = encode_message(Message("drop_keys", {"key_id": key_id}))
        for key_queue in self._key_queues:
            key_queue.put(payload)

    # -- task execution -----------------------------------------------------

    def _collect_results(self) -> None:
        while True:
            payload = self._result_queue.get()
            if payload is None:
                return
            reply = decode_message(payload)
            task_id = str(reply.meta.get("task"))
            with self._lock:
                pending = self._pending.pop(task_id, None)
            if pending is not None:
                pending.reply = reply
                pending.event.set()

    def execute(self, requests: list[Message]) -> list[Message]:
        """Run task messages on the pool; blocks until all replies arrive.

        Thread-safe (the engine calls this from many transport threads).
        Task ids are assigned here; replies are returned in request
        order.  A worker-reported failure, a dead worker, or a timeout
        raises :class:`ShardError`.

        Worker death is treated as pool failure: workers are never
        respawned, and a task a dead worker had already pulled would
        otherwise stall its request for the whole ``task_timeout_s``
        while the engine's transport thread (and any batcher followers
        behind it) hang with it.  Failing fast the moment the pool is
        degraded keeps the error at protocol level -- restart the pool.
        """
        if self._task_queue is None or self._stopping.is_set():
            raise ShardError("shard pool is not running")
        if self.alive_workers() < len(self._processes):
            raise ShardError(
                f"shard pool degraded: only {self.alive_workers()} of "
                f"{len(self._processes)} workers alive"
            )
        pendings = []
        with self._lock:
            for request in requests:
                task_id = f"t{self._next_task}"
                self._next_task += 1
                request.meta["task"] = task_id
                pending = _PendingTask()
                self._pending[task_id] = pending
                pendings.append((task_id, pending))
        for request, _ in zip(requests, pendings):
            self._task_queue.put(encode_message(request))
        deadline = time.monotonic() + self.task_timeout_s
        replies = []
        for task_id, pending in pendings:
            while not pending.event.wait(timeout=0.5):
                if time.monotonic() >= deadline:
                    self._abandon(pendings)
                    raise ShardError(
                        f"shard task {task_id} timed out after "
                        f"{self.task_timeout_s:.0f}s"
                    )
                if (
                    self.alive_workers() < len(self._processes)
                    or self._stopping.is_set()
                ):
                    self._abandon(pendings)
                    raise ShardError(
                        "shard worker(s) died with tasks in flight"
                    )
            if pending.reply is None:  # pool stopped under us
                raise ShardError("shard pool stopped with tasks in flight")
            if pending.reply.meta.get("status") != "ok":
                self._abandon(pendings)
                raise ShardError(
                    str(pending.reply.meta.get("reason", "unknown shard error"))
                )
            replies.append(pending.reply)
        return replies

    def _abandon(self, pendings) -> None:
        with self._lock:
            for task_id, _ in pendings:
                self._pending.pop(task_id, None)

    def ping(self, count: int | None = None) -> list[Message]:
        """Round-trip ``count`` no-op tasks (worker/model/key introspection).

        Tasks come off a shared queue, so pings land on *some* workers --
        with a single-worker pool this is deterministic, which is what
        the tests use it for.
        """
        count = self.workers if count is None else count
        return self.execute([Message("ping", {}) for _ in range(count)])


@dataclass
class _ShardKeyHandle:
    """What a sharded session stores instead of deserialized Galois keys."""

    key_id: str


class ShardExecutor:
    """Adapt a :class:`ShardPool` to the engine's execution-backend seam.

    Splitting policy (always bit-identical, see module docstring):

    * ``B`` batched requests are split into ``min(B, workers)``
      contiguous row chunks -- zero duplicated work.
    * A *single* request hitting a convolution with
      ``co >= oc_split_min_co`` is instead split by output-channel
      ranges across workers.  This cuts latency but duplicates the
      per-input hoist/rotate work in every shard, so it is off for
      narrow layers (and the demo model) by default -- row-split tasks
      keep HE op counters identical to single-process execution, which
      the conformance suite asserts.
    """

    def __init__(self, pool: ShardPool, oc_split_min_co: int = 8):
        self.pool = pool
        self.oc_split_min_co = int(oc_split_min_co)
        # Key ids on the wire are scoped per executor *and* per upload:
        # several engines may share one pool, and their session ids all
        # start at "s0".  Scoping makes every broadcast's id unique, so
        # a worker can never serve a task with a stale cache entry -- an
        # id it has not seen yet blocks on its key channel until the
        # broadcast lands (queue feeder threads give no cross-queue
        # ordering guarantee, so "already cached" must imply "exactly
        # the right keys").
        self._scope = uuid.uuid4().hex[:12]
        self._scoped: dict[str, str] = {}
        self._uploads = 0
        self._lock = threading.Lock()

    # -- executor contract --------------------------------------------------

    def prepare_keys(self, entry, key_id, blob, keys):
        if entry.name not in self.pool.model_names:
            raise ShardError(
                f"model {entry.name!r} is not in the shard workers' artifact "
                f"set {self.pool.model_names} -- sharded serving requires the "
                f"registry and the pool to load the same artifact directory"
            )
        with self._lock:
            self._uploads += 1
            scoped = f"{self._scope}:{key_id}:{self._uploads}"
            previous = self._scoped.get(key_id)
            self._scoped[key_id] = scoped
        if previous is not None:
            self.pool.drop_keys(previous)
        self.pool.broadcast_keys(scoped, entry.name, blob)
        return _ShardKeyHandle(scoped)

    def release_keys(self, key_id):
        with self._lock:
            scoped = self._scoped.pop(key_id, None)
        if scoped is not None and not self.pool._stopping.is_set():
            self.pool.drop_keys(scoped)

    def execute(self, entry, layer, batch_inputs, batch_handles):
        batch = len(batch_inputs)
        workers = max(1, self.pool.workers)
        key_ids = [handle.key_id for handle in batch_handles]
        if (
            batch == 1
            and workers > 1
            and isinstance(layer, ConvLayer)
            and layer.co >= self.oc_split_min_co
        ):
            return self._execute_oc_split(
                entry, layer, batch_inputs[0], key_ids[0], workers
            )
        return self._execute_row_split(
            entry, layer, batch_inputs, key_ids, workers
        )

    # -- splitting ----------------------------------------------------------

    def _task(self, entry, layer, chunk_inputs, chunk_key_ids, oc_range=None):
        meta = {
            "model": entry.name,
            "layer": layer.name,
            "key_ids": list(chunk_key_ids),
            "cts_per_request": [len(cts) for cts in chunk_inputs],
        }
        if oc_range is not None:
            meta["oc_range"] = [int(oc_range[0]), int(oc_range[1])]
        blobs = [
            serialize_ciphertext(ct, entry.params)
            for cts in chunk_inputs
            for ct in cts
        ]
        return Message("task", meta, blobs)

    def _execute_row_split(self, entry, layer, batch_inputs, key_ids, workers):
        batch = len(batch_inputs)
        shards = min(batch, workers)
        bounds = [round(i * batch / shards) for i in range(shards + 1)]
        tasks = [
            self._task(
                entry, layer,
                batch_inputs[bounds[i] : bounds[i + 1]],
                key_ids[bounds[i] : bounds[i + 1]],
            )
            for i in range(shards)
            if bounds[i] < bounds[i + 1]
        ]
        replies = self.pool.execute(tasks)
        outputs = []
        for reply in replies:
            outputs.extend(self._parse_outputs(entry, reply))
        return outputs

    def _execute_oc_split(self, entry, layer, cts, key_id, workers):
        shards = min(workers, layer.co)
        bounds = [round(i * layer.co / shards) for i in range(shards + 1)]
        tasks = [
            self._task(
                entry, layer, [cts], [key_id],
                oc_range=(bounds[i], bounds[i + 1]),
            )
            for i in range(shards)
            if bounds[i] < bounds[i + 1]
        ]
        replies = self.pool.execute(tasks)
        merged: list = []
        for reply in replies:
            merged.extend(self._parse_outputs(entry, reply)[0])
        return [merged]

    def _parse_outputs(self, entry, reply: Message):
        """Deserialize a reply's ciphertexts and fold in its op counters."""
        counters = reply.meta.get("counters", {})
        GLOBAL_COUNTERS.he_mult += int(counters.get("he_mult", 0))
        GLOBAL_COUNTERS.he_add += int(counters.get("he_add", 0))
        GLOBAL_COUNTERS.he_rotate += int(counters.get("he_rotate", 0))
        GLOBAL_COUNTERS.ntt += int(counters.get("ntt", 0))
        GLOBAL_COUNTERS.modmuls += int(counters.get("modmuls", 0))
        GLOBAL_COUNTERS.butterflies += int(counters.get("butterflies", 0))
        outputs, offset = [], 0
        for count in reply.meta.get("outputs_per_request", []):
            count = int(count)
            outputs.append(
                [
                    deserialize_ciphertext(blob, entry.params)
                    for blob in reply.blobs[offset : offset + count]
                ]
            )
            offset += count
        return outputs
