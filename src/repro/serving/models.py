"""Demo deployment: a live-HE-scale CNN for the serve/infer CLI and bench.

The model zoo in :mod:`repro.nn.models` holds the paper's evaluation
networks (AlexNet-class shapes are analytic-model territory); serving
end-to-end over live BFV needs LeNet-scale layers.  This module pins one
such deployment -- network, synthetic weights, and a parameter set wide
enough for its accumulations -- so ``repro serve`` and ``repro infer``
agree on the architecture without shipping it over the wire.
"""

from __future__ import annotations

import numpy as np

from ..bfv.params import BfvParameters
from ..nn.layers import ActivationLayer, ConvLayer, FCLayer
from ..nn.models import Network
from ..nn.quantize import synthetic_conv_weights, synthetic_fc_weights

#: Fixed-point truncation applied by the demo deployment's GC stage.
DEMO_RESCALE_BITS = 4


def demo_network() -> Network:
    """A LeNet-style CNN small enough for interactive live-HE serving."""
    return Network(
        "ServeCNN",
        [
            ConvLayer("conv1", w=8, fw=3, ci=1, co=4),
            ActivationLayer("relu1", "relu", 4 * 6 * 6),
            ActivationLayer("pool1", "maxpool", 4 * 3 * 3, pool_size=2),
            FCLayer("fc1", 36, 16),
            ActivationLayer("relu2", "relu", 16),
            FCLayer("fc2", 16, 10),
        ],
    )


def demo_weights(seed: int = 0) -> dict[str, np.ndarray]:
    """Synthetic quantized weights for :func:`demo_network`."""
    return {
        "conv1": synthetic_conv_weights(3, 1, 4, bits=5, seed=seed),
        "fc1": synthetic_fc_weights(36, 16, bits=5, seed=seed + 1),
        "fc2": synthetic_fc_weights(16, 10, bits=5, seed=seed + 2),
    }


def demo_params(n: int = 4096) -> BfvParameters:
    """Parameters sized for the demo network's accumulation depth."""
    return BfvParameters.create(
        n=n,
        plain_bits=20,
        coeff_bits=100,
        a_dcmp_bits=16,
        require_security=n >= 4096,
    )


def demo_image(seed: int = 0) -> np.ndarray:
    """A synthetic (1, 8, 8) input image for the demo network."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 16, (1, 8, 8))
