"""Server-side model registry: compile once, serve every session.

A :class:`ModelRegistry` owns the cloud's share of each deployed model:
the network description, a server :class:`~repro.bfv.scheme.BfvScheme`
(no secret key -- the cloud only ever computes on ciphertexts), and the
compiled :class:`~repro.scheduling.plan.ConvPlan` / ``FcPlan`` for every
linear layer.  Plans are weight-bound but key-independent, so one offline
compile is amortised across all sessions and all clients; the underlying
NTT engine is likewise shared through the
:func:`~repro.bfv.ntt_batch.get_engine` memoization, so two models on the
same parameter set reuse one set of twiddle tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bfv.params import BfvParameters
from ..bfv.scheme import BfvScheme
from ..bfv.serialize import params_to_dict
from ..core.noise_model import Schedule
from ..nn.layers import ConvLayer, FCLayer
from ..nn.models import Network
from ..scheduling.plan import compile_linear_plan


def validate_weights(network: Network, weights: dict) -> None:
    """Check a weights dict against a network *before* any compilation.

    Requires the keys to be exactly the network's linear-layer names and
    every array to have the layer's shape -- ``(co, ci, fw, fw)`` for a
    convolution, ``(no, ni)`` for an FC layer -- with an integer dtype
    (plans quantize offline; float weights are a caller bug).  All
    problems are reported in one :class:`ValueError` instead of surfacing
    one at a time mid-compile.
    """
    expected_names = [layer.name for layer in network.linear_layers]
    problems = []
    missing = [name for name in expected_names if name not in weights]
    if missing:
        problems.append(f"missing weights for layer(s) {missing}")
    unexpected = sorted(set(weights) - set(expected_names))
    if unexpected:
        problems.append(
            f"unexpected weight key(s) {unexpected} "
            f"(linear layers are {expected_names})"
        )
    for layer in network.linear_layers:
        if layer.name not in weights:
            continue
        array = np.asarray(weights[layer.name])
        if isinstance(layer, ConvLayer):
            expected_shape = (layer.co, layer.ci, layer.fw, layer.fw)
        else:
            expected_shape = (layer.no, layer.ni)
        if array.shape != expected_shape:
            problems.append(
                f"layer {layer.name!r} expects weights of shape "
                f"{expected_shape}, got {array.shape}"
            )
        if array.dtype.kind not in "iu":
            problems.append(
                f"layer {layer.name!r} expects integer (quantized) weights, "
                f"got dtype {array.dtype}"
            )
    if problems:
        raise ValueError(
            f"invalid weights for network {network.name!r}: "
            + "; ".join(problems)
        )


@dataclass
class ModelEntry:
    """One deployed model: params, server scheme, and compiled plans."""

    name: str
    network: Network
    params: BfvParameters
    schedule: Schedule
    rescale_bits: int
    scheme: BfvScheme = field(repr=False)
    plans: dict = field(repr=False)
    rotation_steps: list[int] = field(default_factory=list)

    def layer(self, name: str):
        """Resolve a *linear* layer by name (activations never hit the wire)."""
        for layer in self.network.linear_layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name!r} has no linear layer {name!r}")

    def handshake_meta(self) -> dict:
        """The JSON-safe model facts a client needs after ``hello``."""
        layers = {}
        for layer in self.network.linear_layers:
            if isinstance(layer, ConvLayer):
                layers[layer.name] = {
                    "kind": "conv",
                    "grid_w": self.plans[layer.name].grid_w,
                }
            else:
                layers[layer.name] = {"kind": "fc", "no": layer.no}
        return {
            "rotation_steps": list(self.rotation_steps),
            "schedule": self.schedule.value,
            "rescale_bits": self.rescale_bits,
            "layers": layers,
        }


class ModelRegistry:
    """Name -> :class:`ModelEntry` table with one-time plan compilation."""

    def __init__(self) -> None:
        self._models: dict[str, ModelEntry] = {}

    def register(
        self,
        name: str,
        network: Network,
        weights: dict[str, np.ndarray],
        params: BfvParameters,
        schedule: Schedule = Schedule.PARTIAL_ALIGNED,
        rescale_bits: int = 6,
        seed: int = 0,
    ) -> ModelEntry:
        """Deploy a model: compile every linear layer's plan offline.

        The returned entry is shared by every future session for ``name``;
        re-registering a name replaces it.  The ``weights`` dict is
        validated up front (see :func:`validate_weights`), so a missing
        layer, stray key, or wrong-shaped array raises one clear error
        here instead of failing partway through plan compilation.
        """
        validate_weights(network, weights)
        scheme = BfvScheme(params, seed=seed)
        plans = {
            layer.name: compile_linear_plan(
                scheme, layer, weights[layer.name], schedule
            )
            for layer in network.linear_layers
        }
        steps: set[int] = set()
        for plan in plans.values():
            steps.update(plan.rotation_steps)
        entry = ModelEntry(
            name=name,
            network=network,
            params=params,
            schedule=schedule,
            rescale_bits=rescale_bits,
            scheme=scheme,
            plans=plans,
            rotation_steps=sorted(steps),
        )
        self._models[name] = entry
        return entry

    def register_artifact(
        self,
        source,
        name: str | None = None,
        verify: bool | str = True,
        seed: int = 0,
    ) -> ModelEntry:
        """Deploy a model from a compiled ``.rpa`` artifact -- zero recompute.

        ``source`` is an artifact path or an already-loaded
        :class:`~repro.artifacts.store.ModelArtifact`.  The weight stacks
        stay memmapped read-only (no NTT runs, nothing is copied at
        load); plans are rebuilt from metadata via ``from_stacks``.  The
        artifact's recorded rotation-step union is cross-checked against
        the rebuilt plans so a tampered header cannot under-provision
        Galois keys.

        ``verify`` only applies when ``source`` is a path: a pre-loaded
        ``ModelArtifact`` was already checked at whatever level its
        ``load_artifact`` call requested, and is not re-read here.
        """
        from ..artifacts.store import ModelArtifact, load_artifact

        artifact = (
            source
            if isinstance(source, ModelArtifact)
            else load_artifact(source, verify=verify)
        )
        scheme = BfvScheme(artifact.params, seed=seed)
        plans = artifact.build_plans(scheme)
        steps: set[int] = set()
        for plan in plans.values():
            steps.update(plan.rotation_steps)
        if sorted(steps) != sorted(artifact.rotation_steps):
            from ..artifacts.format import ArtifactError

            raise ArtifactError(
                f"artifact rotation steps {sorted(artifact.rotation_steps)} "
                f"do not match the rebuilt plans' union {sorted(steps)}"
            )
        entry = ModelEntry(
            name=name or artifact.name,
            network=artifact.network,
            params=artifact.params,
            schedule=artifact.schedule,
            rescale_bits=artifact.rescale_bits,
            scheme=scheme,
            plans=plans,
            rotation_steps=sorted(steps),
        )
        self._models[entry.name] = entry
        return entry

    def get(self, name: str) -> ModelEntry:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered (available: {sorted(self._models)})"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._models)

    def entries(self) -> list[ModelEntry]:
        """The currently registered entries (latest registration per name)."""
        return list(self._models.values())

    def params_compatible(self, entry: ModelEntry, client_params: dict) -> str | None:
        """Validate a client's ``hello`` parameter dict against a model.

        Returns ``None`` when compatible, else a human-readable reason --
        every field of the wire parameter description must match, because
        plans, Galois keys, and mask encodings are all parameter-bound.
        """
        expected = params_to_dict(entry.params)
        for key, value in expected.items():
            got = client_params.get(key)
            if got != value:
                return (
                    f"parameter mismatch on {key!r}: model {entry.name!r} "
                    f"expects {value}, client sent {got}"
                )
        return None
