"""Server-side model registry: compile once, serve every session.

A :class:`ModelRegistry` owns the cloud's share of each deployed model:
the network description, a server :class:`~repro.bfv.scheme.BfvScheme`
(no secret key -- the cloud only ever computes on ciphertexts), and the
compiled :class:`~repro.scheduling.plan.ConvPlan` / ``FcPlan`` for every
linear layer.  Plans are weight-bound but key-independent, so one offline
compile is amortised across all sessions and all clients; the underlying
NTT engine is likewise shared through the
:func:`~repro.bfv.ntt_batch.get_engine` memoization, so two models on the
same parameter set reuse one set of twiddle tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bfv.params import BfvParameters
from ..bfv.scheme import BfvScheme
from ..bfv.serialize import params_to_dict
from ..core.noise_model import Schedule
from ..nn.layers import ConvLayer, FCLayer
from ..nn.models import Network
from ..scheduling.plan import compile_linear_plan


@dataclass
class ModelEntry:
    """One deployed model: params, server scheme, and compiled plans."""

    name: str
    network: Network
    params: BfvParameters
    schedule: Schedule
    rescale_bits: int
    scheme: BfvScheme = field(repr=False)
    plans: dict = field(repr=False)
    rotation_steps: list[int] = field(default_factory=list)

    def layer(self, name: str):
        """Resolve a *linear* layer by name (activations never hit the wire)."""
        for layer in self.network.linear_layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name!r} has no linear layer {name!r}")

    def handshake_meta(self) -> dict:
        """The JSON-safe model facts a client needs after ``hello``."""
        layers = {}
        for layer in self.network.linear_layers:
            if isinstance(layer, ConvLayer):
                layers[layer.name] = {
                    "kind": "conv",
                    "grid_w": self.plans[layer.name].grid_w,
                }
            else:
                layers[layer.name] = {"kind": "fc", "no": layer.no}
        return {
            "rotation_steps": list(self.rotation_steps),
            "schedule": self.schedule.value,
            "rescale_bits": self.rescale_bits,
            "layers": layers,
        }


class ModelRegistry:
    """Name -> :class:`ModelEntry` table with one-time plan compilation."""

    def __init__(self) -> None:
        self._models: dict[str, ModelEntry] = {}

    def register(
        self,
        name: str,
        network: Network,
        weights: dict[str, np.ndarray],
        params: BfvParameters,
        schedule: Schedule = Schedule.PARTIAL_ALIGNED,
        rescale_bits: int = 6,
        seed: int = 0,
    ) -> ModelEntry:
        """Deploy a model: compile every linear layer's plan offline.

        The returned entry is shared by every future session for ``name``;
        re-registering a name replaces it.
        """
        missing = [
            layer.name
            for layer in network.linear_layers
            if layer.name not in weights
        ]
        if missing:
            raise ValueError(f"weights missing for layer(s) {missing}")
        scheme = BfvScheme(params, seed=seed)
        plans = {
            layer.name: compile_linear_plan(
                scheme, layer, weights[layer.name], schedule
            )
            for layer in network.linear_layers
        }
        steps: set[int] = set()
        for plan in plans.values():
            steps.update(plan.rotation_steps)
        entry = ModelEntry(
            name=name,
            network=network,
            params=params,
            schedule=schedule,
            rescale_bits=rescale_bits,
            scheme=scheme,
            plans=plans,
            rotation_steps=sorted(steps),
        )
        self._models[name] = entry
        return entry

    def get(self, name: str) -> ModelEntry:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered (available: {sorted(self._models)})"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._models)

    def entries(self) -> list[ModelEntry]:
        """The currently registered entries (latest registration per name)."""
        return list(self._models.values())

    def params_compatible(self, entry: ModelEntry, client_params: dict) -> str | None:
        """Validate a client's ``hello`` parameter dict against a model.

        Returns ``None`` when compatible, else a human-readable reason --
        every field of the wire parameter description must match, because
        plans, Galois keys, and mask encodings are all parameter-bound.
        """
        expected = params_to_dict(entry.params)
        for key, value in expected.items():
            got = client_params.get(key)
            if got != value:
                return (
                    f"parameter mismatch on {key!r}: model {entry.name!r} "
                    f"expects {value}, client sent {got}"
                )
        return None
