"""Server-side model registry: compile once, serve every session.

A :class:`ModelRegistry` owns the cloud's share of each deployed model:
the network description, a server :class:`~repro.bfv.scheme.BfvScheme`
(no secret key -- the cloud only ever computes on ciphertexts), and the
compiled :class:`~repro.scheduling.plan.ConvPlan` / ``FcPlan`` for every
linear layer.  Plans are weight-bound but key-independent, so one offline
compile is amortised across all sessions and all clients; the underlying
NTT engine is likewise shared through the
:func:`~repro.bfv.ntt_batch.get_engine` memoization, so two models on the
same parameter set reuse one set of twiddle tables.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..bfv.params import BfvParameters
from ..bfv.scheme import BfvScheme
from ..bfv.serialize import params_to_dict
from ..core.noise_model import Schedule
from ..nn.layers import ConvLayer, FCLayer
from ..nn.models import Network
from ..scheduling.plan import compile_linear_plan


def validate_weights(network: Network, weights: dict) -> None:
    """Check a weights dict against a network *before* any compilation.

    Requires the keys to be exactly the network's linear-layer names and
    every array to have the layer's shape -- ``(co, ci, fw, fw)`` for a
    convolution, ``(no, ni)`` for an FC layer -- with an integer dtype
    (plans quantize offline; float weights are a caller bug).  All
    problems are reported in one :class:`ValueError` instead of surfacing
    one at a time mid-compile.
    """
    expected_names = [layer.name for layer in network.linear_layers]
    problems = []
    missing = [name for name in expected_names if name not in weights]
    if missing:
        problems.append(f"missing weights for layer(s) {missing}")
    unexpected = sorted(set(weights) - set(expected_names))
    if unexpected:
        problems.append(
            f"unexpected weight key(s) {unexpected} "
            f"(linear layers are {expected_names})"
        )
    for layer in network.linear_layers:
        if layer.name not in weights:
            continue
        array = np.asarray(weights[layer.name])
        if isinstance(layer, ConvLayer):
            expected_shape = (layer.co, layer.ci, layer.fw, layer.fw)
        else:
            expected_shape = (layer.no, layer.ni)
        if array.shape != expected_shape:
            problems.append(
                f"layer {layer.name!r} expects weights of shape "
                f"{expected_shape}, got {array.shape}"
            )
        if array.dtype.kind not in "iu":
            problems.append(
                f"layer {layer.name!r} expects integer (quantized) weights, "
                f"got dtype {array.dtype}"
            )
    if problems:
        raise ValueError(
            f"invalid weights for network {network.name!r}: "
            + "; ".join(problems)
        )


@dataclass
class ModelEntry:
    """One deployed model: params, server scheme, and compiled plans."""

    name: str
    network: Network
    params: BfvParameters
    schedule: Schedule
    rescale_bits: int
    scheme: BfvScheme = field(repr=False)
    plans: dict = field(repr=False)
    rotation_steps: list[int] = field(default_factory=list)

    def layer(self, name: str):
        """Resolve a *linear* layer by name (activations never hit the wire)."""
        for layer in self.network.linear_layers:
            if layer.name == name:
                return layer
        raise KeyError(f"model {self.name!r} has no linear layer {name!r}")

    def handshake_meta(self) -> dict:
        """The JSON-safe model facts a client needs after ``hello``."""
        layers = {}
        for layer in self.network.linear_layers:
            if isinstance(layer, ConvLayer):
                layers[layer.name] = {
                    "kind": "conv",
                    "grid_w": self.plans[layer.name].grid_w,
                }
            else:
                layers[layer.name] = {"kind": "fc", "no": layer.no}
        return {
            "rotation_steps": list(self.rotation_steps),
            "schedule": self.schedule.value,
            "rescale_bits": self.rescale_bits,
            "layers": layers,
        }


class ModelRegistry:
    """Name -> :class:`ModelEntry` table with one-time plan compilation.

    Reads are lock-free: lookups hand out immutable :class:`ModelEntry`
    references, and :meth:`reload_zoo` replaces the whole name table in
    one atomic assignment (read-copy-update), so an in-flight round that
    already resolved its entry keeps serving the old generation while new
    handshakes bind the new one.
    """

    def __init__(self) -> None:
        self._models: dict[str, ModelEntry] = {}
        #: Serialises registry *mutations* (reloads and registrations);
        #: never taken on the lookup path.
        self._swap_lock = threading.Lock()
        #: Deployment identity when the registry was populated by
        #: :func:`~repro.artifacts.zoo.load_zoo` / :meth:`reload_zoo`.
        self.zoo_dir: str | None = None
        self.zoo_generation: int = 0
        self._zoo_names: set[str] = set()

    def register(
        self,
        name: str,
        network: Network,
        weights: dict[str, np.ndarray],
        params: BfvParameters,
        schedule: Schedule = Schedule.PARTIAL_ALIGNED,
        rescale_bits: int = 6,
        seed: int = 0,
    ) -> ModelEntry:
        """Deploy a model: compile every linear layer's plan offline.

        The returned entry is shared by every future session for ``name``;
        re-registering a name replaces it.  The ``weights`` dict is
        validated up front (see :func:`validate_weights`), so a missing
        layer, stray key, or wrong-shaped array raises one clear error
        here instead of failing partway through plan compilation.
        """
        validate_weights(network, weights)
        scheme = BfvScheme(params, seed=seed)
        plans = {
            layer.name: compile_linear_plan(
                scheme, layer, weights[layer.name], schedule
            )
            for layer in network.linear_layers
        }
        steps: set[int] = set()
        for plan in plans.values():
            steps.update(plan.rotation_steps)
        entry = ModelEntry(
            name=name,
            network=network,
            params=params,
            schedule=schedule,
            rescale_bits=rescale_bits,
            scheme=scheme,
            plans=plans,
            rotation_steps=sorted(steps),
        )
        self._models[name] = entry
        return entry

    def register_artifact(
        self,
        source,
        name: str | None = None,
        verify: bool | str = True,
        seed: int = 0,
    ) -> ModelEntry:
        """Deploy a model from a compiled ``.rpa`` artifact -- zero recompute.

        ``source`` is an artifact path or an already-loaded
        :class:`~repro.artifacts.store.ModelArtifact`.  The weight stacks
        stay memmapped read-only (no NTT runs, nothing is copied at
        load); plans are rebuilt from metadata via ``from_stacks``.  The
        artifact's recorded rotation-step union is cross-checked against
        the rebuilt plans so a tampered header cannot under-provision
        Galois keys.

        ``verify`` only applies when ``source`` is a path: a pre-loaded
        ``ModelArtifact`` was already checked at whatever level its
        ``load_artifact`` call requested, and is not re-read here.
        """
        entry = self._entry_from_artifact(source, name=name, verify=verify, seed=seed)
        self._models[entry.name] = entry
        return entry

    def _entry_from_artifact(
        self,
        source,
        name: str | None = None,
        verify: bool | str = True,
        seed: int = 0,
    ) -> ModelEntry:
        """Build (but do not register) a :class:`ModelEntry` from an artifact."""
        from ..artifacts.store import ModelArtifact, load_artifact

        artifact = (
            source
            if isinstance(source, ModelArtifact)
            else load_artifact(source, verify=verify)
        )
        scheme = BfvScheme(artifact.params, seed=seed)
        plans = artifact.build_plans(scheme)
        steps: set[int] = set()
        for plan in plans.values():
            steps.update(plan.rotation_steps)
        if sorted(steps) != sorted(artifact.rotation_steps):
            from ..artifacts.format import ArtifactError

            raise ArtifactError(
                f"artifact rotation steps {sorted(artifact.rotation_steps)} "
                f"do not match the rebuilt plans' union {sorted(steps)}"
            )
        return ModelEntry(
            name=name or artifact.name,
            network=artifact.network,
            params=artifact.params,
            schedule=artifact.schedule,
            rescale_bits=artifact.rescale_bits,
            scheme=scheme,
            plans=plans,
            rotation_steps=sorted(steps),
        )

    def reload_zoo(self, directory=None, verify: bool | str = True) -> dict:
        """Reload a zoo directory and atomically swap to its generation.

        The live-upgrade path (``repro admin reload-zoo``): re-reads
        ``directory`` (default: the directory this registry was loaded
        from), and

        - **no-ops when nothing changed** -- same directory at the same
          manifest generation returns ``{"applied": False, ...}`` without
          touching any entry (reloads are idempotent, so an admin retry
          or a replayed wire frame is harmless);
        - **stages everything before applying anything** -- every
          artifact of the new generation is loaded and validated first,
          so a corrupt or incompatible artifact raises
          :class:`~repro.artifacts.format.ArtifactError` and leaves the
          registry exactly as it was (a multi-model diff is never
          partially applied);
        - **rejects parameter changes** -- a model whose parameter
          fingerprint differs from the entry currently serving that name
          raises ``ArtifactError``: sessions, Galois keys, and mask
          encodings are parameter-bound, so such a change needs a new
          deployment, not a live swap;
        - **swaps by read-copy-update** -- the name table is replaced in
          one assignment.  Sessions that pinned an old entry at handshake
          keep computing on it (old plans and memmaps stay alive as long
          as anything references them); new handshakes resolve the new
          generation.

        Returns a summary dict: ``applied``, ``generation``,
        ``previous_generation``, and the ``added`` / ``updated`` /
        ``removed`` model-name lists.
        """
        from ..artifacts.format import ArtifactError
        from ..artifacts.store import load_artifact
        from ..artifacts.zoo import (
            manifest_generation,
            read_manifest,
            zoo_files,
        )

        if directory is None:
            directory = self.zoo_dir
        if directory is None:
            raise ArtifactError(
                "reload_zoo needs a directory: this registry was not "
                "loaded from a zoo and none was given"
            )
        directory = Path(directory)
        with self._swap_lock:
            generation = manifest_generation(read_manifest(directory))
            previous = self.zoo_generation
            if (
                self.zoo_dir is not None
                and directory == Path(self.zoo_dir)
                and generation == previous
            ):
                return {
                    "applied": False,
                    "generation": generation,
                    "previous_generation": previous,
                    "added": [],
                    "updated": [],
                    "removed": [],
                }
            # Stage: load and validate the entire new generation before
            # touching the live table.
            files = zoo_files(directory)
            if not files:
                raise ArtifactError(f"no artifacts found in {directory}")
            staged: dict[str, ModelEntry] = {}
            for path in files:
                artifact = load_artifact(path, verify=verify)
                if artifact.name in staged:
                    raise ArtifactError(
                        f"{path.name} redeclares model {artifact.name!r}"
                    )
                current = self._models.get(artifact.name)
                if current is not None and params_to_dict(
                    artifact.params
                ) != params_to_dict(current.params):
                    raise ArtifactError(
                        f"reload rejected: model {artifact.name!r} changes "
                        f"its parameter fingerprint; live sessions and keys "
                        f"are parameter-bound (redeploy instead)"
                    )
                staged[artifact.name] = self._entry_from_artifact(artifact)
            removed = sorted(self._zoo_names - set(staged))
            added = sorted(name for name in staged if name not in self._models)
            updated = sorted(name for name in staged if name in self._models)
            # Commit: one new table, one assignment.
            models = {
                name: entry
                for name, entry in self._models.items()
                if name not in removed
            }
            models.update(staged)
            self._models = models
            self.zoo_dir = str(directory)
            self.zoo_generation = generation
            self._zoo_names = set(staged)
        return {
            "applied": True,
            "generation": generation,
            "previous_generation": previous,
            "added": added,
            "updated": updated,
            "removed": removed,
        }

    def get(self, name: str) -> ModelEntry:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"no model {name!r} registered (available: {sorted(self._models)})"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._models)

    def entries(self) -> list[ModelEntry]:
        """The currently registered entries (latest registration per name)."""
        return list(self._models.values())

    def params_compatible(self, entry: ModelEntry, client_params: dict) -> str | None:
        """Validate a client's ``hello`` parameter dict against a model.

        Returns ``None`` when compatible, else a human-readable reason --
        every field of the wire parameter description must match, because
        plans, Galois keys, and mask encodings are all parameter-bound.
        """
        expected = params_to_dict(entry.params)
        for key, value in expected.items():
            got = client_params.get(key)
            if got != value:
                return (
                    f"parameter mismatch on {key!r}: model {entry.name!r} "
                    f"expects {value}, client sent {got}"
                )
        return None
