"""Deterministic, seedable fault injection for the serving stack.

The robustness claims of :mod:`repro.serving` -- a supervised shard pool
that requeues the work of dead workers, an engine that degrades to
in-process execution, a client transport that reconnects and replays --
are only claims until something actually kills a worker mid-task.  This
module is that something.  Every fault is *counted*, not random: "crash
worker 0 on the 2nd task it claims" fires at exactly one point in the
protocol, so a chaos test (``tests/test_faults.py``) can assert
bit-identical logits and exact op-counter accounting after recovery.

Two planes are injectable:

:class:`WorkerFaults`
    Shard-worker faults, evaluated inside the worker process (the plan
    is picklable and crosses the fork): SIGKILL on startup, SIGKILL when
    claiming the Nth task (mid-task from the coordinator's view -- the
    claim is already on the wire), or a stall of ``stall_s`` seconds
    before executing the Nth task.  By default a fault fires only in a
    worker's first incarnation, so a respawned worker is healthy;
    ``every_incarnation=True`` models a permanently-crashing worker.

:class:`ConnectionFaults`
    Connection faults, applied by wrapping the TCP socket
    (:meth:`ConnectionFaults.connect` is a drop-in
    ``socket_factory`` for :class:`~repro.serving.transport
    .SocketTransport` *and* ``remote_socket_factory`` for
    :class:`~repro.serving.shards.ShardPool`, so the same plan injects
    faults into the client->server link or the coordinator->remote-worker
    link): drop or truncate the Nth request frame sent, cut the
    connection on the Nth reply read, or flip one seeded byte in the
    reply to the Nth request.  Counters are shared across reconnects, so
    "the Nth frame" means the Nth over the transport's lifetime.  On the
    coordinator link every connection reads one ``shard_ready`` frame
    and each task reads two reply frames (``claimed`` + ``result``).

Both planes also parse ``REPRO_FAULT_*`` environment variables (see
:meth:`WorkerFaults.from_env` / :meth:`ConnectionFaults.from_env`), so
an unmodified ``repro serve`` / ``repro infer`` pair can be driven
through injected faults by CI:

.. code-block:: text

    REPRO_FAULT_WORKER_CRASH=0:1      worker 0, SIGKILL on its 1st task
    REPRO_FAULT_TASK_STALL=1:2:5.0    worker 1, 5s stall on its 2nd task
    REPRO_FAULT_STARTUP_CRASH=0       worker 0 dies before readiness
    REPRO_FAULT_CONN_DROP=3           drop the 3rd request frame sent
    REPRO_FAULT_CONN_TRUNCATE=3       truncate the 3rd request frame
    REPRO_FAULT_CONN_CUT_RECV=3       cut the link on the 3rd reply read
    REPRO_FAULT_FRAME_CORRUPT=3       flip a byte in the 3rd reply
    REPRO_FAULT_SEED=7                seeds the corrupted-byte choice
"""

from __future__ import annotations

import os
import random
import signal
import socket
import time
from dataclasses import dataclass

#: Prefix of every fault-injection environment hook.
ENV_PREFIX = "REPRO_FAULT_"


def _sigkill_self() -> None:  # pragma: no cover - the process dies here
    os.kill(os.getpid(), signal.SIGKILL)


# -- worker-side faults -------------------------------------------------------


@dataclass(frozen=True)
class WorkerFaults:
    """A deterministic fault plan evaluated inside shard workers.

    Task indices are 1-based and counted per worker incarnation over
    ``task``-kind frames only (pings and key traffic never trigger
    faults).  Faults fire in incarnation 0 only unless
    ``every_incarnation`` is set.
    """

    #: Worker id to SIGKILL, or ``-1`` for no crash fault.
    crash_worker: int = -1
    #: Crash when claiming this (1-based) task.
    crash_on_task: int = 1
    #: Worker id to stall, or ``-1`` for no stall fault.
    stall_worker: int = -1
    #: Stall before executing this (1-based) task.
    stall_on_task: int = 1
    #: Stall duration in seconds.
    stall_s: float = 0.0
    #: Worker id to SIGKILL before it reports ready, or ``-1``.
    startup_crash_worker: int = -1
    #: Apply the crash/stall faults in every incarnation, not just the
    #: first (models a permanently-crashing worker).
    every_incarnation: bool = False

    @classmethod
    def from_env(cls, env=None) -> "WorkerFaults | None":
        """Parse ``REPRO_FAULT_*`` hooks; ``None`` when none are set."""
        env = os.environ if env is None else env
        crash = _split_ints(env.get(ENV_PREFIX + "WORKER_CRASH"), 2)
        stall = _split_ints(env.get(ENV_PREFIX + "TASK_STALL"), 3)
        startup = env.get(ENV_PREFIX + "STARTUP_CRASH")
        if crash is None and stall is None and not startup:
            return None
        kwargs: dict = {
            "every_incarnation": env.get(ENV_PREFIX + "EVERY_INCARNATION", "") == "1"
        }
        if crash is not None:
            kwargs["crash_worker"], kwargs["crash_on_task"] = (
                int(crash[0]), int(crash[1]),
            )
        if stall is not None:
            kwargs["stall_worker"] = int(stall[0])
            kwargs["stall_on_task"] = int(stall[1])
            kwargs["stall_s"] = float(stall[2])
        if startup:
            kwargs["startup_crash_worker"] = int(startup)
        return cls(**kwargs)

    def _applies(self, incarnation: int) -> bool:
        return incarnation == 0 or self.every_incarnation

    def on_worker_start(self, worker_id: int, incarnation: int) -> None:
        """Hook run before a worker loads its registry (pre-readiness)."""
        if worker_id == self.startup_crash_worker and self._applies(incarnation):
            _sigkill_self()

    def on_task(self, worker_id: int, incarnation: int, task_index: int) -> None:
        """Hook run after a worker claims its ``task_index``-th task."""
        if not self._applies(incarnation):
            return
        if worker_id == self.crash_worker and task_index >= self.crash_on_task:
            _sigkill_self()
        if (
            worker_id == self.stall_worker
            and task_index == self.stall_on_task
            and self.stall_s > 0
        ):
            time.sleep(self.stall_s)


def _split_ints(value: str | None, count: int) -> list[str] | None:
    if not value:
        return None
    parts = value.split(":")
    if len(parts) != count:
        raise ValueError(
            f"malformed {ENV_PREFIX} fault spec {value!r}: expected "
            f"{count} colon-separated field(s)"
        )
    return parts


# -- client-transport faults --------------------------------------------------


class ConnectionFaults:
    """Counted connection faults, shared across a transport's reconnects.

    Frame counters are 1-based and advance once per frame (one
    ``sendall`` per request frame, one 4-byte length-prefix read per
    reply frame), so a fault like ``drop_on_send=3`` names one exact
    protocol step: the third request the client ever sends.
    """

    def __init__(
        self,
        drop_on_send: int = 0,
        truncate_on_send: int = 0,
        cut_on_recv: int = 0,
        corrupt_reply_to: int = 0,
        seed: int = 0,
    ):
        self.drop_on_send = int(drop_on_send)
        self.truncate_on_send = int(truncate_on_send)
        self.cut_on_recv = int(cut_on_recv)
        self.corrupt_reply_to = int(corrupt_reply_to)
        self._rng = random.Random(seed)
        self.frames_sent = 0
        self.frames_read = 0
        #: Tally of faults actually fired, for test assertions.
        self.fired: list[str] = []

    @classmethod
    def from_env(cls, env=None) -> "ConnectionFaults | None":
        """Parse ``REPRO_FAULT_CONN_*`` hooks; ``None`` when unset."""
        env = os.environ if env is None else env
        kwargs = {
            "drop_on_send": env.get(ENV_PREFIX + "CONN_DROP", 0),
            "truncate_on_send": env.get(ENV_PREFIX + "CONN_TRUNCATE", 0),
            "cut_on_recv": env.get(ENV_PREFIX + "CONN_CUT_RECV", 0),
            "corrupt_reply_to": env.get(ENV_PREFIX + "FRAME_CORRUPT", 0),
        }
        if not any(int(value) for value in kwargs.values()):
            return None
        return cls(seed=int(env.get(ENV_PREFIX + "SEED", 0)), **{
            key: int(value) for key, value in kwargs.items()
        })

    def connect(self, address, timeout=None) -> "FaultySocket":
        """``socket_factory`` drop-in: a wrapped ``create_connection``."""
        return FaultySocket(socket.create_connection(address, timeout=timeout), self)


class FaultySocket:
    """A socket wrapper that applies one :class:`ConnectionFaults` plan."""

    def __init__(self, sock: socket.socket, plan: ConnectionFaults):
        self._sock = sock
        self._plan = plan
        self._corrupt_next_recv = False

    def __getattr__(self, name):
        return getattr(self._sock, name)

    def sendall(self, data: bytes) -> None:
        plan = self._plan
        plan.frames_sent += 1
        if plan.frames_sent == plan.drop_on_send:
            plan.fired.append(f"drop_on_send:{plan.frames_sent}")
            self._sock.close()
            raise ConnectionResetError("injected connection drop on send")
        if plan.frames_sent == plan.truncate_on_send:
            plan.fired.append(f"truncate_on_send:{plan.frames_sent}")
            self._sock.sendall(data[: max(1, len(data) // 2)])
            self._sock.close()
            raise ConnectionResetError("injected frame truncation on send")
        if plan.frames_sent == plan.corrupt_reply_to:
            self._corrupt_next_recv = True
        self._sock.sendall(data)

    def recv(self, bufsize: int) -> bytes:
        plan = self._plan
        if bufsize == 4:  # a frame-length prefix read starts a new frame
            plan.frames_read += 1
            if plan.frames_read == plan.cut_on_recv:
                plan.fired.append(f"cut_on_recv:{plan.frames_read}")
                self._sock.close()
                raise ConnectionResetError("injected connection cut on recv")
        data = self._sock.recv(bufsize)
        if self._corrupt_next_recv and len(data) > 4:
            # Flip a byte in the frame magic: the one region decoding
            # always validates, so the corruption is deterministically
            # *detected* (ValueError -> replay) rather than sometimes
            # landing in a ciphertext blob and silently corrupting
            # logits -- the wire format carries no payload checksum.
            self._corrupt_next_recv = False
            plan.fired.append(f"corrupt_reply:{plan.frames_read}")
            index = plan._rng.randrange(0, 4)
            data = data[:index] + bytes([data[index] ^ 0x40]) + data[index + 1 :]
        return data

    def close(self) -> None:
        self._sock.close()

    def shutdown(self, how: int) -> None:
        self._sock.shutdown(how)

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)
