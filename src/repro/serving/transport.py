"""Transports: in-process loopback and a TCP socket server/client pair.

Both move the exact frames of :mod:`repro.serving.wire`.  The loopback
transport is the test/bench harness -- it still encodes and decodes every
frame, so anything it carries would survive a real network.  The socket
pair is a minimal production shape: one persistent connection per client
session, a listener thread, and a worker pool sized so that concurrent
clients can be in flight together (cross-client batching needs multiple
requests pending at once).
"""

from __future__ import annotations

import errno
import logging
import random
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Protocol

from .engine import ServingEngine
from .metrics import render_http
from .tracing import NULL_TRACER
from .wire import (
    MAX_FRAME_BYTES,
    TRACE_META_KEY,
    Message,
    _LEN,
    _recv_exact,
    decode_message,
    encode_message,
    error_message,
    recv_frame,
    send_frame,
)

logger = logging.getLogger(__name__)


def bind_listener(host: str, port: int, attempts: int = 5) -> socket.socket:
    """Bind a listening socket, retrying the ephemeral-port race.

    Ephemeral binds (port 0) retry the rare EADDRINUSE race (an
    exhausted ephemeral range on a busy host); an explicit port is the
    operator's claim and fails immediately.  Every server in the repo
    -- and the test suite, via ``tests/conftest.py`` -- binds through
    this helper, so no test ever needs a fixed port or a sleep.
    """
    for attempt in range(attempts):
        try:
            return socket.create_server((host, port))
        except OSError as exc:  # pragma: no cover - needs port exhaustion
            if (
                port != 0
                or exc.errno != errno.EADDRINUSE
                or attempt == attempts - 1
            ):
                raise
    raise OSError("unreachable")  # pragma: no cover


class Transport(Protocol):
    """Anything a :class:`~repro.serving.session.ClientSession` can drive."""

    def request(self, message: Message) -> Message:
        """Send one request frame and block for its reply frame."""
        ...


class LoopbackTransport:
    """Drive a :class:`ServingEngine` in process, through the wire format.

    Every request and reply round-trips ``encode_message`` /
    ``decode_message``, so serialization bugs surface in unit tests
    without sockets; concurrency still works (call ``request`` from many
    threads to exercise cross-client batching).
    """

    def __init__(self, engine: ServingEngine):
        self.engine = engine

    def request(self, message: Message) -> Message:
        reply = self.engine.handle(decode_message(encode_message(message)))
        return decode_message(encode_message(reply))


class SocketTransport:
    """Client side of the TCP transport: one persistent framed connection.

    The transport is *resilient*: ``timeout`` bounds every read (a
    server that accepts and then dies mid-frame cannot hang the client
    forever), and a failed round -- connection refused, reset, dropped,
    or a corrupted reply frame -- is retried up to ``max_retries`` times
    over a fresh connection with exponential backoff plus jitter.  The
    retry re-issues the *exact* request bytes: protocol rounds are
    deterministic functions of session state, so a replay is
    bit-identical, and the serving engine treats a re-sent round
    idempotently (the session state a ``linear`` round reads is not
    advanced by serving it).

    ``socket_factory`` is the fault-injection seam: anything with the
    ``create_connection(address, timeout)`` shape (see
    :meth:`repro.serving.faults.ConnectionFaults.connect`).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 60.0,
        connect_timeout_s: float | None = None,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        retry_jitter_seed: int | None = None,
        socket_factory=None,
        max_frame_bytes: int | None = None,
    ):
        self._address = (host, port)
        self._timeout = timeout
        #: Reply-frame size cap (``None`` = the wire module default).
        self.max_frame_bytes = max_frame_bytes
        self._connect_timeout_s = (
            timeout if connect_timeout_s is None else connect_timeout_s
        )
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self._rng = random.Random(retry_jitter_seed)
        self._factory = (
            socket.create_connection if socket_factory is None
            else socket_factory
        )
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        #: Lifetime count of retried rounds (reconnect + replay).
        self.retries = 0
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        """Open one configured connection; never leaks a half-open socket."""
        sock = self._factory(self._address, timeout=self._connect_timeout_s)
        try:
            # The connect timeout did its job; from here on the socket
            # timeout is the per-read bound.
            sock.settimeout(self._timeout)
        except BaseException:
            sock.close()
            raise
        return sock

    def request(self, message: Message) -> Message:
        payload = encode_message(message)
        with self._lock:
            last_error: Exception | None = None
            for attempt in range(self.max_retries + 1):
                if attempt:
                    self._backoff(attempt)
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    send_frame(self._sock, payload)
                    reply = recv_frame(self._sock, self.max_frame_bytes)
                    if reply is None:
                        raise ConnectionError("server closed the connection")
                    return decode_message(reply)
                except (OSError, ValueError, ConnectionError) as exc:
                    # OSError covers resets/timeouts/refused connections;
                    # ValueError covers corrupted or truncated frames.
                    # Either way the stream is unusable: drop it and
                    # replay the round over a fresh connection.
                    last_error = exc
                    if self._sock is not None:
                        try:
                            self._sock.close()
                        except OSError:
                            pass
                        self._sock = None
                    if attempt < self.max_retries:
                        self.retries += 1
                        logger.warning(
                            "transport round failed (%s: %s); retrying "
                            "(%d/%d)", type(exc).__name__, exc, attempt + 1,
                            self.max_retries,
                        )
            raise ConnectionError(
                f"request failed after {self.max_retries + 1} attempt(s): "
                f"{type(last_error).__name__}: {last_error}"
            ) from last_error

    def _backoff(self, attempt: int) -> None:
        delay = min(
            self.backoff_max_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        # Full jitter in [0.5, 1.5)x keeps reconnect stampedes apart.
        time.sleep(delay * (0.5 + self._rng.random()))

    def close(self) -> None:
        with self._lock:
            if self._sock is None:
                return
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def one_shot_request(
    host: str,
    port: int,
    message: Message,
    timeout: float | None = 30.0,
    max_retries: int = 0,
) -> Message:
    """Send one message over a fresh connection and return the reply.

    The control-plane shape (``repro admin``, health probes): no session
    to keep warm, so the connection is opened, used for one round, and
    closed.  Retries default to off -- an admin action such as
    ``reload-zoo`` is *not* a blind replay-safe round from the
    operator's point of view (it may have applied before the reply was
    lost), so the caller decides whether to retry.
    """
    with SocketTransport(
        host, port, timeout=timeout, max_retries=max_retries
    ) as transport:
        return transport.request(message)


class SocketServer:
    """TCP front end for a :class:`ServingEngine` with a worker pool.

    Each accepted connection is *owned* by one pooled worker for the
    connection's whole lifetime (a per-connection frame loop), so
    ``workers`` bounds how many clients can be **connected** at once --
    an idle persistent session still holds its worker, and connection
    number ``workers + 1`` queues unserved until one disconnects.  Size
    ``workers`` at or above the expected concurrent client count (and at
    least the engine's ``max_batch`` for full cross-client batching).
    """

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 16,
        drain_timeout_s: float = 30.0,
        max_frame_bytes: int | None = None,
    ):
        self.engine = engine
        self.drain_timeout_s = drain_timeout_s
        #: Request-frame size cap (``None`` = the wire module default).
        #: Enforced from the length prefix before any body is buffered; a
        #: connection claiming an oversized frame is dropped on the spot.
        self.max_frame_bytes = max_frame_bytes
        #: Shared with the gateway front end: ``/metrics`` + ``/healthz``
        #: answer on the wire port, and the server owns each traced
        #: request's root span.
        self.metrics = getattr(engine, "metrics", None)
        self.tracer = getattr(engine, "tracer", None) or NULL_TRACER
        self._listener = bind_listener(host, port)
        self.host, self.port = self._listener.getsockname()[:2]
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        # Live connections, so stop() can unblock workers parked in recv()
        # (pool threads are non-daemon; without this the process would hang
        # on shutdown while any client stays connected).  The condition
        # doubles as a readiness event: tests wait on it instead of
        # sleeping a fixed interval and hoping the accept loop won.
        self._conn_lock = threading.Lock()
        self._conn_cond = threading.Condition(self._conn_lock)
        self._connections: set[socket.socket] = set()
        # In-flight request accounting: stop() drains active handlers (a
        # request already being executed gets its reply) before tearing
        # down connections, instead of racing them mid-computation.
        # _teardown flips under the same condition lock that guards the
        # increment, so a frame received concurrently with stop() either
        # registers as in-flight (and is drained) or is never started --
        # a handler can't begin while connections are being torn down.
        self._inflight = 0
        self._teardown = False
        self._inflight_cond = threading.Condition()

    def start(self) -> "SocketServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            self._pool.submit(self._serve_connection, conn)

    def wait_for_connections(self, count: int, timeout_s: float = 5.0) -> bool:
        """Block until ``count`` connections are owned by workers.

        The readiness event for tests and orchestration: a client that
        just connected is not *served* until the accept loop handed its
        socket to a pooled worker, and polling/sleeping for that is
        exactly the flake this method removes.
        """
        deadline = time.monotonic() + timeout_s
        with self._conn_cond:
            while len(self._connections) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._conn_cond.wait(remaining)
            return True

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._conn_cond:
            if self._stopping.is_set():
                conn.close()
                return
            self._connections.add(conn)
            self._conn_cond.notify_all()
        try:
            with conn:
                while not self._stopping.is_set():
                    # Sniff the first four bytes: a ``b"GET "`` opener is
                    # a one-shot HTTP scrape (as a length prefix it would
                    # claim a ~0.5 GiB frame, past any sane cap);
                    # anything else is a wire frame's length prefix.
                    try:
                        prefix = _recv_exact(conn, 4)
                    except (ValueError, OSError):
                        return
                    if prefix is None:
                        return
                    if prefix == b"GET ":
                        self._serve_http(conn)
                        return
                    (length,) = _LEN.unpack(prefix)
                    cap = (
                        MAX_FRAME_BYTES if self.max_frame_bytes is None
                        else self.max_frame_bytes
                    )
                    if length > cap:
                        logger.warning(
                            "dropping connection claiming a %d-byte frame "
                            "(cap %d)", length, cap,
                        )
                        return
                    try:
                        payload = _recv_exact(conn, length, partial_ok=False)
                    except (ValueError, OSError):
                        return  # corrupted stream or closed by stop()
                    if payload is None:
                        return
                    with self._inflight_cond:
                        if self._teardown:
                            return  # connections are being shut down
                        self._inflight += 1
                    try:
                        span = None
                        try:
                            request = decode_message(payload)
                        except ValueError as exc:
                            reply = error_message(f"bad frame: {exc}")
                        else:
                            span = self.tracer.accept(
                                "request", request.meta,
                                kind=request.kind, frontend="threaded",
                            )
                            try:
                                reply = self.engine.handle(request)
                            except Exception as exc:  # keep the connection alive
                                reply = error_message(f"internal error: {exc}")
                        if span is not None:
                            span.set(outcome=reply.kind).finish()
                            if span.trace_id is not None:
                                reply.meta.setdefault(
                                    TRACE_META_KEY,
                                    {"trace_id": span.trace_id},
                                )
                        try:
                            send_frame(conn, encode_message(reply))
                        except OSError:
                            return
                    finally:
                        with self._inflight_cond:
                            self._inflight -= 1
                            self._inflight_cond.notify_all()
        finally:
            with self._conn_cond:
                self._connections.discard(conn)
                self._conn_cond.notify_all()

    def _serve_http(self, conn: socket.socket) -> None:
        """One-shot HTTP GET on the wire port (``curl :port/healthz``).

        The ``b"GET "`` prefix was already consumed by the sniffer; the
        stream resumes at the request target.  Routing is shared with
        the async gateway via :func:`~repro.serving.metrics.render_http`.
        """
        try:
            conn.settimeout(5.0)
            head = b""
            while b"\r\n\r\n" not in head and len(head) < 8192:
                chunk = conn.recv(1024)
                if not chunk:
                    break
                head += chunk
        except OSError:
            return
        target = head.split(b" ", 1)[0].decode("latin-1") or "/"
        status, content_type, body = render_http(target, self.engine, self.metrics)
        try:
            conn.sendall(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + body
            )
        except OSError:
            pass

    def stop(self) -> None:
        """Stop accepting, drain in-flight requests, then tear down.

        A request whose handler is already running (or registered
        in-flight) when ``stop`` is called receives its reply (bounded by
        ``drain_timeout_s``); once the drain completes no new handler can
        start, and connections -- including those parked in ``recv`` --
        are then shut down.
        """
        self._stopping.set()
        # Closing a listening socket does not reliably wake a blocked
        # accept(); shut it down and poke it with a throwaway connection.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            with socket.create_connection((self.host, self.port), timeout=0.5):
                pass
        except OSError:
            pass
        self._listener.close()
        # Drain: let handlers that already own a request finish and send
        # their reply before their connection is shut down under them.
        # _teardown is set under the same lock, so no handler can slip in
        # between the drain completing and the connection shutdowns.
        deadline = time.monotonic() + self.drain_timeout_s
        with self._inflight_cond:
            while self._inflight and time.monotonic() < deadline:
                self._inflight_cond.wait(deadline - time.monotonic())
            self._teardown = True
        # Shut down live connections so workers blocked in recv() return.
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        self._pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SocketServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
