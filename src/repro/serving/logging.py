"""One logging setup for the whole serving stack.

Every layer logs through a child of the ``repro`` logger --
``repro.serving.cli``, ``repro.serving.gateway``,
``repro.serving.transport``, ``repro.serving.shards``,
``repro.serving.trace`` -- so a single :func:`configure_logging` call
(driven by ``--log-level`` / ``--log-json`` on the CLI) controls
verbosity and format for all of them, replacing the ad-hoc prints that
used to land unstructured in ``serve.log``.

The JSON format emits one object per line (``ts`` is seconds since the
formatter was created, monotonic, so lines are orderable without wall
clocks); a record carrying a ``span`` extra -- the tracer's per-span
log line -- gets the full span dict merged in, which makes a
``--log-json`` serve log a queryable span stream.
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = ["JsonFormatter", "configure_logging"]

#: Marker attribute so reconfiguration replaces our handler, never the
#: user's own.
_HANDLER_TAG = "_repro_serving_handler"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class JsonFormatter(logging.Formatter):
    """One JSON object per line; merges the tracer's ``span`` extra."""

    def __init__(self):
        super().__init__()
        self._t0 = time.monotonic()

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(time.monotonic() - self._t0, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        span = getattr(record, "span", None)
        if isinstance(span, dict):
            out["span"] = span
        if record.exc_info:
            out["exc"] = self.formatException(record.exc_info)
        return json.dumps(out)


def configure_logging(level: str = "info", json_lines: bool = False,
                      stream=None) -> logging.Logger:
    """Install one handler on the ``repro`` root logger; idempotent.

    Returns the configured root so callers can grab children off it.
    ``level`` accepts the usual names (case-insensitive); unknown names
    fall back to INFO rather than raising -- a bad ``--log-level``
    should not take the server down.
    """
    root = logging.getLogger("repro")
    root.setLevel(_LEVELS.get(str(level).lower(), logging.INFO))
    root.propagate = False
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        ))
    setattr(handler, _HANDLER_TAG, True)
    for existing in list(root.handlers):
        if getattr(existing, _HANDLER_TAG, False):
            root.removeHandler(existing)
    root.addHandler(handler)
    return root
