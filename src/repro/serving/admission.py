"""Admission control: per-tenant token buckets and a bounded job queue.

The serving engine asks :class:`AdmissionController` before it spends
HE compute on a ``linear`` round (handshakes and key uploads are control
plane and always admitted).  Admission can refuse for two reasons:

* the **bounded job queue** is full -- more rounds are in flight than
  the deployment wants queued behind the batcher, or
* the session's **tenant token bucket** is empty -- that tenant has
  exceeded its sustained requests/second (with a configurable burst).

A refusal is not an error: the engine replies with a ``busy`` wire
message carrying a ``retry_after_s`` hint, and :class:`ClientSession`
sleeps and retries transparently.  Because every protocol round is
deterministic and replayable (the same property PR 6's connection-retry
relies on), a retried round completes with bit-identical ciphertexts --
backpressure never changes what is computed, only when.

Token buckets take an injectable ``clock`` so tests can drive time
deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time

from .wire import Message

__all__ = ["AdmissionController", "TokenBucket", "busy_message"]

DEFAULT_RETRY_AFTER_S = 0.05


def busy_message(retry_after_s: float, reason: str) -> Message:
    """The wire-level backpressure reply (`Retry-After` as meta)."""
    return Message(
        "busy", {"retry_after_s": round(float(retry_after_s), 4), "reason": reason}
    )


class TokenBucket:
    """Classic token bucket: ``rate_per_s`` sustained, ``burst`` capacity.

    ``try_acquire`` never blocks: it returns ``0.0`` when a token was
    taken, else the seconds until one accrues (the caller's retry hint).
    """

    def __init__(self, rate_per_s: float, burst: float, clock=time.monotonic):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.rate_per_s = float(rate_per_s)
        self.burst = max(1.0, float(burst))
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> float:
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate_per_s
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate_per_s


class AdmissionController:
    """Queue-depth and per-tenant rate admission for the serving engine.

    ``rate_per_tenant <= 0`` disables rate limiting; ``max_queue_depth
    <= 0`` disables the queue bound -- the default controller admits
    everything and only keeps the tenant bookkeeping.

    Protocol: the engine calls :meth:`try_admit` before a linear round.
    ``None`` means admitted *and* an in-flight slot is held -- the engine
    must :meth:`release` it when the round finishes (success or error).
    A float means refused; the value is the suggested retry delay.
    """

    def __init__(
        self,
        rate_per_tenant: float = 0.0,
        burst: float = 0.0,
        max_queue_depth: int = 0,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        clock=time.monotonic,
    ):
        self.rate_per_tenant = float(rate_per_tenant)
        self.burst = float(burst) if burst > 0 else max(1.0, 2 * self.rate_per_tenant)
        self.max_queue_depth = int(max_queue_depth)
        self.retry_after_s = float(retry_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._tenants: dict[str, str] = {}  # session id -> tenant
        self._inflight = 0
        #: refusals issued, by reason (observability)
        self.rejections = {"queue": 0, "rate": 0}

    # -- session/tenant bookkeeping ------------------------------------

    def bind(self, session_id: str, tenant: str) -> None:
        with self._lock:
            self._tenants[session_id] = tenant

    def unbind(self, session_id: str) -> None:
        with self._lock:
            self._tenants.pop(session_id, None)

    def tenant_of(self, session_id: str) -> str:
        with self._lock:
            return self._tenants.get(session_id, "default")

    # -- admission -----------------------------------------------------

    def try_admit(self, session_id: str) -> float | None:
        with self._lock:
            if self.max_queue_depth > 0 and self._inflight >= self.max_queue_depth:
                self.rejections["queue"] += 1
                return self.retry_after_s
            bucket = None
            if self.rate_per_tenant > 0:
                tenant = self._tenants.get(session_id, "default")
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = self._buckets[tenant] = TokenBucket(
                        self.rate_per_tenant, self.burst, clock=self._clock
                    )
            if bucket is not None:
                wait = bucket.try_acquire()
                if wait > 0:
                    self.rejections["rate"] += 1
                    return max(wait, 1e-3)
            self._inflight += 1
            return None

    def release(self) -> None:
        with self._lock:
            self._inflight -= 1

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._inflight

    def stats(self) -> dict:
        with self._lock:
            return {
                "queue_depth": self._inflight,
                "max_queue_depth": self.max_queue_depth,
                "rate_per_tenant": self.rate_per_tenant,
                "tenants": len(set(self._tenants.values())),
                "rejections": dict(self.rejections),
            }
